// The Sec.-3.1 design argument, quantified: per-step MPI cost of 2-D
// pencil decompositions (row + column transposes) against the paper's 1-D
// slab transpose, both at the GPU code's 2 ranks/node and at the
// traditional massively-parallel 32 ranks/node of the CPU baseline, whose
// small column messages sit in the regime the effective-bandwidth curve
// punishes (Table 2).

#include <algorithm>
#include <cstdio>

#include "hw/summit.hpp"
#include "model/geometry.hpp"
#include "model/paper.hpp"
#include "net/alltoall_model.hpp"
#include "obs/bench_report.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace psdns;

namespace {

struct Phase {
  double p2p;      // message size per rank pair
  double seconds;  // elapsed time of the phase
};

/// Column-communicator all-to-all of one variable group: Pr = tpn ranks
/// per node (the row communicator stays on the node), Pc = nodes.
Phase pencil_column_phase(const net::AlltoallModel& a2a, std::int64_t n,
                          int nodes, int tpn, int nv) {
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  const double ranks = static_cast<double>(tpn) * nodes;
  const double pc = nodes;
  const double p2p = 4.0 * nv * n3 / (ranks * pc);
  // Off-node bytes per node: each node's tpn ranks send (Pc-1)/Pc of their
  // data to other nodes.
  const double bytes = 4.0 * nv * n3 / nodes * (pc - 1.0) / pc;
  const double bw = a2a.effective_injection_bw(nodes, tpn, p2p);
  return Phase{p2p, a2a.params().base_latency + bytes / bw};
}

/// Row-communicator transpose: on-node (both ranks share the node), bounded
/// by host memory bandwidth.
double pencil_row_phase(const hw::MachineSpec& hw_spec, std::int64_t n,
                        int nodes, int nv) {
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  const double bytes = 4.0 * nv * n3 / nodes;
  return 2.0 * bytes / (0.6 * hw_spec.node.host_mem_bw());
}

}  // namespace

int main() {
  const net::AlltoallModel a2a;
  const hw::MachineSpec hw_spec = hw::summit();

  std::printf(
      "Why the paper chose slabs (Sec. 3.1): per-RK2-step MPI time of 2-D\n"
      "pencil (row+column) transposes vs the 1-D slab transpose. At the\n"
      "same 2 tasks/node the pencil code pays the extra on-node transpose\n"
      "(a modest 1.1-1.3x); the traditional massively-parallel pencil\n"
      "configuration (32 ranks/node, as the CPU baseline) shrinks the\n"
      "column messages ~11x and pays the full rank-density penalty.\n\n");

  obs::BenchReport report("decomposition_comparison");
  report.meta("description",
              "per-step MPI time: 1-D slab vs 2-D pencil decompositions");

  util::Table t({"Nodes", "Problem", "Slab msg (3v)", "Slab MPI (s)",
                 "Pencil 2t/n (s)", "Pencil 32t/n msg", "Pencil 32t/n (s)"});
  for (const auto& c : model::paper::kCases) {
    model::ProblemConfig slab{.n = c.n,
                              .nodes = c.nodes,
                              .tasks_per_node = 2,
                              .pencils = c.pencils,
                              .variables = 3};
    // Slab: per substep one 3-variable + one 6-variable whole-slab A2A.
    double slab_step = 0.0;
    for (const int nv : {3, 6}) {
      model::ProblemConfig p = slab;
      p.variables = nv;
      slab_step += 2.0 * a2a.time(c.nodes, 2, p.p2p_bytes(c.pencils));
    }
    // Pencil: per substep each variable group crosses a row AND a column
    // transpose (x->y on node, y->z across nodes), at 2 or 32 ranks/node.
    double pencil2 = 0.0, pencil32 = 0.0;
    for (const int nv : {3, 6}) {
      pencil2 +=
          2.0 * (pencil_column_phase(a2a, c.n, c.nodes, 2, nv).seconds +
                 pencil_row_phase(hw_spec, c.n, c.nodes, nv));
      pencil32 +=
          2.0 * (pencil_column_phase(a2a, c.n, c.nodes, 32, nv).seconds +
                 pencil_row_phase(hw_spec, c.n, c.nodes, nv));
    }
    const std::string key =
        std::to_string(c.n) + "_" + std::to_string(c.nodes) + "n";
    report.metric("slab_mpi_seconds." + key, slab_step);
    report.metric("pencil_2tpn_seconds." + key, pencil2);
    report.metric("pencil_32tpn_seconds." + key, pencil32);
    t.add_row({std::to_string(c.nodes), util::format_problem(c.n),
               util::format_bytes(slab.p2p_bytes(c.pencils)),
               util::format_fixed(slab_step, 2),
               util::format_fixed(pencil2, 2),
               util::format_bytes(
                   pencil_column_phase(a2a, c.n, c.nodes, 32, 3).p2p),
               util::format_fixed(pencil32, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Takeaways: (1) the slab code's single transpose beats even a\n"
      "dense-node pencil code by the cost of the extra on-node transpose;\n"
      "(2) the traditional 32-rank/node pencil configuration - what the\n"
      "CPU baseline uses, and the only option on weak-node machines -\n"
      "pays ~11x smaller column messages plus the rank-density penalty:\n"
      "exactly the communication regime the paper escapes by pairing\n"
      "dense nodes with a 1-D decomposition. (Slabs require P <= N;\n"
      "Summit's node density is what makes that satisfiable here.)\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
