// Host micro-benchmarks of the functional distributed pieces: pack/unpack
// strided copies, the slab transpose, the full distributed FFT, and one DNS
// step (threads as ranks).

#include <benchmark/benchmark.h>

#include <vector>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "gbench_main.hpp"
#include "gpu/copy.hpp"
#include "transpose/dist_fft.hpp"
#include "transpose/slab.hpp"
#include "util/rng.hpp"

namespace {

using psdns::fft::Complex;
using psdns::fft::Real;

void BM_Memcpy2d(benchmark::State& state) {
  // The pencil H2D shape: rows of `width` contiguous complex elements.
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = 1 << 14;
  const std::size_t pitch = width * 4;
  std::vector<Complex> src(pitch * rows), dst(width * rows);
  for (auto _ : state) {
    psdns::gpu::memcpy2d(dst.data(), width, src.data(), pitch, width, rows);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(width * rows *
                                                    sizeof(Complex)));
}
BENCHMARK(BM_Memcpy2d)->Arg(8)->Arg(64)->Arg(512);

void BM_PackZ(benchmark::State& state) {
  const std::size_t n = 64;
  psdns::comm::run_ranks(1, [&](psdns::comm::Communicator& comm) {
    psdns::transpose::SlabGrid grid{n / 2 + 1, n, n, 1};
    psdns::transpose::SlabTranspose tp(comm, grid);
    std::vector<Complex> slab(grid.zslab_elems());
    psdns::util::Rng rng(1);
    for (auto& c : slab) c = Complex{rng.gaussian(), rng.gaussian()};
    std::vector<Complex> send(tp.block_elems(grid.nxh, 1));
    const Complex* p = slab.data();
    for (auto _ : state) {
      tp.pack_z(std::span<const Complex* const>(&p, 1), 0, grid.nxh, send);
      benchmark::DoNotOptimize(send.data());
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(send.size() *
                                                      sizeof(Complex)));
  });
}
BENCHMARK(BM_PackZ);

void BM_SlabFftForward(benchmark::State& state) {
  // The benchmark loop must run on one thread; each iteration spins up the
  // rank group and performs a fixed number of transforms.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  constexpr int kTransformsPerIteration = 4;
  for (auto _ : state) {
    psdns::comm::run_ranks(ranks, [&](psdns::comm::Communicator& comm) {
      psdns::transpose::SlabFft3d fft3(comm, n);
      psdns::util::Rng rng(2, static_cast<std::uint64_t>(comm.rank()));
      std::vector<Real> phys(fft3.physical_elems());
      for (auto& v : phys) v = rng.gaussian();
      std::vector<Complex> spec(fft3.spectral_elems());
      for (int i = 0; i < kTransformsPerIteration; ++i) {
        fft3.forward(phys, spec);
        benchmark::DoNotOptimize(spec.data());
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kTransformsPerIteration *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_SlabFftForward)
    ->Args({32, 1})
    ->Args({32, 4})
    ->Args({64, 2})
    ->Unit(benchmark::kMillisecond);

void BM_DnsStep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr int kStepsPerIteration = 2;
  for (auto _ : state) {
    psdns::comm::run_ranks(2, [&](psdns::comm::Communicator& comm) {
      psdns::dns::SolverConfig cfg;
      cfg.n = n;
      cfg.viscosity = 0.02;
      psdns::dns::SlabSolver solver(comm, cfg);
      solver.init_isotropic(1, 3.0, 0.5);
      for (int i = 0; i < kStepsPerIteration; ++i) solver.step(1e-3);
    });
  }
  state.SetItemsProcessed(state.iterations() * kStepsPerIteration *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_DnsStep)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return psdns::bench::run_benchmarks_with_report(
      argc, argv, "micro_transpose", /*input_seed=*/1);
}
