// Regenerates Fig. 9: time per RK2 step of the DNS in its configurations
// across the weak-scaled node counts, together with the standalone-MPI
// lower bound (the dotted green line of the paper).

#include <cstdio>

#include "model/paper.hpp"
#include "obs/bench_report.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  using pipeline::MpiConfig;
  const pipeline::DnsStepModel model;

  std::printf(
      "Fig. 9: time per step vs node count (weak-scaled problem sizes).\n"
      "'MPI only' performs just the required all-to-alls (no compute, no\n"
      "CPU<->GPU movement) - the lower bound any GPU optimization can reach.\n\n");

  obs::BenchReport report("fig9_time_per_step");
  report.meta("description",
              "seconds per RK2 step vs node count, with the MPI-only bound");

  util::Table t({"Nodes", "Problem", "A: 6 t/n (s)", "B: 2 t/n 1 pencil (s)",
                 "C: 2 t/n 1 slab (s)", "MPI only (s)", "paper best (s)"});
  for (std::size_t i = 0; i < std::size(model::paper::kCases); ++i) {
    const auto& c = model::paper::kCases[i];
    double cell[3];
    for (int mc = 0; mc < 3; ++mc) {
      pipeline::PipelineConfig cfg;
      cfg.n = c.n;
      cfg.nodes = c.nodes;
      cfg.pencils = c.pencils;
      cfg.mpi = static_cast<MpiConfig>(mc);
      cell[mc] = model.simulate_gpu_step(cfg).seconds;
    }
    pipeline::PipelineConfig mpi_cfg;
    mpi_cfg.n = c.n;
    mpi_cfg.nodes = c.nodes;
    mpi_cfg.pencils = c.pencils;
    mpi_cfg.mpi = MpiConfig::C;
    const double mpi_only = model.mpi_only_step_seconds(mpi_cfg);

    const auto& row = model::paper::kTable3[i];
    const double paper_best =
        std::min(row.gpu_a, std::min(row.gpu_b, row.gpu_c));
    const std::string key =
        std::to_string(c.n) + "_" + std::to_string(c.nodes) + "n";
    report.metric("step_seconds." + key + ".a", cell[0]);
    report.metric("step_seconds." + key + ".b", cell[1]);
    report.metric("step_seconds." + key + ".c", cell[2]);
    report.metric("mpi_only_seconds." + key, mpi_only);
    t.add_row({std::to_string(c.nodes), util::format_problem(c.n),
               util::format_fixed(cell[0], 2), util::format_fixed(cell[1], 2),
               util::format_fixed(cell[2], 2),
               util::format_fixed(mpi_only, 2),
               util::format_fixed(paper_best, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Shapes reproduced: every DNS line tracks the MPI-only line with a\n"
      "modest offset (the actual computation is largely hidden); the gap\n"
      "between configurations widens with scale.\n\n");

  // Strong-scaling inset: the fixed 12288^3 problem across node counts
  // (the paper focuses on weak scaling because memory pins the largest
  // problem to the machine; this sweep shows the model's strong-scaling
  // behaviour for a size that fits several allocations).
  std::printf("Strong scaling of 12288^3, config C:\n");
  util::Table ss({"Nodes", "Pencils", "Time (s)", "Efficiency vs 512 (%)"});
  double t512 = 0.0;
  for (const int nodes : {512, 1024, 2048}) {
    pipeline::PipelineConfig cfg;
    cfg.n = 12288;
    cfg.nodes = nodes;
    // Pencil count follows the per-node memory footprint (Table 1 logic).
    cfg.pencils = nodes == 512 ? 6 : nodes == 1024 ? 3 : 2;
    cfg.mpi = MpiConfig::C;
    const double tsec = model.simulate_gpu_step(cfg).seconds;
    if (nodes == 512) t512 = tsec;
    report.metric("strong_scaling_12288.step_seconds." +
                      std::to_string(nodes) + "n",
                  tsec);
    ss.add_row({std::to_string(nodes), std::to_string(cfg.pencils),
                util::format_fixed(tsec, 2),
                util::format_fixed(100.0 * t512 / tsec * 512.0 / nodes, 1)});
  }
  std::printf("%s", ss.to_string().c_str());
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
