// Drop-in replacement for BENCHMARK_MAIN() that keeps the normal console
// output and additionally writes a machine-readable BENCH_<name>.json via
// obs::BenchReport, one metric per benchmark (real seconds per iteration).
//
// Lives in bench/ (not src/obs) so the obs library itself stays free of the
// google-benchmark dependency.

#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_report.hpp"

namespace psdns::bench {

// Forwards to the stock console reporter, capturing (name, seconds/iter) of
// every plain iteration run along the way; aggregates and errored runs are
// reported to the console but kept out of the JSON.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      results_.emplace_back(run.benchmark_name(),
                            run.real_accumulated_time / iters);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& results() const {
    return results_;
  }

 private:
  std::vector<std::pair<std::string, double>> results_;
};

// `input_seed` is the base RNG seed the benchmark kernels fill their input
// data from; it lands in the report's run manifest so two BENCH_*.json files
// are comparable input-for-input, not just flag-for-flag.
inline int run_benchmarks_with_report(
    int argc, char** argv, const std::string& report_name,
    std::optional<std::uint64_t> input_seed = std::nullopt) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  obs::BenchReport report(report_name);
  if (input_seed) report.seed(*input_seed);
  report.meta("description",
              "google-benchmark micro-kernels, real seconds per iteration");
  for (const auto& [name, seconds] : reporter.results()) {
    report.metric("seconds_per_iter." + name, seconds);
  }
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}

}  // namespace psdns::bench
