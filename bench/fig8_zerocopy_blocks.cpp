// Regenerates Fig. 8: achieved bandwidth of the zero-copy unpack kernel as
// a function of the number of thread blocks, against the cudaMemcpy2DAsync
// copy-engine line (Sec. 4.2).

#include <cstdio>

#include "gpu/cost_model.hpp"
#include "obs/bench_report.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  const gpu::CostModel costs;
  const double chunk = 18.4e3;  // the DNS contiguous extent

  obs::BenchReport report("fig8_zerocopy_blocks");
  report.meta("description",
              "zero-copy unpack kernel bandwidth vs thread block count");

  const double engine_bw =
      216e6 / costs.strided_copy_time(gpu::CopyMethod::Memcpy2DAsync, 216e6,
                                      chunk);

  std::printf(
      "Fig. 8: zero-copy kernel bandwidth vs thread blocks (1024\n"
      "threads/block, 2 blocks/SM possible on 80 SMs), 18 KB chunks.\n"
      "cudaMemcpy2DAsync reference line: %s/s\n\n",
      util::format_bytes(engine_bw).c_str());

  util::Table t({"Thread blocks", "Zero-copy BW (GB/s)", "% of memcpy2D",
                 "SM-steal factor on concurrent compute"});
  report.metric("memcpy2d_bw_gbps", engine_bw / 1e9);
  for (const int blocks : {1, 2, 4, 8, 16, 32, 64, 160}) {
    const double bw = costs.zero_copy_bw(blocks, chunk);
    report.metric("zerocopy_bw_gbps." + std::to_string(blocks) + "blk",
                  bw / 1e9);
    t.add_row({std::to_string(blocks), util::format_fixed(bw / 1e9, 1),
               util::format_fixed(100.0 * bw / engine_bw, 1),
               util::format_fixed(costs.sm_steal_factor(blocks), 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Shapes reproduced: bandwidth ramps with blocks and saturates near\n"
      "the copy-engine line by ~16 blocks (a small fraction of the GPU),\n"
      "which is why the production code reserves zero-copy for complex-\n"
      "stride unpacks and uses the copy engines for everything else.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
