// Campaign-service throughput: what the content-addressed result cache
// buys. Runs an in-process Service (real HTTP loopback, real scheduler,
// real solver runs), submits a batch of distinct small jobs cold, then
// re-submits the identical batch; reports jobs/hour for both passes and
// the cache-hit speedup (cold latency / hit latency). The acceptance bar
// is >= 100x: a hit is one store read instead of a supervised campaign.
//
// Emits BENCH_service_throughput.json (schema v2, perf-gate compatible;
// "throughput"/"speedup" metric names are higher-is-better to perfdiff).
// Besides the means, both passes report p50/p95/p99 per-job latency - the
// SLO view: a mean hides the straggler jobs a tenant actually notices.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/job.hpp"
#include "svc/service.hpp"
#include "util/stopwatch.hpp"

int main() {
  using psdns::obs::JsonValue;
  using psdns::svc::JobRequest;

  psdns::svc::ServiceConfig cfg;
  cfg.port = 0;
  cfg.max_concurrent = 2;
  cfg.cache_dir = psdns::obs::bench_output_path("svc_bench_cache");
  cfg.workdir = psdns::obs::bench_output_path("svc_bench_work");
  cfg.cache_keep = 64;
  psdns::svc::Service service(cfg);
  const int port = service.port();

  constexpr int kJobs = 6;
  constexpr std::uint64_t kSeed = 7;
  const auto request_json = [&](int j) {
    JobRequest req;
    req.tenant = "bench";
    req.n = 16;
    req.ranks = 2;
    req.steps = 4;
    req.seed = kSeed + static_cast<std::uint64_t>(j);  // distinct content
    return req.to_json();
  };

  const auto submit_wait = [&](int j) -> double {
    const psdns::util::Stopwatch watch;
    int status = 0;
    const std::string body = psdns::svc::post(
        "127.0.0.1", port, "/jobs", request_json(j), &status);
    const JsonValue doc = psdns::obs::json_parse(body);
    const auto id = static_cast<std::int64_t>(doc.at("id").number);
    for (;;) {
      const std::string record = psdns::svc::fetch(
          "127.0.0.1", port, "/jobs/" + std::to_string(id), &status);
      const std::string state =
          psdns::obs::json_parse(record).at("state").string;
      if (state == "done") break;
      if (state == "failed" || state == "cancelled") {
        std::fprintf(stderr, "job %lld %s\n", static_cast<long long>(id),
                     state.c_str());
        std::exit(1);
      }
    }
    return watch.seconds();
  };

  std::vector<double> cold;
  for (int j = 0; j < kJobs; ++j) cold.push_back(submit_wait(j));
  std::vector<double> hit;
  for (int j = 0; j < kJobs; ++j) hit.push_back(submit_wait(j));

  const auto sum = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return s;
  };
  // Nearest-rank percentile over the sorted per-job latencies (same rule
  // as obs::Registry histograms).
  const auto quantile = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(rank, v.size() - 1)];
  };

  const double cold_latency = sum(cold) / kJobs;
  const double hit_latency = sum(hit) / kJobs;
  const double cold_per_hour = 3600.0 / cold_latency;
  const double hit_per_hour = 3600.0 / hit_latency;
  const double speedup = cold_latency / hit_latency;

  std::printf("campaign service throughput (n=16, 2 ranks, 4 steps, %d jobs)\n",
              kJobs);
  std::printf("%-28s %12s %12s\n", "", "cold run", "cache hit");
  std::printf("%-28s %12.4f %12.6f\n", "latency per job [s]", cold_latency,
              hit_latency);
  std::printf("%-28s %12.4f %12.6f\n", "latency p50 [s]",
              quantile(cold, 0.50), quantile(hit, 0.50));
  std::printf("%-28s %12.4f %12.6f\n", "latency p95 [s]",
              quantile(cold, 0.95), quantile(hit, 0.95));
  std::printf("%-28s %12.0f %12.0f\n", "throughput [jobs/hour]",
              cold_per_hour, hit_per_hour);
  std::printf("cache-hit speedup: %.0fx (acceptance bar: >= 100x)\n",
              speedup);

  psdns::obs::BenchReport report("service_throughput");
  report.seed(kSeed);
  report.meta("jobs", std::to_string(kJobs));
  report.meta("grid", "16^3, 2 ranks, 4 steps");
  report.metric("cold_latency_seconds", cold_latency);
  report.metric("cache_hit_latency_seconds", hit_latency);
  report.metric("cold_latency_p50_seconds", quantile(cold, 0.50));
  report.metric("cold_latency_p95_seconds", quantile(cold, 0.95));
  report.metric("cold_latency_p99_seconds", quantile(cold, 0.99));
  report.metric("cache_hit_latency_p50_seconds", quantile(hit, 0.50));
  report.metric("cache_hit_latency_p95_seconds", quantile(hit, 0.95));
  report.metric("cache_hit_latency_p99_seconds", quantile(hit, 0.99));
  report.metric("cold_throughput_jobs_per_hour", cold_per_hour);
  report.metric("cache_hit_throughput_jobs_per_hour", hit_per_hour);
  report.metric("cache_hit_speedup", speedup);
  std::printf("wrote %s\n", report.write().c_str());
  return speedup >= 100.0 ? 0 : 1;
}
