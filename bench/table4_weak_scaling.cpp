// Regenerates Table 4: weak scaling (Eq. 4) of the best configuration per
// problem size, relative to 3072^3 on 16 nodes.

#include <cstdio>

#include "model/paper.hpp"
#include "model/scaling.hpp"
#include "obs/bench_report.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  using pipeline::MpiConfig;
  const pipeline::DnsStepModel model;

  std::printf(
      "Table 4: weak scaling relative to 3072^3 (Eq. 4), best configuration\n"
      "per size (model | paper).\n\n");

  const std::size_t ncases = std::size(model::paper::kCases);
  std::vector<double> best(ncases);
  std::vector<const char*> best_name(ncases);
  for (std::size_t i = 0; i < ncases; ++i) {
    const auto& c = model::paper::kCases[i];
    best[i] = 1e300;
    for (int mc = 0; mc < 3; ++mc) {
      pipeline::PipelineConfig cfg;
      cfg.n = c.n;
      cfg.nodes = c.nodes;
      cfg.pencils = c.pencils;
      cfg.mpi = static_cast<MpiConfig>(mc);
      const double t = model.simulate_gpu_step(cfg).seconds;
      if (t < best[i]) {
        best[i] = t;
        best_name[i] = pipeline::to_string(cfg.mpi);
      }
    }
  }

  obs::BenchReport report("table4_weak_scaling");
  report.meta("description",
              "weak scaling (Eq. 4) of the best config per problem size");

  util::Table t({"Nodes", "Ntasks", "Problem", "Best config", "Time (s)",
                 "Weak scaling (%)"});
  for (std::size_t i = 0; i < ncases; ++i) {
    const auto& row = model::paper::kTable4[i];
    const double ws =
        i == 0 ? 100.0
               : model::weak_scaling_percent(
                     model::paper::kCases[0].n, model::paper::kCases[0].nodes,
                     best[0], model::paper::kCases[i].n,
                     model::paper::kCases[i].nodes, best[i]);
    const std::string key =
        std::to_string(row.n) + "_" + std::to_string(row.nodes) + "n";
    report.metric("best_step_seconds." + key, best[i]);
    report.metric("weak_scaling_pct." + key, ws);
    t.add_row({std::to_string(row.nodes), std::to_string(row.ntasks),
               util::format_problem(row.n), best_name[i],
               util::format_fixed(best[i], 2) + " | " +
                   util::format_fixed(row.time, 2),
               (i == 0 ? std::string("-")
                       : util::format_fixed(ws, 1) + " | " +
                             util::format_fixed(row.weak_scaling_pct, 1))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "A grid-point increase of 216x retains ~50-60%% weak-scaling\n"
      "efficiency - 'very respectable for a pseudo-spectral code dominated\n"
      "by all-to-all communication' (Sec. 5.3).\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
