// Workspace-arena benchmarks, two reports:
//
//  - BENCH_arena_footprint.json (deterministic): the arena's peak/resident
//    footprint and hit/miss counts after a fixed single-rank DNS workload,
//    next to the Sec. 3.5 memory-model prediction for the same grid. These
//    are pure counting results - machine-independent - so CI gates them
//    strictly, the same way it gates the co-simulation benches.
//
//  - BENCH_micro_arena.json (wall clock): checkout/ensure latencies against
//    the heap-allocation baseline they replace; diffed warn-only.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "gbench_main.hpp"
#include "model/memory.hpp"
#include "obs/arena_metrics.hpp"
#include "obs/bench_report.hpp"
#include "util/arena.hpp"

namespace {

using psdns::util::WorkspaceArena;

// --- deterministic footprint report ---

void write_footprint_report() {
  constexpr std::size_t kN = 32;
  constexpr int kSteps = 3;
  psdns::comm::run_ranks(1, [&](psdns::comm::Communicator& comm) {
    psdns::dns::SolverConfig cfg;
    cfg.n = kN;
    cfg.viscosity = 0.02;
    cfg.scheme = psdns::dns::TimeScheme::RK4;
    cfg.forcing.enabled = true;
    cfg.forcing.power = 0.05;
    cfg.scalars.push_back(psdns::dns::ScalarConfig{.schmidt = 0.7,
                                                   .mean_gradient = 1.0});
    psdns::dns::SlabSolver solver(comm, cfg);
    solver.init_isotropic(7, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 11, 3.0, 0.25);
    for (int s = 0; s < kSteps; ++s) solver.step(1e-3);
  });

  psdns::obs::publish_arena_metrics();
  const WorkspaceArena::Stats st = WorkspaceArena::global().stats();
  const double requests = static_cast<double>(st.hits + st.misses);

  // Sec. 3.5 memory model for the same grid on one node: the arena should
  // hold a modest fraction of it (it carries substage scratch and staging;
  // the state vectors and plan tables live outside).
  const psdns::model::MemoryModel mm;
  const double predicted = mm.host_bytes_per_node(kN, 1);

  psdns::obs::BenchReport report("arena_footprint");
  report.meta("description",
              "workspace-arena footprint after a fixed 32^3 RK4 forced+scalar "
              "DNS workload, vs the Sec. 3.5 host-memory prediction");
  report.metric("alloc.arena.peak_bytes",
                static_cast<double>(st.peak_bytes));
  report.metric("alloc.arena.resident_bytes",
                static_cast<double>(st.resident_bytes));
  report.metric("alloc.arena.misses", static_cast<double>(st.misses));
  report.metric("alloc.arena.hits", static_cast<double>(st.hits));
  report.metric("alloc.arena.hit_rate",
                requests > 0.0 ? static_cast<double>(st.hits) / requests
                               : 0.0);
  report.metric("model.host_bytes_pred", predicted);
  report.metric("model.arena_fraction",
                static_cast<double>(st.peak_bytes) / predicted);
  std::printf("arena peak %.1f MiB, resident %.1f MiB, %lld misses / %lld "
              "hits; Sec. 3.5 prediction %.1f MiB (arena fraction %.2f)\n",
              static_cast<double>(st.peak_bytes) / (1024.0 * 1024.0),
              static_cast<double>(st.resident_bytes) / (1024.0 * 1024.0),
              static_cast<long long>(st.misses),
              static_cast<long long>(st.hits), predicted / (1024.0 * 1024.0),
              static_cast<double>(st.peak_bytes) / predicted);
  std::printf("wrote %s\n", report.write().c_str());
}

// --- wall-clock micro kernels ---

void BM_ArenaCheckout(benchmark::State& state) {
  const std::size_t elems = static_cast<std::size_t>(state.range(0));
  auto& arena = WorkspaceArena::global();
  {
    auto warm = arena.checkout<double>(elems);  // first touch pays the miss
    benchmark::DoNotOptimize(warm.data());
  }
  for (auto _ : state) {
    auto h = arena.checkout<double>(elems);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ArenaCheckout)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_HeapVectorBaseline(benchmark::State& state) {
  // What the hot loops used to do: a fresh value-initialized vector per use.
  const std::size_t elems = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<double> v(elems);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapVectorBaseline)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_EnsureWarm(benchmark::State& state) {
  // The steady-state fast path: every ensure() after the first is a
  // capacity check.
  WorkspaceArena::Handle<double> h;
  h.ensure(1 << 16);
  for (auto _ : state) {
    h.ensure(1 << 16);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsureWarm);

}  // namespace

int main(int argc, char** argv) {
  write_footprint_report();
  return psdns::bench::run_benchmarks_with_report(argc, argv, "micro_arena");
}
