// Regenerates the Sec. 5.3 strong-scaling aside: the 18432^3 problem with
// 6 tasks/node on 1536 vs 3072 nodes (paper: 48.7 s -> 25.4 s, 95.7%).

#include <cstdio>

#include "model/memory.hpp"
#include "model/scaling.hpp"
#include "obs/bench_report.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"

int main() {
  using namespace psdns;
  const pipeline::DnsStepModel model;
  const model::MemoryModel mm;

  pipeline::PipelineConfig cfg;
  cfg.n = 18432;
  cfg.mpi = pipeline::MpiConfig::A;

  cfg.nodes = 1536;
  cfg.pencils = mm.pencils_needed(18432, 1536);
  const double t1536 = model.simulate_gpu_step(cfg).seconds;

  cfg.nodes = 3072;
  cfg.pencils = mm.pencils_needed(18432, 3072);
  const double t3072 = model.simulate_gpu_step(cfg).seconds;

  std::printf("Strong scaling of 18432^3, 6 tasks/node (Sec. 5.3):\n\n");
  std::printf("  1536 nodes (np=%d): %s   (paper: 48.7 s)\n",
              mm.pencils_needed(18432, 1536),
              util::format_time(t1536).c_str());
  std::printf("  3072 nodes (np=%d): %s   (paper: 25.4 s)\n",
              mm.pencils_needed(18432, 3072),
              util::format_time(t3072).c_str());
  std::printf("  strong scaling: %.1f%%   (paper: 95.7%%)\n",
              model::strong_scaling_percent(1536, t1536, 3072, t3072));

  obs::BenchReport report("strong_scaling_18432");
  report.meta("description",
              "18432^3 strong scaling, 1536 vs 3072 nodes (Sec. 5.3)");
  report.metric("step_seconds.1536n", t1536);
  report.metric("step_seconds.3072n", t3072);
  report.metric("strong_scaling_pct",
                model::strong_scaling_percent(1536, t1536, 3072, t3072));
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
