// Regenerates Table 1: node counts, memory occupancy per node, pencils per
// slab, and pencil sizes for the four weak-scaled problem sizes (Sec. 3.5).

#include <cstdio>

#include "model/memory.hpp"
#include "model/paper.hpp"
#include "obs/bench_report.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  const model::MemoryModel mm;

  std::printf("Table 1: problem sizes, memory occupancy and pencil counts\n");
  std::printf("(model | paper)\n\n");

  obs::BenchReport report("table1_memory_model");
  report.meta("description",
              "memory occupancy and pencil sizes for Table 1 problem sizes");

  util::Table t({"# Nodes", "Problem size", "Mem. occ. per node (GiB)",
                 "No. of pencils", "Size of pencil (GiB)"});
  const double paper_mem[] = {202.5, 202.5, 202.5, 227.8};
  const double paper_pencil[] = {2.25, 2.25, 2.25, 1.90};
  const auto rows = model::table1(mm);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const std::string key =
        std::to_string(r.n) + "_" + std::to_string(r.nodes) + "n";
    report.metric("mem_per_node_gib." + key, r.mem_per_node_gib);
    report.metric("pencils." + key, static_cast<double>(r.pencils));
    report.metric("pencil_gib." + key, r.pencil_gib);
    t.add_row({std::to_string(r.nodes), util::format_problem(r.n),
               util::format_fixed(r.mem_per_node_gib, 1) + " | " +
                   util::format_fixed(paper_mem[i], 1),
               std::to_string(r.pencils) + " | " +
                   std::to_string(model::paper::kCases[i].pencils),
               util::format_fixed(r.pencil_gib, 2) + " | " +
                   util::format_fixed(paper_pencil[i], 2)});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Sec. 3.5 derivations for the 18432^3 target:\n");
  std::printf("  min node estimate (D=25, 448 GiB usable): %.0f (paper: 1302)\n",
              mm.min_nodes_estimate(18432));
  std::printf("  smallest valid node count (divisor of N): %d (paper: 1536)\n",
              mm.min_nodes(18432));
  std::printf("  nominal pencils on 3072 nodes: %.2f (paper: 2.13)\n",
              mm.pencils_needed_estimate(18432, 3072));
  std::printf("  pencils used in practice: %d (paper: 4)\n",
              mm.pencils_needed(18432, 3072));
  report.metric("min_nodes_estimate.18432", mm.min_nodes_estimate(18432));
  report.metric("min_nodes.18432", static_cast<double>(mm.min_nodes(18432)));
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
