// Fig. 4 / Fig. 10 companion: how much of the achievable compute/traffic
// overlap the batched asynchronous schedule realizes, per weak-scaled case
// and per pencil-pipeline depth, against the synchronous ablation
// (async=false, the Sec. 3.3 structure). Config A (1 GPU per rank) is used
// so per-rank overlap attribution is exact. All numbers come from the
// deterministic co-simulation, so they are machine-independent and gate
// cleanly in CI via psdns_perfdiff.

#include <cstdio>

#include "model/paper.hpp"
#include "obs/bench_report.hpp"
#include "obs/critical_path.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace psdns;

pipeline::PipelineConfig base_config(std::int64_t n, int nodes, int np,
                                     bool async) {
  pipeline::PipelineConfig cfg;
  cfg.n = n;
  cfg.nodes = nodes;
  cfg.pencils = np;
  cfg.pencils_per_a2a = 1;
  cfg.mpi = pipeline::MpiConfig::A;
  cfg.async = async;
  // The serialized ablation must serialize the unpack too: the zero-copy
  // kernel runs on its own stream by design and would otherwise still
  // overlap compute.
  if (!async) cfg.unpack_method = gpu::CopyMethod::Memcpy2DAsync;
  return cfg;
}

}  // namespace

int main() {
  const pipeline::DnsStepModel model;

  std::printf(
      "Overlap efficiency of one RK2 step (config A, 1 pencil per A2A):\n"
      "achieved overlap of compute with transfers+MPI over the achievable\n"
      "overlap, async schedule vs the fully serialized ablation.\n\n");

  obs::BenchReport report("overlap");
  report.meta("description",
              "overlap efficiency of the batched async schedule vs the "
              "synchronous ablation (deterministic co-simulation)");

  util::Table cases({"Nodes", "Problem", "np", "Async eff", "Sync eff",
                     "Hidden s", "Exposed s", "Critpath comm s"});
  for (const auto& c : model::paper::kCases) {
    const auto async = model.simulate_gpu_step(
        base_config(c.n, c.nodes, c.pencils, true));
    const auto sync = model.simulate_gpu_step(
        base_config(c.n, c.nodes, c.pencils, false));

    const obs::OverlapStats ov = obs::overlap_stats(async.records);
    const obs::PathAttribution at = obs::attribute_wall_time(async.records);

    const std::string key =
        std::to_string(c.n) + "_" + std::to_string(c.nodes) + "n";
    report.metric("overlap_efficiency." + key, async.overlap_efficiency);
    report.metric("sync_overlap_efficiency." + key, sync.overlap_efficiency);
    report.metric("hidden_seconds." + key, ov.hidden);
    report.metric("exposed_seconds." + key, ov.exposed);
    report.metric("critpath_comm_seconds." + key, at.comm);
    report.metric("step_seconds_async." + key, async.seconds);
    report.metric("step_seconds_sync." + key, sync.seconds);

    cases.add_row({std::to_string(c.nodes), util::format_problem(c.n),
                   std::to_string(c.pencils),
                   util::format_fixed(async.overlap_efficiency, 3),
                   util::format_fixed(sync.overlap_efficiency, 3),
                   util::format_fixed(ov.hidden, 2),
                   util::format_fixed(ov.exposed, 2),
                   util::format_fixed(at.comm, 2)});
  }
  std::printf("%s\n", cases.to_string().c_str());

  // Pencil-depth ramp: the pipeline can only hide what it has queued, so
  // efficiency follows (np-1)/np - the first pencil of each pass is exposed.
  util::Table ramp({"np", "Async eff", "Sync eff", "Async step s",
                    "Sync step s"});
  for (int np : {2, 4, 8, 16}) {
    const auto async =
        model.simulate_gpu_step(base_config(3072, 16, np, true));
    const auto sync =
        model.simulate_gpu_step(base_config(3072, 16, np, false));
    report.metric("ramp_overlap_efficiency.np" + std::to_string(np),
                  async.overlap_efficiency);
    report.metric("ramp_sync_overlap_efficiency.np" + std::to_string(np),
                  sync.overlap_efficiency);
    ramp.add_row({std::to_string(np),
                  util::format_fixed(async.overlap_efficiency, 3),
                  util::format_fixed(sync.overlap_efficiency, 3),
                  util::format_fixed(async.seconds, 2),
                  util::format_fixed(sync.seconds, 2)});
  }
  std::printf("%s\n", ramp.to_string().c_str());
  std::printf(
      "Shapes reproduced: the serialized ablation hides nothing (eff = 0);\n"
      "the batched schedule's efficiency follows the pipeline ramp\n"
      "(np-1)/np - deeper pencil pipelines hide more, approaching 1.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
