// Regenerates Fig. 7: time to move 216 MB of strided data between pinned
// host memory and one GPU as a function of the contiguous chunk size, for
// the three copy implementations of Sec. 4.2.

#include <cstdio>

#include "gpu/cost_model.hpp"
#include "obs/bench_report.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  using gpu::CopyMethod;
  const gpu::CostModel costs;
  const double total = 216e6;

  obs::BenchReport report("fig7_strided_copy");
  report.meta("description",
              "strided copy time of 216 MB vs contiguous chunk size");

  std::printf(
      "Fig. 7: strided copy of 216 MB total, time vs contiguous chunk size\n"
      "(one V100's NVLink share; smaller chunks = more chunks).\n\n");

  util::Table t({"Chunk size", "# chunks", "many cudaMemcpyAsync",
                 "cudaMemcpy2DAsync", "zero-copy kernel (16 blocks)"});
  for (double chunk = 2.2e3; chunk <= 28e6; chunk *= 4.0) {
    const std::string key =
        std::to_string(static_cast<long long>(chunk)) + "B";
    report.metric(
        "many_memcpy_seconds." + key,
        costs.strided_copy_time(CopyMethod::ManyMemcpyAsync, total, chunk));
    report.metric(
        "memcpy2d_seconds." + key,
        costs.strided_copy_time(CopyMethod::Memcpy2DAsync, total, chunk));
    report.metric(
        "zerocopy_seconds." + key,
        costs.strided_copy_time(CopyMethod::ZeroCopy, total, chunk, 16));
    t.add_row(
        {util::format_bytes(chunk),
         std::to_string(static_cast<long long>(total / chunk)),
         util::format_time(
             costs.strided_copy_time(CopyMethod::ManyMemcpyAsync, total,
                                     chunk)),
         util::format_time(
             costs.strided_copy_time(CopyMethod::Memcpy2DAsync, total, chunk)),
         util::format_time(
             costs.strided_copy_time(CopyMethod::ZeroCopy, total, chunk, 16))});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double dns_chunk = 18.4e3;
  std::printf(
      "At the 18432^3 DNS chunk size (%s: 4608 x 4 B contiguous extent):\n",
      util::format_bytes(dns_chunk).c_str());
  std::printf("  many cudaMemcpyAsync: %s\n",
              util::format_time(costs.strided_copy_time(
                  CopyMethod::ManyMemcpyAsync, total, dns_chunk)).c_str());
  std::printf("  cudaMemcpy2DAsync:    %s\n",
              util::format_time(costs.strided_copy_time(
                  CopyMethod::Memcpy2DAsync, total, dns_chunk)).c_str());
  std::printf("  zero-copy kernel:     %s\n",
              util::format_time(costs.strided_copy_time(
                  CopyMethod::ZeroCopy, total, dns_chunk, 16)).c_str());
  std::printf(
      "\nShapes reproduced: per-chunk memcpyAsync is orders of magnitude\n"
      "slower below ~100 KB chunks; zero-copy and memcpy2D are comparable;\n"
      "finer granularity never helps.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
