// Regenerates Table 2: effective per-node bandwidth of the standalone
// blocking all-to-all kernel for configurations A/B/C at the four node
// counts (Sec. 4.1, Eq. 3). P2P message sizes are for 3 variables.

#include <cstdio>

#include "model/geometry.hpp"
#include "model/paper.hpp"
#include "net/alltoall_model.hpp"
#include "obs/bench_report.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  const net::AlltoallModel a2a;
  constexpr double kMiB = 1024.0 * 1024.0;

  std::printf(
      "Table 2: effective all-to-all bandwidth per node (Eq. 3)\n"
      "A: 6 tasks/node, 1 pencil/A2A; B: 2 tasks/node, 1 pencil/A2A;\n"
      "C: 2 tasks/node, 1 slab/A2A. BW cells: model | paper, GB/s.\n\n");

  obs::BenchReport report("table2_a2a_bandwidth");
  report.meta("description",
              "effective all-to-all bandwidth per node, configs A/B/C");

  util::Table t({"Nodes", "A: P2P (MiB)", "A: BW", "B: P2P (MiB)", "B: BW",
                 "C: P2P (MiB)", "C: BW"});
  for (const auto& row : model::paper::kTable2) {
    const auto* c = model::paper::kCases;
    while (c->nodes != row.nodes) ++c;
    model::ProblemConfig a{.n = c->n,
                           .nodes = c->nodes,
                           .tasks_per_node = 6,
                           .pencils = c->pencils,
                           .variables = 3};
    model::ProblemConfig b = a;
    b.tasks_per_node = 2;

    const double p2p_a = a.p2p_bytes(1);
    const double p2p_b = b.p2p_bytes(1);
    const double p2p_c = b.p2p_bytes(c->pencils);
    const auto bw = [&](int tpn, double p2p) {
      return a2a.reported_bw_per_node(row.nodes, tpn, p2p) / 1e9;
    };
    const std::string key = std::to_string(row.nodes) + "n";
    report.metric("bw_gbps.a." + key, bw(6, p2p_a));
    report.metric("bw_gbps.b." + key, bw(2, p2p_b));
    report.metric("bw_gbps.c." + key, bw(2, p2p_c));
    t.add_row({std::to_string(row.nodes),
               util::format_fixed(p2p_a / kMiB, p2p_a < kMiB ? 3 : 1),
               util::format_fixed(bw(6, p2p_a), 1) + " | " +
                   util::format_fixed(row.bw_a, 1),
               util::format_fixed(p2p_b / kMiB, p2p_b < kMiB ? 2 : 1),
               util::format_fixed(bw(2, p2p_b), 1) + " | " +
                   util::format_fixed(row.bw_b, 1),
               util::format_fixed(p2p_c / kMiB, 2),
               util::format_fixed(bw(2, p2p_c), 1) + " | " +
                   util::format_fixed(row.bw_c, 1)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Shapes reproduced: B > A up to 1024 nodes; A edges B at 3072 (eager\n"
      "path for 53 KB messages); whole-slab messages (C) best at scale.\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
