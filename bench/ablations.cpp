// Ablation study of the design choices DESIGN.md calls out, all at the
// 12288^3 / 1024-node operating point:
//   1. pencils-per-A2A sweep (the A/B/C axis, plus intermediate Q),
//   2. pencils-per-slab sweep (GPU memory granularity vs message size),
//   3. copy-method choices (memcpy2D vs per-chunk memcpy vs zero-copy),
//   4. asynchronous scheduling vs fully serialized execution,
//   5. nonblocking-progression sensitivity.

#include <cstdio>

#include "obs/bench_report.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

using namespace psdns;

namespace {

pipeline::PipelineConfig base_config() {
  pipeline::PipelineConfig cfg;
  cfg.n = 12288;
  cfg.nodes = 1024;
  cfg.pencils = 3;
  cfg.mpi = pipeline::MpiConfig::C;
  return cfg;
}

}  // namespace

int main() {
  const pipeline::DnsStepModel model;

  std::printf("Ablations at 12288^3 on 1024 nodes (seconds per RK2 step)\n\n");

  obs::BenchReport report("ablations");
  report.meta("description",
              "design-choice ablations at the 12288^3 / 1024-node point");

  {
    std::printf("1. Pencils aggregated per all-to-all (np = 6):\n");
    util::Table t({"Q (pencils/A2A)", "Time (s)"});
    for (const int q : {1, 2, 3, 6}) {
      auto cfg = base_config();
      cfg.pencils = 6;
      cfg.pencils_per_a2a = q;
      const double tsec = model.simulate_gpu_step(cfg).seconds;
      report.metric("pencils_per_a2a." + std::to_string(q), tsec);
      t.add_row({std::to_string(q), util::format_fixed(tsec, 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    std::printf(
        "2. Pencils per slab (whole-slab A2A; more pencils = smaller GPU\n"
        "   working set but finer strided copies):\n");
    util::Table t({"np", "Pencil size", "Time (s)"});
    const double slab_bytes = 4.0 * 12288.0 * 12288.0 * 12288.0 / 2048.0;
    for (const int np : {1, 2, 3, 6, 12, 24}) {
      auto cfg = base_config();
      cfg.pencils = np;
      std::string cell;
      try {
        const double tsec = model.simulate_gpu_step(cfg).seconds;
        report.metric("pencils_per_slab." + std::to_string(np), tsec);
        cell = util::format_fixed(tsec, 2);
      } catch (const util::Error&) {
        cell = "infeasible (27 buffers exceed GPU memory)";
      }
      t.add_row({std::to_string(np), util::format_bytes(slab_bytes / np),
                 cell});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    std::printf("3. Copy-method choices (H2D/D2H strided copies):\n");
    util::Table t({"Copy method", "Time (s)"});
    for (const auto method :
         {gpu::CopyMethod::Memcpy2DAsync, gpu::CopyMethod::ManyMemcpyAsync,
          gpu::CopyMethod::ZeroCopy}) {
      auto cfg = base_config();
      cfg.copy_method = method;
      const double tsec = model.simulate_gpu_step(cfg).seconds;
      report.metric(std::string("copy_method.") + gpu::to_string(method),
                    tsec);
      t.add_row({gpu::to_string(method), util::format_fixed(tsec, 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    std::printf(
        "4. Asynchronous two-stream scheduling vs fully serialized\n"
        "   (the Sec. 3.3 -> Sec. 3.4 step):\n");
    auto cfg = base_config();
    const double async_t = model.simulate_gpu_step(cfg).seconds;
    cfg.async = false;
    const double sync_t = model.simulate_gpu_step(cfg).seconds;
    report.metric("scheduling.async_seconds", async_t);
    report.metric("scheduling.serialized_seconds", sync_t);
    std::printf("   async: %s    serialized: %s    gain: %.1f%%\n\n",
                util::format_time(async_t).c_str(),
                util::format_time(sync_t).c_str(),
                100.0 * (sync_t - async_t) / sync_t);
  }

  {
    std::printf("5. Unpack strategy (after the all-to-all):\n");
    util::Table t({"Unpack", "Time (s)"});
    for (const auto method :
         {gpu::CopyMethod::ZeroCopy, gpu::CopyMethod::Memcpy2DAsync}) {
      auto cfg = base_config();
      cfg.unpack_method = method;
      const double tsec = model.simulate_gpu_step(cfg).seconds;
      report.metric(std::string("unpack_method.") + gpu::to_string(method),
                    tsec);
      t.add_row({gpu::to_string(method), util::format_fixed(tsec, 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    std::printf("6. CUDA-aware MPI / GPU-Direct (Sec. 3.3):\n");
    auto cfg = base_config();
    const double staged = model.simulate_gpu_step(cfg).seconds;
    cfg.gpu_direct = true;
    const double direct = model.simulate_gpu_step(cfg).seconds;
    report.metric("gpu_direct.staged_seconds", staged);
    report.metric("gpu_direct.direct_seconds", direct);
    std::printf("   staged through host: %s    GPU-direct: %s (%+.1f%%)\n",
                util::format_time(staged).c_str(),
                util::format_time(direct).c_str(),
                100.0 * (direct - staged) / staged);
    std::printf("   -> 'no noticeable benefit' (the paper, Sec. 3.3): the\n"
                "      step is NIC-bound and the D2H doubles as the pack.\n\n");
  }

  {
    std::printf("7. Time scheme (Sec. 2: RK4 cost ~doubles):\n");
    auto cfg = base_config();
    const double rk2 = model.simulate_gpu_step(cfg).seconds;
    cfg.rk_substeps = 4;
    const double rk4 = model.simulate_gpu_step(cfg).seconds;
    report.metric("time_scheme.rk2_seconds", rk2);
    report.metric("time_scheme.rk4_seconds", rk4);
    std::printf("   RK2: %s    RK4: %s (ratio %.2f)\n\n",
                util::format_time(rk2).c_str(),
                util::format_time(rk4).c_str(), rk4 / rk2);
  }

  {
    std::printf("8. Passive scalars carried by the run (each adds 4\n"
                "   variable-transposes per substep):\n");
    util::Table t({"Scalars", "Time (s)", "vs. none"});
    double base = 0.0;
    for (const int m : {0, 1, 2, 4}) {
      auto cfg = base_config();
      cfg.scalars = m;
      const double tsec = model.simulate_gpu_step(cfg).seconds;
      report.metric("scalars." + std::to_string(m), tsec);
      if (m == 0) base = tsec;
      t.add_row({std::to_string(m), util::format_fixed(tsec, 2),
                 util::format_fixed(tsec / base, 2) + "x"});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  {
    std::printf(
        "9. Nonblocking-progression sensitivity (config B; 1.0 would be an\n"
        "   MPI with a perfect async progress thread):\n");
    util::Table t({"Progression factor", "Time (s)"});
    for (const double p : {1.0, 0.9, 0.8, 0.6, 0.4}) {
      net::AlltoallParams params;
      params.nonblocking_progression = p;
      const pipeline::DnsStepModel m2(hw::summit(), params);
      auto cfg = base_config();
      cfg.mpi = pipeline::MpiConfig::B;
      const double tsec = m2.simulate_gpu_step(cfg).seconds;
      report.metric("progression." + util::format_fixed(p, 1), tsec);
      t.add_row({util::format_fixed(p, 1), util::format_fixed(tsec, 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
    std::printf(
        "   With perfect progression, overlapping per-pencil messages would\n"
        "   rival the whole-slab strategy - the paper's observation that\n"
        "   async MPI 'provided good but not the best performance' (Sec. 1).\n");
  }
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
