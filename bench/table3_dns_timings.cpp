// Regenerates Table 3: elapsed wall time per RK2 step of the slab-decomposed
// DNS under the three MPI configurations, plus the synchronous pencil CPU
// baseline, with speedups relative to the CPU code.

#include <cstdio>
#include <string>
#include <vector>

#include "model/paper.hpp"
#include "obs/bench_report.hpp"
#include "pipeline/dns_step_model.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace psdns;
  using pipeline::MpiConfig;
  const pipeline::DnsStepModel model;

  std::printf(
      "Table 3: seconds per RK2 step, Summit co-simulation (model | paper)\n"
      "Speedups are vs the synchronous pencil-decomposed CPU code.\n\n");

  obs::BenchReport report("table3_dns_timings");
  report.meta("description", "seconds per RK2 step, model vs paper Table 3");

  util::Table t({"Nodes", "Problem", "Sync CPU", "A: 6 t/n 1 pencil",
                 "B: 2 t/n 1 pencil", "C: 2 t/n 1 slab", "Best speedup"});
  for (std::size_t i = 0; i < std::size(model::paper::kTable3); ++i) {
    const auto& row = model::paper::kTable3[i];
    const auto& c = model::paper::kCases[i];
    const double cpu = model.cpu_step_seconds(row.n, row.nodes);

    double best = 1e300;
    double cell[3];
    const double paper_cell[3] = {row.gpu_a, row.gpu_b, row.gpu_c};
    const char* config_key[3] = {"a", "b", "c"};
    const std::string case_key =
        std::to_string(row.n) + "_" + std::to_string(row.nodes) + "n";
    for (int mc = 0; mc < 3; ++mc) {
      pipeline::PipelineConfig cfg;
      cfg.n = c.n;
      cfg.nodes = c.nodes;
      cfg.pencils = c.pencils;
      cfg.mpi = static_cast<MpiConfig>(mc);
      cell[mc] = model.simulate_gpu_step(cfg).seconds;
      best = std::min(best, cell[mc]);
      report.metric("step_seconds." + case_key + "." + config_key[mc],
                    cell[mc]);
    }
    report.metric("cpu_step_seconds." + case_key, cpu);
    report.metric("best_speedup." + case_key, cpu / best);
    auto fmt = [&](int mc) {
      return util::format_fixed(cell[mc], 2) + " | " +
             util::format_fixed(paper_cell[mc], 2);
    };
    t.add_row({std::to_string(row.nodes), util::format_problem(row.n),
               util::format_fixed(cpu, 2) + " | " +
                   util::format_fixed(row.cpu_sync, 2),
               fmt(0), fmt(1), fmt(2),
               util::format_fixed(cpu / best, 1) + "x"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-equation-system step cost under production config C. Each system
  // changes only the transpose traffic: rotation folds the Coriolis term
  // into the integrating factor (no extra variables), Boussinesq carries
  // the buoyancy scalar (1 inverse + 3 forward flux transposes), and MHD
  // carries 3 magnetic components and forms 9 Elsasser products instead of
  // the 6 symmetric velocity products (3 extra forward transposes).
  struct SystemCost {
    const char* name;
    int extra_fields;
    int extra_products;
  };
  constexpr SystemCost kSystems[] = {
      {"navier_stokes", 0, 0},
      {"rotating", 0, 0},
      {"boussinesq", 1, 3},
      {"mhd", 3, 3},
  };
  std::printf(
      "Seconds per RK2 step by equation system (config C: 2 t/n, 1 slab)\n\n");
  util::Table ts({"Nodes", "Problem", "navier_stokes", "rotating",
                  "boussinesq", "mhd"});
  for (std::size_t i = 0; i < std::size(model::paper::kTable3); ++i) {
    const auto& row = model::paper::kTable3[i];
    const auto& c = model::paper::kCases[i];
    const std::string case_key =
        std::to_string(row.n) + "_" + std::to_string(row.nodes) + "n";
    std::vector<std::string> cells = {std::to_string(row.nodes),
                                      util::format_problem(row.n)};
    for (const SystemCost& sys : kSystems) {
      pipeline::PipelineConfig cfg;
      cfg.n = c.n;
      cfg.nodes = c.nodes;
      cfg.pencils = c.pencils;
      cfg.mpi = MpiConfig::C;
      cfg.extra_fields = sys.extra_fields;
      cfg.extra_products = sys.extra_products;
      const double secs = model.simulate_gpu_step(cfg).seconds;
      report.metric(
          "system_step_seconds." + case_key + "." + sys.name, secs);
      cells.push_back(util::format_fixed(secs, 2));
    }
    ts.add_row(cells);
  }
  std::printf("%s\n", ts.to_string().c_str());
  std::printf(
      "Shapes reproduced: GPU speedup of order 3-5x; B fastest at 16 nodes;\n"
      "whole-slab messages (C) fastest beyond 16 nodes; speedup shrinks at\n"
      "the 18432^3 stretch size as communication dominates. Known deviation:\n"
      "config A at 1024 nodes (see EXPERIMENTS.md).\n");
  std::printf("wrote %s\n", report.write().c_str());
  return 0;
}
