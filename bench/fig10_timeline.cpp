// Regenerates Fig. 10: normalized operation timelines of the 12288^3
// problem on 1024 nodes (np = 3 pencils per slab) under the different code
// configurations, rendered as text Gantt lanes per op category.

#include <cstdio>

#include "obs/bench_report.hpp"
#include "obs/trace_export.hpp"
#include "pipeline/dns_step_model.hpp"
#include "pipeline/timeline.hpp"
#include "util/format.hpp"

int main() {
  using namespace psdns;
  using pipeline::MpiConfig;
  const pipeline::DnsStepModel model;

  std::printf(
      "Fig. 10: timelines of one RK2 step, 12288^3 on 1024 nodes, 3 pencils\n"
      "per slab. '#' marks wall-clock intervals with at least one op of the\n"
      "category active.\n\n");

  // A common horizontal scale (the slowest configuration) makes the
  // relative lengths comparable, like the paper's aligned plots.
  pipeline::PipelineConfig base;
  base.n = 12288;
  base.nodes = 1024;
  base.pencils = 3;

  struct Variant {
    const char* title;
    MpiConfig mpi;
  };
  const Variant variants[] = {
      {"DNS, 2 tasks/node, 1 pencil/A2A (async MPI overlap)", MpiConfig::B},
      {"DNS, 2 tasks/node, 1 slab/A2A (wait for whole slab)", MpiConfig::C},
      {"DNS, 6 tasks/node, 1 pencil/A2A", MpiConfig::A},
  };

  double t_max = 0.0;
  std::vector<pipeline::StepResult> results;
  for (const auto& v : variants) {
    auto cfg = base;
    cfg.mpi = v.mpi;
    results.push_back(model.simulate_gpu_step(cfg));
    t_max = std::max(t_max, results.back().seconds);
  }

  // The standalone MPI-only row (top timeline of the paper's figure).
  auto mpi_cfg = base;
  mpi_cfg.mpi = MpiConfig::B;
  std::printf("MPI-only code (same all-to-alls, nothing else): %s\n\n",
              util::format_time(model.mpi_only_step_seconds(mpi_cfg)).c_str());

  obs::BenchReport report("fig10_timeline");
  report.meta("description",
              "per-category busy times of one RK2 step, 12288^3 / 1024 nodes");
  const char* variant_key[] = {"b_async_pencil", "c_slab", "a_6tasks"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%s  [step: %s]\n", variants[i].title,
                util::format_time(results[i].seconds).c_str());
    std::printf("%s", pipeline::render_timeline(results[i].records, t_max)
                          .c_str());
    std::printf("%s\n",
                pipeline::summarize_busy(results[i].records,
                                         results[i].seconds)
                    .c_str());
    const std::string key = variant_key[i];
    report.metric("step_seconds." + key, results[i].seconds);
    report.metric("mpi_busy_seconds." + key, results[i].mpi_busy);
    report.metric("transfer_busy_seconds." + key, results[i].transfer_busy);
    report.metric("compute_busy_seconds." + key, results[i].compute_busy);
  }

  // The same records, interactively: one Chrome trace per variant,
  // loadable in Perfetto / chrome://tracing (see README "Observability").
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string path = obs::bench_output_path(
        std::string("fig10_trace_") + variant_key[i] + ".json");
    obs::write_text_file(path,
                         obs::to_chrome_trace(results[i].records));
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("wrote %s\n", report.write().c_str());

  std::printf(
      "Takeaways reproduced (Sec. 5.2): MPI (red in the paper) dominates\n"
      "the runtime; one large message transposes the same data faster than\n"
      "overlapped per-pencil messages; 6 tasks/node stretches both the MPI\n"
      "and the finer-granularity packing copies.\n");
  return 0;
}
