// Host micro-benchmarks of the functional FFT library (google-benchmark):
// the kernels that actually run in the laptop-scale validation path.

#include <benchmark/benchmark.h>

#include <vector>

#include "fft/fft3d.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "gbench_main.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using psdns::fft::BatchLayout;
using psdns::fft::Complex;
using psdns::fft::Direction;
using psdns::fft::Real;

void BM_C2C(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(1);
  std::vector<Complex> x(n), y(n);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    plan->transform(Direction::Forward, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_C2C)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(18432);

void BM_C2C_NonPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(2);
  std::vector<Complex> x(n), y(n);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    plan->transform(Direction::Forward, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_C2C_NonPow2)->Arg(3 * 81)->Arg(5 * 243)->Arg(97);

void BM_R2C(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = psdns::fft::get_plan_r2c(n);
  psdns::util::Rng rng(3);
  std::vector<Real> x(n);
  std::vector<Complex> y(n / 2 + 1);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    plan->forward(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_R2C)->Arg(64)->Arg(1024)->Arg(18432);

void BM_Strided(benchmark::State& state) {
  // The y-direction line shape of a pencil: stride = pencil width.
  const std::size_t n = 256, stride = 64;
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(4);
  std::vector<Complex> x(n * stride);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    plan->transform_strided(Direction::Forward, x.data(),
                            static_cast<std::ptrdiff_t>(stride), x.data(),
                            static_cast<std::ptrdiff_t>(stride));
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_Strided);

// Per-line vs. batched transforms of the same plane of lines: n lines of
// length n at stride n (dist 1), the z-line layout of an n x n plane. The
// ratio of these two benches is the win of the blocked-gather Stockham path
// over gather/recurse/scatter per line.
void BM_PerLineStrided(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(6);
  std::vector<Complex> x(n * n);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  for (auto _ : state) {
    for (std::size_t b = 0; b < n; ++b) {
      plan->transform_strided(Direction::Forward, x.data() + b,
                              static_cast<std::ptrdiff_t>(n), x.data() + b,
                              static_cast<std::ptrdiff_t>(n));
    }
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_PerLineStrided)->Arg(64)->Arg(256)->Arg(1024);

void BM_BatchedLines(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(6);
  std::vector<Complex> x(n * n);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  const BatchLayout layout{.count = n, .stride = n, .dist = 1};
  for (auto _ : state) {
    plan->transform_batch(Direction::Forward, x.data(), x.data(), layout);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_BatchedLines)->Arg(64)->Arg(256)->Arg(1024);

// Worker-pool scaling of the batched path: same plane of lines as
// BM_BatchedLines, swept over pool widths. The pool is resized outside the
// timing loop and restored afterwards so the other benches keep running at
// the PSDNS_THREADS-configured width.
void BM_BatchedLinesThreads(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto& pool = psdns::util::ThreadPool::global();
  const int prev = pool.threads();
  pool.set_threads(threads);
  const auto plan = psdns::fft::get_plan(n);
  psdns::util::Rng rng(6);
  std::vector<Complex> x(n * n);
  for (auto& c : x) c = Complex{rng.gaussian(), rng.gaussian()};
  const BatchLayout layout{.count = n, .stride = n, .dist = 1};
  for (auto _ : state) {
    plan->transform_batch(Direction::Forward, x.data(), x.data(), layout);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
  pool.set_threads(prev);
}
BENCHMARK(BM_BatchedLinesThreads)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4});

void BM_Fft3dR2C(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  psdns::fft::Shape3 shape{n, n, n};
  psdns::util::Rng rng(5);
  std::vector<Real> x(shape.volume());
  std::vector<Complex> y((n / 2 + 1) * n * n);
  for (auto& v : x) v = rng.gaussian();
  for (auto _ : state) {
    psdns::fft::fft3d_r2c(shape, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shape.volume()));
}
BENCHMARK(BM_Fft3dR2C)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return psdns::bench::run_benchmarks_with_report(argc, argv, "micro_fft",
                                                  /*input_seed=*/1);
}
