#include "hw/summit.hpp"

namespace psdns::hw {

MachineSpec summit() { return MachineSpec{}; }

}  // namespace psdns::hw
