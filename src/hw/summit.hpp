#pragma once
// Hardware description of the target system (IBM AC922 "Summit" nodes, as in
// Sec. 3.2 of the paper) plus calibrated effective-throughput constants.
//
// Peak numbers are taken straight from the paper and the cited IBM/OLCF
// documentation. "Effective" numbers (FFT efficiency, per-API-call
// overheads) are calibration constants chosen so that the discrete-event
// model reproduces the shapes of the paper's measurements; each constant
// says which experiment pins it down.

#include <cstdint>

namespace psdns::hw {

/// NVIDIA V100 (SXM2, 16 GB) as installed in Summit.
struct GpuSpec {
  int sms = 80;                    // streaming multiprocessors
  double hbm_bytes = 16e9;         // 16 GB HBM2
  double hbm_bw = 900e9;           // B/s
  double fp32_tflops = 15.7;       // peak single-precision
  double fft_efficiency = 0.18;    // sustained cuFFT fraction of peak
                                   //   (calibrated: Table 3 GPU compute share)
  int copy_engines = 2;            // independent DMA engines
  double copy_row_setup = 60e-9;   // s per strided row moved by a copy engine
                                   //   (calibrated: Fig. 7 memcpy2D curve)
  double zero_copy_block_bw = 10e9;  // B/s one thread block sustains over
                                     //   NVLink (calibrated: Fig. 8 ramp)
};

/// One Summit node: dual-socket POWER9 + 6 V100.
struct NodeSpec {
  int sockets = 2;
  int cores_per_socket = 22;
  int gpus_per_socket = 3;
  double host_mem_bytes = 512e9;    // DDR4 per node
  double usable_host_mem = 448e9;   // after ~64 GB OS footprint (Sec. 3.5)
  double host_mem_bw_per_socket = 135e9;  // peak unidirectional (Sec. 3.2)
  double nvlink_bw_per_socket = 150e9;    // CPU<->GPU aggregate per socket
  double nic_bw_per_socket = 12.5e9;      // per-socket share of the dual-rail
  double node_injection_bw = 23e9;        // EDR IB node injection (Sec. 4.1)
  GpuSpec gpu;

  int gpus() const { return sockets * gpus_per_socket; }
  int cores() const { return sockets * cores_per_socket; }
  double gpu_mem_total() const { return gpus() * gpu.hbm_bytes; }
  double host_mem_bw() const { return sockets * host_mem_bw_per_socket; }
};

/// Per-call software overheads of the CUDA/MPI runtime paths the algorithm
/// exercises. These drive Fig. 7 (strided copies) and the latency terms of
/// the all-to-all model.
struct ApiCosts {
  double memcpy_async_call = 7e-6;    // s per cudaMemcpyAsync call (host API
                                      //   issue cost; Fig. 7 "many memcpy")
  double memcpy2d_call = 10e-6;       // s per cudaMemcpy2DAsync call
  double kernel_launch = 6e-6;        // s per kernel launch
  double event_overhead = 1.5e-6;     // s per cudaEventRecord/Synchronize
  double mpi_call_overhead = 15e-6;   // s per collective invocation
};

/// Effective CPU throughput used by the synchronous pencil baseline (the
/// code of Yeung et al. 2015, run on the same nodes).
struct CpuSpec {
  double fft_gflops_per_core = 10.0;  // sustained single-precision SIMD FFT
                                      //   throughput (calibrated: Table 3
                                      //   sync CPU rows)
  double pointwise_bw_per_core = 6e9; // B/s streaming nonlinear products
  double pack_bw_per_core = 5e9;      // B/s strided pack/unpack on host
};

/// Complete machine model.
struct MachineSpec {
  NodeSpec node;
  ApiCosts api;
  CpuSpec cpu;
  int total_nodes = 4608;  // full Summit

  /// Effective GPU FFT throughput in FLOP/s (per GPU).
  double gpu_fft_flops() const {
    return node.gpu.fp32_tflops * 1e12 * node.gpu.fft_efficiency;
  }
};

/// The default calibrated Summit description used by all benches.
MachineSpec summit();

}  // namespace psdns::hw
