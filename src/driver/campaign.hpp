#pragma once
// The production main loop: initialize (or restart), advance with
// CFL-adaptive steps, emit periodic diagnostics and checkpoints, stop at a
// step or simulated-time budget. This is the glue every long-running DNS
// campaign wraps around the solver - declared here so examples and tests
// exercise the same code path production would.
//
// Two entry points:
//   run_campaign            - one segment; any failure propagates.
//   run_campaign_supervised - the self-recovering wrapper: a failed segment
//     is caught on every rank, the checkpoint chain is rolled back to the
//     newest file that passes verification, and the segment is replayed
//     from there. Because stepping and restart are deterministic, the
//     recovered run reaches the same final state as a fault-free one.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "io/series.hpp"
#include "obs/health.hpp"
#include "obs/reduce.hpp"
#include "util/config.hpp"

namespace psdns::driver {

struct CampaignConfig {
  dns::SolverConfig solver;
  // Initial condition (used when no restart checkpoint exists).
  std::uint64_t seed = 1;
  double k_peak = 3.0;
  double energy = 0.5;
  double b0 = 0.0;  // MHD: uniform mean field along z (Alfven units)
  // Stepping.
  std::int64_t max_steps = 100;
  double max_time = 1e30;       // stop at whichever budget hits first
  double cfl = 0.5;
  double max_dt = 0.02;
  // Cadences (steps; 0 disables).
  int diagnostics_every = 10;
  int checkpoint_every = 0;
  // Paths (empty disables the artifact).
  std::string checkpoint_path;  // also the restart source if it exists
  std::string series_path;
  std::string spectrum_path;    // written once at the end
  // Resilience knobs.
  int checkpoint_keep = 2;      // rotation depth (io::CheckpointOptions)
  int io_retries = 3;           // write-transaction retry budget
  // Telemetry plane (env wins over these: PSDNS_METRICS_PORT,
  // PSDNS_SERIES_FILE, PSDNS_HEALTH).
  int metrics_port = -1;        // -1 off, 0 ephemeral, >0 fixed (rank 0)
  std::string telemetry_path;   // reduced-snapshot JSONL (rank 0)
  obs::HealthConfig health;     // per-step invariant thresholds + mode
  // Whether run completion writes PSDNS_TRACE_FILE. An embedding process
  // that runs many campaigns in one trace (the campaign service) turns
  // this off and writes once, at its own end of life.
  bool write_trace_at_end = true;
  // Set by run_campaign_supervised so replayed segments report the
  // rollback count to the health monitor; not a config-file key.
  int recoveries_so_far = 0;

  /// Parses the "key = value" schema (n, viscosity, scheme, system,
  /// rotation_omega, brunt_vaisala, resistivity, b0, forcing.*, scalar.*,
  /// steps, cfl, checkpoint_keep, io_retries, ... - see
  /// driver/campaign.cpp). Throws on unknown keys.
  static CampaignConfig from(const util::Config& file);
};

/// Per-step observer (rank 0 only): step count, time, diagnostics.
using CampaignObserver =
    std::function<void(std::int64_t, double, const dns::Diagnostics&)>;

struct CampaignResult {
  std::int64_t steps_run = 0;  // steps executed in completed segments
  double final_time = 0.0;
  dns::Diagnostics final_diagnostics;
  std::vector<double> final_spectrum;  // shell spectrum of the final state
  bool restarted = false;  // resumed from an existing checkpoint
  // Supervisor bookkeeping (0 for plain run_campaign).
  int recoveries = 0;              // failed segments rolled back and replayed
  int checkpoints_discarded = 0;   // corrupt checkpoints dropped on rollback
  // Telemetry plane (rank 0; empty/0 when the plane was off).
  int metrics_port = 0;            // bound live-endpoint port
  obs::HealthReport health;        // final monitor state
  std::vector<obs::ReducedSnapshot> telemetry;  // ring of reduced rows
};

/// Runs one campaign segment on the calling rank group. Collective.
/// If cfg.checkpoint_path exists, the run resumes from it; otherwise the
/// isotropic initial condition is generated. The observer (optional) fires
/// on rank 0 at the diagnostics cadence.
CampaignResult run_campaign(comm::Communicator& comm,
                            const CampaignConfig& cfg,
                            const CampaignObserver& observer = nullptr);

struct SupervisorConfig {
  /// Failed segments tolerated before the last error is rethrown.
  int max_recoveries = 5;
};

/// Self-recovering campaign: like run_campaign, but a failing segment
/// (thrown fault, corrupt checkpoint, IO error) is caught collectively,
/// the checkpoint chain is rolled back to the newest verifiable file
/// (falling back to the initial condition when none survives), and the
/// remaining steps are replayed. The step budget is absolute: the
/// supervised campaign finishes at start_step + cfg.max_steps regardless
/// of how many recoveries happened. Recovery counts are surfaced in the
/// result and in the `resilience.recoveries` / `ckpt.discarded` counters.
///
/// Relies on faults striking every rank at the same logical point (see
/// resilience/fault.hpp) or being agreed collectively (checkpoint IO), so
/// all ranks unwind together and the group can synchronize for rollback.
CampaignResult run_campaign_supervised(comm::Communicator& comm,
                                       const CampaignConfig& cfg,
                                       const SupervisorConfig& sup = {},
                                       const CampaignObserver& observer =
                                           nullptr);

}  // namespace psdns::driver
