#include "driver/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <numbers>

#include "io/checkpoint.hpp"
#include "obs/exposition.hpp"
#include "obs/log.hpp"
#include "obs/metric_series.hpp"
#include "obs/metrics_server.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace psdns::driver {

CampaignConfig CampaignConfig::from(const util::Config& file) {
  CampaignConfig cfg;
  cfg.solver.n = static_cast<std::size_t>(file.get_int("n", 32));
  cfg.solver.viscosity = file.get_double("viscosity", 0.01);
  const std::string scheme = file.get("scheme", "rk2");
  PSDNS_REQUIRE(scheme == "rk2" || scheme == "rk4",
                "scheme must be rk2 or rk4");
  cfg.solver.scheme =
      scheme == "rk4" ? dns::TimeScheme::RK4 : dns::TimeScheme::RK2;
  cfg.solver.phase_shift_dealias = file.get_bool("phase_shift", false);
  cfg.solver.system =
      dns::parse_system_type(file.get("system", "navier_stokes"));
  cfg.solver.rotation_omega =
      file.get_double("rotation_omega", cfg.solver.rotation_omega);
  cfg.solver.brunt_vaisala =
      file.get_double("brunt_vaisala", cfg.solver.brunt_vaisala);
  cfg.solver.resistivity =
      file.get_double("resistivity", cfg.solver.resistivity);
  cfg.solver.pencils = static_cast<int>(file.get_int("pencils", 1));
  cfg.solver.pencils_per_a2a =
      static_cast<int>(file.get_int("pencils_per_a2a", 1));
  cfg.solver.forcing.enabled = file.get_bool("forcing.enabled", false);
  cfg.solver.forcing.klo = static_cast<int>(file.get_int("forcing.klo", 1));
  cfg.solver.forcing.khi = static_cast<int>(file.get_int("forcing.khi", 2));
  cfg.solver.forcing.power = file.get_double("forcing.power", 0.1);
  // Reject physically meaningless bands here, at parse time on every rank,
  // rather than letting the engine throw mid-construction.
  dns::validate_forcing(cfg.solver.forcing);

  const auto nscalars = file.get_int("scalars", 0);
  PSDNS_REQUIRE(nscalars >= 0, "negative scalar count");
  for (std::int64_t s = 0; s < nscalars; ++s) {
    const std::string prefix = "scalar" + std::to_string(s) + ".";
    dns::ScalarConfig sc;
    sc.schmidt = file.get_double(prefix + "schmidt", 1.0);
    sc.mean_gradient = file.get_double(prefix + "mean_gradient", 0.0);
    cfg.solver.scalars.push_back(sc);
  }

  cfg.seed = static_cast<std::uint64_t>(file.get_int("seed", 1));
  cfg.k_peak = file.get_double("k_peak", 3.0);
  cfg.energy = file.get_double("energy", 0.5);
  cfg.b0 = file.get_double("b0", 0.0);
  cfg.max_steps = file.get_int("steps", 100);
  cfg.max_time = file.get_double("max_time", 1e30);
  cfg.cfl = file.get_double("cfl", 0.5);
  cfg.max_dt = file.get_double("max_dt", 0.02);
  cfg.diagnostics_every =
      static_cast<int>(file.get_int("diagnostics_every", 10));
  cfg.checkpoint_every =
      static_cast<int>(file.get_int("checkpoint_every", 0));
  cfg.checkpoint_path = file.get("checkpoint_path", "");
  cfg.series_path = file.get("series_path", "");
  cfg.spectrum_path = file.get("spectrum_path", "");
  cfg.checkpoint_keep =
      static_cast<int>(file.get_int("checkpoint_keep", 2));
  cfg.io_retries = static_cast<int>(file.get_int("io_retries", 3));
  PSDNS_REQUIRE(cfg.checkpoint_keep >= 1, "checkpoint_keep must be >= 1");
  PSDNS_REQUIRE(cfg.io_retries >= 1, "io_retries must be >= 1");

  cfg.metrics_port = static_cast<int>(file.get_int("metrics_port", -1));
  PSDNS_REQUIRE(cfg.metrics_port >= -1 && cfg.metrics_port <= 65535,
                "metrics_port must be -1 (off) or in [0, 65535]");
  cfg.telemetry_path = file.get("telemetry_series", "");
  const std::string health_mode = file.get("health", "");
  if (!health_mode.empty()) {
    cfg.health.mode = obs::parse_health_mode(health_mode);
  }
  cfg.health.energy_drift_tol = file.get_double(
      "health.energy_drift_tol", cfg.health.energy_drift_tol);
  cfg.health.cfl_max = file.get_double("health.cfl_max", cfg.health.cfl_max);
  cfg.health.kmax_eta_min =
      file.get_double("health.kmax_eta_min", cfg.health.kmax_eta_min);
  cfg.health.checkpoint_lag_max = file.get_int(
      "health.checkpoint_lag_max", cfg.health.checkpoint_lag_max);
  cfg.health.recoveries_max = static_cast<int>(
      file.get_int("health.recoveries_max", cfg.health.recoveries_max));

  const auto unused = file.unused_keys();
  if (!unused.empty()) {
    std::string msg = "unknown config keys:";
    for (const auto& k : unused) msg += " " + k;
    util::raise(msg);
  }
  return cfg;
}

namespace {

io::CheckpointOptions checkpoint_options(const CampaignConfig& cfg) {
  io::CheckpointOptions opts;
  opts.keep = cfg.checkpoint_keep;
  opts.retry.max_attempts = cfg.io_retries;
  return opts;
}

/// Collective rollback: rank 0 compacts the checkpoint chain to the newest
/// verifiable file; every rank learns the resume step (-1 = no checkpoint
/// survives, restart from the initial condition) and the discard count.
void rollback_to_valid(comm::Communicator& comm, const std::string& path,
                       std::int64_t& resume_step, int& discarded) {
  std::int64_t vals[2] = {-1, 0};
  if (comm.rank() == 0 && !path.empty()) {
    const auto recovery = io::recover_checkpoint_chain(path);
    vals[0] = recovery.info ? recovery.info->step : -1;
    vals[1] = recovery.discarded;
  }
  comm.broadcast(vals, 2, 0);
  resume_step = vals[0];
  discarded = static_cast<int>(vals[1]);
}

/// PSDNS_METRICS_PORT wins over the config value; -1 = endpoint off.
int resolve_metrics_port(int config_port) {
  const char* value = std::getenv("PSDNS_METRICS_PORT");
  if (value == nullptr || *value == '\0') return config_port;
  char* end = nullptr;
  const long port = std::strtol(value, &end, 10);
  PSDNS_REQUIRE(end != value && *end == '\0' && port >= 0 && port <= 65535,
                "PSDNS_METRICS_PORT must be an integer in [0, 65535]");
  return static_cast<int>(port);
}

}  // namespace

CampaignResult run_campaign(comm::Communicator& comm,
                            const CampaignConfig& cfg,
                            const CampaignObserver& observer) {
  PSDNS_REQUIRE(cfg.max_steps >= 0, "negative step budget");
  PSDNS_REQUIRE(cfg.cfl > 0.0 && cfg.max_dt > 0.0, "bad stepping limits");
  obs::init_logging_from_env();
  obs::init_tracing_from_env();
  const io::CheckpointOptions ckpt_opts = checkpoint_options(cfg);

  dns::SlabSolver solver(comm, cfg.solver);

  CampaignResult result;
  const bool have_checkpoint =
      !cfg.checkpoint_path.empty() &&
      std::filesystem::exists(cfg.checkpoint_path);
  if (have_checkpoint) {
    io::load_checkpoint(cfg.checkpoint_path, solver);
    result.restarted = true;
  } else {
    solver.init_isotropic(cfg.seed, cfg.k_peak, cfg.energy);
    for (int s = 0; s < solver.scalar_count(); ++s) {
      solver.init_scalar_isotropic(s, cfg.seed + 1000 + s, cfg.k_peak,
                                   cfg.energy / 2.0);
    }
    if (solver.magnetic_base() >= 0) {
      solver.init_magnetic_isotropic(cfg.seed + 2000, cfg.k_peak,
                                     cfg.energy / 2.0);
      if (cfg.b0 != 0.0) {
        solver.set_uniform_magnetic_field({0.0, 0.0, cfg.b0});
      }
    }
  }

  std::unique_ptr<io::SeriesWriter> series;
  if (comm.rank() == 0 && !cfg.series_path.empty()) {
    // A restarted segment appends: the interrupted run's rows are part of
    // the campaign record, not scratch to be truncated.
    series = std::make_unique<io::SeriesWriter>(
        cfg.series_path, result.restarted ? io::SeriesWriter::Mode::Append
                                          : io::SeriesWriter::Mode::Truncate);
  }

  // --- telemetry plane -------------------------------------------------
  // Env wins over config; both are identical across the rank threads, so
  // every collective gate below is rank-symmetric.
  const int metrics_port = resolve_metrics_port(cfg.metrics_port);
  std::string telemetry_path = cfg.telemetry_path;
  if (const char* v = std::getenv("PSDNS_SERIES_FILE")) telemetry_path = v;
  const obs::HealthConfig health_cfg =
      obs::HealthConfig::from_env(cfg.health);
  obs::HealthMonitor health(health_cfg);
  // The reduction runs per step whenever something consumes the reduced
  // rows; Strict health also forces per-step diagnostics so a NaN is
  // caught on the step it appears, not at the next diagnostics cadence.
  const bool reduce_every_step =
      metrics_port >= 0 || !telemetry_path.empty();
  const bool telemetry_every_step =
      reduce_every_step || health_cfg.mode == obs::HealthMode::Strict;

  std::unique_ptr<obs::MetricsServer> server;
  std::unique_ptr<obs::SeriesJsonlWriter> telemetry_series;
  obs::SeriesRing telemetry_ring;
  if (comm.rank() == 0) {
    if (metrics_port >= 0) {
      obs::MetricsServer::Options server_opts;
      server_opts.port = metrics_port;
      server = std::make_unique<obs::MetricsServer>(server_opts);
      obs::registry().gauge_set("telemetry.metrics_port",
                                static_cast<double>(server->port()));
      obs::log_event(obs::LogLevel::Info, "driver", "metrics endpoint up",
                     {{"port", static_cast<std::int64_t>(server->port())}});
    }
    if (!telemetry_path.empty()) {
      telemetry_series = std::make_unique<obs::SeriesJsonlWriter>(
          telemetry_path, result.restarted
                              ? obs::SeriesJsonlWriter::Mode::Append
                              : obs::SeriesJsonlWriter::Mode::Truncate);
    }
  }
  obs::Registry rank_metrics;  // per-rank values feeding straggler stats
  const double dx =
      2.0 * std::numbers::pi / static_cast<double>(cfg.solver.n);
  const double kmax = std::floor(static_cast<double>(cfg.solver.n) / 3.0);
  obs::HealthVerdict previous_verdict = obs::HealthVerdict::Healthy;

  const std::int64_t first_step = solver.step_count();
  std::int64_t last_checkpoint_step = first_step;
  while (solver.step_count() - first_step < cfg.max_steps &&
         solver.time() < cfg.max_time) {
    const double cfl_dt = solver.cfl_dt(cfg.cfl);
    const double dt = std::min(cfl_dt, cfg.max_dt);
    const util::Stopwatch step_watch;
    {
      obs::TraceSpan step_span("driver.step", obs::SpanKind::Compute);
      solver.step(dt);
    }
    const double wall = step_watch.seconds();
    ++result.steps_run;
    if (comm.rank() == 0) {
      auto& reg = obs::registry();
      reg.counter_add("driver.steps");
      reg.gauge_set("driver.dt", dt);
      reg.gauge_set("driver.cfl_dt", cfl_dt);
      reg.gauge_set("driver.sim_time", solver.time());
      reg.observe("driver.step.wall_seconds", wall);
      obs::publish_pool_metrics(reg);
    }

    rank_metrics.counter_add("rank.steps");
    rank_metrics.gauge_set("rank.step.wall_seconds", wall);

    const bool report =
        cfg.diagnostics_every > 0 &&
        solver.step_count() % cfg.diagnostics_every == 0;
    // diagnostics() is collective: every rank must agree on whether it is
    // called, so every gate here is rank-independent (config and env,
    // never the rank-0-only writer and server objects).
    dns::Diagnostics d;
    bool have_diagnostics = false;
    if (report || !cfg.series_path.empty() || telemetry_every_step) {
      d = solver.diagnostics();
      have_diagnostics = true;
      // System-specific statistics (magnetic energy, buoyancy flux, ...)
      // ride the same collective gate; empty for plain Navier-Stokes.
      const auto sysd = solver.system_diagnostics();
      if (comm.rank() == 0) {
        obs::registry().gauge_set("driver.energy", d.energy);
        for (const auto& nv : sysd) {
          obs::registry().gauge_set("driver.system." + nv.name, nv.value);
        }
        if (series != nullptr) {
          series->append(solver.step_count(), solver.time(), d, dt,
                         wall * 1e3);
        }
        if (report) {
          obs::log_event(obs::LogLevel::Info, "driver", "step",
                         {{"step", solver.step_count()},
                          {"time", solver.time()},
                          {"dt", dt},
                          {"cfl_dt", cfl_dt},
                          {"energy", d.energy},
                          {"wall_ms", wall * 1e3}});
          if (observer) observer(solver.step_count(), solver.time(), d);
        }
      }
    }

    // Health first, then telemetry publication, then the periodic
    // checkpoint: an Abort verdict must throw before the corrupt state
    // can enter the checkpoint chain.
    obs::HealthVerdict verdict = obs::HealthVerdict::Healthy;
    const bool evaluated_health =
        health_cfg.mode != obs::HealthMode::Off && have_diagnostics;
    if (evaluated_health) {
      obs::HealthInput hin;
      hin.step = solver.step_count();
      hin.time = solver.time();
      hin.dt = dt;
      hin.dx = dx;
      hin.energy = d.energy;
      hin.dissipation = d.dissipation;
      hin.u_max = d.u_max;
      hin.kmax = kmax;
      hin.kolmogorov_eta = d.kolmogorov_eta;
      hin.steps_since_checkpoint = solver.step_count() - last_checkpoint_step;
      hin.recoveries = cfg.recoveries_so_far;
      verdict = health.evaluate(hin);
      if (comm.rank() == 0) {
        obs::registry().gauge_set("health.status",
                                  static_cast<double>(verdict));
        const auto fired = health.last_events();
        if (!fired.empty()) {
          obs::registry().counter_add(
              "health.events", static_cast<std::int64_t>(fired.size()));
          for (const auto& e : fired) {
            obs::log_event(e.severity == obs::HealthSeverity::Critical
                               ? obs::LogLevel::Error
                               : obs::LogLevel::Warn,
                           "health", e.code,
                           {{"step", e.step},
                            {"value", e.value},
                            {"threshold", e.threshold}});
          }
        }
      }
    }

    if (reduce_every_step) {
      // The rank-0 gauge writes above must land before any rank snapshots
      // the shared registry; after the barrier no thread writes until the
      // collective reduction completes, so every rank reduces identical
      // global state and the per-rank variation comes from rank_metrics.
      comm.barrier();
      obs::MetricsSnapshot local = obs::registry().snapshot();
      const obs::MetricsSnapshot mine = rank_metrics.snapshot();
      for (const auto& [key, value] : mine.counters) {
        local.counters[key] = value;
      }
      for (const auto& [key, value] : mine.gauges) local.gauges[key] = value;
      obs::ReducedSnapshot reduced = obs::reduce_metrics(comm, local);
      reduced.step = solver.step_count();
      reduced.time = solver.time();
      if (evaluated_health) {
        reduced.health_verdict = obs::to_string(verdict);
        for (const auto& e : health.last_events()) {
          reduced.health_events.push_back(e.code);
        }
      }
      if (comm.rank() == 0) {
        if (telemetry_series != nullptr) telemetry_series->append(reduced);
        if (server != nullptr) {
          server->publish(obs::to_prometheus(reduced, health.report()),
                          obs::to_exposition_json(reduced, health.report()),
                          health.report().to_json(),
                          verdict == obs::HealthVerdict::Abort);
        }
        telemetry_ring.push(std::move(reduced));
      }
    }

    if (health_cfg.mode == obs::HealthMode::Strict) {
      if (verdict == obs::HealthVerdict::Abort) {
        // Every rank evaluated identical reduced inputs, so every rank
        // throws here at the same step and the group unwinds together.
        throw obs::HealthAbort(solver.step_count(), health.last_events());
      }
      if (verdict == obs::HealthVerdict::Degraded &&
          previous_verdict == obs::HealthVerdict::Healthy &&
          !cfg.checkpoint_path.empty()) {
        // Protective checkpoint on the healthy -> degraded transition.
        io::save_checkpoint(cfg.checkpoint_path, solver, ckpt_opts);
        last_checkpoint_step = solver.step_count();
      }
    }
    previous_verdict = verdict;

    if (cfg.checkpoint_every > 0 && !cfg.checkpoint_path.empty() &&
        solver.step_count() % cfg.checkpoint_every == 0) {
      io::save_checkpoint(cfg.checkpoint_path, solver, ckpt_opts);
      last_checkpoint_step = solver.step_count();
    }
  }

  if (!cfg.checkpoint_path.empty()) {
    io::save_checkpoint(cfg.checkpoint_path, solver, ckpt_opts);
  }
  auto spectrum = solver.spectrum();
  if (comm.rank() == 0 && !cfg.spectrum_path.empty()) {
    io::write_spectrum_csv(cfg.spectrum_path, spectrum);
  }
  result.final_spectrum = std::move(spectrum);

  result.final_time = solver.time();
  result.final_diagnostics = solver.diagnostics();
  result.health = health.report();
  if (comm.rank() == 0) {
    result.metrics_port = server != nullptr ? server->port() : 0;
    result.telemetry.reserve(telemetry_ring.size());
    for (std::size_t i = 0; i < telemetry_ring.size(); ++i) {
      result.telemetry.push_back(telemetry_ring.at(i));
    }
  }
  // One rank writes the collected trace (spans of every rank thread are in
  // the same process-wide buffer, so rank 0 owns the file).
  if (cfg.write_trace_at_end && comm.rank() == 0) {
    obs::write_trace_if_configured();
  }
  return result;
}

CampaignResult run_campaign_supervised(comm::Communicator& comm,
                                       const CampaignConfig& cfg,
                                       const SupervisorConfig& sup,
                                       const CampaignObserver& observer) {
  PSDNS_REQUIRE(sup.max_recoveries >= 0, "negative recovery budget");
  obs::init_logging_from_env();

  // Establish the baseline: compact the chain so cfg.checkpoint_path is
  // the newest VALID checkpoint (a previous allocation may have died
  // mid-write), and fix the absolute target step for this allocation.
  std::int64_t resume_step = -1;
  int discarded = 0;
  rollback_to_valid(comm, cfg.checkpoint_path, resume_step, discarded);

  CampaignResult total;
  total.checkpoints_discarded = discarded;
  total.restarted = resume_step >= 0;
  const std::int64_t target_step =
      std::max<std::int64_t>(resume_step, 0) + cfg.max_steps;

  int recoveries = 0;
  for (;;) {
    CampaignConfig segment = cfg;
    segment.max_steps = target_step - std::max<std::int64_t>(resume_step, 0);
    segment.recoveries_so_far = recoveries;
    try {
      const auto r = run_campaign(comm, segment, observer);
      total.steps_run += r.steps_run;
      total.final_time = r.final_time;
      total.final_diagnostics = r.final_diagnostics;
      total.final_spectrum = r.final_spectrum;
      total.recoveries = recoveries;
      total.metrics_port = r.metrics_port;
      total.health = r.health;
      total.telemetry = r.telemetry;
      return total;
    } catch (const obs::HealthAbort&) {
      // A health abort is a structured verdict, not a recoverable fault:
      // the state itself went bad, so rolling back and replaying would
      // deterministically reproduce it. Propagate to the caller intact.
      throw;
    } catch (const std::exception& e) {
      // Injected faults strike every rank at the same per-thread call index
      // and checkpoint IO errors are agreed collectively, so every rank is
      // in this handler; the barrier re-synchronizes the group before the
      // collective rollback.
      comm.barrier();
      if (recoveries >= sup.max_recoveries) throw;
      ++recoveries;
      if (comm.rank() == 0) {
        obs::registry().counter_add("resilience.recoveries");
        obs::log_event(obs::LogLevel::Warn, "driver",
                       "segment failed, rolling back",
                       {{"error", e.what()},
                        {"recovery", recoveries},
                        {"max_recoveries", sup.max_recoveries}});
      }
      rollback_to_valid(comm, cfg.checkpoint_path, resume_step, discarded);
      total.checkpoints_discarded += discarded;
      if (comm.rank() == 0) {
        obs::log_event(obs::LogLevel::Info, "driver", "resuming campaign",
                       {{"resume_step", resume_step},
                        {"target_step", target_step},
                        {"discarded", discarded}});
      }
    }
  }
}

}  // namespace psdns::driver
