#include "gpu/virtual_gpu.hpp"

#include <cmath>

#include "util/check.hpp"

namespace psdns::gpu {

VirtualGpu::VirtualGpu(sim::DagRunner& dag, GpuLinks links,
                       const CostModel& costs, std::string name)
    : dag_(dag), links_(links), costs_(costs), name_(std::move(name)) {
  compute_ = dag_.add_lane(name_ + ".compute");
  transfer_ = dag_.add_lane(name_ + ".transfer");
}

sim::LaneId VirtualGpu::create_stream(const std::string& suffix) {
  return dag_.add_lane(name_ + "." + suffix);
}

sim::OpId VirtualGpu::copy(sim::LaneId stream, std::string label,
                           double total_bytes, double chunk_bytes,
                           CopyMethod method, sim::OpCategory cat,
                           const std::vector<sim::OpId>& deps) {
  PSDNS_REQUIRE(total_bytes >= 0.0 && chunk_bytes > 0.0, "bad copy shape");
  const auto& api = costs_.spec().api;
  const auto& gspec = costs_.spec().node.gpu;
  const double chunks = std::ceil(total_bytes / chunk_bytes);

  double overhead = 0.0;
  double rate_cap = costs_.nvlink_bw_per_gpu();
  switch (method) {
    case CopyMethod::ManyMemcpyAsync:
      overhead = chunks * api.memcpy_async_call;
      break;
    case CopyMethod::Memcpy2DAsync:
      overhead = api.memcpy2d_call + chunks * gspec.copy_row_setup;
      break;
    case CopyMethod::ZeroCopy:
      overhead = api.kernel_launch;
      rate_cap = costs_.zero_copy_bw(/*blocks=*/16, chunk_bytes);
      break;
  }
  return dag_.add_flow_op(std::move(label), stream, cat, total_bytes,
                          {links_.nvlink, links_.host_bus}, rate_cap, deps,
                          overhead);
}

sim::OpId VirtualGpu::copy_h2d(sim::LaneId stream, std::string label,
                               double total_bytes, double chunk_bytes,
                               CopyMethod method,
                               const std::vector<sim::OpId>& deps) {
  return copy(stream, std::move(label), total_bytes, chunk_bytes, method,
              sim::OpCategory::H2D, deps);
}

sim::OpId VirtualGpu::copy_d2h(sim::LaneId stream, std::string label,
                               double total_bytes, double chunk_bytes,
                               CopyMethod method,
                               const std::vector<sim::OpId>& deps) {
  return copy(stream, std::move(label), total_bytes, chunk_bytes, method,
              sim::OpCategory::D2H, deps);
}

sim::OpId VirtualGpu::fft(sim::LaneId stream, std::string label, double lines,
                          double length, const std::vector<sim::OpId>& deps) {
  return dag_.add_op(std::move(label), stream, sim::OpCategory::Compute,
                     costs_.fft_time(lines, length), deps,
                     costs_.spec().api.kernel_launch);
}

sim::OpId VirtualGpu::pointwise(sim::LaneId stream, std::string label,
                                double bytes,
                                const std::vector<sim::OpId>& deps) {
  return dag_.add_op(std::move(label), stream, sim::OpCategory::Compute,
                     costs_.pointwise_time(bytes), deps,
                     costs_.spec().api.kernel_launch);
}

sim::OpId VirtualGpu::kernel(sim::LaneId stream, std::string label,
                             double duration,
                             const std::vector<sim::OpId>& deps) {
  return dag_.add_op(std::move(label), stream, sim::OpCategory::Compute,
                     duration, deps, costs_.spec().api.kernel_launch);
}

}  // namespace psdns::gpu
