#pragma once
// Functional strided-copy primitives mirroring the data-movement APIs the
// paper's code uses on the device:
//   - memcpy2d: the cudaMemcpy2DAsync shape (pitched rows of contiguous
//     elements), used for H2D/D2H pencil copies and the pack-on-copy.
//   - gather/scatter: the custom zero-copy kernel shape (arbitrary index
//     mapping), used for unpacking after the all-to-all.
// These run on the host here; the performance of their device counterparts
// is modeled separately in gpu::CostModel.

#include <cstddef>
#include <span>
#include <vector>

#include "obs/span.hpp"
#include "resilience/fault.hpp"
#include "util/check.hpp"

namespace psdns::gpu {

/// Copies `height` rows of `width` contiguous elements; row r starts at
/// src[r*src_pitch] and lands at dst[r*dst_pitch]. Pitches are in elements
/// and must be >= width. Matches cudaMemcpy2D semantics.
template <class T>
void memcpy2d(T* dst, std::size_t dst_pitch, const T* src,
              std::size_t src_pitch, std::size_t width, std::size_t height) {
  PSDNS_REQUIRE(dst_pitch >= width && src_pitch >= width,
                "pitch must cover the row width");
  obs::TraceSpan span("gpu.memcpy2d", obs::SpanKind::Transfer);
  // Fault drill hook modeling a failed/partial/corrupt device copy:
  // throw aborts the call, short_write copies only the first half of the
  // rows (a truncated DMA), bit_flip corrupts one bit of the destination.
  const auto fault = resilience::poll(resilience::site::gpu_memcpy2d);
  if (fault == resilience::FaultKind::Throw) {
    throw resilience::InjectedFault(resilience::site::gpu_memcpy2d, *fault);
  }
  const std::size_t rows =
      fault == resilience::FaultKind::ShortWrite ? height / 2 : height;
  for (std::size_t r = 0; r < rows; ++r) {
    const T* s = src + r * src_pitch;
    T* d = dst + r * dst_pitch;
    for (std::size_t c = 0; c < width; ++c) d[c] = s[c];
  }
  if (fault == resilience::FaultKind::BitFlip && width > 0 && height > 0) {
    reinterpret_cast<unsigned char*>(dst)[0] ^= 0x01u;
  }
}

/// dst[i] = src[index[i]] - the zero-copy kernel's read pattern.
template <class T>
void gather(T* dst, const T* src, std::span<const std::size_t> index) {
  for (std::size_t i = 0; i < index.size(); ++i) dst[i] = src[index[i]];
}

/// dst[index[i]] = src[i] - the zero-copy kernel's scatter pattern.
template <class T>
void scatter(T* dst, const T* src, std::span<const std::size_t> index) {
  for (std::size_t i = 0; i < index.size(); ++i) dst[index[i]] = src[i];
}

}  // namespace psdns::gpu
