#include "gpu/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace psdns::gpu {

const char* to_string(CopyMethod m) {
  switch (m) {
    case CopyMethod::ManyMemcpyAsync:
      return "many cudaMemcpyAsync";
    case CopyMethod::Memcpy2DAsync:
      return "cudaMemcpy2DAsync";
    case CopyMethod::ZeroCopy:
      return "zero-copy kernel";
  }
  return "?";
}

double CostModel::nvlink_bw_per_gpu() const {
  return spec_.node.nvlink_bw_per_socket / spec_.node.gpus_per_socket;
}

double CostModel::zero_copy_bw(int blocks, double chunk_bytes) const {
  PSDNS_REQUIRE(blocks >= 1, "need at least one thread block");
  // Each block sustains a fixed share of NVLink; tiny chunks lose some
  // efficiency to uncoalesced tails.
  const double chunk_eff = chunk_bytes / (chunk_bytes + 512.0);
  const double ramp = blocks * spec_.node.gpu.zero_copy_block_bw;
  // Saturation sits just below what the dedicated copy engines reach
  // (Fig. 8: the kernel approaches the cudaMemcpy2DAsync line from below).
  return std::min(ramp, 0.88 * nvlink_bw_per_gpu()) * chunk_eff;
}

double CostModel::strided_copy_time(CopyMethod method, double total_bytes,
                                    double chunk_bytes, int blocks) const {
  PSDNS_REQUIRE(total_bytes >= 0.0 && chunk_bytes > 0.0, "bad copy shape");
  const double chunks = std::ceil(total_bytes / chunk_bytes);
  const double wire = total_bytes / nvlink_bw_per_gpu();

  switch (method) {
    case CopyMethod::ManyMemcpyAsync:
      // Every chunk pays the full host API issue cost; the copies
      // themselves pipeline behind the calls.
      return chunks * spec_.api.memcpy_async_call + wire;
    case CopyMethod::Memcpy2DAsync:
      // One API call; the copy engine walks rows with a small per-row
      // descriptor setup.
      return spec_.api.memcpy2d_call +
             chunks * spec_.node.gpu.copy_row_setup + wire;
    case CopyMethod::ZeroCopy:
      return spec_.api.kernel_launch +
             total_bytes / zero_copy_bw(blocks, chunk_bytes);
  }
  PSDNS_CHECK(false, "unreachable");
  return 0.0;
}

double CostModel::fft_time(double lines, double length) const {
  if (lines <= 0.0 || length <= 1.0) return 0.0;
  const double flops = 5.0 * lines * length * std::log2(length);
  return flops / spec_.gpu_fft_flops();
}

double CostModel::pointwise_time(double bytes) const {
  // Streaming kernels reach ~80% of HBM peak.
  return bytes / (0.8 * spec_.node.gpu.hbm_bw);
}

double CostModel::sm_steal_factor(int blocks) const {
  const double slots = 2.0 * spec_.node.gpu.sms;  // 2 blocks per SM (Fig. 8)
  const double free = std::max(1.0, slots - blocks);
  return slots / free;  // >= 1: multiply compute durations by this
}

}  // namespace psdns::gpu
