#pragma once
// Duration models for the device-side operations of the asynchronous
// algorithm: strided host<->device copies (Fig. 7), zero-copy kernel
// bandwidth vs thread blocks (Fig. 8), cuFFT-style kernels and pointwise
// kernels. All times are seconds on the simulated clock.

#include <cstddef>

#include "hw/summit.hpp"

namespace psdns::gpu {

/// The three strided-copy implementations compared in Sec. 4.2 / Fig. 7.
enum class CopyMethod {
  ManyMemcpyAsync,  // one cudaMemcpyAsync per contiguous chunk
  Memcpy2DAsync,    // single pitched copy on the copy engines
  ZeroCopy,         // device kernel reading pinned host memory
};

const char* to_string(CopyMethod m);

class CostModel {
 public:
  explicit CostModel(hw::MachineSpec spec = hw::summit()) : spec_(spec) {}

  const hw::MachineSpec& spec() const { return spec_; }

  /// Peak unidirectional host<->device bandwidth of ONE GPU (its share of
  /// the socket's NVLink): 150 GB/s per socket over 3 GPUs.
  double nvlink_bw_per_gpu() const;

  /// Time to move `total_bytes` of strided data (contiguous chunks of
  /// `chunk_bytes`) between pinned host memory and one GPU. For ZeroCopy,
  /// `blocks` thread blocks drive the transfer (Fig. 8); other methods
  /// ignore it.
  double strided_copy_time(CopyMethod method, double total_bytes,
                           double chunk_bytes, int blocks = 160) const;

  /// Achieved bandwidth of the zero-copy kernel given a thread-block count
  /// (Fig. 8: ~2 blocks per SM possible; saturates around 16 blocks).
  double zero_copy_bw(int blocks, double chunk_bytes) const;

  /// 1-D FFT kernel time: `lines` transforms of length `length` on one GPU
  /// (5 n log2 n real operations per line, cuFFT-like efficiency).
  double fft_time(double lines, double length) const;

  /// Streaming pointwise kernel (nonlinear products, dealiasing masks):
  /// HBM-bandwidth bound on `bytes` of traffic.
  double pointwise_time(double bytes) const;

  /// Fraction by which concurrent compute kernels slow down when a
  /// zero-copy kernel occupies `blocks` thread blocks (SM stealing,
  /// Sec. 4.2): compute gets (SMs*2 - blocks) of SMs*2 block slots.
  double sm_steal_factor(int blocks) const;

 private:
  hw::MachineSpec spec_;
};

}  // namespace psdns::gpu
