#pragma once
// Virtual GPU: a CUDA-runtime-shaped facade over the DAG runner.
//
// Streams are DAG lanes (FIFO issue order, exactly CUDA stream semantics);
// events are just OpIds passed as cross-stream dependencies; copies are
// bandwidth-shaped flows traversing this GPU's NVLink and its socket's host
// memory bus, so concurrent copies and MPI traffic contend the same way the
// paper measured on Summit (Sec. 5.2).

#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "sim/dag.hpp"

namespace psdns::gpu {

/// The shared-bandwidth resources one GPU touches.
struct GpuLinks {
  sim::LinkId nvlink;    // this GPU's CPU<->GPU link (50 GB/s on Summit)
  sim::LinkId host_bus;  // its socket's memory bus (135 GB/s, shared)
};

class VirtualGpu {
 public:
  VirtualGpu(sim::DagRunner& dag, GpuLinks links, const CostModel& costs,
             std::string name);

  /// The two streams of the paper's algorithm (Sec. 3.4): one for compute,
  /// one for all transfers (a single transfer stream keeps host-bus traffic
  /// unidirectional).
  sim::LaneId compute_stream() const { return compute_; }
  sim::LaneId transfer_stream() const { return transfer_; }

  sim::LaneId create_stream(const std::string& suffix);

  /// Strided host->device copy of `total_bytes` in contiguous chunks of
  /// `chunk_bytes` using `method`. Fixed overheads (API calls, per-row
  /// descriptor setup) are charged serially on the stream; the wire time is
  /// a flow through NVLink + host bus.
  sim::OpId copy_h2d(sim::LaneId stream, std::string label,
                     double total_bytes, double chunk_bytes, CopyMethod method,
                     const std::vector<sim::OpId>& deps = {});

  /// Strided device->host copy (same model; on Summit the D2H doubles as
  /// the pack for MPI, Sec. 3.4).
  sim::OpId copy_d2h(sim::LaneId stream, std::string label,
                     double total_bytes, double chunk_bytes, CopyMethod method,
                     const std::vector<sim::OpId>& deps = {});

  /// Batched 1-D FFT kernel: `lines` transforms of length `length`.
  sim::OpId fft(sim::LaneId stream, std::string label, double lines,
                double length, const std::vector<sim::OpId>& deps = {});

  /// Streaming pointwise kernel over `bytes` of HBM traffic.
  sim::OpId pointwise(sim::LaneId stream, std::string label, double bytes,
                      const std::vector<sim::OpId>& deps = {});

  /// Raw kernel with an explicit duration.
  sim::OpId kernel(sim::LaneId stream, std::string label, double duration,
                   const std::vector<sim::OpId>& deps = {});

  const CostModel& costs() const { return costs_; }

 private:
  sim::OpId copy(sim::LaneId stream, std::string label, double total_bytes,
                 double chunk_bytes, CopyMethod method, sim::OpCategory cat,
                 const std::vector<sim::OpId>& deps);

  sim::DagRunner& dag_;
  GpuLinks links_;
  CostModel costs_;
  std::string name_;
  sim::LaneId compute_;
  sim::LaneId transfer_;
};

}  // namespace psdns::gpu
