#pragma once
// Functional in-process communicator: MPI-shaped collectives over threads
// sharing one address space. One thread per rank; collectives synchronize
// through a generation barrier and exchange data by reading each other's
// published buffers. This is the substrate on which the distributed
// transpose and the DNS solvers run *for real* at laptop scale, so their
// numerics can be validated; the at-scale performance of the same call
// pattern is modeled by psdns::net.
//
// Semantics follow MPI: alltoall exchanges equal blocks ordered by rank;
// ialltoall returns a Request whose wait() completes the exchange (every
// rank of the communicator must reach wait(), like MPI_WAIT on a
// nonblocking collective); split() creates row/column sub-communicators.

#include <algorithm>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resilience/fault.hpp"
#include "util/check.hpp"

namespace psdns::comm {

class Communicator;

/// Handle for a pending nonblocking collective. The exchange is performed
/// inside wait(); all ranks must call wait() in matching collective order.
/// Deliberately a plain function pointer plus arguments rather than a
/// std::function: the capture (communicator + two buffers + count) would
/// exceed the small-object buffer and heap-allocate on every ialltoall in
/// the async pipeline's steady state.
class Request {
 public:
  using RunFn = void (*)(Communicator&, const void*, void*, std::size_t);

  Request() = default;

  bool valid() const { return run_ != nullptr; }

  void wait() {
    PSDNS_REQUIRE(valid(), "wait() on an empty or consumed Request");
    RunFn fn = run_;
    run_ = nullptr;
    fn(*comm_, send_, recv_, count_);
  }

 private:
  friend class Communicator;
  Request(Communicator* comm, RunFn run, const void* send, void* recv,
          std::size_t count)
      : comm_(comm), run_(run), send_(send), recv_(recv), count_(count) {}

  Communicator* comm_ = nullptr;
  RunFn run_ = nullptr;
  const void* send_ = nullptr;
  void* recv_ = nullptr;
  std::size_t count_ = 0;
};

namespace detail {

/// Process-unique id tagging one communicator group's trace flows.
std::uint64_t next_group_trace_uid();

/// State shared by all ranks of one communicator.
struct Group {
  explicit Group(int n)
      : size(n), barrier(n), slots(static_cast<std::size_t>(n)),
        trace_uid(next_group_trace_uid()) {}

  int size;
  std::barrier<> barrier;
  std::vector<const void*> slots;  // per-rank published pointer
  std::uint64_t trace_uid;

  // split() bookkeeping: first arriving rank of each color creates the
  // subgroup.
  std::mutex split_mutex;
  std::map<int, std::shared_ptr<Group>> pending_splits;
  std::vector<std::pair<int, int>> split_keys;  // (color, key) per rank
};

}  // namespace detail

class Communicator {
 public:
  Communicator(std::shared_ptr<detail::Group> group, int rank)
      : group_(std::move(group)), rank_(rank) {
    PSDNS_REQUIRE(rank_ >= 0 && rank_ < group_->size, "rank out of range");
  }

  int rank() const { return rank_; }
  int size() const { return group_->size; }

  void barrier() { group_->barrier.arrive_and_wait(); }

  /// MPI_ALLTOALL: send holds size() blocks of `count` elements, block r
  /// destined for rank r; recv receives one block from every rank.
  template <class T>
  void alltoall(const T* send, T* recv, std::size_t count) {
    // Fault drill hook. Counted per thread, so every SPMD rank fires at the
    // same call index and a thrown fault unwinds all ranks *before* anyone
    // publishes or enters the barrier - no deadlock. A bit_flip plan entry
    // corrupts one bit of the received payload instead (silent fault).
    const auto fault = resilience::poll(resilience::site::comm_alltoall);
    if (fault == resilience::FaultKind::Throw ||
        fault == resilience::FaultKind::ShortWrite) {
      throw resilience::InjectedFault(resilience::site::comm_alltoall,
                                      *fault);
    }
    obs::registry().counter_add("comm.alltoall.calls");
    obs::registry().counter_add(
        "comm.alltoall.bytes",
        static_cast<std::int64_t>(sizeof(T) * count *
                                  static_cast<std::size_t>(size())));
    // Causal tracing: every rank's span emits its outgoing flow before the
    // publish barrier and consumes every peer's after the exchange, so the
    // trace records the full cross-rank happened-before fan of the
    // collective. The sequence number advances on every rank (SPMD call
    // order is identical), keeping flow ids aligned across the group.
    obs::TraceSpan span("comm.alltoall", obs::SpanKind::Comm);
    const std::uint64_t cseq = collective_seq_++;
    if (span.id() != 0) obs::flow_emit(collective_flow(cseq, rank_));
    publish(send);
    for (int r = 0; r < size(); ++r) {
      const T* theirs = peek<T>(r);
      std::copy(theirs + static_cast<std::size_t>(rank_) * count,
                theirs + static_cast<std::size_t>(rank_ + 1) * count,
                recv + static_cast<std::size_t>(r) * count);
    }
    barrier();  // all reads done before anyone reuses their send buffer
    if (span.id() != 0) {
      for (int r = 0; r < size(); ++r) {
        if (r != rank_) obs::flow_consume(collective_flow(cseq, r));
      }
    }
    if (fault == resilience::FaultKind::BitFlip && count > 0) {
      // Flip a high exponent bit of the first element's top byte: for
      // floating-point payloads the value jumps by many orders of
      // magnitude, so products go non-finite within one step and the
      // health monitor's NaN guard can catch the corruption immediately
      // (an LSB mantissa flip would hide below the diagnostics noise).
      reinterpret_cast<unsigned char*>(recv)[sizeof(T) - 1] ^= 0x40u;
    }
  }

  /// MPI_IALLTOALL. The returned Request's wait() performs the exchange.
  template <class T>
  Request ialltoall(const T* send, T* recv, std::size_t count) {
    return Request(
        this,
        [](Communicator& c, const void* s, void* r, std::size_t n) {
          c.alltoall(static_cast<const T*>(s), static_cast<T*>(r), n);
        },
        send, recv, count);
  }

  /// MPI_ALLTOALLV with per-destination counts and displacements (in
  /// elements). counts/displs arrays live on each rank and describe both
  /// its send layout (send_counts) and receive layout (recv_counts).
  template <class T>
  void alltoallv(const T* send, const std::size_t* send_counts,
                 const std::size_t* send_displs, T* recv,
                 const std::size_t* recv_counts,
                 const std::size_t* recv_displs) {
    struct Spec {
      const T* data;
      const std::size_t* counts;
      const std::size_t* displs;
    };
    // Same drill hook as alltoall: the v-variant is the same collective to
    // the fault plan (both count against the comm.alltoall site).
    resilience::maybe_throw(resilience::site::comm_alltoall);
    std::size_t send_elems = 0;
    for (int r = 0; r < size(); ++r) send_elems += send_counts[r];
    obs::registry().counter_add("comm.alltoall.calls");
    obs::registry().counter_add(
        "comm.alltoall.bytes",
        static_cast<std::int64_t>(sizeof(T) * send_elems));
    obs::TraceSpan span("comm.alltoallv", obs::SpanKind::Comm);
    const std::uint64_t cseq = collective_seq_++;
    if (span.id() != 0) obs::flow_emit(collective_flow(cseq, rank_));
    const Spec mine{send, send_counts, send_displs};
    publish(&mine);
    for (int r = 0; r < size(); ++r) {
      const Spec* theirs = peek<Spec>(r);
      const std::size_t n = theirs->counts[rank_];
      PSDNS_CHECK(n == recv_counts[r],
                  "alltoallv count mismatch between sender and receiver");
      std::copy(theirs->data + theirs->displs[rank_],
                theirs->data + theirs->displs[rank_] + n,
                recv + recv_displs[r]);
    }
    barrier();
    if (span.id() != 0) {
      for (int r = 0; r < size(); ++r) {
        if (r != rank_) obs::flow_consume(collective_flow(cseq, r));
      }
    }
  }

  /// MPI_ALLREDUCE(sum). In-place allowed (send == recv). The accumulator
  /// is per-thread scratch that grows to the largest count ever reduced,
  /// so steady-state calls (solver diagnostics every step) do not allocate.
  template <class T>
  void allreduce_sum(const T* send, T* recv, std::size_t count) {
    publish(send);
    thread_local std::vector<T> acc;
    if (acc.size() < count) acc.resize(count);
    std::fill(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(count),
              T{});
    for (int r = 0; r < size(); ++r) {
      const T* theirs = peek<T>(r);
      for (std::size_t i = 0; i < count; ++i) acc[i] += theirs[i];
    }
    barrier();  // reads complete before anyone overwrites recv==send
    std::copy(acc.begin(), acc.begin() + static_cast<std::ptrdiff_t>(count),
              recv);
    barrier();
  }

  template <class T>
  T allreduce_sum(T value) {
    T out{};
    allreduce_sum(&value, &out, 1);
    return out;
  }

  template <class T>
  T allreduce_max(T value) {
    publish(&value);
    T best = value;
    for (int r = 0; r < size(); ++r) best = std::max(best, *peek<T>(r));
    barrier();
    return best;
  }

  /// MPI_BCAST from `root`.
  template <class T>
  void broadcast(T* data, std::size_t count, int root) {
    publish(data);
    if (rank_ != root) {
      const T* src = peek<T>(root);
      std::copy(src, src + count, data);
    }
    barrier();
  }

  /// MPI_GATHER: every rank contributes `count` elements; root receives
  /// size()*count elements ordered by rank. recv may be null on non-roots.
  template <class T>
  void gather(const T* send, T* recv, std::size_t count, int root) {
    publish(send);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        const T* theirs = peek<T>(r);
        std::copy(theirs, theirs + count,
                  recv + static_cast<std::size_t>(r) * count);
      }
    }
    barrier();
  }

  /// MPI_SCATTER: root's send buffer holds size() blocks of `count`
  /// elements; every rank receives its block. send may be null on
  /// non-roots.
  template <class T>
  void scatter(const T* send, T* recv, std::size_t count, int root) {
    publish(send);
    const T* src = peek<T>(root);
    std::copy(src + static_cast<std::size_t>(rank_) * count,
              src + static_cast<std::size_t>(rank_ + 1) * count, recv);
    barrier();
  }

  /// MPI_COMM_SPLIT: ranks with equal `color` form a new communicator,
  /// ordered by (key, parent rank).
  Communicator split(int color, int key);

 private:
  /// Publishes a pointer and synchronizes so every rank's slot is visible.
  template <class P>
  void publish(const P* ptr) {
    group_->slots[rank_] = ptr;
    barrier();
  }

  template <class P>
  const P* peek(int r) const {
    return static_cast<const P*>(group_->slots[r]);
  }

  /// Trace-flow id of src rank's contribution to this group's `seq`-th
  /// collective. Top bit set so ids never collide with obs::new_flow().
  std::uint64_t collective_flow(std::uint64_t seq, int src) const {
    return (std::uint64_t{1} << 63) |
           ((group_->trace_uid & 0x7FFFF) << 44) | ((seq & 0xFFFFFFFF) << 12) |
           (static_cast<std::uint64_t>(src) & 0xFFF);
  }

  std::shared_ptr<detail::Group> group_;
  int rank_;
  std::uint64_t collective_seq_ = 0;  // per-rank count of traced collectives
};

/// SPMD launcher: runs `body(comm)` on `nranks` threads, each with its own
/// rank of a fresh world communicator. Exceptions thrown by any rank are
/// collected and the first (by rank) is rethrown after all threads join.
void run_ranks(int nranks, const std::function<void(Communicator&)>& body);

}  // namespace psdns::comm
