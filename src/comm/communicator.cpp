#include "comm/communicator.hpp"

#include <atomic>
#include <thread>
#include <tuple>

#include "obs/log.hpp"

namespace psdns::comm {

namespace detail {

std::uint64_t next_group_trace_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

Communicator Communicator::split(int color, int key) {
  // Publish (color, key) for every rank.
  const std::pair<int, int> mine{color, key};
  publish(&mine);

  // Deterministically compute this rank's subgroup membership: members of my
  // color ordered by (key, parent rank).
  std::vector<std::tuple<int, int, int>> members;  // (key, parent_rank, color)
  for (int r = 0; r < size(); ++r) {
    const auto* ck = peek<std::pair<int, int>>(r);
    if (ck->first == color) members.emplace_back(ck->second, r, ck->first);
  }
  std::sort(members.begin(), members.end());
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (std::get<1>(members[i]) == rank_) new_rank = static_cast<int>(i);
  }
  PSDNS_CHECK(new_rank >= 0, "rank missing from its own split group");

  // First member of each color to arrive allocates the shared subgroup.
  std::shared_ptr<detail::Group> sub;
  {
    std::lock_guard lock(group_->split_mutex);
    auto& slot = group_->pending_splits[color];
    if (!slot) {
      slot = std::make_shared<detail::Group>(static_cast<int>(members.size()));
    }
    sub = slot;
  }
  barrier();  // every rank has taken its subgroup pointer

  if (new_rank == 0) {
    std::lock_guard lock(group_->split_mutex);
    group_->pending_splits.erase(color);
  }
  barrier();  // map cleaned before any later split reuses colors

  return Communicator(std::move(sub), new_rank);
}

void run_ranks(int nranks, const std::function<void(Communicator&)>& body) {
  PSDNS_REQUIRE(nranks >= 1, "need at least one rank");
  auto group = std::make_shared<detail::Group>(nranks);

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      obs::set_rank_tag(r);  // stamp this rank's log lines and trace spans
      try {
        Communicator comm(group, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // A failed rank must not deadlock the others at a barrier; the
        // barrier is dropped so remaining ranks will also fail fast when
        // they next synchronize. Simplest robust policy for tests: abort
        // the whole group by rethrowing on join below, and let peers park.
        group->barrier.arrive_and_drop();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace psdns::comm
