#pragma once
// Causal span tracing: low-overhead hierarchical wall-clock spans with
// explicit cross-lane / cross-rank causal edges, the substrate for the
// critical-path and overlap analyses (obs/critical_path.hpp).
//
// Each thread records completed spans into its own fixed-capacity ring
// buffer (oldest spans are overwritten, the drop count is reported), so
// the hot-path cost with tracing enabled is one uncontended mutex plus a
// ring store; with tracing disabled it is a single relaxed atomic load.
// Spans nest: a thread-local stack links each span to its parent, giving
// the per-thread hierarchy, and flow edges (flow_emit in the producing
// span, flow_consume in the consuming span) record causality across
// threads, lanes and SPMD ranks - the instrumented sites are the comm
// all-to-alls, the async pipeline's post/wait pairs and the GPU copy
// boundaries. trace_export renders the edges as Chrome flow events
// (ph "s"/"f") so the overlap structure is visible in Perfetto.
//
// Environment gating follows the same precedence rules as PSDNS_LOG_*:
// PSDNS_TRACE=1|true|on enables capture (0|false|off disables),
// PSDNS_TRACE_FILE=path arranges for the collected trace to be written as
// Chrome JSON at process exit (and by driver::run_campaign on
// completion). The variables are applied lazily before the first span is
// recorded; programmatic set_tracing / set_trace_file win because they
// run eagerly, and init_tracing_from_env is safe to call more than once.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psdns::obs {

/// Process-unique span identifier; 0 means "no span".
using SpanId = std::uint64_t;
/// Identifier tying a flow_emit to its flow_consume(s); 0 is reserved.
using FlowId = std::uint64_t;

/// Coarse cost classes, matching the paper's Fig.-4 stream coloring and
/// the critical-path attribution buckets.
enum class SpanKind { Compute, Transfer, Comm, Io, Other };

const char* to_string(SpanKind kind);

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;     // 0 = top-level span of its thread
  std::string name;
  SpanKind kind = SpanKind::Other;
  int thread = 0;        // obs::thread_index() of the emitting thread
  int rank = -1;         // obs::rank_tag() at span end (-1 = untagged)
  double start_s = 0.0;  // seconds since tracing was (re)enabled
  double end_s = 0.0;

  double duration() const { return end_s - start_s; }
};

/// Causal edge: `src` happened-before `dst`, tied together by `flow`.
struct FlowEdge {
  FlowId flow = 0;
  SpanId src = 0;
  SpanId dst = 0;
};

/// One sample of a numeric counter track (Chrome trace ph "C"): per-step
/// gauges like overlap efficiency or arena residency plotted alongside
/// the span lanes.
struct CounterSample {
  std::string name;
  int rank = -1;       // obs::rank_tag() of the sampling thread
  double t_s = 0.0;    // seconds since tracing was (re)enabled
  double value = 0.0;
};

struct SpanTrace {
  std::vector<SpanRecord> spans;  // sorted by start time
  std::vector<FlowEdge> edges;
  std::vector<CounterSample> counters;  // in sampling order
  std::int64_t dropped = 0;       // spans lost to ring-buffer wrap
};

/// Enables/disables capture. Enabling clears all rings and edges and
/// restarts the trace clock origin.
void set_tracing(bool on);

/// Fast gate: a relaxed atomic load (plus a one-time lazy application of
/// PSDNS_TRACE / PSDNS_TRACE_FILE on first use).
bool tracing();

/// Applies PSDNS_TRACE and PSDNS_TRACE_FILE when set; unknown values
/// throw rather than being ignored. Safe to call more than once.
void init_tracing_from_env();

/// Chrome-trace output path for write_trace_if_configured (empty = none).
void set_trace_file(const std::string& path);
std::string trace_file();

/// Per-thread ring capacity in spans (default 65536). Applies to rings
/// created after the call; enabling tracing re-creates all rings.
void set_trace_capacity(std::size_t spans_per_thread);

/// Snapshot of every thread's completed spans (sorted by start time)
/// plus all flow edges. Open spans are not included.
SpanTrace collect_trace();
void clear_trace();

/// Writes collect_trace() as Chrome trace JSON to trace_file(); no-op
/// when the path is empty or tracing never captured anything.
void write_trace_if_configured();

/// Innermost open span of this thread (0 when none or tracing is off).
SpanId current_span();

/// Seconds since tracing was (re)enabled - the clock SpanRecord start/end
/// times are on. 0.0 while tracing is off.
double trace_clock();

/// Appends an already-completed span with explicit trace-clock times to
/// this thread's ring - the escape hatch for intervals that no single
/// thread was inside (e.g. the campaign service's queue-wait, which
/// starts on the HTTP handler thread and ends on the worker that
/// dispatches the job). Returns the new span's id, 0 while tracing is
/// off.
SpanId record_span(std::string_view name, SpanKind kind, double start_s,
                   double end_s, SpanId parent = 0);

/// Appends a causal edge src -> dst between two known span ids (a fresh
/// FlowId is minted). The explicit-id sibling of flow_emit/flow_consume
/// for call sites that hold both ends; no-op when either id is 0 or
/// tracing is off.
void link_spans(SpanId src, SpanId dst);

/// Process-unique flow id for hand-rolled post/wait pairs.
FlowId new_flow();

/// Marks the current span as the producer of `flow`. The last emit wins.
void flow_emit(FlowId flow);

/// Appends a causal edge from the span that emitted `flow` to the current
/// span. Multiple consumers each get their own edge; consuming a flow
/// that was never emitted is a silent no-op (the producer's ring may have
/// wrapped, or its site may not be instrumented).
void flow_consume(FlowId flow);

/// Samples a counter track at the current trace time. No-op (one relaxed
/// atomic load) while tracing is off; samples beyond the per-trace cap
/// (1M) are counted into SpanTrace::dropped.
void trace_counter(std::string_view name, double value);

/// RAII span. Cheap when tracing is off (no allocation, no lock): the
/// name is only copied into owned storage after the tracing gate passes.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, SpanKind kind = SpanKind::Other);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// 0 when tracing was off at construction.
  SpanId id() const { return id_; }

  /// Ends the span early; later calls (and the destructor) are no-ops.
  void end();

 private:
  SpanId id_ = 0;
  double start_s_ = 0.0;
  std::string name_;
  SpanKind kind_ = SpanKind::Other;
};

}  // namespace psdns::obs
