#pragma once
// Cross-rank metric reduction: turns each rank's local MetricsSnapshot
// into one ReducedSnapshot per step - sum/min/max/mean for every counter
// and gauge, plus the rank holding the min and max so stragglers are
// identified by name, not hunted through per-rank dumps, plus a
// count-weighted merge of every histogram summary (the per-tenant SLO
// latency distributions ride here). This is the data plane the live
// metrics endpoint, the step-series JSONL and the health monitor all
// consume.
//
// The reduction is collective and returns the identical ReducedSnapshot
// on every rank (serialize local -> gather to rank 0 -> merge -> broadcast
// the merged document), so downstream decisions taken from it - notably
// the health monitor's abort verdict - are rank-symmetric by construction.
// Keys are reduced over the ranks that carry them (`count` records how
// many did): a gauge only rank 0 sets still appears, with count == 1.
//
// The communicator is a template parameter rather than a concrete
// comm::Communicator so obs stays below comm in the layering (comm links
// obs for its instrumentation); any type with rank()/size()/gather/
// broadcast/allreduce_max works, which also keeps the merge logic unit-
// testable without spinning up rank threads.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace psdns::obs {

/// One metric reduced across ranks. min_rank/max_rank identify the
/// extreme ranks (ties resolve to the lowest rank); count is the number
/// of ranks that reported the key.
struct ReducedValue {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int min_rank = -1;
  int max_rank = -1;
  int count = 0;
};

/// The per-step cross-rank view: every counter and gauge of the union of
/// all ranks' snapshots, reduced, plus every histogram's summary merged
/// across ranks. count/sum/min/max merge exactly; the quantiles are the
/// count-weighted mean of the per-rank quantiles - an approximation (rank
/// summaries carry no raw samples), exact when one rank holds the data
/// (the campaign-service case) and clamped to the merged [min, max]
/// otherwise.
struct ReducedSnapshot {
  std::int64_t step = -1;
  double time = 0.0;
  int ranks = 0;
  std::map<std::string, ReducedValue> counters;
  std::map<std::string, ReducedValue> gauges;
  std::map<std::string, HistogramSummary> histograms;
  // Health annotation stamped by the campaign driver (empty = health
  // monitoring off for this row).
  std::string health_verdict;
  std::vector<std::string> health_events;  // event codes fired this step

  /// One JSON object (single line, JSONL-ready):
  ///   {"step":N,"time":T,"ranks":R,
  ///    "counters":{name:{sum,min,max,mean,min_rank,max_rank,count}},
  ///    "gauges":{...},
  ///    "histograms":{name:{count,sum,min,max,p50,p95,p99}}
  ///    [,"health":{"verdict":v,"events":[...]}]}
  std::string to_json() const;

  /// Inverse of to_json(); throws util::Error on malformed input. Rows
  /// written before histograms were reduced (no "histograms" key) parse
  /// with an empty histogram map.
  static ReducedSnapshot parse(const std::string& json);

  /// Convenience lookups; nullptr when the key is absent.
  const ReducedValue* counter(const std::string& name) const;
  const ReducedValue* gauge(const std::string& name) const;
  const HistogramSummary* histogram(const std::string& name) const;
};

/// Serializes one rank's local snapshot for the gather leg.
std::string serialize_snapshot(const MetricsSnapshot& local);

/// Merges the per-rank serialized snapshots (index = rank) into the
/// reduced view. Pure function - the collective wrapper below and the
/// unit tests share it.
ReducedSnapshot merge_snapshots(const std::vector<std::string>& per_rank);

/// Collective reduction over `comm` (all of rank()/size()/gather/
/// broadcast/allreduce_max in comm::Communicator's shapes). Every rank
/// receives the same ReducedSnapshot; step/time are stamped by the
/// caller afterwards.
template <class Comm>
ReducedSnapshot reduce_metrics(Comm& comm, const MetricsSnapshot& local) {
  std::string blob = serialize_snapshot(local);
  // Pad every rank's blob to the group max so gather can move fixed-size
  // blocks; true lengths travel alongside.
  std::uint64_t len = blob.size();
  const std::uint64_t max_len = comm.allreduce_max(len);
  blob.resize(max_len, ' ');
  const int nranks = comm.size();
  std::vector<char> gathered;
  std::vector<std::uint64_t> lens(static_cast<std::size_t>(nranks), 0);
  if (comm.rank() == 0) {
    gathered.resize(max_len * static_cast<std::uint64_t>(nranks));
  }
  comm.gather(blob.data(), comm.rank() == 0 ? gathered.data() : nullptr,
              max_len, 0);
  comm.gather(&len, comm.rank() == 0 ? lens.data() : nullptr, 1, 0);

  std::string reduced_blob;
  if (comm.rank() == 0) {
    std::vector<std::string> per_rank(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      per_rank[static_cast<std::size_t>(r)].assign(
          gathered.data() + static_cast<std::uint64_t>(r) * max_len,
          lens[static_cast<std::size_t>(r)]);
    }
    reduced_blob = merge_snapshots(per_rank).to_json();
  }
  std::uint64_t reduced_len = reduced_blob.size();
  comm.broadcast(&reduced_len, 1, 0);
  reduced_blob.resize(reduced_len, ' ');
  comm.broadcast(reduced_blob.data(), reduced_len, 0);
  return ReducedSnapshot::parse(reduced_blob);
}

}  // namespace psdns::obs
