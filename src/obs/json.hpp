#pragma once
// Zero-dependency JSON primitives for the telemetry layer: string/number
// formatting for the writers and a small recursive-descent parser used by
// tests and CI to validate every document this repo emits (structured log
// lines, Chrome traces, BENCH_*.json reports).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace psdns::obs {

/// Escapes a string for inclusion between JSON double quotes (the quotes
/// themselves are not added): ", \, control characters as \uXXXX.
std::string json_escape(const std::string& s);

/// Escaped and double-quoted: json_quote("a\"b") == "\"a\\\"b\"".
std::string json_quote(const std::string& s);

/// Shortest round-trippable decimal for a finite double; non-finite values
/// (which raw printf would render as the invalid tokens inf/nan) become
/// "null".
std::string json_number(double value);

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  bool has(const std::string& key) const;

  /// Object member access; throws util::Error when absent or not an object.
  const JsonValue& at(const std::string& key) const;
};

/// Parses one complete JSON document. Throws util::Error on malformed
/// input or trailing non-whitespace.
JsonValue json_parse(const std::string& text);

}  // namespace psdns::obs
