#pragma once
// Simulation health monitor: per-step invariant checks that turn silent
// divergence into structured, machine-readable events. A 3072^3 campaign
// that goes non-finite at step 40k should be aborted at step 40k+1 with a
// verdict the supervisor can act on, not discovered in a corrupted
// spectrum file after the allocation burns out.
//
// Invariants evaluated each step (each can be disabled by its threshold):
//   nan          - energy / dissipation / u_max must be finite (always on)
//   energy_drift - relative energy jump per step bounded (a bit flip or
//                  blow-up moves energy by orders of magnitude; physical
//                  decay or forcing moves it by percent)
//   cfl          - advective CFL number u_max*dt/dx stays under a bound
//   kmax_eta     - spectral resolution kmax*eta above the DNS floor
//   ckpt_lag     - steps since the last durable checkpoint bounded
//   recoveries   - supervisor rollback count bounded
//
// Severity maps to a verdict: any Critical event -> Abort, any Warn event
// -> Degraded, else Healthy. What the verdict *does* is the campaign
// driver's business, gated by HealthMode: Off skips evaluation, Warn logs
// events and records the verdict, Strict additionally throws HealthAbort
// (collectively - every rank evaluates identical reduced inputs, so every
// rank throws at the same step) and takes a protective checkpoint on
// Degraded. Selected with PSDNS_HEALTH=off|warn|strict.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace psdns::obs {

enum class HealthMode { Off, Warn, Strict };
enum class HealthSeverity { Info, Warn, Critical };
enum class HealthVerdict { Healthy, Degraded, Abort };

const char* to_string(HealthMode mode);
const char* to_string(HealthSeverity severity);
const char* to_string(HealthVerdict verdict);

/// Accepts "off"|"warn"|"strict"; throws util::Error on anything else.
HealthMode parse_health_mode(const std::string& name);

struct HealthConfig {
  HealthMode mode = HealthMode::Warn;
  double energy_drift_tol = 0.5;  // relative per-step jump; 0 disables
  double cfl_max = 1.5;           // advective CFL bound; 0 disables
  double kmax_eta_min = 0.0;      // resolution floor; 0 disables
  std::int64_t checkpoint_lag_max = 0;  // steps; 0 disables
  int recoveries_max = 0;               // supervisor rollbacks; 0 disables

  /// Applies PSDNS_HEALTH to `mode` when set (unknown values throw).
  static HealthConfig from_env(HealthConfig base);
  static HealthConfig from_env();
};

/// One fired invariant. `code` is a stable machine-readable identifier
/// (nan_energy, energy_drift, cfl_bound, kmax_eta, ckpt_lag, recoveries).
struct HealthEvent {
  HealthSeverity severity = HealthSeverity::Warn;
  std::string code;
  std::string message;
  std::int64_t step = -1;
  double value = 0.0;      // the observed quantity
  double threshold = 0.0;  // the bound it crossed
};

/// Everything the per-step invariants need, in reduced (rank-identical)
/// form. Fields a caller cannot supply keep their defaults and the
/// corresponding checks are skipped.
struct HealthInput {
  std::int64_t step = 0;
  double time = 0.0;
  double dt = 0.0;
  double dx = 0.0;     // grid spacing (2*pi/N); 0 skips the CFL check
  double energy = 0.0;
  double dissipation = 0.0;
  double u_max = 0.0;
  double kmax = 0.0;           // dealiased max wavenumber; 0 skips kmax_eta
  double kolmogorov_eta = 0.0;
  std::int64_t steps_since_checkpoint = 0;
  int recoveries = 0;
};

/// Aggregated state for exposition (/health endpoint, series rows).
struct HealthReport {
  HealthVerdict verdict = HealthVerdict::Healthy;  // latest evaluation
  HealthVerdict worst = HealthVerdict::Healthy;    // worst so far
  std::int64_t evaluations = 0;
  std::vector<HealthEvent> events;  // all fired events, in order
  std::string to_json() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  const HealthConfig& config() const { return config_; }

  /// Evaluates every enabled invariant against one step's reduced inputs,
  /// appends fired events, and returns the step's verdict. Deterministic:
  /// identical inputs produce identical events on every rank.
  HealthVerdict evaluate(const HealthInput& input);

  HealthVerdict verdict() const { return report_.verdict; }
  const HealthReport& report() const { return report_; }

  /// Events fired by the most recent evaluate() call only.
  std::vector<HealthEvent> last_events() const;

 private:
  void fire(HealthSeverity severity, const char* code, std::string message,
            const HealthInput& input, double value, double threshold);

  HealthConfig config_;
  HealthReport report_;
  std::size_t last_begin_ = 0;  // index of the latest step's first event
  double last_energy_ = 0.0;
  bool have_last_energy_ = false;
};

/// Thrown by the campaign driver when a Strict monitor returns Abort; the
/// payload carries the structured events so the supervisor's decision is
/// machine-readable end to end.
class HealthAbort : public util::Error {
 public:
  HealthAbort(std::int64_t step, std::vector<HealthEvent> events,
              std::source_location loc = std::source_location::current());

  std::int64_t step() const { return step_; }
  const std::vector<HealthEvent>& events() const { return events_; }

 private:
  std::int64_t step_ = -1;
  std::vector<HealthEvent> events_;
};

}  // namespace psdns::obs
