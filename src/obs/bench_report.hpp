#pragma once
// Machine-readable benchmark output. Every bench binary emits a
// BENCH_<name>.json next to its human-readable tables so each commit
// leaves a perf-trajectory datapoint that tooling can diff. Schema
// (version 2; v1 lacked "manifest" and is still accepted by perfdiff):
//   { "name": "<bench name>", "schema_version": 2, "git_sha": "<sha>",
//     "manifest": { "git_sha": "<sha>", "compiler": "...",
//                   "compiler_flags": "...", "build_type": "...",
//                   "hostname": "...", "seed": "...",
//                   "env": { "PSDNS_*": "<value>", ... } },
//     "metadata": { "<key>": "<string>", ... },
//     "metrics":  { "<key>": <number>, ... } }
// The output directory is PSDNS_BENCH_DIR when set, else the working
// directory (the repo root under the tier-1 flow).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace psdns::obs {

/// Where a number came from: enough to reproduce (git sha, compiler +
/// flags, seed, every PSDNS_* override in effect) and to spot apples-to-
/// oranges diffs (hostname, build type). psdns_perfdiff prints both
/// manifests when a regression fires.
struct RunManifest {
  std::string git_sha;
  std::string compiler;        // id + version (from the build system)
  std::string compiler_flags;
  std::string build_type;
  std::string hostname;
  std::string seed = "unset";  // benches stamp their RNG seed here
  std::string simd;            // dispatched FFT kernel backend (scalar/avx2)
  int threads = 1;             // worker-pool width (PSDNS_THREADS)
  std::vector<std::pair<std::string, std::string>> env;  // PSDNS_* vars

  /// Fills everything collectable at runtime (sha, compiler macros,
  /// hostname, dispatched SIMD backend, pool width, sorted PSDNS_*
  /// environment); `seed` stays "unset".
  static RunManifest collect();

  std::string to_json() const;
};

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Last write wins on duplicate keys.
  void metric(const std::string& key, double value);
  void meta(const std::string& key, const std::string& value);

  /// Stamps the RNG seed into the embedded manifest.
  void seed(std::uint64_t value);

  const RunManifest& manifest() const { return manifest_; }

  std::string to_json() const;

  /// Writes BENCH_<name>.json and returns the path written.
  std::string write() const;

  const std::string& name() const { return name_; }

  /// "<dir>/BENCH_<name>.json" under PSDNS_BENCH_DIR (default ".").
  static std::string output_path(const std::string& name);

 private:
  std::string name_;
  RunManifest manifest_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Joins PSDNS_BENCH_DIR (default ".") with `filename` - for extra bench
/// artifacts like exported traces that should land next to the reports.
std::string bench_output_path(const std::string& filename);

/// HEAD commit of the enclosing git checkout, resolved by reading
/// .git/HEAD (searching upward from the working directory); "unknown"
/// when no checkout is found. PSDNS_GIT_SHA overrides.
std::string current_git_sha();

}  // namespace psdns::obs
