#pragma once
// Machine-readable benchmark output. Every bench binary emits a
// BENCH_<name>.json next to its human-readable tables so each commit
// leaves a perf-trajectory datapoint that tooling can diff. Schema
// (version 1):
//   { "name": "<bench name>", "schema_version": 1, "git_sha": "<sha>",
//     "metadata": { "<key>": "<string>", ... },
//     "metrics":  { "<key>": <number>, ... } }
// The output directory is PSDNS_BENCH_DIR when set, else the working
// directory (the repo root under the tier-1 flow).

#include <string>
#include <utility>
#include <vector>

namespace psdns::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name);

  /// Last write wins on duplicate keys.
  void metric(const std::string& key, double value);
  void meta(const std::string& key, const std::string& value);

  std::string to_json() const;

  /// Writes BENCH_<name>.json and returns the path written.
  std::string write() const;

  const std::string& name() const { return name_; }

  /// "<dir>/BENCH_<name>.json" under PSDNS_BENCH_DIR (default ".").
  static std::string output_path(const std::string& name);

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Joins PSDNS_BENCH_DIR (default ".") with `filename` - for extra bench
/// artifacts like exported traces that should land next to the reports.
std::string bench_output_path(const std::string& filename);

/// HEAD commit of the enclosing git checkout, resolved by reading
/// .git/HEAD (searching upward from the working directory); "unknown"
/// when no checkout is found. PSDNS_GIT_SHA overrides.
std::string current_git_sha();

}  // namespace psdns::obs
