#include "obs/perfdiff.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

const char* kHigherIsBetter[] = {"speedup",    "bandwidth", "flops",
                                 "efficiency", "throughput", "rate"};

struct Report {
  std::string name;
  std::string manifest;  // one-line summary; empty for schema-v1 reports
  std::vector<std::pair<std::string, double>> metrics;  // sorted by key
};

/// "sha=... compiler=... build=... host=... seed=... env: K=V ..." from a
/// schema-v2 report's embedded manifest; "" when absent (schema v1).
std::string manifest_summary(const JsonValue& doc) {
  if (!doc.has("manifest") || !doc.at("manifest").is_object()) return "";
  const JsonValue& m = doc.at("manifest");
  const auto field = [&](const char* key) {
    return m.has(key) && m.at(key).is_string() ? m.at(key).string
                                               : std::string("?");
  };
  std::ostringstream os;
  os << "sha=" << field("git_sha") << " compiler=" << field("compiler")
     << " build=" << field("build_type") << " host=" << field("hostname")
     << " seed=" << field("seed");
  if (m.has("simd") && m.at("simd").is_string()) {
    os << " simd=" << m.at("simd").string;
  }
  if (m.has("threads") && m.at("threads").is_number()) {
    os << " threads=" << static_cast<int>(m.at("threads").number);
  }
  if (m.has("env") && m.at("env").is_object()) {
    for (const auto& [key, value] : m.at("env").object) {
      if (value.is_string()) os << " " << key << "=" << value.string;
    }
  }
  return os.str();
}

Report parse_report(const std::string& json, const char* which) {
  const JsonValue doc = json_parse(json);
  PSDNS_REQUIRE(doc.is_object(), std::string(which) + " report: not an object");
  const double schema =
      doc.has("schema_version") ? doc.at("schema_version").number : 0.0;
  PSDNS_REQUIRE(schema == 1.0 || schema == 2.0,
                std::string(which) + " report: unsupported schema_version");
  Report r;
  r.name = doc.at("name").string;
  r.manifest = manifest_summary(doc);
  for (const auto& [key, value] : doc.at("metrics").object) {
    if (value.is_number()) r.metrics.emplace_back(key, value.number);
  }
  return r;
}

}  // namespace

MetricDirection infer_direction(const std::string& key) {
  for (const char* token : kHigherIsBetter) {
    if (key.find(token) != std::string::npos) {
      return MetricDirection::HigherIsBetter;
    }
  }
  return MetricDirection::LowerIsBetter;
}

PerfDiffResult perf_diff(const std::string& baseline_json,
                         const std::string& current_json,
                         const PerfDiffOptions& opts) {
  PSDNS_REQUIRE(opts.rel_tolerance >= 0.0 && opts.abs_floor >= 0.0,
                "perfdiff tolerances must be non-negative");
  const Report base = parse_report(baseline_json, "baseline");
  const Report cur = parse_report(current_json, "current");
  PSDNS_REQUIRE(base.name == cur.name,
                "perfdiff: comparing different benches: '" + base.name +
                    "' vs '" + cur.name + "'");

  PerfDiffResult result;
  result.name = base.name;
  result.baseline_manifest = base.manifest;
  result.current_manifest = cur.manifest;
  for (const auto& [key, baseline] : base.metrics) {
    MetricDelta d;
    d.key = key;
    d.baseline = baseline;
    d.direction = infer_direction(key);
    const auto it =
        std::find_if(cur.metrics.begin(), cur.metrics.end(),
                     [&](const auto& kv) { return kv.first == key; });
    if (it == cur.metrics.end()) {
      d.missing = true;
      ++result.missing;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->second;
    // Signed worsening fraction relative to |baseline|; a zero baseline
    // only worsens by appearing (guard against division by zero).
    const double denom = std::abs(baseline);
    const double delta = d.direction == MetricDirection::LowerIsBetter
                             ? d.current - d.baseline
                             : d.baseline - d.current;
    d.worsening = denom > 0.0 ? delta / denom : (delta > 0.0 ? 1e30 : 0.0);
    if (d.worsening > opts.rel_tolerance && delta > opts.abs_floor) {
      d.regression = true;
      ++result.regressions;
    } else if (d.worsening < -opts.rel_tolerance && -delta > opts.abs_floor) {
      d.improvement = true;
      ++result.improvements;
    }
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [key, value] : cur.metrics) {
    (void)value;
    const auto it =
        std::find_if(base.metrics.begin(), base.metrics.end(),
                     [&](const auto& kv) { return kv.first == key; });
    if (it == base.metrics.end()) ++result.added;
  }
  return result;
}

std::string format_report(const PerfDiffResult& result,
                          const PerfDiffOptions& opts, bool verbose) {
  std::ostringstream os;
  os.precision(4);
  os << "perfdiff " << result.name << " (tolerance "
     << opts.rel_tolerance * 100.0 << "%):\n";
  for (const auto& d : result.deltas) {
    const bool notable = d.regression || d.improvement || d.missing;
    if (!notable && !verbose) continue;
    const char* tag = d.missing       ? "MISSING   "
                      : d.regression  ? "REGRESSION"
                      : d.improvement ? "improved  "
                                      : "ok        ";
    os << "  " << tag << "  " << d.key << ": " << d.baseline;
    if (!d.missing) {
      os << " -> " << d.current << " ("
         << (d.worsening > 0 ? "+" : "") << d.worsening * 100.0 << "% "
         << (d.direction == MetricDirection::HigherIsBetter
                 ? "worse is lower"
                 : "worse is higher")
         << ")";
    }
    os << "\n";
  }
  os << "  " << result.deltas.size() << " metrics: " << result.regressions
     << " regressed, " << result.improvements << " improved, "
     << result.missing << " missing, " << result.added << " added -> "
     << (result.ok(opts) ? "PASS" : "FAIL") << "\n";
  if (!result.ok(opts)) {
    // A regression is only actionable with the provenance of both runs.
    if (!result.baseline_manifest.empty()) {
      os << "  baseline run: " << result.baseline_manifest << "\n";
    }
    if (!result.current_manifest.empty()) {
      os << "  current run:  " << result.current_manifest << "\n";
    }
  }
  return os.str();
}

std::string to_json(const PerfDiffResult& result,
                    const PerfDiffOptions& opts) {
  std::ostringstream os;
  os << "{\"name\": " << json_quote(result.name)
     << ", \"ok\": " << (result.ok(opts) ? "true" : "false")
     << ", \"regressions\": " << result.regressions
     << ", \"improvements\": " << result.improvements
     << ", \"missing\": " << result.missing
     << ", \"added\": " << result.added << ", \"baseline_manifest\": "
     << json_quote(result.baseline_manifest)
     << ", \"current_manifest\": " << json_quote(result.current_manifest)
     << ", \"metrics\": [";
  for (std::size_t i = 0; i < result.deltas.size(); ++i) {
    const MetricDelta& d = result.deltas[i];
    const char* status = d.missing       ? "missing"
                         : d.regression  ? "regression"
                         : d.improvement ? "improvement"
                                         : "ok";
    os << (i == 0 ? "" : ", ") << "{\"key\": " << json_quote(d.key)
       << ", \"baseline\": " << json_number(d.baseline)
       << ", \"current\": " << json_number(d.current)
       << ", \"worsening\": " << json_number(d.worsening)
       << ", \"direction\": "
       << (d.direction == MetricDirection::HigherIsBetter
               ? "\"higher_is_better\""
               : "\"lower_is_better\"")
       << ", \"status\": \"" << status << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace psdns::obs
