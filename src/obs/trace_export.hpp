#pragma once
// Chrome trace-event export: converts simulated sim::OpRecord traces and
// captured scoped-timer spans into the JSON array form of the Trace Event
// Format, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing -
// the paper's Fig.-10 timeline view, but interactive. Every op becomes a
// complete event (ph "X") with microsecond timestamps; each DAG lane (or
// capture thread) becomes one named track; op categories map to stable
// Chrome color names so the transfer/compute/network streams render in
// the paper's blue/green/red scheme.

#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace psdns::obs {

struct ChromeTraceOptions {
  int pid = 1;
  double seconds_to_us = 1e6;  // sim/wall seconds -> trace microseconds
  std::string process_name = "psdns";
};

/// Chrome color-name for an op category (the `cname` event field).
const char* chrome_color(sim::OpCategory category);

/// Chrome color-name for a causal-span kind (same Fig.-4 scheme).
const char* chrome_color(SpanKind kind);

/// One track per distinct OpRecord::lane, in order of first appearance.
std::string to_chrome_trace(const std::vector<sim::OpRecord>& records,
                            const ChromeTraceOptions& options = {});

/// One track per capturing thread (spans from obs::captured_spans()).
std::string spans_to_chrome_trace(const std::vector<Span>& spans,
                                  const ChromeTraceOptions& options = {});

/// Causal span trace -> Chrome trace. Ranks map to processes (pid =
/// options.pid + rank + 1, untagged spans to options.pid) and threads to
/// tids, so every SPMD rank renders as its own named track group; each
/// flow edge becomes a Chrome flow-event pair (ph "s" at the source
/// span's end, ph "f" with bp "e" at the destination span's start) that
/// Perfetto/chrome://tracing draw as arrows between the tracks.
std::string to_chrome_trace(const SpanTrace& trace,
                            const ChromeTraceOptions& options = {});

/// Writes `text` to `path` (truncating). Throws util::Error on failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace psdns::obs
