#pragma once
// Noise-aware comparison of BENCH_*.json reports (obs/bench_report.hpp
// schema v1) against committed baselines - the engine behind the
// psdns_perfdiff tool and CI's perf-regression gate.
//
// Every numeric metric shared by baseline and current is classified by
// direction (keys containing speedup/bandwidth/flops/efficiency/
// throughput/rate count higher-is-better; everything else, notably the
// *seconds* timings, lower-is-better) and its signed worsening fraction
// is computed. A metric regresses when it worsens by more than the
// relative tolerance AND the absolute floor (two noise guards: the
// tolerance absorbs run-to-run jitter, the floor keeps microsecond-scale
// timings from tripping the gate on scheduler noise).

#include <string>
#include <vector>

namespace psdns::obs {

enum class MetricDirection { LowerIsBetter, HigherIsBetter };

/// Direction by key substring, as documented above.
MetricDirection infer_direction(const std::string& key);

struct PerfDiffOptions {
  /// Relative worsening tolerated before a metric counts as a regression
  /// (and, symmetrically, as an improvement).
  double rel_tolerance = 0.05;
  /// Absolute worsening floor: |current - baseline| must also exceed this
  /// (in the metric's own unit) to regress.
  double abs_floor = 1e-6;
  /// Metrics present in the baseline but absent from the current report
  /// fail the diff (a silently dropped benchmark is a regression too).
  bool fail_on_missing = true;
};

struct MetricDelta {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed worsening fraction: > 0 means worse than baseline, < 0 means
  /// better, regardless of direction. 0 when missing.
  double worsening = 0.0;
  MetricDirection direction = MetricDirection::LowerIsBetter;
  bool regression = false;
  bool improvement = false;
  bool missing = false;  // in baseline, absent from current
};

struct PerfDiffResult {
  std::string name;  // bench name from the baseline report
  std::vector<MetricDelta> deltas;
  int regressions = 0;
  int improvements = 0;
  int missing = 0;
  int added = 0;  // in current, absent from baseline (informational)
  // One-line run-manifest summaries (schema-v2 reports; empty for v1):
  // printed on regression so "what changed between these two numbers" is
  // answerable from the gate log alone.
  std::string baseline_manifest;
  std::string current_manifest;

  bool ok(const PerfDiffOptions& opts = {}) const {
    return regressions == 0 && (!opts.fail_on_missing || missing == 0);
  }
};

/// Parses two BENCH documents (schema v1 or v2) and compares their
/// metrics. Throws util::Error on malformed JSON or mismatched names.
PerfDiffResult perf_diff(const std::string& baseline_json,
                         const std::string& current_json,
                         const PerfDiffOptions& opts = {});

/// Human-readable report: one line per regression/improvement plus a
/// summary; verbose lists every compared metric. Regressing diffs also
/// print both run manifests when the reports carry them.
std::string format_report(const PerfDiffResult& result,
                          const PerfDiffOptions& opts = {},
                          bool verbose = false);

/// Machine-readable result (psdns_perfdiff --json): one JSON object with
/// the summary counts, both manifest summaries and every delta.
std::string to_json(const PerfDiffResult& result,
                    const PerfDiffOptions& opts = {});

}  // namespace psdns::obs
