#include "obs/health.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/json.hpp"

namespace psdns::obs {

const char* to_string(HealthMode mode) {
  switch (mode) {
    case HealthMode::Off: return "off";
    case HealthMode::Warn: return "warn";
    case HealthMode::Strict: return "strict";
  }
  return "?";
}

const char* to_string(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::Info: return "info";
    case HealthSeverity::Warn: return "warn";
    case HealthSeverity::Critical: return "critical";
  }
  return "?";
}

const char* to_string(HealthVerdict verdict) {
  switch (verdict) {
    case HealthVerdict::Healthy: return "healthy";
    case HealthVerdict::Degraded: return "degraded";
    case HealthVerdict::Abort: return "abort";
  }
  return "?";
}

HealthMode parse_health_mode(const std::string& name) {
  if (name == "off") return HealthMode::Off;
  if (name == "warn") return HealthMode::Warn;
  if (name == "strict") return HealthMode::Strict;
  util::raise("unknown health mode `" + name + "` (off|warn|strict)");
}

HealthConfig HealthConfig::from_env(HealthConfig base) {
  if (const char* mode = std::getenv("PSDNS_HEALTH")) {
    base.mode = parse_health_mode(mode);
  }
  return base;
}

HealthConfig HealthConfig::from_env() { return from_env(HealthConfig{}); }

std::string HealthReport::to_json() const {
  std::ostringstream os;
  os << "{\"verdict\":" << json_quote(to_string(verdict))
     << ",\"worst\":" << json_quote(to_string(worst))
     << ",\"evaluations\":" << evaluations << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const HealthEvent& e = events[i];
    os << (i == 0 ? "" : ",") << "{\"severity\":"
       << json_quote(to_string(e.severity)) << ",\"code\":"
       << json_quote(e.code) << ",\"message\":" << json_quote(e.message)
       << ",\"step\":" << e.step << ",\"value\":" << json_number(e.value)
       << ",\"threshold\":" << json_number(e.threshold) << "}";
  }
  os << "]}";
  return os.str();
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {}

void HealthMonitor::fire(HealthSeverity severity, const char* code,
                         std::string message, const HealthInput& input,
                         double value, double threshold) {
  HealthEvent e;
  e.severity = severity;
  e.code = code;
  e.message = std::move(message);
  e.step = input.step;
  e.value = value;
  e.threshold = threshold;
  report_.events.push_back(std::move(e));
}

HealthVerdict HealthMonitor::evaluate(const HealthInput& input) {
  last_begin_ = report_.events.size();
  ++report_.evaluations;

  // NaN/Inf guard: a non-finite diagnostic means the state itself has
  // gone non-finite (energy sums every |uhat|^2) - nothing downstream of
  // this step is salvageable, so it is always Critical.
  const struct {
    const char* code;
    double value;
  } finite_checks[] = {{"nan_energy", input.energy},
                       {"nan_dissipation", input.dissipation},
                       {"nan_umax", input.u_max}};
  for (const auto& check : finite_checks) {
    if (!std::isfinite(check.value)) {
      fire(HealthSeverity::Critical, check.code,
           std::string(check.code) + ": non-finite diagnostic", input,
           check.value, 0.0);
    }
  }

  // Energy-budget drift: physical decay/forcing moves energy by percent
  // per step; silent corruption moves it by orders of magnitude. The
  // comparison is against the previous evaluated step.
  if (config_.energy_drift_tol > 0.0 && have_last_energy_ &&
      std::isfinite(input.energy)) {
    const double base = std::max(std::abs(last_energy_), 1e-300);
    const double drift = std::abs(input.energy - last_energy_) / base;
    if (drift > config_.energy_drift_tol) {
      fire(HealthSeverity::Critical, "energy_drift",
           "relative energy jump exceeds tolerance", input, drift,
           config_.energy_drift_tol);
    }
  }
  if (std::isfinite(input.energy)) {
    last_energy_ = input.energy;
    have_last_energy_ = true;
  }

  // CFL bound on the *achieved* step: the driver picks dt from the
  // pre-step u_max, so a mid-step velocity explosion shows up here first.
  if (config_.cfl_max > 0.0 && input.dx > 0.0 &&
      std::isfinite(input.u_max)) {
    const double cfl = input.u_max * input.dt / input.dx;
    if (cfl > config_.cfl_max) {
      fire(HealthSeverity::Critical, "cfl_bound",
           "advective CFL number exceeds bound", input, cfl,
           config_.cfl_max);
    }
  }

  // Resolution floor: kmax*eta < 1 means the dissipation range has fallen
  // off the grid - the run keeps integrating but the small scales are
  // garbage. Degradation, not corruption.
  if (config_.kmax_eta_min > 0.0 && input.kmax > 0.0 &&
      std::isfinite(input.kolmogorov_eta)) {
    const double kmax_eta = input.kmax * input.kolmogorov_eta;
    if (kmax_eta < config_.kmax_eta_min) {
      fire(HealthSeverity::Warn, "kmax_eta",
           "spectral resolution below DNS floor", input, kmax_eta,
           config_.kmax_eta_min);
    }
  }

  if (config_.checkpoint_lag_max > 0 &&
      input.steps_since_checkpoint > config_.checkpoint_lag_max) {
    fire(HealthSeverity::Warn, "ckpt_lag",
         "too many steps since last durable checkpoint", input,
         static_cast<double>(input.steps_since_checkpoint),
         static_cast<double>(config_.checkpoint_lag_max));
  }

  if (config_.recoveries_max > 0 &&
      input.recoveries > config_.recoveries_max) {
    fire(HealthSeverity::Warn, "recoveries",
         "supervisor rollback count exceeds threshold", input,
         static_cast<double>(input.recoveries),
         static_cast<double>(config_.recoveries_max));
  }

  HealthVerdict verdict = HealthVerdict::Healthy;
  for (std::size_t i = last_begin_; i < report_.events.size(); ++i) {
    const HealthSeverity s = report_.events[i].severity;
    if (s == HealthSeverity::Critical) {
      verdict = HealthVerdict::Abort;
      break;
    }
    if (s == HealthSeverity::Warn) verdict = HealthVerdict::Degraded;
  }
  report_.verdict = verdict;
  if (static_cast<int>(verdict) > static_cast<int>(report_.worst)) {
    report_.worst = verdict;
  }
  return verdict;
}

std::vector<HealthEvent> HealthMonitor::last_events() const {
  return {report_.events.begin() +
              static_cast<std::ptrdiff_t>(last_begin_),
          report_.events.end()};
}

namespace {

std::string abort_message(std::int64_t step,
                          const std::vector<HealthEvent>& events) {
  std::ostringstream os;
  os << "health abort at step " << step << ":";
  for (const auto& e : events) {
    os << " [" << e.code << " value=" << e.value
       << " threshold=" << e.threshold << "]";
  }
  return os.str();
}

}  // namespace

HealthAbort::HealthAbort(std::int64_t step, std::vector<HealthEvent> events,
                         std::source_location loc)
    : util::Error(abort_message(step, events), loc),
      step_(step),
      events_(std::move(events)) {}

}  // namespace psdns::obs
