#pragma once
// Leveled structured logger: one JSON object per line with timestamp,
// level, subsystem, message, a rank/thread tag and free-form key=value
// fields. Level and sink are selected by environment variables
// (PSDNS_LOG_LEVEL=trace|debug|info|warn|error|off, PSDNS_LOG_FILE=path)
// or programmatically; the default is `warn` to stderr so the library is
// silent in tests and benches unless asked.
//
//   obs::log_event(obs::LogLevel::Info, "fft", "plan cache miss",
//                  {{"n", 18432}});
//   -> {"ts_ms":...,"level":"info","subsystem":"fft","rank":0,"thread":0,
//       "msg":"plan cache miss","n":18432}

#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>

namespace psdns::obs {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

const char* to_string(LogLevel level);
/// Accepts the lowercase names above; throws util::Error on anything else.
LogLevel parse_log_level(const std::string& name);

void set_log_level(LogLevel level);
LogLevel log_level();
bool log_enabled(LogLevel level);

/// Empty path restores the default stderr sink. Throws if the file cannot
/// be opened.
void set_log_file(const std::string& path);

/// Applies PSDNS_LOG_LEVEL and PSDNS_LOG_FILE when set. Safe to call more
/// than once; unknown level strings throw rather than being ignored.
void init_logging_from_env();

/// Rank tag stamped on every line emitted by this thread (-1 = untagged;
/// the functional communicator's rank threads set it at spawn).
void set_rank_tag(int rank);
int rank_tag();

/// One typed key=value pair of a log event.
struct LogField {
  enum class Kind { String, Number, Int, Bool };

  std::string key;
  Kind kind = Kind::String;
  std::string text;
  double number = 0.0;
  std::int64_t integer = 0;
  bool boolean = false;

  LogField(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::String), text(v) {}
  LogField(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::String), text(std::move(v)) {}
  LogField(std::string k, bool v)
      : key(std::move(k)), kind(Kind::Bool), boolean(v) {}
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogField(std::string k, T v)
      : key(std::move(k)), kind(Kind::Int),
        integer(static_cast<std::int64_t>(v)) {}
  template <class T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  LogField(std::string k, T v)
      : key(std::move(k)), kind(Kind::Number),
        number(static_cast<double>(v)) {}
};

/// Emits one JSON line when `level` passes the filter. Field keys must not
/// collide with the built-in ones (ts_ms, level, subsystem, rank, thread,
/// msg); collisions are not detected, last key wins in most parsers.
void log_event(LogLevel level, const std::string& subsystem,
               const std::string& message,
               std::initializer_list<LogField> fields = {});

}  // namespace psdns::obs
