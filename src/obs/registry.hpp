#pragma once
// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with percentile summaries, plus RAII scoped timers. Timers
// feed the registry and, when span capture is on, the buffer the Chrome
// trace exporter turns into one track per thread. Thread-safe; the
// hot-path cost is one mutex acquisition plus a map lookup, which the
// laptop-scale functional paths that carry instrumentation can afford.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.hpp"

namespace psdns::obs {

/// Percentile rule: while a histogram holds no more observations than its
/// raw-sample reservoir (Registry::kExactSampleCap, the common case for
/// per-step timings), percentiles are EXACT - linear interpolation between
/// the closest ranks of the sorted samples at rank p/100 * (count-1), the
/// same convention as numpy's default / R type 7. Beyond the reservoir the
/// summary falls back to linear interpolation inside the matching bucket,
/// clamped to the observed [min, max].
struct HistogramSummary {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class Registry {
 public:
  // Names are taken as string_view and the maps use transparent comparators,
  // so instrumentation sites that pass literals never materialize a
  // std::string (and so never allocate) once the metric exists.
  void counter_add(std::string_view name, std::int64_t delta = 1);
  /// 0 when the counter has never been touched.
  std::int64_t counter(std::string_view name) const;

  void gauge_set(std::string_view name, double value);
  double gauge(std::string_view name) const;

  /// Declares a histogram with explicit ascending bucket upper bounds.
  /// Re-declaring an existing histogram is an error; observing into an
  /// undeclared one creates it with default_bounds().
  void declare_histogram(std::string_view name, std::vector<double> bounds);
  void observe(std::string_view name, double value);
  HistogramSummary histogram(std::string_view name) const;

  MetricsSnapshot snapshot() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count,sum,min,max,p50,p95,p99}}}
  std::string to_json() const;
  void reset();

  /// Log-spaced seconds-oriented bounds, 1 us .. 1000 s, 4 per decade.
  static std::vector<double> default_bounds();

  /// Raw samples retained per histogram for exact small-count percentiles.
  static constexpr std::size_t kExactSampleCap = 256;

 private:
  struct Histogram {
    std::vector<double> bounds;           // ascending upper bucket edges
    std::vector<std::int64_t> buckets;    // bounds.size() + 1 (overflow last)
    std::vector<double> samples;          // first kExactSampleCap raw values
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  HistogramSummary summarize(const Histogram& h) const;

  mutable std::mutex mutex_;
  // std::less<> enables heterogeneous (string_view) lookup without building
  // a temporary std::string per hot-path call.
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// The process-wide registry all library instrumentation reports into.
Registry& registry();

/// Small dense per-thread index (0, 1, 2, ... in first-use order) used to
/// tag log lines and trace spans; stable for the thread's lifetime.
int thread_index();

// --- span capture (tracing of functional runs) ---

struct Span {
  std::string name;
  int thread = 0;     // thread_index() of the emitting thread
  double start_s = 0.0;  // seconds since capture was enabled
  double dur_s = 0.0;
};

/// Enabling clears previously captured spans and restarts the time origin.
void enable_span_capture(bool on);
bool span_capture_enabled();
std::vector<Span> captured_spans();
void clear_spans();

/// Records elapsed wall time into registry histogram `name` on destruction
/// (or stop()), and appends a Span when span capture is enabled.
/// The name is held by reference (no copy, no allocation): it must outlive
/// the timer, which every instrumentation site satisfies by passing a
/// string literal.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name, Registry& reg = registry());
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Stops early and returns the elapsed seconds; later calls (and the
  /// destructor) are no-ops.
  double stop();

 private:
  std::string_view name_;
  Registry& reg_;
  util::Stopwatch watch_;
  bool stopped_ = false;
};

}  // namespace psdns::obs
