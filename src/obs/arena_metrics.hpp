#pragma once
// Publishes util::WorkspaceArena statistics into the metrics registry.
// Lives in obs (not util) so the arena itself stays dependency-free at
// the bottom of the layering; callers snapshot whenever they want fresh
// gauges (benches do it once after the timed region, solvers after
// setup). Gauge names are the ones psdns_perfdiff gates on:
// alloc.arena.peak_bytes / resident_bytes / hits / misses are
// lower-is-better by the default direction inference, hit_rate matches
// the "rate" suffix and is higher-is-better.

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/arena.hpp"

namespace psdns::obs {

inline void publish_arena_metrics(
    const util::WorkspaceArena& arena = util::WorkspaceArena::global(),
    Registry& reg = registry()) {
  const util::WorkspaceArena::Stats st = arena.stats();
  reg.gauge_set("alloc.arena.peak_bytes",
                static_cast<double>(st.peak_bytes));
  reg.gauge_set("alloc.arena.resident_bytes",
                static_cast<double>(st.resident_bytes));
  reg.gauge_set("alloc.arena.hits", static_cast<double>(st.hits));
  reg.gauge_set("alloc.arena.misses", static_cast<double>(st.misses));
  const double requests = static_cast<double>(st.hits + st.misses);
  reg.gauge_set("alloc.arena.hit_rate",
                requests > 0.0 ? static_cast<double>(st.hits) / requests
                               : 0.0);
  trace_counter("arena.resident_bytes",
                static_cast<double>(st.resident_bytes));
  trace_counter("arena.peak_bytes", static_cast<double>(st.peak_bytes));
}

}  // namespace psdns::obs
