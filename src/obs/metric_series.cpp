#include "obs/metric_series.hpp"

#include <fstream>

#include "util/check.hpp"

namespace psdns::obs {

SeriesRing::SeriesRing(std::size_t capacity) : capacity_(capacity) {
  PSDNS_REQUIRE(capacity_ > 0, "series ring capacity must be positive");
  rows_.reserve(capacity_);
}

void SeriesRing::push(ReducedSnapshot snap) {
  if (rows_.size() < capacity_) {
    rows_.push_back(std::move(snap));
  } else {
    rows_[head_] = std::move(snap);
    head_ = (head_ + 1) % capacity_;
  }
  ++pushed_;
}

const ReducedSnapshot& SeriesRing::at(std::size_t i) const {
  PSDNS_REQUIRE(i < rows_.size(), "series ring index out of range");
  return rows_[(head_ + i) % rows_.size()];
}

const ReducedSnapshot* SeriesRing::latest() const {
  if (rows_.empty()) return nullptr;
  return &rows_[(head_ + rows_.size() - 1) % rows_.size()];
}

SeriesJsonlWriter::SeriesJsonlWriter(const std::string& path, Mode mode)
    : file_(std::fopen(path.c_str(),
                       mode == Mode::Append ? "ab" : "wb")),
      path_(path) {
  if (file_ == nullptr) {
    util::raise("cannot open telemetry series file " + path_);
  }
}

SeriesJsonlWriter::~SeriesJsonlWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SeriesJsonlWriter::append(const ReducedSnapshot& snap) {
  const std::string row = snap.to_json();
  if (std::fwrite(row.data(), 1, row.size(), file_) != row.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    util::raise("write failed on telemetry series file " + path_);
  }
}

std::vector<ReducedSnapshot> read_series_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) util::raise("cannot open telemetry series file " + path);
  std::vector<ReducedSnapshot> rows;
  std::string line;
  std::int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      rows.push_back(ReducedSnapshot::parse(line));
    } catch (const std::exception& e) {
      util::raise(path + ":" + std::to_string(lineno) +
                  ": malformed series row: " + e.what());
    }
  }
  return rows;
}

}  // namespace psdns::obs
