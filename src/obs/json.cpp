#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace psdns::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // Prefer the shorter representation when it round-trips exactly.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.15g", value);
  if (std::strtod(shorter, nullptr) == value) return shorter;
  return buf;
}

bool JsonValue::has(const std::string& key) const {
  return type == Type::Object && object.count(key) > 0;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  PSDNS_REQUIRE(type == Type::Object, "JSON value is not an object");
  const auto it = object.find(key);
  PSDNS_REQUIRE(it != object.end(), "missing JSON key: " + key);
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    PSDNS_REQUIRE(pos_ == text_.size(), "trailing garbage after JSON value");
    return v;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    PSDNS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object[key.string] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::String;
    while (true) {
      PSDNS_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        PSDNS_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                      "raw control character inside JSON string");
        v.string += c;
        continue;
      }
      PSDNS_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          v.string += e;
          break;
        case 'b':
          v.string += '\b';
          break;
        case 'f':
          v.string += '\f';
          break;
        case 'n':
          v.string += '\n';
          break;
        case 'r':
          v.string += '\r';
          break;
        case 't':
          v.string += '\t';
          break;
        case 'u': {
          PSDNS_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            PSDNS_REQUIRE(std::isxdigit(static_cast<unsigned char>(h)),
                          "bad hex digit in \\u escape");
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(h) - 'a' + 10);
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separate 3-byte sequences; good enough for the
          // telemetry payloads this parser validates).
          if (code < 0x80) {
            v.string += static_cast<char>(code);
          } else if (code < 0x800) {
            v.string += static_cast<char>(0xC0 | (code >> 6));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.string += static_cast<char>(0xE0 | (code >> 12));
            v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          util::raise(std::string("invalid JSON escape: \\") + e);
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      util::raise("invalid JSON literal");
    }
    return v;
  }

  JsonValue parse_null() {
    PSDNS_REQUIRE(text_.compare(pos_, 4, "null") == 0,
                  "invalid JSON literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    PSDNS_REQUIRE(pos_ > start, "invalid JSON number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::strtod(token.c_str(), &end);
    PSDNS_REQUIRE(end != nullptr && *end == '\0',
                  "invalid JSON number: " + token);
    return v;
  }

  char peek() const {
    PSDNS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    PSDNS_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                  std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace psdns::obs
