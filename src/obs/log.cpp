#include "obs/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

struct LogState {
  std::mutex mutex;
  std::atomic<LogLevel> level{LogLevel::Warn};
  std::FILE* sink = nullptr;  // nullptr = stderr
  std::string sink_path;
};

LogState& log_state() {
  static LogState state;
  return state;
}

thread_local int t_rank_tag = -1;

// Applied once before the first emission, so PSDNS_LOG_LEVEL/PSDNS_LOG_FILE
// work in every binary without an explicit init call. Programmatic
// set_log_level/set_log_file still win: they run eagerly, and the lazy init
// is a no-op when the variables are unset.
std::once_flag env_once;

void ensure_env_init() {
  std::call_once(env_once, [] { init_logging_from_env(); });
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "trace";
    case LogLevel::Debug:
      return "debug";
    case LogLevel::Info:
      return "info";
    case LogLevel::Warn:
      return "warn";
    case LogLevel::Error:
      return "error";
    case LogLevel::Off:
      return "off";
  }
  return "?";
}

LogLevel parse_log_level(const std::string& name) {
  for (const LogLevel l : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
    if (name == to_string(l)) return l;
  }
  util::raise("unknown log level: " + name +
              " (expected trace|debug|info|warn|error|off)");
}

void set_log_level(LogLevel level) { log_state().level.store(level); }

LogLevel log_level() { return log_state().level.load(); }

bool log_enabled(LogLevel level) {
  return level != LogLevel::Off && level >= log_level();
}

void set_log_file(const std::string& path) {
  auto& st = log_state();
  std::lock_guard lock(st.mutex);
  if (st.sink != nullptr) {
    std::fclose(st.sink);
    st.sink = nullptr;
  }
  st.sink_path.clear();
  if (path.empty()) return;
  st.sink = std::fopen(path.c_str(), "a");
  PSDNS_REQUIRE(st.sink != nullptr, "cannot open log file: " + path);
  st.sink_path = path;
}

void init_logging_from_env() {
  if (const char* level = std::getenv("PSDNS_LOG_LEVEL")) {
    set_log_level(parse_log_level(level));
  }
  if (const char* path = std::getenv("PSDNS_LOG_FILE")) {
    set_log_file(path);
  }
}

void set_rank_tag(int rank) { t_rank_tag = rank; }

int rank_tag() { return t_rank_tag; }

void log_event(LogLevel level, const std::string& subsystem,
               const std::string& message,
               std::initializer_list<LogField> fields) {
  ensure_env_init();
  if (!log_enabled(level)) return;

  std::ostringstream os;
  os << "{\"ts_ms\":" << now_ms() << ",\"level\":" << json_quote(to_string(level))
     << ",\"subsystem\":" << json_quote(subsystem)
     << ",\"rank\":" << t_rank_tag << ",\"thread\":" << thread_index()
     << ",\"msg\":" << json_quote(message);
  for (const LogField& f : fields) {
    os << "," << json_quote(f.key) << ":";
    switch (f.kind) {
      case LogField::Kind::String:
        os << json_quote(f.text);
        break;
      case LogField::Kind::Number:
        os << json_number(f.number);
        break;
      case LogField::Kind::Int:
        os << f.integer;
        break;
      case LogField::Kind::Bool:
        os << (f.boolean ? "true" : "false");
        break;
    }
  }
  os << "}\n";
  const std::string line = os.str();

  auto& st = log_state();
  std::lock_guard lock(st.mutex);
  std::FILE* out = st.sink != nullptr ? st.sink : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace psdns::obs
