#include "obs/span.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/trace_export.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace psdns::obs {

namespace {

struct ThreadRing {
  std::mutex mutex;  // owner-writes, collector-reads; uncontended in the hot path
  std::vector<SpanRecord> ring;
  std::size_t capacity = 0;
  std::size_t next = 0;           // next write slot (mod capacity)
  std::uint64_t written = 0;      // total spans ever written
};

struct TraceState {
  std::mutex mutex;
  std::atomic<bool> enabled{false};
  util::Stopwatch origin;
  std::size_t capacity = 1 << 16;
  std::uint64_t epoch = 0;  // bumped by set_tracing(true); stale rings reset
  std::string file;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  // Flow bookkeeping. `pending` keeps its entries after a consume so a
  // broadcast-shaped flow can fan out to several consumers.
  std::unordered_map<FlowId, SpanId> pending;
  std::vector<FlowEdge> edges;
  // Counter tracks (trace_counter). Bounded; overflow counts as dropped.
  std::vector<CounterSample> counters;
  std::int64_t counters_dropped = 0;
  static constexpr std::size_t kCounterCap = 1 << 20;
  std::atomic<std::uint64_t> next_span{1};
  std::atomic<std::uint64_t> next_flow{1};
};

TraceState& trace_state() {
  static TraceState state;
  return state;
}

struct OpenSpan {
  SpanId id;
};

struct ThreadLocalTrace {
  std::shared_ptr<ThreadRing> ring;
  std::uint64_t epoch = ~std::uint64_t{0};
  std::vector<OpenSpan> stack;
};

ThreadLocalTrace& tl_trace() {
  thread_local ThreadLocalTrace t;
  return t;
}

/// This thread's ring for the current epoch, (re)registering as needed.
ThreadRing& my_ring() {
  auto& st = trace_state();
  auto& tl = tl_trace();
  const std::uint64_t epoch = st.epoch;
  if (tl.ring == nullptr || tl.epoch != epoch) {
    auto ring = std::make_shared<ThreadRing>();
    {
      std::lock_guard lock(st.mutex);
      ring->capacity = st.capacity;
      ring->ring.resize(ring->capacity);
      st.rings.push_back(ring);
    }
    tl.ring = std::move(ring);
    tl.epoch = epoch;
    tl.stack.clear();
  }
  return *tl.ring;
}

std::once_flag env_once;

/// Set by any explicit set_tracing / init_tracing_from_env call; the lazy
/// first-use env read must not run after (and override) a programmatic
/// setting.
std::atomic<bool> env_settled{false};

void ensure_env_init() {
  std::call_once(env_once, [] {
    if (!env_settled.load(std::memory_order_acquire)) {
      init_tracing_from_env();
    }
  });
}

void write_trace_at_exit() {
  try {
    write_trace_if_configured();
  } catch (...) {
    // Exit paths must not throw; the trace is best-effort by design.
  }
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute:
      return "compute";
    case SpanKind::Transfer:
      return "transfer";
    case SpanKind::Comm:
      return "comm";
    case SpanKind::Io:
      return "io";
    case SpanKind::Other:
      return "other";
  }
  return "?";
}

void set_tracing(bool on) {
  env_settled.store(true, std::memory_order_release);
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  if (on) {
    // Restart: drop every thread's ring (threads re-register lazily via the
    // epoch check) and the flow bookkeeping, and reset the clock origin.
    st.rings.clear();
    st.pending.clear();
    st.edges.clear();
    st.counters.clear();
    st.counters_dropped = 0;
    ++st.epoch;
    st.origin.reset();
  }
  st.enabled.store(on, std::memory_order_release);
}

bool tracing() {
  ensure_env_init();
  return trace_state().enabled.load(std::memory_order_relaxed);
}

void init_tracing_from_env() {
  env_settled.store(true, std::memory_order_release);
  auto& st = trace_state();
  if (const char* v = std::getenv("PSDNS_TRACE")) {
    const std::string s(v);
    if (s == "1" || s == "true" || s == "on") {
      // Leave already-enabled tracing undisturbed: set_tracing(true) is a
      // restart (rings cleared, clock origin reset), and callers like the
      // campaign driver re-apply the environment on every run - inside
      // the service that would wipe the journey spans of earlier jobs.
      if (!st.enabled.load(std::memory_order_acquire)) set_tracing(true);
    } else if (s == "0" || s == "false" || s == "off") {
      set_tracing(false);
    } else {
      util::raise("unknown PSDNS_TRACE value: " + s +
                  " (expected 1|true|on|0|false|off)");
    }
  }
  if (const char* path = std::getenv("PSDNS_TRACE_FILE")) {
    static std::once_flag exit_once;
    set_trace_file(path);
    // The state singleton above is alive before the handler registers, so
    // the exit-time write runs before its destruction.
    std::call_once(exit_once, [] { std::atexit(write_trace_at_exit); });
  }
  (void)st;
}

void set_trace_file(const std::string& path) {
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  st.file = path;
}

std::string trace_file() {
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  return st.file;
}

void set_trace_capacity(std::size_t spans_per_thread) {
  PSDNS_REQUIRE(spans_per_thread >= 1, "trace capacity must be >= 1");
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  st.capacity = spans_per_thread;
}

SpanTrace collect_trace() {
  auto& st = trace_state();
  SpanTrace out;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard lock(st.mutex);
    rings = st.rings;
    out.edges = st.edges;
    out.counters = st.counters;
    out.dropped += st.counters_dropped;
  }
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    const std::uint64_t kept =
        std::min<std::uint64_t>(ring->written, ring->capacity);
    out.dropped += static_cast<std::int64_t>(ring->written - kept);
    // Oldest surviving span first: the ring wraps at `next`.
    for (std::uint64_t i = 0; i < kept; ++i) {
      const std::size_t slot =
          (ring->next + ring->capacity - kept + i) % ring->capacity;
      out.spans.push_back(ring->ring[slot]);
    }
  }
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_s < b.start_s;
                   });
  return out;
}

void clear_trace() {
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  st.rings.clear();
  st.pending.clear();
  st.edges.clear();
  st.counters.clear();
  st.counters_dropped = 0;
  ++st.epoch;
}

void write_trace_if_configured() {
  const std::string path = trace_file();
  if (path.empty()) return;
  const SpanTrace trace = collect_trace();
  if (trace.spans.empty()) return;
  write_text_file(path, to_chrome_trace(trace));
  log_event(LogLevel::Info, "obs", "trace written",
            {{"path", path},
             {"spans", static_cast<std::int64_t>(trace.spans.size())},
             {"edges", static_cast<std::int64_t>(trace.edges.size())},
             {"dropped", trace.dropped}});
}

SpanId current_span() {
  if (!tracing()) return 0;
  auto& tl = tl_trace();
  if (tl.epoch != trace_state().epoch || tl.stack.empty()) return 0;
  return tl.stack.back().id;
}

double trace_clock() {
  if (!tracing()) return 0.0;
  return trace_state().origin.seconds();
}

SpanId record_span(std::string_view name, SpanKind kind, double start_s,
                   double end_s, SpanId parent) {
  if (!tracing()) return 0;
  auto& st = trace_state();
  SpanRecord rec;
  const SpanId id = st.next_span.fetch_add(1, std::memory_order_relaxed);
  rec.id = id;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.kind = kind;
  rec.thread = thread_index();
  rec.rank = rank_tag();
  rec.start_s = start_s;
  rec.end_s = end_s;
  auto& ring = my_ring();
  std::lock_guard lock(ring.mutex);
  ring.ring[ring.next] = std::move(rec);
  ring.next = (ring.next + 1) % ring.capacity;
  ++ring.written;
  return id;
}

void link_spans(SpanId src, SpanId dst) {
  if (!tracing() || src == 0 || dst == 0 || src == dst) return;
  auto& st = trace_state();
  const FlowId flow = st.next_flow.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(st.mutex);
  st.edges.push_back(FlowEdge{flow, src, dst});
}

FlowId new_flow() {
  return trace_state().next_flow.fetch_add(1, std::memory_order_relaxed);
}

void flow_emit(FlowId flow) {
  if (!tracing() || flow == 0) return;
  const SpanId src = current_span();
  if (src == 0) return;
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  st.pending[flow] = src;
}

void flow_consume(FlowId flow) {
  if (!tracing() || flow == 0) return;
  const SpanId dst = current_span();
  if (dst == 0) return;
  auto& st = trace_state();
  std::lock_guard lock(st.mutex);
  const auto it = st.pending.find(flow);
  if (it == st.pending.end() || it->second == dst) return;
  st.edges.push_back(FlowEdge{flow, it->second, dst});
}

void trace_counter(std::string_view name, double value) {
  if (!tracing()) return;
  auto& st = trace_state();
  CounterSample sample;
  sample.name = std::string(name);
  sample.rank = rank_tag();
  sample.t_s = st.origin.seconds();
  sample.value = value;
  std::lock_guard lock(st.mutex);
  if (st.counters.size() >= TraceState::kCounterCap) {
    ++st.counters_dropped;
    return;
  }
  st.counters.push_back(std::move(sample));
}

TraceSpan::TraceSpan(std::string_view name, SpanKind kind) {
  if (!tracing()) return;
  auto& st = trace_state();
  auto& tl = tl_trace();
  my_ring();  // registers this thread for the current epoch
  id_ = st.next_span.fetch_add(1, std::memory_order_relaxed);
  name_ = std::string(name);
  kind_ = kind;
  start_s_ = st.origin.seconds();
  tl.stack.push_back(OpenSpan{id_});
}

TraceSpan::~TraceSpan() { end(); }

void TraceSpan::end() {
  if (id_ == 0) return;
  auto& st = trace_state();
  auto& tl = tl_trace();
  SpanRecord rec;
  rec.id = id_;
  id_ = 0;
  // A set_tracing(true) between construction and end invalidates this
  // span: its origin and stack belong to the previous epoch.
  if (tl.epoch != st.epoch) return;
  const double end_s = st.origin.seconds();
  // Unwind to this span (tolerates spans ended out of declaration order).
  while (!tl.stack.empty() && tl.stack.back().id != rec.id) tl.stack.pop_back();
  if (tl.stack.empty()) return;
  tl.stack.pop_back();
  rec.parent = tl.stack.empty() ? 0 : tl.stack.back().id;
  rec.name = std::move(name_);
  rec.kind = kind_;
  rec.thread = thread_index();
  rec.rank = rank_tag();
  rec.start_s = start_s_;
  rec.end_s = end_s;
  auto& ring = my_ring();
  std::lock_guard lock(ring.mutex);
  ring.ring[ring.next] = std::move(rec);
  ring.next = (ring.next + 1) % ring.capacity;
  ++ring.written;
}

}  // namespace psdns::obs
