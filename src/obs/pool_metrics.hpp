#pragma once
// Publishes the worker pool's runtime shape and accumulated busy time (plus
// the dispatched FFT SIMD backend) into a metrics registry, so the reduced
// telemetry snapshot records how the intra-rank parallel layer was actually
// configured and where its time went. Stage keys come from the string
// literals passed to ThreadPool::parallel_for ("fft.c2c.batch",
// "transpose.slab.pack", ...), sanitized into metric-key form.

#include <string>

#include "obs/registry.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace psdns::obs {

/// Gauge snapshot of the global pool + SIMD dispatch:
///   fft.simd.backend        0 = scalar, 1 = avx2 (util::simd::Backend)
///   pool.threads            configured pool width
///   pool.jobs               threaded parallel_for calls completed
///   pool.stripes            stripe executions across all jobs
///   pool.busy_seconds       total busy time summed over stripes
///   pool.busy_seconds.<stage>  per-stage breakdown
/// Cheap enough to call once per step; gauges overwrite, so the values are
/// cumulative-as-of-now rather than per-step deltas.
inline void publish_pool_metrics(Registry& reg) {
  reg.gauge_set("fft.simd.backend",
                static_cast<double>(util::simd::active_backend()));
  const auto& pool = util::ThreadPool::global();
  const auto stats = pool.stats();
  reg.gauge_set("pool.threads", static_cast<double>(pool.threads()));
  reg.gauge_set("pool.jobs", static_cast<double>(stats.jobs));
  reg.gauge_set("pool.stripes", static_cast<double>(stats.stripes));
  reg.gauge_set("pool.busy_seconds", stats.busy_seconds);
  for (const auto& stage : stats.stages) {
    reg.gauge_set(std::string("pool.busy_seconds.") + stage.name,
                  stage.busy_seconds);
  }
}

}  // namespace psdns::obs
