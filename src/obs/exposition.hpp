#pragma once
// Exposition formats for the live metrics endpoint: Prometheus text
// format 0.0.4 (what a scraper or `curl :port/metrics` reads) and a JSON
// document (what psdns_top and programmatic consumers read), both
// rendered from the latest ReducedSnapshot plus the health report.
//
// Prometheus naming: metric keys are sanitized (every character outside
// [a-zA-Z0-9_:] becomes '_') and prefixed "psdns_"; the cross-rank
// statistics ride on a {stat="sum|min|max|mean"} label and the straggler
// ranks on psdns_..._extreme_rank{stat="min|max"}. Counters keep counter
// semantics (the reduced sum of monotonic per-rank counters is
// monotonic); gauges are gauges; histogram summaries render as Prometheus
// summaries ({quantile="0.5|0.95|0.99"} plus _sum/_count and _min/_max).

#include <string>
#include <string_view>

#include "obs/health.hpp"
#include "obs/reduce.hpp"

namespace psdns::obs {

/// "pipeline.last_step.overlap_efficiency" -> "psdns_pipeline_last_step_
/// overlap_efficiency".
std::string prometheus_name(std::string_view key);

/// Prometheus text exposition of one reduced snapshot + health state.
/// Includes psdns_up, psdns_step, psdns_ranks and psdns_health_status
/// (0 healthy / 1 degraded / 2 abort) plus every counter and gauge.
std::string to_prometheus(const ReducedSnapshot& snap,
                          const HealthReport& health);

/// {"snapshot": <ReducedSnapshot::to_json()>, "health": <report json>}.
std::string to_exposition_json(const ReducedSnapshot& snap,
                               const HealthReport& health);

}  // namespace psdns::obs
