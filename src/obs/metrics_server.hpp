#pragma once
// Live metrics endpoint: a minimal HTTP/1.1 server on a rank-0 background
// thread serving the latest published exposition documents. Off by
// default; enabled per-campaign (CampaignConfig) or process-wide with
// PSDNS_METRICS_PORT. Port 0 binds an ephemeral port (tests and parallel
// CI jobs); port() reports the bound one.
//
// Routes:
//   /metrics - Prometheus text format 0.0.4 (latest reduced snapshot)
//   /json    - {"snapshot":..., "health":...} JSON
//   /health  - health report JSON alone (200 while verdict != abort,
//              503 on abort - a load-balancer-shaped liveness probe)
//   anything else - 404
//
// The server thread only ever reads the documents under a mutex;
// publish() swaps them in from the campaign loop. One request per
// connection (Connection: close), loopback bind by default - this is a
// control-plane peephole, not a web server.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace psdns::obs {

class MetricsServer {
 public:
  struct Options {
    int port = 0;                     // 0 = ephemeral
    std::string bind = "127.0.0.1";
  };

  /// Binds, listens and starts the serving thread; throws util::Error
  /// (naming the port) when the socket cannot be bound.
  explicit MetricsServer(Options options);
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// Atomically replaces the served documents. `unhealthy` switches
  /// /health to 503.
  void publish(std::string prometheus, std::string json,
               std::string health_json, bool unhealthy = false);

  /// Requests served so far (all routes, including 404s).
  std::int64_t requests() const { return requests_.load(); }

  /// nullptr when PSDNS_METRICS_PORT is unset; otherwise a server bound
  /// to that port (the value must parse as an integer in [0, 65535]).
  static std::unique_ptr<MetricsServer> from_env();

 private:
  void serve();
  void handle(int client_fd);

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<std::int64_t> requests_{0};
  std::mutex mutex_;
  std::string prometheus_ = "# TYPE psdns_up gauge\npsdns_up 1\n";
  std::string json_ = "{}";
  std::string health_json_ = "{}";
  bool unhealthy_ = false;
  std::thread thread_;
};

/// Tiny blocking HTTP GET used by psdns_top and the endpoint tests:
/// returns the response body; `status` (optional) receives the HTTP
/// status code. Throws util::Error on connect/IO failure.
std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status = nullptr);

}  // namespace psdns::obs
