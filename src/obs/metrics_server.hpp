#pragma once
// Live metrics endpoint: the rank-0 telemetry peephole, now a thin adapter
// over the reusable net::HttpServer (the socket loop and request parsing
// live in net/http.*; this file only owns the served documents). Off by
// default; enabled per-campaign (CampaignConfig) or process-wide with
// PSDNS_METRICS_PORT. Port 0 binds an ephemeral port (tests and parallel
// CI jobs); port() reports the bound one.
//
// Routes:
//   /metrics - Prometheus text format 0.0.4 (latest reduced snapshot)
//   /json    - {"snapshot":..., "health":...} JSON
//   /health  - health report JSON alone (200 while verdict != abort,
//              503 on abort - a load-balancer-shaped liveness probe)
//   anything else - 404
//
// The handler only ever reads the documents under a mutex; publish()
// swaps them in from the campaign loop.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/http.hpp"

namespace psdns::obs {

class MetricsServer {
 public:
  struct Options {
    int port = 0;                     // 0 = ephemeral
    std::string bind = "127.0.0.1";
  };

  /// Binds, listens and starts the serving thread; throws util::Error
  /// (naming the port) when the socket cannot be bound.
  explicit MetricsServer(Options options);
  ~MetricsServer();
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return server_->port(); }

  /// Atomically replaces the served documents. `unhealthy` switches
  /// /health to 503.
  void publish(std::string prometheus, std::string json,
               std::string health_json, bool unhealthy = false);

  /// Requests served so far (all routes, including 404s).
  std::int64_t requests() const { return server_->requests(); }

  /// nullptr when PSDNS_METRICS_PORT is unset; otherwise a server bound
  /// to that port (the value must parse as an integer in [0, 65535]).
  static std::unique_ptr<MetricsServer> from_env();

 private:
  net::HttpResponse handle(const net::HttpRequest& request);

  std::mutex mutex_;
  std::string prometheus_ = "# TYPE psdns_up gauge\npsdns_up 1\n";
  std::string json_ = "{}";
  std::string health_json_ = "{}";
  bool unhealthy_ = false;
  std::unique_ptr<net::HttpServer> server_;  // last: handler reads the above
};

/// Tiny blocking HTTP GET used by psdns_top and the endpoint tests:
/// returns the response body; `status` (optional) receives the HTTP
/// status code. `timeout_s` bounds the whole exchange (the seed version
/// blocked forever on a stalled peer); <= 0 waits forever. Throws
/// util::Error on connect/IO failure or timeout. Forwards to
/// net::http_get; for a retrying client see svc::fetch (which wraps this
/// path in a resilience::RetryPolicy).
std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status = nullptr,
                     double timeout_s = 30.0);

}  // namespace psdns::obs
