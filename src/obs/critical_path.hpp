#pragma once
// Critical-path and overlap analysis of a DNS step: turns a trace - either
// the co-simulator's sim::OpRecord lanes or a causal span trace
// (obs/span.hpp) - into the two numbers the paper's asynchronism claim is
// about:
//
//  * overlap efficiency: the fraction of transfer+comm busy time hidden
//    under concurrent compute (Fig. 4's batched schedule as a metric -
//    ~0 for the serialized ablation, close to 1 when the pipeline works);
//  * critical-path attribution: the step's wall time split into compute /
//    exposed comm / exposed transfer / other / idle, by sweeping the
//    timeline and charging each instant to the highest-priority active
//    category (compute > comm > transfer > other). The buckets sum to the
//    analyzed makespan, so "what would speeding up X buy" reads directly
//    off the report.
//
// For span traces a true DAG walk is also provided: same-thread ordering
// plus the recorded flow edges form the dependency graph, and the longest
// chain of leaf spans (by summed duration) is the critical path.

#include <string>
#include <vector>

#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace psdns::obs {

/// Wall-time attribution; all fields in seconds. total = compute + comm +
/// transfer + other + idle (up to rounding).
struct PathAttribution {
  double total = 0.0;     // analyzed interval (first start .. last finish)
  double compute = 0.0;   // >= 1 compute op active
  double comm = 0.0;      // exposed communication (no compute active)
  double transfer = 0.0;  // exposed CPU<->GPU traffic (no compute, no comm)
  double other = 0.0;     // exposed host-side / misc work
  double idle = 0.0;      // nothing active
};

/// Overlap of traffic (transfer + comm) with compute. Overlap is judged
/// per rank: traffic counts as hidden only while compute of the *same*
/// rank is active (for OpRecords the rank is the lane-name prefix before
/// the first '.'; for spans it is the rank tag). Two ranks coincidentally
/// busy at the same instant is not the schedule hiding anything.
struct OverlapStats {
  double compute_busy = 0.0;   // union of compute intervals, summed per rank
  double traffic_busy = 0.0;   // union of transfer+comm intervals, per rank
  double hidden = 0.0;         // traffic under same-rank concurrent compute
  double exposed = 0.0;        // traffic with no same-rank compute active
  /// Achieved overlap over achievable overlap: hidden divided by
  /// sum-per-rank min(compute_busy, traffic_busy), the most a schedule
  /// could possibly hide (whichever of compute or traffic is shorter can
  /// at best run entirely under the other). 0 for a serialized schedule,
  /// 1 for perfect pipelining, regardless of whether compute or
  /// communication dominates the step.
  double overlap_efficiency = 0.0;
};

// --- sim::OpRecord lanes (the co-simulated Fig.-10 timelines) ---
// Category buckets: Compute+Cpu -> compute; Mpi -> comm; H2D+D2H+Unpack ->
// transfer; Wait+Other -> other.

OverlapStats overlap_stats(const std::vector<sim::OpRecord>& records);
PathAttribution attribute_wall_time(const std::vector<sim::OpRecord>& records);

// --- span traces (real wall-clock runs under PSDNS_TRACE) ---
// Only leaf spans (spans no other span names as parent) enter the
// analysis; enclosing phase spans would double-count their children.

OverlapStats overlap_stats(const SpanTrace& trace);
PathAttribution attribute_wall_time(const SpanTrace& trace);

/// Longest dependency chain of leaf spans. Predecessors of a span are the
/// latest earlier leaf on the same (thread, rank) lane plus every span
/// with a recorded flow edge into it; the chain maximizing summed span
/// duration is returned, earliest span first.
struct CriticalPath {
  std::vector<SpanRecord> spans;  // the chain, in time order
  double path_seconds = 0.0;      // summed durations along the chain
  PathAttribution attribution;    // the chain's time by span kind; gaps
                                  // between consecutive chain spans -> idle
};

CriticalPath critical_path(const SpanTrace& trace);

/// Human-readable one-line summaries for logs and bench tables.
std::string to_string(const OverlapStats& s);
std::string to_string(const PathAttribution& a);

}  // namespace psdns::obs
