#include "obs/metrics_server.hpp"

#include <cstdlib>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::obs {

MetricsServer::MetricsServer(Options options) {
  net::HttpServer::Options server_opts;
  server_opts.port = options.port;
  server_opts.bind = options.bind;
  server_ = std::make_unique<net::HttpServer>(
      server_opts,
      [this](const net::HttpRequest& request) { return handle(request); });
}

MetricsServer::~MetricsServer() = default;

void MetricsServer::publish(std::string prometheus, std::string json,
                            std::string health_json, bool unhealthy) {
  const std::lock_guard<std::mutex> lock(mutex_);
  prometheus_ = std::move(prometheus);
  json_ = std::move(json);
  health_json_ = std::move(health_json);
  unhealthy_ = unhealthy;
}

std::unique_ptr<MetricsServer> MetricsServer::from_env() {
  const char* value = std::getenv("PSDNS_METRICS_PORT");
  if (value == nullptr || *value == '\0') return nullptr;
  char* end = nullptr;
  const long port = std::strtol(value, &end, 10);
  PSDNS_REQUIRE(end != value && *end == '\0' && port >= 0 && port <= 65535,
                "PSDNS_METRICS_PORT must be an integer in [0, 65535]");
  Options options;
  options.port = static_cast<int>(port);
  return std::make_unique<MetricsServer>(options);
}

net::HttpResponse MetricsServer::handle(const net::HttpRequest& request) {
  registry().counter_add("telemetry.http.requests");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (request.path == "/metrics") {
    return net::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                             prometheus_};
  }
  if (request.path == "/json" || request.path == "/") {
    return net::HttpResponse::json(json_);
  }
  if (request.path == "/health") {
    return net::HttpResponse::json(health_json_, unhealthy_ ? 503 : 200);
  }
  return net::HttpResponse::not_found();
}

std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status, double timeout_s) {
  return net::http_get(host, port, path, status, timeout_s);
}

}  // namespace psdns::obs
