#include "obs/metrics_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes the whole buffer, retrying on short writes; false on error.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(int status, const char* reason,
                          const char* content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

MetricsServer::MetricsServer(Options options) {
  PSDNS_REQUIRE(options.port >= 0 && options.port <= 65535,
                "metrics port out of range");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) util::raise("metrics server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    util::raise("metrics server: bad bind address " + options.bind);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    close_fd(listen_fd_);
    util::raise("metrics server: cannot bind port " +
                std::to_string(options.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  // Self-pipe so the destructor can wake the poll() loop without closing
  // a descriptor another thread is blocked on.
  if (::pipe(stop_pipe_) != 0) {
    close_fd(listen_fd_);
    util::raise("metrics server: pipe() failed");
  }
  thread_ = std::thread([this] { serve(); });
}

MetricsServer::~MetricsServer() {
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void MetricsServer::publish(std::string prometheus, std::string json,
                            std::string health_json, bool unhealthy) {
  const std::lock_guard<std::mutex> lock(mutex_);
  prometheus_ = std::move(prometheus);
  json_ = std::move(json);
  health_json_ = std::move(health_json);
  unhealthy_ = unhealthy;
}

std::unique_ptr<MetricsServer> MetricsServer::from_env() {
  const char* value = std::getenv("PSDNS_METRICS_PORT");
  if (value == nullptr || *value == '\0') return nullptr;
  char* end = nullptr;
  const long port = std::strtol(value, &end, 10);
  PSDNS_REQUIRE(end != value && *end == '\0' && port >= 0 && port <= 65535,
                "PSDNS_METRICS_PORT must be an integer in [0, 65535]");
  Options options;
  options.port = static_cast<int>(port);
  return std::make_unique<MetricsServer>(options);
}

void MetricsServer::serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // destructor woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsServer::handle(int client_fd) {
  // Read until the end of the request head (we only need the request
  // line); cap the read so a garbage peer cannot grow the buffer.
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1);
  registry().counter_add("telemetry.http.requests");

  std::string path = "/";
  const std::size_t sp1 = request.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) path = request.substr(sp1 + 1, sp2 - sp1 - 1);
  }

  std::string response;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (path == "/metrics") {
      response = http_response(200, "OK",
                               "text/plain; version=0.0.4; charset=utf-8",
                               prometheus_);
    } else if (path == "/json" || path == "/") {
      response = http_response(200, "OK", "application/json", json_);
    } else if (path == "/health") {
      response = unhealthy_
                     ? http_response(503, "Service Unavailable",
                                     "application/json", health_json_)
                     : http_response(200, "OK", "application/json",
                                     health_json_);
    } else {
      response = http_response(404, "Not Found", "text/plain",
                               "not found\n");
    }
  }
  write_all(client_fd, response.data(), response.size());
}

std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) util::raise("http_get: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    util::raise("http_get: bad host " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    util::raise("http_get: cannot connect to " + host + ":" +
                std::to_string(port));
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    util::raise("http_get: request write failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    util::raise("http_get: malformed response from " + host + ":" +
                std::to_string(port));
  }
  if (status != nullptr) {
    *status = 0;
    const std::size_t sp = response.find(' ');
    if (sp != std::string::npos) {
      *status = std::atoi(response.c_str() + sp + 1);
    }
  }
  return response.substr(head_end + 4);
}

}  // namespace psdns::obs
