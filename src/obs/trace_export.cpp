#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

void append_metadata(std::ostringstream& os, int pid, const std::string& kind,
                     int tid, const std::string& name, bool& first) {
  os << (first ? "" : ",\n") << "{\"name\":" << json_quote(kind)
     << ",\"ph\":\"M\",\"ts\":0,\"dur\":0,\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":" << json_quote(name)
     << "}}";
  first = false;
}

void append_complete_event(std::ostringstream& os,
                           const ChromeTraceOptions& opt,
                           const std::string& name, const char* category,
                           const char* cname, int pid, int tid,
                           double start_s, double dur_s, bool& first) {
  os << (first ? "" : ",\n") << "{\"name\":" << json_quote(name)
     << ",\"cat\":" << json_quote(category) << ",\"ph\":\"X\",\"ts\":"
     << json_number(start_s * opt.seconds_to_us)
     << ",\"dur\":" << json_number(dur_s * opt.seconds_to_us)
     << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (cname != nullptr) os << ",\"cname\":" << json_quote(cname);
  os << "}";
  first = false;
}

/// Counter-track sample (ph "C"): Perfetto renders each distinct name as
/// a stacked-area track alongside the span lanes.
void append_counter_event(std::ostringstream& os,
                          const ChromeTraceOptions& opt,
                          const std::string& name, int pid, double ts_s,
                          double value, bool& first) {
  os << (first ? "" : ",\n") << "{\"name\":" << json_quote(name)
     << ",\"ph\":\"C\",\"ts\":" << json_number(ts_s * opt.seconds_to_us)
     << ",\"pid\":" << pid << ",\"tid\":0,\"args\":{\"value\":"
     << json_number(value) << "}}";
  first = false;
}

/// One half of a Chrome flow-event pair ("s" start / "f" finish).
void append_flow_event(std::ostringstream& os, const ChromeTraceOptions& opt,
                       const char* phase, std::uint64_t id, int pid, int tid,
                       double ts_s, bool& first) {
  os << (first ? "" : ",\n")
     << "{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"" << phase
     << "\",\"id\":" << id
     << ",\"ts\":" << json_number(ts_s * opt.seconds_to_us)
     << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (phase[0] == 'f') os << ",\"bp\":\"e\"";
  os << "}";
  first = false;
}

}  // namespace

const char* chrome_color(sim::OpCategory category) {
  // Stable chrome://tracing palette names, matching the paper's Fig.-4
  // scheme: transfers blue, compute green, network red.
  switch (category) {
    case sim::OpCategory::H2D:
      return "thread_state_iowait";  // blue
    case sim::OpCategory::D2H:
      return "thread_state_sleeping";  // light blue-grey
    case sim::OpCategory::Compute:
      return "thread_state_running";  // green
    case sim::OpCategory::Unpack:
      return "thread_state_runnable";  // teal
    case sim::OpCategory::Mpi:
      return "terrible";  // red
    case sim::OpCategory::Cpu:
      return "good";  // dark green
    case sim::OpCategory::Wait:
      return "grey";
    case sim::OpCategory::Other:
      return "generic_work";
  }
  return "generic_work";
}

std::string to_chrome_trace(const std::vector<sim::OpRecord>& records,
                            const ChromeTraceOptions& options) {
  // Lane -> tid in order of first appearance, so related streams of one
  // rank stay adjacent in the viewer.
  std::map<std::string, int> lane_tid;
  std::vector<const std::string*> lane_order;
  for (const auto& r : records) {
    if (lane_tid.emplace(r.lane, static_cast<int>(lane_tid.size())).second) {
      lane_order.push_back(&r.lane);
    }
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  append_metadata(os, options.pid, "process_name", 0, options.process_name,
                  first);
  for (const std::string* lane : lane_order) {
    append_metadata(os, options.pid, "thread_name", lane_tid[*lane], *lane,
                    first);
  }
  for (const auto& r : records) {
    append_complete_event(os, options, r.label, sim::to_string(r.category),
                          chrome_color(r.category), options.pid,
                          lane_tid[r.lane], r.start, r.duration(), first);
  }
  os << "\n]\n";
  return os.str();
}

std::string spans_to_chrome_trace(const std::vector<Span>& spans,
                                  const ChromeTraceOptions& options) {
  std::map<int, int> thread_tid;
  std::vector<int> thread_order;
  for (const auto& s : spans) {
    if (thread_tid.emplace(s.thread, static_cast<int>(thread_tid.size()))
            .second) {
      thread_order.push_back(s.thread);
    }
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  append_metadata(os, options.pid, "process_name", 0, options.process_name,
                  first);
  for (const int thread : thread_order) {
    append_metadata(os, options.pid, "thread_name", thread_tid[thread],
                    "thread " + std::to_string(thread), first);
  }
  for (const auto& s : spans) {
    append_complete_event(os, options, s.name, "timer", nullptr, options.pid,
                          thread_tid[s.thread], s.start_s, s.dur_s, first);
  }
  os << "\n]\n";
  return os.str();
}

const char* chrome_color(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute:
      return "thread_state_running";  // green
    case SpanKind::Transfer:
      return "thread_state_iowait";  // blue
    case SpanKind::Comm:
      return "terrible";  // red
    case SpanKind::Io:
      return "thread_state_sleeping";  // light blue-grey
    case SpanKind::Other:
      return "generic_work";
  }
  return "generic_work";
}

std::string to_chrome_trace(const SpanTrace& trace,
                            const ChromeTraceOptions& options) {
  // Rank -> process, thread -> track. thread_index() is process-unique, so
  // tids never collide across the rank processes.
  const auto pid_of = [&](int rank) {
    return rank >= 0 ? options.pid + rank + 1 : options.pid;
  };
  std::map<int, std::vector<int>> rank_threads;  // rank -> sorted tids
  std::map<SpanId, const SpanRecord*> by_id;
  for (const auto& s : trace.spans) {
    auto& threads = rank_threads[s.rank];
    if (std::find(threads.begin(), threads.end(), s.thread) == threads.end()) {
      threads.push_back(s.thread);
    }
    by_id.emplace(s.id, &s);
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  for (auto& [rank, threads] : rank_threads) {
    std::sort(threads.begin(), threads.end());
    const std::string pname =
        rank >= 0 ? options.process_name + " rank " + std::to_string(rank)
                  : options.process_name;
    append_metadata(os, pid_of(rank), "process_name", 0, pname, first);
    for (const int tid : threads) {
      append_metadata(os, pid_of(rank), "thread_name", tid,
                      "thread " + std::to_string(tid), first);
    }
  }
  for (const auto& s : trace.spans) {
    append_complete_event(os, options, s.name, to_string(s.kind),
                          chrome_color(s.kind), pid_of(s.rank), s.thread,
                          s.start_s, s.duration(), first);
  }
  // Causal edges as flow-event pairs: the arrow leaves the source span at
  // its end and lands on the destination span at its start.
  std::uint64_t flow_seq = 0;
  for (const auto& e : trace.edges) {
    const auto src = by_id.find(e.src);
    const auto dst = by_id.find(e.dst);
    if (src == by_id.end() || dst == by_id.end()) continue;
    ++flow_seq;
    append_flow_event(os, options, "s", flow_seq, pid_of(src->second->rank),
                      src->second->thread, src->second->end_s, first);
    append_flow_event(os, options, "f", flow_seq, pid_of(dst->second->rank),
                      dst->second->thread, dst->second->start_s, first);
  }
  // Per-step gauge samples as counter tracks, grouped under the process
  // of the rank that sampled them (untagged samples under the base pid).
  for (const auto& c : trace.counters) {
    append_counter_event(os, options, c.name, pid_of(c.rank), c.t_s,
                         c.value, first);
  }
  os << "\n]\n";
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PSDNS_REQUIRE(f != nullptr, "cannot open file for writing: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  PSDNS_REQUIRE(written == text.size(), "short write to " + path);
}

}  // namespace psdns::obs
