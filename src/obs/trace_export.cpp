#include "obs/trace_export.hpp"

#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

void append_metadata(std::ostringstream& os, const ChromeTraceOptions& opt,
                     const std::string& kind, int tid,
                     const std::string& name, bool& first) {
  os << (first ? "" : ",\n") << "{\"name\":" << json_quote(kind)
     << ",\"ph\":\"M\",\"ts\":0,\"dur\":0,\"pid\":" << opt.pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":" << json_quote(name)
     << "}}";
  first = false;
}

void append_complete_event(std::ostringstream& os,
                           const ChromeTraceOptions& opt,
                           const std::string& name, const char* category,
                           const char* cname, int tid, double start_s,
                           double dur_s, bool& first) {
  os << (first ? "" : ",\n") << "{\"name\":" << json_quote(name)
     << ",\"cat\":" << json_quote(category) << ",\"ph\":\"X\",\"ts\":"
     << json_number(start_s * opt.seconds_to_us)
     << ",\"dur\":" << json_number(dur_s * opt.seconds_to_us)
     << ",\"pid\":" << opt.pid << ",\"tid\":" << tid;
  if (cname != nullptr) os << ",\"cname\":" << json_quote(cname);
  os << "}";
  first = false;
}

}  // namespace

const char* chrome_color(sim::OpCategory category) {
  // Stable chrome://tracing palette names, matching the paper's Fig.-4
  // scheme: transfers blue, compute green, network red.
  switch (category) {
    case sim::OpCategory::H2D:
      return "thread_state_iowait";  // blue
    case sim::OpCategory::D2H:
      return "thread_state_sleeping";  // light blue-grey
    case sim::OpCategory::Compute:
      return "thread_state_running";  // green
    case sim::OpCategory::Unpack:
      return "thread_state_runnable";  // teal
    case sim::OpCategory::Mpi:
      return "terrible";  // red
    case sim::OpCategory::Cpu:
      return "good";  // dark green
    case sim::OpCategory::Wait:
      return "grey";
    case sim::OpCategory::Other:
      return "generic_work";
  }
  return "generic_work";
}

std::string to_chrome_trace(const std::vector<sim::OpRecord>& records,
                            const ChromeTraceOptions& options) {
  // Lane -> tid in order of first appearance, so related streams of one
  // rank stay adjacent in the viewer.
  std::map<std::string, int> lane_tid;
  std::vector<const std::string*> lane_order;
  for (const auto& r : records) {
    if (lane_tid.emplace(r.lane, static_cast<int>(lane_tid.size())).second) {
      lane_order.push_back(&r.lane);
    }
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  append_metadata(os, options, "process_name", 0, options.process_name,
                  first);
  for (const std::string* lane : lane_order) {
    append_metadata(os, options, "thread_name", lane_tid[*lane], *lane,
                    first);
  }
  for (const auto& r : records) {
    append_complete_event(os, options, r.label, sim::to_string(r.category),
                          chrome_color(r.category), lane_tid[r.lane],
                          r.start, r.duration(), first);
  }
  os << "\n]\n";
  return os.str();
}

std::string spans_to_chrome_trace(const std::vector<Span>& spans,
                                  const ChromeTraceOptions& options) {
  std::map<int, int> thread_tid;
  std::vector<int> thread_order;
  for (const auto& s : spans) {
    if (thread_tid.emplace(s.thread, static_cast<int>(thread_tid.size()))
            .second) {
      thread_order.push_back(s.thread);
    }
  }

  std::ostringstream os;
  os << "[\n";
  bool first = true;
  append_metadata(os, options, "process_name", 0, options.process_name,
                  first);
  for (const int thread : thread_order) {
    append_metadata(os, options, "thread_name", thread_tid[thread],
                    "thread " + std::to_string(thread), first);
  }
  for (const auto& s : spans) {
    append_complete_event(os, options, s.name, "timer", nullptr,
                          thread_tid[s.thread], s.start_s, s.dur_s, first);
  }
  os << "\n]\n";
  return os.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PSDNS_REQUIRE(f != nullptr, "cannot open file for writing: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  PSDNS_REQUIRE(written == text.size(), "short write to " + path);
}

}  // namespace psdns::obs
