#include "obs/reduce.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::obs {

namespace {

void merge_value(std::map<std::string, ReducedValue>& out,
                 const std::string& key, double value, int rank) {
  auto [it, inserted] = out.try_emplace(key);
  ReducedValue& v = it->second;
  if (inserted) {
    v.sum = v.min = v.max = value;
    v.min_rank = v.max_rank = rank;
    v.count = 1;
    return;
  }
  v.sum += value;
  if (value < v.min) {
    v.min = value;
    v.min_rank = rank;
  }
  if (value > v.max) {
    v.max = value;
    v.max_rank = rank;
  }
  ++v.count;
}

void finalize_means(std::map<std::string, ReducedValue>& out) {
  for (auto& [key, v] : out) {
    v.mean = v.count > 0 ? v.sum / v.count : 0.0;
  }
}

void write_reduced_map(std::ostringstream& os, const char* section,
                       const std::map<std::string, ReducedValue>& map) {
  os << json_quote(section) << ":{";
  bool first = true;
  for (const auto& [key, v] : map) {
    if (!first) os << ",";
    first = false;
    os << json_quote(key) << ":{\"sum\":" << json_number(v.sum)
       << ",\"min\":" << json_number(v.min)
       << ",\"max\":" << json_number(v.max)
       << ",\"mean\":" << json_number(v.mean)
       << ",\"min_rank\":" << v.min_rank << ",\"max_rank\":" << v.max_rank
       << ",\"count\":" << v.count << "}";
  }
  os << "}";
}

/// Count-weighted merge of one rank's histogram summary into the union.
/// Quantiles average weighted by observation count; min/max take the
/// extremes; count and sum add.
void merge_histogram(std::map<std::string, HistogramSummary>& out,
                     const std::string& key, const HistogramSummary& h) {
  auto [it, inserted] = out.try_emplace(key, h);
  if (inserted) return;
  HistogramSummary& m = it->second;
  const double total = static_cast<double>(m.count + h.count);
  if (total > 0.0) {
    const double wm = static_cast<double>(m.count) / total;
    const double wh = static_cast<double>(h.count) / total;
    m.p50 = wm * m.p50 + wh * h.p50;
    m.p95 = wm * m.p95 + wh * h.p95;
    m.p99 = wm * m.p99 + wh * h.p99;
  }
  if (h.count > 0) {
    m.min = m.count > 0 ? std::min(m.min, h.min) : h.min;
    m.max = m.count > 0 ? std::max(m.max, h.max) : h.max;
  }
  m.count += h.count;
  m.sum += h.sum;
  m.p50 = std::clamp(m.p50, m.min, m.max);
  m.p95 = std::clamp(m.p95, m.min, m.max);
  m.p99 = std::clamp(m.p99, m.min, m.max);
}

void write_histogram_map(std::ostringstream& os,
                         const std::map<std::string, HistogramSummary>& map) {
  os << "\"histograms\":{";
  bool first = true;
  for (const auto& [key, h] : map) {
    if (!first) os << ",";
    first = false;
    os << json_quote(key) << ":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"p50\":" << json_number(h.p50)
       << ",\"p95\":" << json_number(h.p95)
       << ",\"p99\":" << json_number(h.p99) << "}";
  }
  os << "}";
}

HistogramSummary parse_histogram(const JsonValue& val) {
  HistogramSummary h;
  h.count = static_cast<std::int64_t>(val.at("count").number);
  h.sum = val.at("sum").number;
  h.min = val.at("min").number;
  h.max = val.at("max").number;
  h.p50 = val.at("p50").number;
  h.p95 = val.at("p95").number;
  h.p99 = val.at("p99").number;
  return h;
}

std::map<std::string, ReducedValue> parse_reduced_map(const JsonValue& obj) {
  std::map<std::string, ReducedValue> out;
  for (const auto& [key, val] : obj.object) {
    ReducedValue v;
    v.sum = val.at("sum").number;
    v.min = val.at("min").number;
    v.max = val.at("max").number;
    v.mean = val.at("mean").number;
    v.min_rank = static_cast<int>(val.at("min_rank").number);
    v.max_rank = static_cast<int>(val.at("max_rank").number);
    v.count = static_cast<int>(val.at("count").number);
    out.emplace(key, v);
  }
  return out;
}

}  // namespace

std::string ReducedSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"step\":" << step << ",\"time\":" << json_number(time)
     << ",\"ranks\":" << ranks << ",";
  write_reduced_map(os, "counters", counters);
  os << ",";
  write_reduced_map(os, "gauges", gauges);
  os << ",";
  write_histogram_map(os, histograms);
  if (!health_verdict.empty()) {
    os << ",\"health\":{\"verdict\":" << json_quote(health_verdict)
       << ",\"events\":[";
    for (std::size_t i = 0; i < health_events.size(); ++i) {
      os << (i == 0 ? "" : ",") << json_quote(health_events[i]);
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

ReducedSnapshot ReducedSnapshot::parse(const std::string& json) {
  const JsonValue doc = json_parse(json);
  PSDNS_REQUIRE(doc.is_object(), "reduced snapshot is not a JSON object");
  ReducedSnapshot snap;
  snap.step = static_cast<std::int64_t>(doc.at("step").number);
  snap.time = doc.at("time").number;
  snap.ranks = static_cast<int>(doc.at("ranks").number);
  snap.counters = parse_reduced_map(doc.at("counters"));
  snap.gauges = parse_reduced_map(doc.at("gauges"));
  if (doc.has("histograms")) {
    for (const auto& [key, val] : doc.at("histograms").object) {
      snap.histograms.emplace(key, parse_histogram(val));
    }
  }
  if (doc.has("health")) {
    const JsonValue& h = doc.at("health");
    snap.health_verdict = h.at("verdict").string;
    for (const auto& e : h.at("events").array) {
      snap.health_events.push_back(e.string);
    }
  }
  return snap;
}

const ReducedValue* ReducedSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? nullptr : &it->second;
}

const ReducedValue* ReducedSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? nullptr : &it->second;
}

const HistogramSummary* ReducedSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

std::string serialize_snapshot(const MetricsSnapshot& local) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [key, value] : local.counters) {
    if (!first) os << ",";
    first = false;
    os << json_quote(key) << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : local.gauges) {
    if (!first) os << ",";
    first = false;
    os << json_quote(key) << ":" << json_number(value);
  }
  os << "},";
  write_histogram_map(os, local.histograms);
  os << "}";
  return os.str();
}

ReducedSnapshot merge_snapshots(const std::vector<std::string>& per_rank) {
  ReducedSnapshot out;
  out.ranks = static_cast<int>(per_rank.size());
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    const JsonValue doc = json_parse(per_rank[r]);
    PSDNS_REQUIRE(doc.is_object(), "rank snapshot is not a JSON object");
    const int rank = static_cast<int>(r);
    for (const auto& [key, value] : doc.at("counters").object) {
      merge_value(out.counters, key, value.number, rank);
    }
    for (const auto& [key, value] : doc.at("gauges").object) {
      merge_value(out.gauges, key, value.number, rank);
    }
    if (doc.has("histograms")) {
      for (const auto& [key, value] : doc.at("histograms").object) {
        merge_histogram(out.histograms, key, parse_histogram(value));
      }
    }
  }
  finalize_means(out.counters);
  finalize_means(out.gauges);
  return out;
}

}  // namespace psdns::obs
