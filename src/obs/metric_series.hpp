#pragma once
// Per-step time series of reduced snapshots: a bounded in-memory ring
// (what the live endpoint and a future online auto-tuner read) plus a
// JSONL writer/reader (what offline tooling and psdns_top replay). One
// row per step, one JSON object per line, append-flushed so a killed run
// keeps every row it logged - the telemetry analogue of io::SeriesWriter.
//
// The campaign driver writes rows to PSDNS_SERIES_FILE when set; the
// format round-trips exactly (read_series_jsonl(write(...)) compares
// equal), which is what makes the series replayable evidence rather than
// a log.

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/reduce.hpp"

namespace psdns::obs {

/// Fixed-capacity ring of the most recent reduced snapshots, oldest
/// first. Not thread-safe; the campaign driver owns it on rank 0.
class SeriesRing {
 public:
  explicit SeriesRing(std::size_t capacity = 1024);

  void push(ReducedSnapshot snap);

  std::size_t size() const { return rows_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t total_pushed() const { return pushed_; }
  std::int64_t dropped() const {
    return pushed_ - static_cast<std::int64_t>(rows_.size());
  }

  /// i in [0, size()), 0 = oldest retained row.
  const ReducedSnapshot& at(std::size_t i) const;
  /// nullptr while empty.
  const ReducedSnapshot* latest() const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest row once the ring is full
  std::int64_t pushed_ = 0;
  std::vector<ReducedSnapshot> rows_;
};

/// Appends one ReducedSnapshot::to_json() line per call, flushing each
/// row. Construction truncates or appends; throws util::Error (naming the
/// path) on open/write failure.
class SeriesJsonlWriter {
 public:
  enum class Mode { Truncate, Append };

  explicit SeriesJsonlWriter(const std::string& path,
                             Mode mode = Mode::Truncate);
  ~SeriesJsonlWriter();
  SeriesJsonlWriter(const SeriesJsonlWriter&) = delete;
  SeriesJsonlWriter& operator=(const SeriesJsonlWriter&) = delete;

  void append(const ReducedSnapshot& snap);

 private:
  std::FILE* file_;
  std::string path_;
};

/// Reads every row of a series JSONL file (blank lines skipped). Throws
/// util::Error on open failure or a malformed row (naming the line).
std::vector<ReducedSnapshot> read_series_jsonl(const std::string& path);

}  // namespace psdns::obs
