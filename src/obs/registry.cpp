#include "obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::obs {

void Registry::counter_add(std::string_view name, std::int64_t delta) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  it->second += delta;
}

std::int64_t Registry::counter(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::gauge_set(std::string_view name, double value) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  it->second = value;
}

double Registry::gauge(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::declare_histogram(std::string_view name,
                                 std::vector<double> bounds) {
  PSDNS_REQUIRE(!bounds.empty(), "histogram needs at least one bound");
  PSDNS_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                "histogram bounds must ascend");
  std::lock_guard lock(mutex_);
  PSDNS_REQUIRE(histograms_.find(name) == histograms_.end(),
                "histogram already declared: " + std::string(name));
  Histogram h;
  h.buckets.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  h.samples.reserve(kExactSampleCap);
  histograms_.emplace(std::string(name), std::move(h));
}

void Registry::observe(std::string_view name, double value) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    Histogram h;
    h.bounds = default_bounds();
    h.buckets.assign(h.bounds.size() + 1, 0);
    h.samples.reserve(kExactSampleCap);
    it = histograms_.emplace(std::string(name), std::move(h)).first;
  }
  Histogram& h = it->second;
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  ++h.buckets[bucket];
  if (h.count == 0) {
    h.min = h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  if (h.samples.size() < kExactSampleCap) h.samples.push_back(value);
  ++h.count;
  h.sum += value;
}

HistogramSummary Registry::summarize(const Histogram& h) const {
  HistogramSummary s;
  s.count = h.count;
  s.sum = h.sum;
  s.min = h.min;
  s.max = h.max;
  if (h.count == 0) return s;

  if (h.count <= static_cast<std::int64_t>(h.samples.size())) {
    // Every observation is still in the reservoir: report exact
    // percentiles by linear interpolation between the closest ranks of
    // the sorted samples (rank p/100 * (count-1); numpy default / R-7).
    std::vector<double> sorted = h.samples;
    std::sort(sorted.begin(), sorted.end());
    const auto exact = [&](double p) {
      const double rank =
          p / 100.0 * static_cast<double>(sorted.size() - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
    };
    s.p50 = exact(50.0);
    s.p95 = exact(95.0);
    s.p99 = exact(99.0);
    return s;
  }

  const auto percentile = [&](double p) {
    const double target = p / 100.0 * static_cast<double>(h.count);
    std::int64_t seen = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      const auto next = seen + h.buckets[b];
      if (static_cast<double>(next) >= target) {
        // Linear interpolation inside the bucket, clamped to the observed
        // range so single-bucket histograms report sane values.
        const double lo =
            b == 0 ? h.min : std::max(h.min, h.bounds[b - 1]);
        const double hi =
            b < h.bounds.size() ? std::min(h.max, h.bounds[b]) : h.max;
        const double frac =
            (target - static_cast<double>(seen)) /
            static_cast<double>(h.buckets[b]);
        return std::clamp(lo + (hi - lo) * frac, h.min, h.max);
      }
      seen = next;
    }
    return h.max;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  s.p99 = percentile(99.0);
  return s;
}

HistogramSummary Registry::histogram(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSummary{} : summarize(it->second);
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.insert(counters_.begin(), counters_.end());
  snap.gauges.insert(gauges_.begin(), gauges_.end());
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = summarize(h);
  }
  return snap;
}

std::string Registry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << json_quote(name) << ":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << json_quote(name) << ":" << json_number(v);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << json_quote(name) << ":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"p50\":" << json_number(h.p50)
       << ",\"p95\":" << json_number(h.p95)
       << ",\"p99\":" << json_number(h.p99) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::vector<double> Registry::default_bounds() {
  // 1 us .. 1000 s, four buckets per decade.
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 1.5e3; decade *= 10.0) {
    for (const double m : {1.0, 2.0, 4.0, 7.0}) {
      bounds.push_back(decade * m);
    }
  }
  return bounds;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

int thread_index() {
  static std::atomic<int> next{0};
  thread_local const int mine = next.fetch_add(1);
  return mine;
}

// --- span capture ---

namespace {

struct SpanState {
  std::mutex mutex;
  bool enabled = false;
  util::Stopwatch origin;
  std::vector<Span> spans;
};

SpanState& span_state() {
  static SpanState state;
  return state;
}

}  // namespace

void enable_span_capture(bool on) {
  auto& st = span_state();
  std::lock_guard lock(st.mutex);
  st.enabled = on;
  if (on) {
    st.spans.clear();
    st.origin.reset();
  }
}

bool span_capture_enabled() {
  auto& st = span_state();
  std::lock_guard lock(st.mutex);
  return st.enabled;
}

std::vector<Span> captured_spans() {
  auto& st = span_state();
  std::lock_guard lock(st.mutex);
  return st.spans;
}

void clear_spans() {
  auto& st = span_state();
  std::lock_guard lock(st.mutex);
  st.spans.clear();
}

ScopedTimer::ScopedTimer(std::string_view name, Registry& reg)
    : name_(name), reg_(reg) {}

ScopedTimer::~ScopedTimer() { stop(); }

double ScopedTimer::stop() {
  if (stopped_) return 0.0;
  stopped_ = true;
  const double seconds = watch_.seconds();
  reg_.observe(name_, seconds);
  auto& st = span_state();
  std::lock_guard lock(st.mutex);
  if (st.enabled) {
    st.spans.push_back(Span{std::string(name_), thread_index(),
                            st.origin.seconds() - seconds, seconds});
  }
  return seconds;
}

}  // namespace psdns::obs
