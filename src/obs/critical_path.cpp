#include "obs/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace psdns::obs {

namespace {

// Priority-ordered attribution buckets; lower wins the segment.
enum Bucket { kCompute = 0, kComm = 1, kTransfer = 2, kOther = 3 };
constexpr int kBuckets = 4;

struct Interval {
  double start = 0.0;
  double end = 0.0;
  int bucket = kOther;
};

int bucket_of(sim::OpCategory c) {
  switch (c) {
    case sim::OpCategory::Compute:
    case sim::OpCategory::Cpu:
      return kCompute;
    case sim::OpCategory::Mpi:
      return kComm;
    case sim::OpCategory::H2D:
    case sim::OpCategory::D2H:
    case sim::OpCategory::Unpack:
      return kTransfer;
    case sim::OpCategory::Wait:
    case sim::OpCategory::Other:
      return kOther;
  }
  return kOther;
}

int bucket_of(SpanKind k) {
  switch (k) {
    case SpanKind::Compute:
      return kCompute;
    case SpanKind::Comm:
      return kComm;
    case SpanKind::Transfer:
      return kTransfer;
    case SpanKind::Io:
    case SpanKind::Other:
      return kOther;
  }
  return kOther;
}

/// Sweeps the elementary segments between interval boundaries, calling
/// visit(segment_length, active_count_per_bucket) for each.
template <class Visit>
void sweep(const std::vector<Interval>& intervals, const Visit& visit) {
  struct Event {
    double t;
    int bucket;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    if (!(iv.end > iv.start)) continue;  // also drops NaNs
    events.push_back({iv.start, iv.bucket, +1});
    events.push_back({iv.end, iv.bucket, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });
  int active[kBuckets] = {0, 0, 0, 0};
  std::size_t i = 0;
  while (i < events.size()) {
    const double t = events[i].t;
    while (i < events.size() && events[i].t == t) {
      active[events[i].bucket] += events[i].delta;
      ++i;
    }
    if (i < events.size()) visit(events[i].t - t, active);
  }
}

/// Overlap within one rank's intervals; returns the rank's achievable
/// overlap (min of its compute and traffic busy time) so the caller can
/// normalize the summed hidden time.
double overlap_accumulate(const std::vector<Interval>& intervals,
                          OverlapStats& s) {
  double compute_busy = 0.0, traffic_busy = 0.0;
  sweep(intervals, [&](double len, const int* active) {
    const bool compute = active[kCompute] > 0;
    const bool traffic = active[kComm] > 0 || active[kTransfer] > 0;
    if (compute) compute_busy += len;
    if (traffic) {
      traffic_busy += len;
      (compute ? s.hidden : s.exposed) += len;
    }
  });
  s.compute_busy += compute_busy;
  s.traffic_busy += traffic_busy;
  return std::min(compute_busy, traffic_busy);
}

OverlapStats overlap_from(
    const std::map<std::string, std::vector<Interval>>& per_rank) {
  OverlapStats s;
  double achievable = 0.0;
  for (const auto& [rank, intervals] : per_rank) {
    (void)rank;
    achievable += overlap_accumulate(intervals, s);
  }
  if (achievable > 0.0) s.overlap_efficiency = s.hidden / achievable;
  return s;
}

PathAttribution attribute_from(const std::vector<Interval>& intervals) {
  PathAttribution a;
  sweep(intervals, [&](double len, const int* active) {
    a.total += len;
    if (active[kCompute] > 0) {
      a.compute += len;
    } else if (active[kComm] > 0) {
      a.comm += len;
    } else if (active[kTransfer] > 0) {
      a.transfer += len;
    } else if (active[kOther] > 0) {
      a.other += len;
    } else {
      a.idle += len;
    }
  });
  return a;
}

std::vector<Interval> to_intervals(const std::vector<sim::OpRecord>& records) {
  std::vector<Interval> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back({r.start, r.finish, bucket_of(r.category)});
  }
  return out;
}

/// Rank key of a simulated lane: the prefix before the first '.' (lanes are
/// named "r<k>.g<j>", "r<k>.mpi", ...); the whole name when there is none.
std::map<std::string, std::vector<Interval>> group_by_rank(
    const std::vector<sim::OpRecord>& records) {
  std::map<std::string, std::vector<Interval>> groups;
  for (const auto& r : records) {
    const auto dot = r.lane.find('.');
    groups[r.lane.substr(0, dot)].push_back(
        {r.start, r.finish, bucket_of(r.category)});
  }
  return groups;
}

/// Leaf spans only: enclosing phase spans would double-count their
/// children in any busy-time union.
std::vector<SpanRecord> leaf_spans(const SpanTrace& trace) {
  std::unordered_set<SpanId> parents;
  for (const auto& s : trace.spans) {
    if (s.parent != 0) parents.insert(s.parent);
  }
  std::vector<SpanRecord> out;
  for (const auto& s : trace.spans) {
    if (parents.count(s.id) == 0) out.push_back(s);
  }
  return out;
}

std::vector<Interval> to_intervals(const std::vector<SpanRecord>& spans) {
  std::vector<Interval> out;
  out.reserve(spans.size());
  for (const auto& s : spans) {
    out.push_back({s.start_s, s.end_s, bucket_of(s.kind)});
  }
  return out;
}

void add_chain_span(PathAttribution& a, const SpanRecord& s, double& cursor) {
  if (s.start_s > cursor) a.idle += s.start_s - cursor;
  const double seg = s.end_s - std::max(s.start_s, cursor);
  if (seg > 0.0) {
    switch (bucket_of(s.kind)) {
      case kCompute:
        a.compute += seg;
        break;
      case kComm:
        a.comm += seg;
        break;
      case kTransfer:
        a.transfer += seg;
        break;
      default:
        a.other += seg;
        break;
    }
  }
  cursor = std::max(cursor, s.end_s);
}

}  // namespace

OverlapStats overlap_stats(const std::vector<sim::OpRecord>& records) {
  return overlap_from(group_by_rank(records));
}

PathAttribution attribute_wall_time(
    const std::vector<sim::OpRecord>& records) {
  return attribute_from(to_intervals(records));
}

OverlapStats overlap_stats(const SpanTrace& trace) {
  std::map<std::string, std::vector<Interval>> per_rank;
  for (const auto& s : leaf_spans(trace)) {
    per_rank[std::to_string(s.rank)].push_back(
        {s.start_s, s.end_s, bucket_of(s.kind)});
  }
  return overlap_from(per_rank);
}

PathAttribution attribute_wall_time(const SpanTrace& trace) {
  return attribute_from(to_intervals(leaf_spans(trace)));
}

CriticalPath critical_path(const SpanTrace& trace) {
  CriticalPath result;
  std::vector<SpanRecord> leaves = leaf_spans(trace);
  if (leaves.empty()) return result;

  // Topological order: by (end, id). Lane edges always point forward in
  // this order; flow edges between concurrent spans (an all-to-all records
  // edges both ways between its ranks) are filtered to the same order, so
  // the DP below never sees a cycle.
  std::sort(leaves.begin(), leaves.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.end_s != b.end_s ? a.end_s < b.end_s : a.id < b.id;
            });
  std::unordered_map<SpanId, std::size_t> index;
  index.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) index[leaves[i].id] = i;

  std::vector<std::vector<std::size_t>> preds(leaves.size());
  const auto ordered = [&](std::size_t a, std::size_t b) {
    return leaves[a].end_s != leaves[b].end_s
               ? leaves[a].end_s < leaves[b].end_s
               : leaves[a].id < leaves[b].id;
  };
  for (const auto& e : trace.edges) {
    const auto src = index.find(e.src);
    const auto dst = index.find(e.dst);
    if (src == index.end() || dst == index.end()) continue;
    if (ordered(src->second, dst->second)) {
      preds[dst->second].push_back(src->second);
    }
  }
  // Same-lane program order: the latest leaf on the same (thread, rank)
  // lane completing no later than this one starts.
  std::map<std::pair<int, int>, std::vector<std::size_t>> lanes;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    lanes[{leaves[i].thread, leaves[i].rank}].push_back(i);
  }
  for (const auto& [lane, members] : lanes) {
    (void)lane;
    for (std::size_t k = 1; k < members.size(); ++k) {
      // members are end-sorted; walk back to the newest one finishing
      // before this span starts.
      for (std::size_t j = k; j-- > 0;) {
        if (leaves[members[j]].end_s <= leaves[members[k]].start_s) {
          preds[members[k]].push_back(members[j]);
          break;
        }
      }
    }
  }

  std::vector<double> value(leaves.size(), 0.0);
  std::vector<std::ptrdiff_t> back(leaves.size(), -1);
  std::size_t best = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    double best_pred = 0.0;
    for (const std::size_t p : preds[i]) {
      if (value[p] > best_pred) {
        best_pred = value[p];
        back[i] = static_cast<std::ptrdiff_t>(p);
      }
    }
    value[i] = leaves[i].duration() + best_pred;
    if (value[i] > value[best]) best = i;
  }

  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(best); i >= 0;
       i = back[static_cast<std::size_t>(i)]) {
    result.spans.push_back(leaves[static_cast<std::size_t>(i)]);
  }
  std::reverse(result.spans.begin(), result.spans.end());
  result.path_seconds = value[best];

  double cursor = result.spans.front().start_s;
  for (const auto& s : result.spans) {
    add_chain_span(result.attribution, s, cursor);
  }
  result.attribution.total = cursor - result.spans.front().start_s;
  return result;
}

std::string to_string(const OverlapStats& s) {
  std::ostringstream os;
  os.precision(4);
  os << "overlap_efficiency=" << s.overlap_efficiency << " (hidden "
     << s.hidden << "s of " << s.traffic_busy << "s traffic, compute busy "
     << s.compute_busy << "s)";
  return os.str();
}

std::string to_string(const PathAttribution& a) {
  std::ostringstream os;
  os.precision(4);
  os << "total=" << a.total << "s: compute " << a.compute << "s, exposed comm "
     << a.comm << "s, exposed transfer " << a.transfer << "s, other "
     << a.other << "s, idle " << a.idle << "s";
  return os.str();
}

}  // namespace psdns::obs
