#include "obs/exposition.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace psdns::obs {

namespace {

bool prom_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// One histogram summary as a Prometheus summary family: quantile-labeled
/// lines plus the standard _sum/_count pair and _min/_max gauges.
void write_summary(std::ostringstream& os, const std::string& key,
                   const HistogramSummary& h) {
  const std::string name = prometheus_name(key);
  os << "# TYPE " << name << " summary\n";
  os << name << "{quantile=\"0.5\"} " << json_number(h.p50) << "\n";
  os << name << "{quantile=\"0.95\"} " << json_number(h.p95) << "\n";
  os << name << "{quantile=\"0.99\"} " << json_number(h.p99) << "\n";
  os << name << "_sum " << json_number(h.sum) << "\n";
  os << name << "_count " << h.count << "\n";
  os << "# TYPE " << name << "_min gauge\n"
     << name << "_min " << json_number(h.min) << "\n";
  os << "# TYPE " << name << "_max gauge\n"
     << name << "_max " << json_number(h.max) << "\n";
}

void write_family(std::ostringstream& os, const std::string& key,
                  const ReducedValue& v, const char* type) {
  const std::string name = prometheus_name(key);
  os << "# TYPE " << name << " " << type << "\n";
  os << name << "{stat=\"sum\"} " << json_number(v.sum) << "\n";
  os << name << "{stat=\"min\"} " << json_number(v.min) << "\n";
  os << name << "{stat=\"max\"} " << json_number(v.max) << "\n";
  os << name << "{stat=\"mean\"} " << json_number(v.mean) << "\n";
  if (v.min_rank >= 0) {
    os << "# TYPE " << name << "_extreme_rank gauge\n";
    os << name << "_extreme_rank{stat=\"min\"} " << v.min_rank << "\n";
    os << name << "_extreme_rank{stat=\"max\"} " << v.max_rank << "\n";
  }
}

}  // namespace

std::string prometheus_name(std::string_view key) {
  std::string out = "psdns_";
  out.reserve(out.size() + key.size());
  for (const char c : key) out.push_back(prom_ok(c) ? c : '_');
  return out;
}

std::string to_prometheus(const ReducedSnapshot& snap,
                          const HealthReport& health) {
  std::ostringstream os;
  os << "# TYPE psdns_up gauge\npsdns_up 1\n";
  os << "# TYPE psdns_step gauge\npsdns_step " << snap.step << "\n";
  os << "# TYPE psdns_sim_time gauge\npsdns_sim_time "
     << json_number(snap.time) << "\n";
  os << "# TYPE psdns_ranks gauge\npsdns_ranks " << snap.ranks << "\n";
  os << "# TYPE psdns_health_status gauge\npsdns_health_status "
     << static_cast<int>(health.verdict) << "\n";
  os << "# TYPE psdns_health_events_total counter\n"
     << "psdns_health_events_total " << health.events.size() << "\n";
  for (const auto& [key, v] : snap.counters) {
    write_family(os, key, v, "counter");
  }
  for (const auto& [key, v] : snap.gauges) {
    write_family(os, key, v, "gauge");
  }
  for (const auto& [key, h] : snap.histograms) {
    write_summary(os, key, h);
  }
  return os.str();
}

std::string to_exposition_json(const ReducedSnapshot& snap,
                               const HealthReport& health) {
  std::ostringstream os;
  os << "{\"snapshot\":" << snap.to_json() << ",\"health\":"
     << health.to_json() << "}";
  return os.str();
}

}  // namespace psdns::obs
