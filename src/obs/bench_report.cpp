#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"

namespace psdns::obs {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string read_first_line(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return trim(line);
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::metric(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void BenchReport::meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"name\": " << json_quote(name_)
     << ",\n  \"schema_version\": 1"
     << ",\n  \"git_sha\": " << json_quote(current_git_sha())
     << ",\n  \"metadata\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(meta_[i].first)
       << ": " << json_quote(meta_[i].second);
  }
  os << (meta_.empty() ? "" : "\n  ") << "},\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(metrics_[i].first)
       << ": " << json_number(metrics_[i].second);
  }
  os << (metrics_.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string BenchReport::write() const {
  const std::string path = output_path(name_);
  write_text_file(path, to_json());
  return path;
}

std::string BenchReport::output_path(const std::string& name) {
  return bench_output_path("BENCH_" + name + ".json");
}

std::string bench_output_path(const std::string& filename) {
  const char* dir = std::getenv("PSDNS_BENCH_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return (std::filesystem::path(base) / filename).string();
}

std::string current_git_sha() {
  if (const char* sha = std::getenv("PSDNS_GIT_SHA")) return sha;
  std::error_code ec;
  auto dir = std::filesystem::current_path(ec);
  if (ec) return "unknown";
  for (int depth = 0; depth < 10; ++depth) {
    const auto head = dir / ".git" / "HEAD";
    if (std::filesystem::exists(head, ec)) {
      const std::string line = read_first_line(head);
      if (line.rfind("ref: ", 0) == 0) {
        const std::string sha = read_first_line(dir / ".git" / line.substr(5));
        return sha.empty() ? "unknown" : sha;
      }
      return line.empty() ? "unknown" : line;
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return "unknown";
}

}  // namespace psdns::obs
