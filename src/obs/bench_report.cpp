#include "obs/bench_report.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace_export.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

extern char** environ;

namespace psdns::obs {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string read_first_line(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::string line;
  std::getline(in, line);
  return trim(line);
}

}  // namespace

RunManifest RunManifest::collect() {
  RunManifest m;
  m.git_sha = current_git_sha();
#ifdef PSDNS_COMPILER_ID
  m.compiler = PSDNS_COMPILER_ID;
#else
  m.compiler = "unknown";
#endif
#ifdef PSDNS_CXX_FLAGS
  m.compiler_flags = PSDNS_CXX_FLAGS;
#else
  m.compiler_flags = "unknown";
#endif
#ifdef PSDNS_BUILD_TYPE
  m.build_type = PSDNS_BUILD_TYPE;
#else
  m.build_type = "unknown";
#endif
  char host[256] = {};
  m.hostname =
      ::gethostname(host, sizeof(host) - 1) == 0 ? host : "unknown";
  m.simd = util::simd::to_string(util::simd::active_backend());
  m.threads = util::ThreadPool::env_threads();
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "PSDNS_", 6) != 0) continue;
    const char* eq = std::strchr(*e, '=');
    if (eq == nullptr) continue;
    m.env.emplace_back(
        std::string(*e, static_cast<std::size_t>(eq - *e)),
        std::string(eq + 1));
  }
  std::sort(m.env.begin(), m.env.end());
  return m;
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  os << "{\"git_sha\": " << json_quote(git_sha)
     << ", \"compiler\": " << json_quote(compiler)
     << ", \"compiler_flags\": " << json_quote(compiler_flags)
     << ", \"build_type\": " << json_quote(build_type)
     << ", \"hostname\": " << json_quote(hostname)
     << ", \"seed\": " << json_quote(seed)
     << ", \"simd\": " << json_quote(simd)
     << ", \"threads\": " << threads << ", \"env\": {";
  for (std::size_t i = 0; i < env.size(); ++i) {
    os << (i == 0 ? "" : ", ") << json_quote(env[i].first) << ": "
       << json_quote(env[i].second);
  }
  os << "}}";
  return os.str();
}

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), manifest_(RunManifest::collect()) {}

void BenchReport::seed(std::uint64_t value) {
  manifest_.seed = std::to_string(value);
}

void BenchReport::metric(const std::string& key, double value) {
  for (auto& [k, v] : metrics_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics_.emplace_back(key, value);
}

void BenchReport::meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"name\": " << json_quote(name_)
     << ",\n  \"schema_version\": 2"
     << ",\n  \"git_sha\": " << json_quote(manifest_.git_sha)
     << ",\n  \"manifest\": " << manifest_.to_json()
     << ",\n  \"metadata\": {";
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(meta_[i].first)
       << ": " << json_quote(meta_[i].second);
  }
  os << (meta_.empty() ? "" : "\n  ") << "},\n  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << json_quote(metrics_[i].first)
       << ": " << json_number(metrics_[i].second);
  }
  os << (metrics_.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string BenchReport::write() const {
  const std::string path = output_path(name_);
  write_text_file(path, to_json());
  return path;
}

std::string BenchReport::output_path(const std::string& name) {
  return bench_output_path("BENCH_" + name + ".json");
}

std::string bench_output_path(const std::string& filename) {
  const char* dir = std::getenv("PSDNS_BENCH_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return (std::filesystem::path(base) / filename).string();
}

std::string current_git_sha() {
  if (const char* sha = std::getenv("PSDNS_GIT_SHA")) return sha;
  std::error_code ec;
  auto dir = std::filesystem::current_path(ec);
  if (ec) return "unknown";
  for (int depth = 0; depth < 10; ++depth) {
    const auto head = dir / ".git" / "HEAD";
    if (std::filesystem::exists(head, ec)) {
      const std::string line = read_first_line(head);
      if (line.rfind("ref: ", 0) == 0) {
        const std::string sha = read_first_line(dir / ".git" / line.substr(5));
        return sha.empty() ? "unknown" : sha;
      }
      return line.empty() ? "unknown" : line;
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return "unknown";
}

}  // namespace psdns::obs
