#pragma once
// Configuration of the batched asynchronous GPU pipeline (Sec. 3.4) and the
// result record of one simulated RK2 step.

#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "model/geometry.hpp"
#include "sim/trace.hpp"

namespace psdns::pipeline {

/// The paper's three production MPI configurations (Table 2 / Table 3).
enum class MpiConfig {
  A,  // 6 tasks/node, 1 pencil per all-to-all (overlapped MPI_IALLTOALL)
  B,  // 2 tasks/node, 1 pencil per all-to-all (overlapped MPI_IALLTOALL)
  C,  // 2 tasks/node, 1 slab per all-to-all (blocking, no MPI overlap)
};

const char* to_string(MpiConfig c);

struct PipelineConfig {
  std::int64_t n = 18432;  // grid points per side
  int nodes = 3072;
  MpiConfig mpi = MpiConfig::C;
  int pencils = 4;              // np (from the memory model)
  int pencils_per_a2a = 0;      // Q; 0 = derive from MpiConfig (1 or np)
  bool async = true;            // false: serialize compute/transfer/MPI (the
                                // Sec. 3.3 synchronous structure, as ablation)
  bool gpu_direct = false;      // CUDA-aware MPI / GPU-Direct: the all-to-all
                                // reads/writes device memory directly,
                                // skipping the staging copies around it
                                // (Sec. 3.3: no noticeable benefit observed)
  int rk_substeps = 2;          // 2 = RK2, 4 = RK4 (cost ~doubles, Sec. 2)
  int scalars = 0;              // passive scalars carried by the run; each
                                // adds 1 inverse + 3 forward variable
                                // transposes per substep
  int extra_fields = 0;         // equation-system fields beyond u,v,w and
                                // scalars (e.g. 3 magnetic components):
                                // each adds 1 inverse transpose per substep
  int extra_products = 0;       // extra forward product transposes per
                                // substep (e.g. MHD's 9 Elsasser products
                                // replace the 6 symmetric ones: 3 extra)
  gpu::CopyMethod copy_method = gpu::CopyMethod::Memcpy2DAsync;
  gpu::CopyMethod unpack_method = gpu::CopyMethod::ZeroCopy;

  int tasks_per_node() const { return mpi == MpiConfig::A ? 6 : 2; }
  int q() const {
    if (pencils_per_a2a > 0) return pencils_per_a2a;
    return mpi == MpiConfig::C ? pencils : 1;
  }
  model::ProblemConfig problem() const {
    return model::ProblemConfig{.n = n,
                                .nodes = nodes,
                                .tasks_per_node = tasks_per_node(),
                                .pencils = pencils,
                                .variables = 3};
  }
};

/// Result of one simulated RK2 step (both substeps).
struct StepResult {
  double seconds = 0.0;                  // elapsed wall time of the step
  double mpi_busy = 0.0;                 // wall time with >= 1 A2A active
  double transfer_busy = 0.0;            // wall time with H2D/D2H active
  double compute_busy = 0.0;             // wall time with kernels active
  double overlap_efficiency = 0.0;       // hidden traffic / total traffic
                                         // busy time (obs::overlap_stats)
  std::vector<sim::OpRecord> records;    // full trace (Fig. 10 lanes)
};

}  // namespace psdns::pipeline
