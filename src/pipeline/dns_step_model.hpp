#pragma once
// Discrete-event co-simulation of one RK2 DNS step at Summit scale.
//
// The simulation builds the Fig.-4 operation DAG for the ranks of ONE
// socket (weak-scaled runs are symmetric, so the socket's makespan is the
// step time): per rank, a compute stream and a transfer stream per GPU,
// plus an MPI lane; shared fluid links for the socket memory bus, each
// GPU's NVLink, and the socket's NIC share. All-to-alls are flows whose
// standalone rate comes from the calibrated net::AlltoallModel, so they
// contend with CPU<->GPU traffic on the host bus exactly as the paper
// observed (Sec. 5.2).
//
// One RK2 step = 2 substeps; each substep is two passes:
//   Pass 1 (Fourier -> physical, 3 variables): per pencil H2D, y-FFTs,
//     D2H+pack; all-to-all; per pencil zero-copy unpack, z-FFTs, x-FFTs
//     (complex-to-real), nonlinear products; D2H of the 6 products.
//   Pass 2 (physical -> Fourier, 6 variables): per pencil H2D, x-FFTs
//     (real-to-complex), z-FFTs, D2H+pack; all-to-all; per pencil zero-copy
//     unpack, y-FFTs, RHS/update kernel; D2H of the 3 updated velocities.
//
// The synchronous CPU baseline (Table 3's reference column) is modeled
// analytically: FFT flops on all cores, the 2-D decomposition's row
// (on-node) and column (off-node, per-variable messages) transposes, and
// host pack/unpack sweeps.

#include "hw/summit.hpp"
#include "model/geometry.hpp"
#include "net/alltoall_model.hpp"
#include "pipeline/config.hpp"

namespace psdns::pipeline {

class DnsStepModel {
 public:
  explicit DnsStepModel(hw::MachineSpec machine = hw::summit(),
                        net::AlltoallParams net_params = {});

  /// One RK2 step of the asynchronous GPU code.
  StepResult simulate_gpu_step(const PipelineConfig& cfg) const;

  /// One RK2 step of the synchronous pencil-decomposed CPU code.
  /// Uses 36 cores/node when N is divisible by 36, else 32 (Sec. 5).
  double cpu_step_seconds(std::int64_t n, int nodes) const;

  /// Only the MPI all-to-alls of one step (the Fig. 9 dotted lower bound):
  /// 2 substeps x (3-variable + 6-variable) transposes at Q pencils per
  /// call, back to back, no compute and no CPU<->GPU transfers.
  double mpi_only_step_seconds(const PipelineConfig& cfg) const;

  /// Time of a single blocking all-to-all of `nv` variables over `q`
  /// pencils (the standalone kernel of Sec. 4.1).
  double standalone_a2a_seconds(const PipelineConfig& cfg, int nv,
                                int q) const;

  const hw::MachineSpec& machine() const { return machine_; }
  const net::AlltoallModel& network() const { return a2a_; }

  /// Cores per node usable by the CPU code for problem size n.
  static int cpu_cores_per_node(std::int64_t n);

  /// Throws if the configuration is infeasible on the machine: the host
  /// memory cannot hold the problem, or the 27 pencil-sized GPU buffers of
  /// the asynchronous scheme (Sec. 3.5) exceed GPU memory at the chosen
  /// pencil count.
  void validate(const PipelineConfig& cfg) const;

 private:
  hw::MachineSpec machine_;
  net::AlltoallModel a2a_;
};

}  // namespace psdns::pipeline
