#pragma once
// Text rendering of simulated op traces as normalized timelines - the
// Fig.-10 view: one lane per category (MPI / transfer / compute), a fixed
// number of character columns, '#' where at least one op of that category
// is active.

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace psdns::pipeline {

struct TimelineOptions {
  int columns = 100;
  bool show_lane_per_stream = false;  // true: one row per DAG lane instead
                                      // of one row per category
};

/// Renders records in [0, t_end] (t_end defaults to the last finish).
std::string render_timeline(const std::vector<sim::OpRecord>& records,
                            double t_end = 0.0,
                            const TimelineOptions& options = {});

/// One-line per-category summary: busy seconds and share of t_end.
std::string summarize_busy(const std::vector<sim::OpRecord>& records,
                           double t_end);

}  // namespace psdns::pipeline
