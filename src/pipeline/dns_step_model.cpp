#include "pipeline/dns_step_model.hpp"

#include <cmath>
#include <vector>

#include "gpu/virtual_gpu.hpp"
#include "model/memory.hpp"
#include "obs/critical_path.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "sim/dag.hpp"
#include "sim/engine.hpp"
#include "sim/flow_network.hpp"
#include "util/check.hpp"

namespace psdns::pipeline {

const char* to_string(MpiConfig c) {
  switch (c) {
    case MpiConfig::A:
      return "A (6 tasks/node, 1 pencil/A2A)";
    case MpiConfig::B:
      return "B (2 tasks/node, 1 pencil/A2A)";
    case MpiConfig::C:
      return "C (2 tasks/node, 1 slab/A2A)";
  }
  return "?";
}

DnsStepModel::DnsStepModel(hw::MachineSpec machine,
                           net::AlltoallParams net_params)
    : machine_(machine), a2a_(net_params) {}

int DnsStepModel::cpu_cores_per_node(std::int64_t n) {
  // Load balance requires the core count to divide N (Sec. 5); Summit's 42
  // cores allow 36 only when N is divisible by 36, else 32.
  return n % 36 == 0 ? 36 : 32;
}

namespace {

/// All per-rank lanes and per-GPU handles of the simulated socket.
struct RankCtx {
  std::vector<gpu::VirtualGpu> gpus;
  sim::LaneId mpi = 0;
};

/// Word size of the production code (single precision).
constexpr double kWord = model::kWordBytes;

}  // namespace

void DnsStepModel::validate(const PipelineConfig& cfg) const {
  const model::MemoryModel mm;
  PSDNS_REQUIRE(cfg.nodes >= 1 && cfg.n >= 2, "bad problem shape");
  // Feasibility uses the paper's own criterion (D = 25 variables, Sec. 3.5)
  // - the Table-1 "resident" occupancy is larger, but 18432^3 did run on
  // 1536 nodes, so the estimate is what gates a configuration.
  PSDNS_REQUIRE(static_cast<double>(cfg.nodes) >=
                    mm.min_nodes_estimate(cfg.n),
                "problem does not fit in host memory at this node count "
                "(see model::MemoryModel::min_nodes)");
  PSDNS_REQUIRE(cfg.pencils >= mm.pencils_needed_estimate(cfg.n, cfg.nodes),
                "pencil count too small: the 27 asynchronous GPU buffers "
                "exceed GPU memory (Sec. 3.5)");
}

StepResult DnsStepModel::simulate_gpu_step(const PipelineConfig& cfg) const {
  validate(cfg);
  const model::ProblemConfig problem = cfg.problem();
  const int tpn = cfg.tasks_per_node();
  const int ranks_per_socket = tpn / 2;
  const int gpus_per_rank = machine_.node.gpus_per_socket / ranks_per_socket;
  const int np = cfg.pencils;
  const int q = cfg.q();
  PSDNS_REQUIRE(np >= 1 && q >= 1 && q <= np, "bad pencil batching");

  sim::Engine engine;
  sim::FlowNetwork net(engine);
  const auto bus =
      net.add_link("socket_bus", machine_.node.host_mem_bw_per_socket);
  const auto nic =
      net.add_link("socket_nic", machine_.node.node_injection_bw / 2.0);
  sim::DagRunner dag(engine, net);
  gpu::CostModel costs(machine_);

  // Flow classes: 0 = CPU<->GPU transfers (aggressors), 1 = MPI (victims).
  // GPU DMA over NVLink degrades concurrent NIC injection (Sec. 5.2).
  constexpr int kTransferClass = 0;
  constexpr int kMpiClass = 1;
  net.set_interference(kMpiClass, kTransferClass);

  // Zero-copy unpack kernels occupy a few SMs while compute kernels run;
  // the paper sizes them at ~16 blocks (Fig. 8), slowing concurrent compute
  // by the corresponding steal factor.
  const bool zero_copy_unpack =
      cfg.unpack_method == gpu::CopyMethod::ZeroCopy;
  const double sm_steal =
      zero_copy_unpack ? costs.sm_steal_factor(16) : 1.0;

  std::vector<RankCtx> ranks(static_cast<std::size_t>(ranks_per_socket));
  std::vector<std::vector<sim::LaneId>> unpack_stream(
      static_cast<std::size_t>(ranks_per_socket));
  for (int r = 0; r < ranks_per_socket; ++r) {
    auto& ctx = ranks[static_cast<std::size_t>(r)];
    ctx.gpus.reserve(static_cast<std::size_t>(gpus_per_rank));
    for (int g = 0; g < gpus_per_rank; ++g) {
      const auto nvl = net.add_link(
          "nvlink_r" + std::to_string(r) + "g" + std::to_string(g),
          costs.nvlink_bw_per_gpu());
      ctx.gpus.emplace_back(dag, gpu::GpuLinks{nvl, bus}, costs,
                            "r" + std::to_string(r) + ".g" + std::to_string(g));
      // The zero-copy unpack runs concurrently with compute on its own
      // stream (it only needs a handful of SMs).
      unpack_stream[static_cast<std::size_t>(r)].push_back(
          ctx.gpus.back().create_stream("unpack"));
    }
    ctx.mpi = dag.add_lane("r" + std::to_string(r) + ".mpi");
  }

  // ---- per-rank sizes ----
  const double var_bytes = problem.points_per_rank() * kWord;  // one variable
  const double pencil_var_bytes = var_bytes / np;              // per pencil
  const double per_gpu = 1.0 / gpus_per_rank;
  // Contiguous extent of a strided pencil copy: the pencil's x-width
  // (Fig. 6; 18 KB for the 18432^3 / np=4 case).
  const double chunk_bytes =
      kWord * static_cast<double>(problem.n) / static_cast<double>(np);
  // 1-D FFT lines per pencil per GPU for nv variables.
  const auto fft_lines = [&](double nv) {
    return nv * problem.points_per_rank() /
           (static_cast<double>(np) * gpus_per_rank *
            static_cast<double>(problem.n));
  };

  // ---- all-to-all flow parameters for a group of `group` pencils of `nv`
  //      variables ----
  const auto a2a_flow = [&](int nv, int group) {
    model::ProblemConfig p = problem;
    p.variables = nv;
    const double p2p = p.p2p_bytes(group);
    const double t = a2a_.time(problem.nodes, tpn, p2p);
    const double bytes =
        a2a_.offnode_bytes_per_node(problem.nodes, tpn, p2p) / tpn;
    const double latency = machine_.api.mpi_call_overhead;
    double rate = bytes > 0.0 ? bytes / std::max(t - latency, 1e-6) : 1.0;
    const auto& np_ = a2a_.params();
    // Overlapped (nonblocking, per-pencil-group) collectives progress only
    // when the host re-enters MPI; blocking whole-slab calls run clean.
    if (cfg.q() < cfg.pencils) {
      const double prog = np_.nonblocking_progression;
      rate *= prog + (1.0 - prog) * p2p / (p2p + np_.progression_half);
    }
    if (cfg.gpu_direct) rate *= np_.gpu_direct_rate_factor;
    // Sensitivity to concurrent GPU transfers: large rendezvous messages
    // pipeline through the host-bus contention, small ones suffer.
    const double chi = std::max(np_.interference_floor,
                                p2p / (p2p + np_.interference_half));
    return std::tuple{bytes, rate, latency, chi};
  };

  // In sync (ablation) mode everything of one GPU runs on its compute lane
  // and the MPI call blocks that lane too.
  const auto transfer_lane = [&](gpu::VirtualGpu& g) {
    return cfg.async ? g.transfer_stream() : g.compute_stream();
  };

  // ---- emit one substep; `carry` is the previous substep's last op per
  //      rank (the next substep starts after the updated velocities land
  //      back in host memory) ----
  std::vector<sim::OpId> carry(static_cast<std::size_t>(ranks_per_socket));

  const auto emit_pass = [&](int rank, int nv_in, double pre_fft_dirs,
                             double post_fft_dirs, double pointwise_bytes,
                             int nv_out, std::vector<sim::OpId>& entry_deps,
                             const char* tag) -> sim::OpId {
    // One transform pass: per pencil [H2D, FFTs, D2H+pack], the all-to-all
    // groups, then per pencil [zero-copy unpack, FFTs, pointwise kernel,
    // D2H of nv_out variables]. Returns the op completing the pass.
    auto& ctx = ranks[static_cast<std::size_t>(rank)];
    const double nv_in_d = nv_in;

    // Pre-transpose pipeline. The buffer triplication of Sec. 3.5 (9
    // compute buffers x3 for asynchrony) lets at most 3 pencils be in
    // flight per GPU: the H2D of pencil ip must wait for pencil ip-3's
    // compute to release its buffers.
    std::vector<std::vector<sim::OpId>> d2h_per_pencil(
        static_cast<std::size_t>(np));
    std::vector<std::vector<sim::OpId>> fft1_per_pencil(
        static_cast<std::size_t>(np));
    for (int ip = 0; ip < np; ++ip) {
      for (std::size_t gslot = 0; gslot < ctx.gpus.size(); ++gslot) {
        auto& g = ctx.gpus[gslot];
        std::vector<sim::OpId> h2d_deps = entry_deps;
        if (ip >= 3) {
          h2d_deps.push_back(
              fft1_per_pencil[static_cast<std::size_t>(ip - 3)][gslot]);
        }
        const auto h2d = g.copy_h2d(
            transfer_lane(g), std::string(tag) + ".h2d p" + std::to_string(ip),
            nv_in_d * pencil_var_bytes * per_gpu, chunk_bytes,
            cfg.copy_method, h2d_deps);
        const auto fft1 =
            g.fft(g.compute_stream(), std::string(tag) + ".fft1",
                  fft_lines(nv_in_d) * pre_fft_dirs * sm_steal,
                  static_cast<double>(problem.n), {h2d});
        if (cfg.gpu_direct) {
          // CUDA-aware MPI: the collective reads device memory; no staging
          // copy, the GPU-side pack is folded into the transfer below.
          d2h_per_pencil[static_cast<std::size_t>(ip)].push_back(fft1);
        } else {
          const auto d2h = g.copy_d2h(
              transfer_lane(g), std::string(tag) + ".d2h+pack p" +
                                    std::to_string(ip),
              nv_in_d * pencil_var_bytes * per_gpu, chunk_bytes,
              cfg.copy_method, {fft1});
          d2h_per_pencil[static_cast<std::size_t>(ip)].push_back(d2h);
        }
        fft1_per_pencil[static_cast<std::size_t>(ip)].push_back(fft1);
      }
    }

    // All-to-all groups of q pencils.
    const int ngroups = (np + q - 1) / q;
    std::vector<sim::OpId> group_op(static_cast<std::size_t>(ngroups));
    for (int gi = 0; gi < ngroups; ++gi) {
      const int lo = gi * q;
      const int hi = std::min(lo + q, np);
      std::vector<sim::OpId> deps;
      for (int ip = lo; ip < hi; ++ip) {
        for (const auto op : d2h_per_pencil[static_cast<std::size_t>(ip)]) {
          deps.push_back(op);
        }
      }
      const auto [bytes, rate, latency, chi] = a2a_flow(nv_in, hi - lo);
      // With GPU-Direct the injected data additionally crosses NVLink; the
      // rate is still NIC-bound, which is why the paper saw no benefit.
      const std::vector<sim::LinkId> mpi_path =
          cfg.gpu_direct ? std::vector<sim::LinkId>{nic, bus}
                         : std::vector<sim::LinkId>{nic, bus};
      group_op[static_cast<std::size_t>(gi)] = dag.add_flow_op(
          std::string(tag) + ".a2a g" + std::to_string(gi),
          cfg.async ? ctx.mpi : ctx.gpus.front().compute_stream(),
          sim::OpCategory::Mpi, bytes, mpi_path, rate, deps, latency,
          kMpiClass, chi);
    }

    // Post-transpose pipeline (the MPI_WAIT of Fig. 4 is the dependency on
    // the group op).
    sim::OpId last{};
    for (int ip = 0; ip < np; ++ip) {
      const auto dep = group_op[static_cast<std::size_t>(ip / q)];
      for (std::size_t gidx = 0; gidx < ctx.gpus.size(); ++gidx) {
        auto& g = ctx.gpus[gidx];
        sim::OpId data_ready = dep;
        if (!cfg.gpu_direct) {
          // Zero-copy unpack: the kernel reads pinned host memory directly,
          // replacing a separate H2D + device reorder (Sec. 4.2); it runs
          // concurrently with compute on its own stream, stealing a few SMs.
          const sim::LaneId lane =
              zero_copy_unpack
                  ? unpack_stream[static_cast<std::size_t>(rank)][gidx]
                  : transfer_lane(g);
          data_ready = g.copy_h2d(
              lane, std::string(tag) + ".unpack p" + std::to_string(ip),
              nv_in_d * pencil_var_bytes * per_gpu, chunk_bytes,
              cfg.unpack_method, {dep});
        }
        const auto fft2 =
            g.fft(g.compute_stream(), std::string(tag) + ".fft2",
                  fft_lines(nv_in_d) * post_fft_dirs * sm_steal,
                  static_cast<double>(problem.n), {data_ready});
        sim::OpId tail = fft2;
        if (pointwise_bytes > 0.0) {
          tail = g.pointwise(g.compute_stream(), std::string(tag) + ".ptwise",
                             pointwise_bytes * per_gpu / np, {fft2});
        }
        last = g.copy_d2h(transfer_lane(g),
                          std::string(tag) + ".d2h out p" + std::to_string(ip),
                          static_cast<double>(nv_out) * pencil_var_bytes *
                              per_gpu,
                          chunk_bytes, cfg.copy_method, {tail});
      }
    }
    return last;
  };

  PSDNS_REQUIRE(cfg.rk_substeps == 2 || cfg.rk_substeps == 4,
                "rk_substeps must be 2 (RK2) or 4 (RK4)");
  PSDNS_REQUIRE(cfg.scalars >= 0, "negative scalar count");
  PSDNS_REQUIRE(cfg.extra_fields >= 0 && cfg.extra_products >= 0,
                "negative equation-system field/product count");
  // Variable counts per pass: the inverse pass moves the 3 velocities,
  // every scalar, and any equation-system extra fields; the forward pass
  // moves the 6 velocity products, 3 flux components per scalar, and the
  // system's extra products.
  const int nv_fields = 3 + cfg.scalars + cfg.extra_fields;
  const int nv_products = 6 + 3 * cfg.scalars + cfg.extra_products;
  for (int substep = 0; substep < cfg.rk_substeps; ++substep) {
    for (int r = 0; r < ranks_per_socket; ++r) {
      std::vector<sim::OpId> entry;
      if (carry[static_cast<std::size_t>(r)].valid()) {
        entry.push_back(carry[static_cast<std::size_t>(r)]);
      }
      // Pass 1: fields to physical space. Pre-A2A: y transforms
      // (1 direction). Post-A2A: z + complex-to-real x (1.5 direction
      // equivalents), then the nonlinear products (reads the fields,
      // writes the products), products copied out.
      const double prod_traffic =
          static_cast<double>(nv_fields + nv_products) * var_bytes;
      const auto pass1_end = emit_pass(r, nv_fields, 1.0, 1.5, prod_traffic,
                                       nv_products, entry, "inv");

      // Pass 2: products back to Fourier space. Pre-A2A: real-to-complex
      // x + z (1.5). Post-A2A: y transforms, then RHS assembly + RK update
      // (reads the products + fields, writes the fields), fields copied
      // out.
      std::vector<sim::OpId> entry2{pass1_end};
      const double rhs_traffic =
          static_cast<double>(nv_products + 2 * nv_fields) * var_bytes;
      carry[static_cast<std::size_t>(r)] = emit_pass(
          r, nv_products, 1.5, 1.0, rhs_traffic, nv_fields, entry2, "fwd");
    }
  }

  StepResult result;
  result.seconds = dag.run();
  result.records = dag.records();
  result.mpi_busy = sim::busy_time(result.records, sim::OpCategory::Mpi);
  result.compute_busy =
      sim::busy_time(result.records, sim::OpCategory::Compute);
  result.transfer_busy =
      sim::busy_time(result.records, sim::OpCategory::H2D) +
      sim::busy_time(result.records, sim::OpCategory::D2H);
  const obs::OverlapStats overlap = obs::overlap_stats(result.records);
  result.overlap_efficiency = overlap.overlap_efficiency;
  const obs::PathAttribution attrib =
      obs::attribute_wall_time(result.records);

  auto& reg = obs::registry();
  reg.counter_add("pipeline.steps_simulated");
  reg.observe("pipeline.step.seconds", result.seconds);
  reg.gauge_set("pipeline.last_step.seconds", result.seconds);
  reg.gauge_set("pipeline.last_step.mpi_busy", result.mpi_busy);
  reg.gauge_set("pipeline.last_step.transfer_busy", result.transfer_busy);
  reg.gauge_set("pipeline.last_step.compute_busy", result.compute_busy);
  reg.gauge_set("pipeline.last_step.overlap_efficiency",
                result.overlap_efficiency);
  reg.gauge_set("pipeline.last_step.hidden_traffic", overlap.hidden);
  reg.gauge_set("pipeline.last_step.exposed_traffic", overlap.exposed);
  reg.gauge_set("pipeline.last_step.critpath.compute", attrib.compute);
  reg.gauge_set("pipeline.last_step.critpath.comm", attrib.comm);
  reg.gauge_set("pipeline.last_step.critpath.transfer", attrib.transfer);
  reg.gauge_set("pipeline.last_step.critpath.idle", attrib.idle);
  obs::trace_counter("pipeline.overlap_efficiency",
                     result.overlap_efficiency);
  obs::trace_counter("pipeline.step_seconds", result.seconds);
  obs::trace_counter("pipeline.exposed_traffic", overlap.exposed);
  obs::log_event(obs::LogLevel::Debug, "pipeline", "gpu step simulated",
                 {{"n", cfg.n},
                  {"nodes", cfg.nodes},
                  {"mpi", to_string(cfg.mpi)},
                  {"seconds", result.seconds},
                  {"mpi_busy", result.mpi_busy},
                  {"overlap_efficiency", result.overlap_efficiency}});
  return result;
}

double DnsStepModel::cpu_step_seconds(std::int64_t n, int nodes) const {
  const int cores = cpu_cores_per_node(n);
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  const double points_node = n3 / nodes;
  const auto& cpu = machine_.cpu;

  // 18 variable-3D-FFT equivalents per RK2 step (2 substeps x (3 inverse +
  // 6 forward)); 5 N log2 N flops per 1-D line, 3 directions.
  const double flops = 18.0 * 15.0 * points_node * std::log2(n);
  const double t_compute =
      flops / (cores * cpu.fft_gflops_per_core * 1e9);

  // Nonlinear products and RK updates: streaming sweeps over the node's
  // share of the fields.
  const double t_pointwise =
      24.0 * kWord * points_node / (cores * cpu.pointwise_bw_per_core);

  // 18 variable-transposes per step, each a row (on-node) plus a column
  // (off-node) redistribution of the 2-D decomposition.
  const double var_node_bytes = kWord * points_node;
  const double t_row = 18.0 * var_node_bytes * 2.0 /
                       (0.6 * machine_.node.host_mem_bw());

  // Column all-to-alls: Pr = cores on the node, Pc = nodes; per-variable
  // messages of 4 N^3 / (P * Pc) bytes.
  const double p2p =
      kWord * n3 / (static_cast<double>(nodes) * cores * nodes);
  const double bw = a2a_.effective_injection_bw(nodes, cores, p2p);
  const double t_col =
      18.0 * (a2a_.params().base_latency + var_node_bytes / bw);

  // Host-side pack/unpack around both transposes.
  const double t_pack =
      18.0 * 4.0 * var_node_bytes / (cores * cpu.pack_bw_per_core);

  return t_compute + t_pointwise + t_row + t_col + t_pack;
}

double DnsStepModel::standalone_a2a_seconds(const PipelineConfig& cfg, int nv,
                                            int q) const {
  model::ProblemConfig p = cfg.problem();
  p.variables = nv;
  return a2a_.time(p.nodes, p.tasks_per_node, p.p2p_bytes(q));
}

double DnsStepModel::mpi_only_step_seconds(const PipelineConfig& cfg) const {
  const int np = cfg.pencils;
  const int q = cfg.q();
  const int ngroups = (np + q - 1) / q;
  double t = 0.0;
  PSDNS_REQUIRE(cfg.rk_substeps == 2 || cfg.rk_substeps == 4,
                "rk_substeps must be 2 (RK2) or 4 (RK4)");
  for (int substep = 0; substep < cfg.rk_substeps; ++substep) {
    t += ngroups * standalone_a2a_seconds(cfg, 3, q);
    t += ngroups * standalone_a2a_seconds(cfg, 6, q);
  }
  return t;
}

}  // namespace psdns::pipeline
