#include "pipeline/timeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/format.hpp"

namespace psdns::pipeline {

namespace {

using sim::OpCategory;
using sim::OpRecord;

std::string paint_row(const std::vector<const OpRecord*>& ops, double t_end,
                      int columns) {
  std::string row(static_cast<std::size_t>(columns), '.');
  for (const OpRecord* op : ops) {
    if (op->finish <= op->start) continue;
    // Clip to [0, t_end]: ops entirely outside the window paint nothing
    // (instead of smearing into the first/last column).
    if (op->start >= t_end || op->finish <= 0.0) continue;
    const double start = std::max(op->start, 0.0);
    const double finish = std::min(op->finish, t_end);
    const int c0 = std::clamp(
        static_cast<int>(start / t_end * columns), 0, columns - 1);
    const int c1 = std::clamp(
        static_cast<int>(finish / t_end * columns), c0, columns - 1);
    for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = '#';
  }
  return row;
}

}  // namespace

std::string render_timeline(const std::vector<OpRecord>& records,
                            double t_end, const TimelineOptions& options) {
  if (t_end <= 0.0) {
    for (const auto& r : records) t_end = std::max(t_end, r.finish);
  }
  if (t_end <= 0.0) return "(empty timeline)\n";

  std::ostringstream os;
  if (options.show_lane_per_stream) {
    std::map<std::string, std::vector<const OpRecord*>> lanes;
    for (const auto& r : records) lanes[r.lane].push_back(&r);
    std::size_t width = 0;
    for (const auto& [name, ops] : lanes) width = std::max(width, name.size());
    for (const auto& [name, ops] : lanes) {
      os << name << std::string(width - name.size(), ' ') << " |"
         << paint_row(ops, t_end, options.columns) << "|\n";
    }
  } else {
    const std::pair<OpCategory, const char*> rows[] = {
        {OpCategory::Mpi, "MPI      "},
        {OpCategory::H2D, "H2D      "},
        {OpCategory::D2H, "D2H+pack "},
        {OpCategory::Compute, "compute  "},
    };
    for (const auto& [cat, label] : rows) {
      std::vector<const OpRecord*> ops;
      for (const auto& r : records) {
        if (r.category == cat) ops.push_back(&r);
      }
      os << label << "|" << paint_row(ops, t_end, options.columns) << "|\n";
    }
  }
  os << "          0" << std::string(static_cast<std::size_t>(
                             std::max(0, options.columns - 10)),
                                     ' ')
     << util::format_time(t_end) << "\n";
  return os.str();
}

std::string summarize_busy(const std::vector<OpRecord>& records,
                           double t_end) {
  std::ostringstream os;
  const std::pair<OpCategory, const char*> cats[] = {
      {OpCategory::Mpi, "MPI"},
      {OpCategory::H2D, "H2D"},
      {OpCategory::D2H, "D2H"},
      {OpCategory::Compute, "compute"},
  };
  for (const auto& [cat, label] : cats) {
    const double busy = sim::busy_time(records, cat);
    os << label << ": " << util::format_time(busy) << " ("
       << util::format_fixed(100.0 * busy / t_end, 1) << "%)  ";
  }
  os << "\n";
  return os.str();
}

}  // namespace psdns::pipeline
