#include "pipeline/async_fft.hpp"

#include "gpu/copy.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::pipeline {

using transpose::pencil_range;

AsyncFft3d::AsyncFft3d(comm::Communicator& comm, std::size_t n, int np, int q)
    : comm_(comm),
      n_(n),
      nxh_(n / 2 + 1),
      np_(np),
      q_(q),
      transpose_(comm, transpose::SlabGrid{n / 2 + 1, n, n, comm.size()}),
      plan_x_(fft::get_plan_r2c(n)),
      plan_yz_(fft::get_plan(n)) {
  PSDNS_REQUIRE(np_ >= 1 && q_ >= 1 && q_ <= np_, "bad pencil batching");
  const int ngroups = (np_ + q_ - 1) / q_;
  groups_.resize(static_cast<std::size_t>(ngroups));
}

void AsyncFft3d::stage_fft_y(fft::Direction dir, std::size_t x0,
                             std::size_t x1,
                             std::span<Complex* const> slabs) {
  // "H2D" the pencil into the staging buffer, transform the y lines there,
  // and copy it back ("D2H"). Buffer layout: [ii + w*(j + ny*kk)].
  const std::size_t w = x1 - x0;
  const std::size_t my_rows = n_ * transpose_.grid().mz();  // j + ny*kk rows
  device_.ensure(w * my_rows);

  for (Complex* slab : slabs) {
    {
      obs::TraceSpan h2d("async.h2d", obs::SpanKind::Transfer);
      gpu::memcpy2d(device_.data(), w, slab + x0, nxh_, w, my_rows);
    }
    {
      obs::TraceSpan fft("async.fft_y", obs::SpanKind::Compute);
      // Disjoint z-planes of the staged pencil stripe across the worker
      // pool (the per-plane transform_batch runs inline in its stripe).
      util::ThreadPool::global().parallel_for(
          "pipeline.fft_y", 0, transpose_.grid().mz(), [&](std::size_t kk) {
            Complex* base = device_.data() + w * n_ * kk;
            plan_yz_->transform_batch(
                dir, base, base,
                fft::BatchLayout{.count = w, .stride = w, .dist = 1});
          });
    }
    obs::TraceSpan d2h("async.d2h", obs::SpanKind::Transfer);
    gpu::memcpy2d(slab + x0, nxh_, device_.data(), w, w, my_rows);
  }
}

void AsyncFft3d::inverse(std::span<const Complex* const> spec,
                         std::span<Real* const> phys) {
  PSDNS_REQUIRE(spec.size() == phys.size(), "variable count mismatch");
  const std::size_t nv = spec.size();
  const auto& g = transpose_.grid();

  // Region 1 (Fig. 4): per pencil, stage in, inverse y transforms, stage
  // out packed; post the nonblocking all-to-all as soon as a group's
  // pencils are packed.
  if (scratch_.size() < 2 * nv) scratch_.resize(2 * nv);
  if (work_ptrs_.size() < nv) work_ptrs_.resize(nv);
  Complex** work = work_ptrs_.data();
  for (std::size_t v = 0; v < nv; ++v) {
    auto& s = scratch_[v];
    s.ensure(spectral_elems());
    std::copy(spec[v], spec[v] + spectral_elems(), s.data());
    work[v] = s.data();
  }

  const int ngroups = static_cast<int>(groups_.size());
  for (int gi = 0; gi < ngroups; ++gi) {
    auto& grp = groups_[static_cast<std::size_t>(gi)];
    grp.x0 = pencil_range(nxh_, np_, gi * q_).x0;
    grp.x1 = pencil_range(nxh_, np_, std::min((gi + 1) * q_, np_) - 1).x1;

    for (int ip = gi * q_; ip < std::min((gi + 1) * q_, np_); ++ip) {
      const auto r = pencil_range(nxh_, np_, ip);
      stage_fft_y(fft::Direction::Inverse, r.x0, r.x1,
                  std::span<Complex* const>(work, nv));
    }

    // Pack-on-copy (D2H doubles as the pack, Sec. 3.4) and nonblocking
    // all-to-all for the whole group.
    obs::TraceSpan pack("async.pack", obs::SpanKind::Transfer);
    const std::size_t block = transpose_.block_elems(grp.x1 - grp.x0, nv);
    const std::size_t total = block * static_cast<std::size_t>(comm_.size());
    grp.send.ensure(total);
    grp.recv.ensure(total);
    transpose_.pack_z(
        std::span<const Complex* const>(
            const_cast<const Complex* const*>(work), nv),
        grp.x0, grp.x1, std::span<Complex>(grp.send.data(), total));
    grp.request = comm_.ialltoall(grp.send.data(), grp.recv.data(), block);
    grp.flow = pack.id() != 0 ? obs::new_flow() : 0;
    if (grp.flow != 0) obs::flow_emit(grp.flow);
  }

  // Region 2/3: single MPI_WAIT per group, zero-copy unpack into Y-slabs,
  // then the z and complex-to-real x transforms pencil by pencil.
  if (yslab_ptrs_.size() < nv) yslab_ptrs_.resize(nv);
  Complex** yslab = yslab_ptrs_.data();
  for (std::size_t v = 0; v < nv; ++v) {
    auto& s = scratch_[nv + v];
    s.ensure(nxh_ * n_ * g.my());
    yslab[v] = s.data();
  }
  for (auto& grp : groups_) {
    {
      obs::TraceSpan unpack("async.unpack", obs::SpanKind::Transfer);
      if (grp.flow != 0) obs::flow_consume(grp.flow);
      grp.request.wait();
      const std::size_t block = transpose_.block_elems(grp.x1 - grp.x0, nv);
      transpose_.unpack_y(
          std::span<const Complex>(grp.recv.data(),
                                   block * static_cast<std::size_t>(
                                               comm_.size())),
          grp.x0, grp.x1, std::span<Complex* const>(yslab, nv));
    }

    // z transforms inside the freshly arrived x-chunk.
    obs::TraceSpan fft_z("async.fft_z", obs::SpanKind::Compute);
    util::ThreadPool::global().parallel_for(
        "pipeline.fft_z", 0, nv * g.my(), [&](std::size_t idx) {
          const std::size_t v = idx / g.my();
          const std::size_t jj = idx % g.my();
          Complex* base = yslab[v] + grp.x0 + nxh_ * n_ * jj;
          plan_yz_->transform_batch(
              fft::Direction::Inverse, base, base,
              fft::BatchLayout{.count = grp.x1 - grp.x0, .stride = nxh_,
                               .dist = 1});
        });
  }

  // Final complex-to-real x transforms (full x lines now local).
  obs::TraceSpan fft_x("async.fft_x", obs::SpanKind::Compute);
  for (std::size_t v = 0; v < nv; ++v) {
    plan_x_->inverse_batch(yslab[v], nxh_, phys[v], n_, n_ * g.my());
  }
}

void AsyncFft3d::forward(std::span<const Real* const> phys,
                         std::span<Complex* const> spec) {
  PSDNS_REQUIRE(spec.size() == phys.size(), "variable count mismatch");
  const std::size_t nv = spec.size();
  const auto& g = transpose_.grid();

  // Reverse of Fig. 4: real-to-complex x, then z transforms per pencil,
  // pack + nonblocking all-to-all per group, then y transforms per pencil.
  if (scratch_.size() < 2 * nv) scratch_.resize(2 * nv);
  if (yslab_ptrs_.size() < nv) yslab_ptrs_.resize(nv);
  Complex** yslab = yslab_ptrs_.data();
  {
    obs::TraceSpan fft_x("async.fft_x", obs::SpanKind::Compute);
    for (std::size_t v = 0; v < nv; ++v) {
      auto& s = scratch_[nv + v];
      s.ensure(nxh_ * n_ * g.my());
      yslab[v] = s.data();
      plan_x_->forward_batch(phys[v], n_, yslab[v], nxh_, n_ * g.my());
    }
  }

  const int ngroups = static_cast<int>(groups_.size());
  for (int gi = 0; gi < ngroups; ++gi) {
    auto& grp = groups_[static_cast<std::size_t>(gi)];
    grp.x0 = pencil_range(nxh_, np_, gi * q_).x0;
    grp.x1 = pencil_range(nxh_, np_, std::min((gi + 1) * q_, np_) - 1).x1;

    {
      obs::TraceSpan fft_z("async.fft_z", obs::SpanKind::Compute);
      util::ThreadPool::global().parallel_for(
          "pipeline.fft_z", 0, nv * g.my(), [&](std::size_t idx) {
            const std::size_t v = idx / g.my();
            const std::size_t jj = idx % g.my();
            Complex* base = yslab[v] + grp.x0 + nxh_ * n_ * jj;
            plan_yz_->transform_batch(
                fft::Direction::Forward, base, base,
                fft::BatchLayout{.count = grp.x1 - grp.x0, .stride = nxh_,
                                 .dist = 1});
          });
    }

    obs::TraceSpan pack("async.pack", obs::SpanKind::Transfer);
    const std::size_t block = transpose_.block_elems(grp.x1 - grp.x0, nv);
    const std::size_t total = block * static_cast<std::size_t>(comm_.size());
    grp.send.ensure(total);
    grp.recv.ensure(total);
    transpose_.pack_y(
        std::span<const Complex* const>(
            const_cast<const Complex* const*>(yslab), nv),
        grp.x0, grp.x1, std::span<Complex>(grp.send.data(), total));
    grp.request = comm_.ialltoall(grp.send.data(), grp.recv.data(), block);
    grp.flow = pack.id() != 0 ? obs::new_flow() : 0;
    if (grp.flow != 0) obs::flow_emit(grp.flow);
  }

  if (out_ptrs_.size() < nv) out_ptrs_.resize(nv);
  Complex** out = out_ptrs_.data();
  for (std::size_t v = 0; v < nv; ++v) out[v] = spec[v];
  for (auto& grp : groups_) {
    {
      obs::TraceSpan unpack("async.unpack", obs::SpanKind::Transfer);
      if (grp.flow != 0) obs::flow_consume(grp.flow);
      grp.request.wait();
      const std::size_t block = transpose_.block_elems(grp.x1 - grp.x0, nv);
      transpose_.unpack_z(
          std::span<const Complex>(grp.recv.data(),
                                   block * static_cast<std::size_t>(
                                               comm_.size())),
          grp.x0, grp.x1, std::span<Complex* const>(out, nv));
    }

    for (int ip = static_cast<int>(&grp - groups_.data()) * q_;
         ip < std::min((static_cast<int>(&grp - groups_.data()) + 1) * q_,
                       np_);
         ++ip) {
      const auto r = pencil_range(nxh_, np_, ip);
      stage_fft_y(fft::Direction::Forward, r.x0, r.x1,
                  std::span<Complex* const>(out, nv));
    }
  }
}

}  // namespace psdns::pipeline
