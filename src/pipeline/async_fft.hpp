#pragma once
// Functional executor of the batched asynchronous algorithm (Fig. 4): a
// slab-decomposed 3-D transform processed pencil by pencil through explicit
// device-sized staging buffers, with pack-on-copy and nonblocking
// all-to-alls posted per pencil group and completed by a single wait in the
// second region, exactly as the paper's schedule prescribes.
//
// On this substrate "H2D/D2H" are host strided copies (gpu::memcpy2d) and
// the nonblocking collective is comm::Communicator::ialltoall; the point of
// this class is to execute the *algorithm* on real data so tests can assert
// it is exactly equivalent to the monolithic transform. Its at-scale timing
// is what pipeline::DnsStepModel simulates.

#include <cstddef>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "obs/span.hpp"
#include "transpose/slab.hpp"
#include "util/arena.hpp"

namespace psdns::pipeline {

using fft::Complex;
using fft::Real;

class AsyncFft3d {
 public:
  /// np pencils per slab, q pencils aggregated per all-to-all.
  AsyncFft3d(comm::Communicator& comm, std::size_t n, int np, int q);

  std::size_t n() const { return n_; }
  int pencils() const { return np_; }
  int pencils_per_a2a() const { return q_; }
  std::size_t physical_elems() const { return n_ * n_ * grid().my(); }
  std::size_t spectral_elems() const { return nxh_ * n_ * grid().mz(); }
  const transpose::SlabGrid& grid() const { return transpose_.grid(); }

  /// Spectral Z-slabs -> physical Y-slabs (unnormalized inverse transform,
  /// like SlabFft3d::inverse). Collective.
  void inverse(std::span<const Complex* const> spec,
               std::span<Real* const> phys);

  /// Physical Y-slabs -> spectral Z-slabs (forward). Collective.
  void forward(std::span<const Real* const> phys,
               std::span<Complex* const> spec);

 private:
  struct GroupBuffers {
    util::WorkspaceArena::Handle<Complex> send, recv;
    comm::Request request;
    std::size_t x0 = 0, x1 = 0;
    obs::FlowId flow = 0;  // causal edge from the group's post to its wait
  };

  void stage_fft_y(fft::Direction dir, std::size_t x0, std::size_t x1,
                   std::span<Complex* const> slabs);

  comm::Communicator& comm_;
  std::size_t n_, nxh_;
  int np_, q_;
  transpose::SlabTranspose transpose_;
  std::shared_ptr<const fft::PlanR2C> plan_x_;
  std::shared_ptr<const fft::PlanC2C> plan_yz_;
  // Staging checked out of the workspace arena; the per-call pointer
  // tables are members so a warmed-up transform never touches the heap.
  util::WorkspaceArena::Handle<Complex> device_;  // the pencil staging buffer
  std::vector<util::WorkspaceArena::Handle<Complex>> scratch_;  // per-variable
  std::vector<GroupBuffers> groups_;
  std::vector<Complex*> work_ptrs_, yslab_ptrs_, out_ptrs_;
};

}  // namespace psdns::pipeline
