#include "dns/regrid.hpp"

#include <vector>

#include "util/check.hpp"

namespace psdns::dns {

void spectral_regrid(SlabSolver& src, SlabSolver& dst) {
  PSDNS_REQUIRE(&src.communicator() == &dst.communicator(),
                "src and dst must share a communicator");
  PSDNS_REQUIRE(src.scalar_count() == dst.scalar_count(),
                "src and dst must carry the same scalars");
  auto& comm = src.communicator();

  const std::size_t ns = src.n();
  const std::size_t nxh_s = ns / 2 + 1;
  const auto src_slab = src.modes().local_modes();

  // Gather each source field globally and broadcast, then every rank fills
  // its destination slab by wavenumber lookup. Global Z-slab order is the
  // rank-ordered concatenation of local slabs.
  std::vector<Complex> global(nxh_s * ns * ns);
  const std::size_t dst_slab = dst.modes().local_modes();
  const int nfields = 3 + src.scalar_count();
  std::vector<std::vector<Complex>> out(
      static_cast<std::size_t>(nfields),
      std::vector<Complex>(dst_slab, Complex{0.0, 0.0}));

  const int half_s = static_cast<int>(ns) / 2;
  for (int f = 0; f < nfields; ++f) {
    const Complex* local_field =
        f < 3 ? src.uhat(f) : src.that(f - 3);
    comm.gather(local_field, global.data(), src_slab, 0);
    comm.broadcast(global.data(), global.size(), 0);

    auto& o = out[static_cast<std::size_t>(f)];
    for_each_mode(dst.modes(), [&](std::size_t idx, int kx, int ky, int kz) {
      if (kx > half_s || std::abs(ky) > half_s || std::abs(kz) > half_s) {
        return;  // beyond the source grid: stays zero (upsampling)
      }
      // Source storage indices: kx direct; ky/kz wrap negatives to the
      // upper half of the source axis.
      const auto jy = static_cast<std::size_t>(
          ky >= 0 ? ky : ky + static_cast<int>(ns));
      const auto jz = static_cast<std::size_t>(
          kz >= 0 ? kz : kz + static_cast<int>(ns));
      o[idx] = global[static_cast<std::size_t>(kx) + nxh_s * (jy + ns * jz)];
    });
  }

  std::vector<const Complex*> ptrs(static_cast<std::size_t>(nfields));
  for (int f = 0; f < nfields; ++f) {
    ptrs[static_cast<std::size_t>(f)] = out[static_cast<std::size_t>(f)].data();
  }
  dst.restore(std::span<const Complex* const>(ptrs.data(),
                                              static_cast<std::size_t>(nfields)),
              src.time(), src.step_count());

  // Downsampling can reintroduce content above the destination's dealiasing
  // cutoff; one truncation pass restores the invariant.
  for (int c = 0; c < 3; ++c) dealias_truncate(dst.modes(), dst.uhat(c));
  for (int s = 0; s < dst.scalar_count(); ++s) {
    dealias_truncate(dst.modes(), dst.that(s));
  }
}

}  // namespace psdns::dns
