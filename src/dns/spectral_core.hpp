#pragma once
// The physics-agnostic pseudo-spectral engine: one implementation of the
// paper's time-stepping machinery (Sec. 2) written against the
// transpose::DistFft3d backend interface, shared by the slab solver (the
// "new code") and the pencil baseline (the synchronous CPU code of Yeung
// et al. 2015 the paper benchmarks against).
//
// The engine owns everything that is the same for every equation set:
// state and arena scratch, the batched multi-variable DistFft3d round
// trips, strict-2/3 / Rogallo phase-shift dealiasing, RK2/RK4 stepping
// with exact per-field linear propagators, band forcing, checkpoint
// restore, and the generic statistics. Everything that differs between
// equation sets - the field inventory, the physical-space products, the
// spectral RHS, the linear factor, named diagnostics and spectra - lives
// behind the EquationSystem interface (src/dns/systems/), selected by
// SolverConfig::system. Each RK substage evaluates the nonlinear terms
// pseudo-spectrally: inverse-transform all fields, form the system's
// products in physical space, forward-transform them, let the system
// assemble its spectral RHS, and dealias; the linear terms are integrated
// exactly by the system's propagator (viscous/diffusive decay, plus e.g.
// the Coriolis rotation).
//
// All substage scratch (RK stages, product spectra, physical-space blocks,
// optional shifted copies) is checked out of util::WorkspaceArena once at
// construction, and initial conditions are keyed on *global* grid indices
// through the backend's PhysView - so a warmed-up step() performs zero
// heap allocations and both decompositions produce the same physics from
// the same seed.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/solver_config.hpp"
#include "dns/spectral_ops.hpp"
#include "dns/systems/equation_system.hpp"
#include "transpose/dist_fft.hpp"
#include "util/arena.hpp"

namespace psdns::dns {

class SpectralEngine {
 public:
  /// The backend must outlive the engine. The engine configures the
  /// backend's transpose batching from config (pencils / pencils_per_a2a),
  /// validates the forcing band, normalizes the config for the selected
  /// system (Boussinesq materializes its buoyancy scalar), and builds the
  /// EquationSystem.
  SpectralEngine(comm::Communicator& comm, transpose::DistFft3d& fft,
                 SolverConfig config);

  const SolverConfig& config() const { return config_; }
  std::size_t n() const { return config_.n; }
  double time() const { return time_; }
  std::int64_t step_count() const { return steps_; }
  const ModeView& modes() const { return view_; }
  const PhysView& points() const { return pview_; }
  comm::Communicator& communicator() { return comm_; }
  transpose::DistFft3d& fft() { return fft_; }
  const EquationSystem& system() const { return *system_; }
  int scalar_count() const {
    return static_cast<int>(config_.scalars.size());
  }
  std::size_t field_count() const { return system_->field_count(); }
  std::size_t extra_field_count() const { return system_->extra_fields(); }
  /// State index of the first magnetic component, or -1 (non-MHD systems).
  int magnetic_base() const { return system_->magnetic_base(); }

  /// Field coefficients (backend spectral layout), f in [0, field_count()):
  /// the three velocity components, then the system's extra fields.
  Complex* field(std::size_t f) { return state_[f].data(); }
  const Complex* field(std::size_t f) const { return state_[f].data(); }

  /// Velocity coefficients, component c in {0,1,2}.
  Complex* uhat(int c) { return state_[static_cast<std::size_t>(c)].data(); }
  const Complex* uhat(int c) const {
    return state_[static_cast<std::size_t>(c)].data();
  }

  /// Scalar coefficients, scalar index s in [0, scalar_count()).
  Complex* that(int s) {
    return state_[static_cast<std::size_t>(3 + s)].data();
  }
  const Complex* that(int s) const {
    return state_[static_cast<std::size_t>(3 + s)].data();
  }

  // --- initial conditions (all collective, decomposition-invariant) ---

  /// 2-D Taylor-Green vortex (u = sin x cos y, v = -cos x sin y, w = 0):
  /// an exact Navier-Stokes solution decaying as exp(-2 nu t); used for
  /// validation.
  void init_taylor_green();

  /// Random solenoidal field with spectrum E(k) ~ (k/k0)^4 exp(-2(k/k0)^2),
  /// rescaled to total energy `energy`. Deterministic in `seed` and
  /// independent of the rank count and decomposition.
  void init_isotropic(std::uint64_t seed, double k_peak, double energy);

  /// Fills from a physical-space function u_c(x, y, z), then projects and
  /// dealiases.
  void init_from_function(
      const std::function<std::array<double, 3>(double, double, double)>& f);

  /// Scalar initial conditions: from a physical-space function, or a
  /// random field shaped like the velocity IC with the given variance.
  void init_scalar_from_function(
      int s, const std::function<double(double, double, double)>& f);
  void init_scalar_isotropic(int s, std::uint64_t seed, double k_peak,
                             double variance);

  /// MHD only: random solenoidal magnetic fluctuation with the same
  /// spectral shape as the velocity IC, rescaled to `energy` (Alfven
  /// units). Does not touch the k = 0 mean field or reset the clock.
  void init_magnetic_isotropic(std::uint64_t seed, double k_peak,
                               double energy);

  /// MHD only: sets the uniform mean magnetic field B0 (the k = 0 mode of
  /// the induction fields, preserved exactly by the stepping).
  void set_uniform_magnetic_field(const std::array<double, 3>& b0);

  /// MHD only: fills the magnetic fluctuation from a physical-space
  /// function b_c(x, y, z), then projects and dealiases it.
  void init_magnetic_from_function(
      const std::function<std::array<double, 3>(double, double, double)>& f);

  /// Overwrites the solver state from externally supplied coefficients
  /// (checkpoint restart). `fields` holds the 3 velocity components
  /// followed by extra_field_count() system fields, each this rank's local
  /// spectral block.
  void restore(std::span<const Complex* const> fields, double time,
               std::int64_t steps);

  // --- stepping ---

  /// Advances one step of size dt with the configured scheme.
  void step(double dt);

  /// Largest stable dt estimate: cfl * dx / u_max (collective). For MHD
  /// the pointwise max includes the magnetic field (Alfven units), so the
  /// estimate respects the Alfven-wave CFL as well.
  double cfl_dt(double cfl = 0.5);

  /// Collective statistics of the current state.
  Diagnostics diagnostics();
  ScalarDiagnostics scalar_diagnostics(int s);

  /// System-specific named statistics (collective): e.g. magnetic_energy
  /// and cross_helicity for MHD, buoyancy_flux for Boussinesq. Empty for
  /// plain Navier-Stokes.
  std::vector<NamedValue> system_diagnostics();

  /// Shell spectra of the current state (collective).
  std::vector<double> spectrum();
  std::vector<double> scalar_spectrum(int s);

  /// The system's named shell-spectrum groups (collective): every system
  /// publishes {"kinetic", ...}; MHD adds {"magnetic", ...}, Boussinesq
  /// {"buoyancy", ...}.
  std::vector<std::pair<std::string, std::vector<double>>> named_spectra();

  /// Nonlinear energy-transfer spectrum T(k): the rate at which the
  /// (projected, dealiased) nonlinear term moves energy into shell k.
  /// The truncated system conserves energy, so sum_k T(k) ~ 0; negative at
  /// the energetic scales, positive at the small scales (the cascade).
  /// Collective.
  std::vector<double> transfer_spectrum();

  /// Velocity-derivative skewness <(du/dx)^3> / <(du/dx)^2>^{3/2},
  /// averaged over the three longitudinal derivatives (collective).
  double derivative_skewness();

  DerivativeMoments derivative_moments();

 private:
  using Field = std::vector<Complex>;

  double diffusivity(std::size_t f) const { return system_->diffusivity(f); }

  /// rhs[f] = nonlinear terms of the fields in[f] (+ forcing unless
  /// disabled); updates u_max. Pointer-based so RK stages address
  /// contiguous arena blocks without per-call containers.
  void compute_rhs(const Complex* const* in, Complex* const* rhs,
                   bool with_forcing = true);

  /// Dealiasing mask: cubic 2/3 truncation, or the larger spherical
  /// sqrt(2)/3 N radius when phase shifting is active (Rogallo's scheme).
  void apply_dealias(Complex* field);

  /// The system's exact linear propagator over dt, applied in place to a
  /// full field set (state or an RK stage).
  void apply_linear(Complex* const* fields, double dt) {
    system_->apply_linear(view_, fields, dt);
  }

  /// Normalize, project and dealias a solenoidal vector triple starting at
  /// state index base after a physical-space fill.
  void finalize_vector_ic(std::size_t base);

  /// Normalize, project and dealias the velocity state after a physical-
  /// space fill; resets the clock.
  void finalize_velocity_ic();

  /// Shapes the shell spectrum of the vector triple at `base` to
  /// E(k) ~ (k/k0)^4 exp(-2 (k/k0)^2) with total energy `energy`.
  void shape_vector_spectrum(std::size_t base, double k_peak, double energy);

  Complex* block(util::WorkspaceArena::Handle<Complex>& h,
                 std::size_t f) const {
    return h.data() + f * spec_;
  }
  Real* phys_block(std::size_t f) const {
    return phys_.data() + f * phys_elems_;
  }

  comm::Communicator& comm_;
  SolverConfig config_;
  transpose::DistFft3d& fft_;
  std::unique_ptr<EquationSystem> system_;
  ModeView view_;
  PhysView pview_;
  std::size_t spec_ = 0;        // local spectral elements per field
  std::size_t phys_elems_ = 0;  // local physical elements per field
  std::size_t nprod_ = 0;       // system_->product_count()

  std::vector<Field> state_;  // [u, v, w, <system extra fields>]
  double time_ = 0.0;
  std::int64_t steps_ = 0;
  std::int64_t rhs_evals_ = 0;  // parity selects the Rogallo grid shift
  double last_umax_ = 0.0;

  // Steady-state scratch: contiguous arena blocks checked out once in the
  // constructor (nf fields each; k_ holds the four RK4 stages), so a
  // warmed-up step() never touches the heap.
  util::WorkspaceArena::Handle<Complex> rhs_a_, rhs_b_, stage_;
  util::WorkspaceArena::Handle<Complex> k_;        // RK4 only
  util::WorkspaceArena::Handle<Complex> shifted_;  // phase shifting only
  util::WorkspaceArena::Handle<Complex> prod_hat_;
  util::WorkspaceArena::Handle<Real> phys_;  // nf fields, then products

  // Reused pointer tables for the batched transforms, RK stages, and the
  // EquationSystem callbacks (const and mutable aliases of the same
  // blocks; apply_linear needs mutable field sets).
  std::vector<const Complex*> state_ptrs_, stage_ptrs_, spec_in_;
  std::vector<Complex*> state_mut_, stage_mut_;
  std::vector<Complex*> rhs_a_ptrs_, rhs_b_ptrs_, k_ptrs_;
  std::vector<Real*> phys_out_, prod_out_;
  std::vector<const Real*> prod_in_, field_phys_;
  std::vector<Complex*> prod_spec_;
  std::vector<const Complex*> prod_spec_const_;
};

/// The engine's historical name: the physics used to be hard-coded to
/// incompressible Navier-Stokes. Adapters (SlabSolver, PencilSolver) and
/// older call sites still use it.
using SpectralNSCore = SpectralEngine;

}  // namespace psdns::dns
