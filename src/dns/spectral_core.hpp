#pragma once
// The decomposition-agnostic pseudo-spectral Navier-Stokes core: one
// implementation of the paper's DNS physics (Sec. 2) written against the
// transpose::DistFft3d backend interface, shared by the slab solver (the
// "new code") and the pencil baseline (the synchronous CPU code of Yeung
// et al. 2015 the paper benchmarks against).
//
// State: three velocity Fourier coefficients plus m scalar coefficients in
// the backend's spectral layout, normalized so that u(x) = sum_k uhat(k)
// exp(i k.x) on the 2*pi-periodic cube. Each RK substage evaluates the
// nonlinear terms pseudo-spectrally: inverse-transform all 3+m fields,
// form the 6 symmetric velocity products and 3 flux products per scalar in
// physical space, forward-transform them, assemble the projected
// conservative-form momentum RHS and the flux-divergence scalar RHS, and
// dealias (2/3 truncation, or Rogallo phase shifting with the larger
// spherical radius). Diffusion is integrated exactly per field with the
// integrating factor (nu for velocity, nu/Sc per scalar); time stepping is
// RK2 or RK4.
//
// All substage scratch (RK stages, product spectra, physical-space blocks,
// optional shifted copies) is checked out of util::WorkspaceArena once at
// construction, and initial conditions are keyed on *global* grid indices
// through the backend's PhysView - so a warmed-up step() performs zero
// heap allocations and both decompositions produce the same physics from
// the same seed.

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/spectral_ops.hpp"
#include "transpose/dist_fft.hpp"
#include "util/arena.hpp"

namespace psdns::dns {

enum class TimeScheme { RK2, RK4 };

struct ForcingConfig {
  bool enabled = false;
  int klo = 1;          // forced band, inclusive
  int khi = 2;
  double power = 0.1;   // energy injection rate
};

/// One passive scalar. With a uniform mean gradient G along y, the solved
/// fluctuation theta' obeys d theta'/dt + u.grad theta' = D lap theta' - G v,
/// the standard configuration for statistically stationary mixing.
struct ScalarConfig {
  double schmidt = 1.0;        // Sc = nu / D
  double mean_gradient = 0.0;  // G (0 = freely decaying scalar)
};

struct SolverConfig {
  std::size_t n = 32;
  double viscosity = 0.01;
  TimeScheme scheme = TimeScheme::RK2;
  bool phase_shift_dealias = false;  // Rogallo shifts on top of truncation
  int pencils = 1;                   // np: pencils per slab (GPU batching)
  int pencils_per_a2a = 1;           // Q: pencils aggregated per all-to-all
  ForcingConfig forcing;
  std::vector<ScalarConfig> scalars;
};

/// One-step flow statistics (all collective to compute).
struct Diagnostics {
  double energy = 0.0;        // 1/2 <u.u>
  double dissipation = 0.0;   // 2 nu sum k^2 E(k)
  double u_max = 0.0;         // max pointwise |u_i|
  double max_divergence = 0.0;
  double taylor_scale = 0.0;      // lambda = sqrt(15 nu u'^2 / eps)
  double reynolds_lambda = 0.0;   // u' lambda / nu
  double kolmogorov_eta = 0.0;    // (nu^3/eps)^(1/4)
};

/// Scalar-field statistics (collective).
struct ScalarDiagnostics {
  double variance = 0.0;       // 1/2 <theta^2>
  double dissipation = 0.0;    // chi = 2 D sum k^2 E_theta(k)
  double flux_y = 0.0;         // <v theta> (down-gradient transport)
};

/// Skewness and flatness of the longitudinal velocity derivatives.
/// A gaussian field has skewness 0 and flatness 3; developed turbulence
/// shows ~-0.5 and > 4 (small-scale intermittency - the "extreme events"
/// the record-size simulations are run to quantify).
struct DerivativeMoments {
  double skewness = 0.0;
  double flatness = 0.0;
};

class SpectralNSCore {
 public:
  /// The backend must outlive the core. The core configures the backend's
  /// transpose batching from config (pencils / pencils_per_a2a).
  SpectralNSCore(comm::Communicator& comm, transpose::DistFft3d& fft,
                 SolverConfig config);

  const SolverConfig& config() const { return config_; }
  std::size_t n() const { return config_.n; }
  double time() const { return time_; }
  std::int64_t step_count() const { return steps_; }
  const ModeView& modes() const { return view_; }
  const PhysView& points() const { return pview_; }
  comm::Communicator& communicator() { return comm_; }
  transpose::DistFft3d& fft() { return fft_; }
  int scalar_count() const {
    return static_cast<int>(config_.scalars.size());
  }

  /// Velocity coefficients (backend spectral layout), component c in
  /// {0,1,2}.
  Complex* uhat(int c) { return state_[static_cast<std::size_t>(c)].data(); }
  const Complex* uhat(int c) const {
    return state_[static_cast<std::size_t>(c)].data();
  }

  /// Scalar coefficients, scalar index s in [0, scalar_count()).
  Complex* that(int s) {
    return state_[static_cast<std::size_t>(3 + s)].data();
  }
  const Complex* that(int s) const {
    return state_[static_cast<std::size_t>(3 + s)].data();
  }

  // --- initial conditions (all collective, decomposition-invariant) ---

  /// 2-D Taylor-Green vortex (u = sin x cos y, v = -cos x sin y, w = 0):
  /// an exact Navier-Stokes solution decaying as exp(-2 nu t); used for
  /// validation.
  void init_taylor_green();

  /// Random solenoidal field with spectrum E(k) ~ (k/k0)^4 exp(-2(k/k0)^2),
  /// rescaled to total energy `energy`. Deterministic in `seed` and
  /// independent of the rank count and decomposition.
  void init_isotropic(std::uint64_t seed, double k_peak, double energy);

  /// Fills from a physical-space function u_c(x, y, z), then projects and
  /// dealiases.
  void init_from_function(
      const std::function<std::array<double, 3>(double, double, double)>& f);

  /// Scalar initial conditions: from a physical-space function, or a
  /// random field shaped like the velocity IC with the given variance.
  void init_scalar_from_function(
      int s, const std::function<double(double, double, double)>& f);
  void init_scalar_isotropic(int s, std::uint64_t seed, double k_peak,
                             double variance);

  /// Overwrites the solver state from externally supplied coefficients
  /// (checkpoint restart). `fields` holds the 3 velocity components
  /// followed by scalar_count() scalars, each this rank's local spectral
  /// block.
  void restore(std::span<const Complex* const> fields, double time,
               std::int64_t steps);

  // --- stepping ---

  /// Advances one step of size dt with the configured scheme.
  void step(double dt);

  /// Largest stable dt estimate: cfl * dx / u_max (collective).
  double cfl_dt(double cfl = 0.5);

  /// Collective statistics of the current state.
  Diagnostics diagnostics();
  ScalarDiagnostics scalar_diagnostics(int s);

  /// Shell spectra of the current state (collective).
  std::vector<double> spectrum();
  std::vector<double> scalar_spectrum(int s);

  /// Nonlinear energy-transfer spectrum T(k): the rate at which the
  /// (projected, dealiased) nonlinear term moves energy into shell k.
  /// The truncated system conserves energy, so sum_k T(k) ~ 0; negative at
  /// the energetic scales, positive at the small scales (the cascade).
  /// Collective.
  std::vector<double> transfer_spectrum();

  /// Velocity-derivative skewness <(du/dx)^3> / <(du/dx)^2>^{3/2},
  /// averaged over the three longitudinal derivatives (collective).
  double derivative_skewness();

  DerivativeMoments derivative_moments();

 private:
  using Field = std::vector<Complex>;

  std::size_t field_count() const { return 3 + config_.scalars.size(); }
  double diffusivity(std::size_t f) const {
    return f < 3 ? config_.viscosity
                 : config_.viscosity / config_.scalars[f - 3].schmidt;
  }

  /// rhs[f] = nonlinear terms of the fields in[f] (+ forcing unless
  /// disabled); updates u_max. Pointer-based so RK stages address
  /// contiguous arena blocks without per-call containers.
  void compute_rhs(const Complex* const* in, Complex* const* rhs,
                   bool with_forcing = true);

  /// Dealiasing mask: cubic 2/3 truncation, or the larger spherical
  /// sqrt(2)/3 N radius when phase shifting is active (Rogallo's scheme).
  void apply_dealias(Complex* field);

  /// Per-field exact diffusion: field *= exp(-kappa_f k^2 dt).
  void apply_if(std::size_t f, Complex* field, double dt);

  /// Normalize, project and dealias the velocity state after a physical-
  /// space fill; resets the clock.
  void finalize_velocity_ic();

  Complex* block(util::WorkspaceArena::Handle<Complex>& h,
                 std::size_t f) const {
    return h.data() + f * spec_;
  }
  Real* phys_block(std::size_t f) const {
    return phys_.data() + f * phys_elems_;
  }

  comm::Communicator& comm_;
  SolverConfig config_;
  transpose::DistFft3d& fft_;
  ModeView view_;
  PhysView pview_;
  std::size_t spec_ = 0;        // local spectral elements per field
  std::size_t phys_elems_ = 0;  // local physical elements per field
  std::size_t nprod_ = 0;       // 6 velocity products + 3 per scalar

  std::vector<Field> state_;  // [u, v, w, theta_0, ..., theta_{m-1}]
  double time_ = 0.0;
  std::int64_t steps_ = 0;
  std::int64_t rhs_evals_ = 0;  // parity selects the Rogallo grid shift
  double last_umax_ = 0.0;

  // Steady-state scratch: contiguous arena blocks checked out once in the
  // constructor (nf fields each; k_ holds the four RK4 stages), so a
  // warmed-up step() never touches the heap.
  util::WorkspaceArena::Handle<Complex> rhs_a_, rhs_b_, stage_;
  util::WorkspaceArena::Handle<Complex> k_;        // RK4 only
  util::WorkspaceArena::Handle<Complex> shifted_;  // phase shifting only
  util::WorkspaceArena::Handle<Complex> prod_hat_;
  util::WorkspaceArena::Handle<Real> phys_;  // 3+m fields, then products

  // Reused pointer tables for the batched transforms and RK stages.
  std::vector<const Complex*> state_ptrs_, stage_ptrs_, spec_in_;
  std::vector<Complex*> rhs_a_ptrs_, rhs_b_ptrs_, k_ptrs_;
  std::vector<Real*> phys_out_;
  std::vector<const Real*> prod_in_;
  std::vector<Complex*> prod_spec_;
};

}  // namespace psdns::dns
