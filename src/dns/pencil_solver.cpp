#include "dns/pencil_solver.hpp"

#include <cmath>
#include <numbers>

#include "transpose/pencil.hpp"
#include "util/check.hpp"

namespace psdns::dns {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

PencilSolver::PencilSolver(comm::Communicator& comm,
                           PencilSolverConfig config)
    : comm_(comm), config_(config), fft_(comm, config.n, config.pr, config.pc) {
  PSDNS_REQUIRE(config_.n >= 4, "grid too small for a DNS");
  PSDNS_REQUIRE(config_.viscosity > 0.0, "viscosity must be positive");
  const auto xr = fft_.x_range();
  const auto& g = fft_.grid();
  // Z-pencil spectral layout: pz[k + n*(ii + w*jj)], ky offset from the
  // column rank.
  const std::size_t col_rank =
      static_cast<std::size_t>(comm.rank() / config_.pr);
  view_ = ModeView::zpencil(config_.n, xr.width(), xr.x0, g.yl2(),
                            col_rank * g.yl2());
  vel_ = make_fields();
  rhs_a_ = make_fields();
  rhs_b_ = make_fields();
  stage_ = make_fields();
  phys_.resize(9);
  for (auto& p : phys_) p.resize(fft_.physical_elems());
  prod_hat_.resize(6);
  for (auto& p : prod_hat_) p.resize(fft_.spectral_elems());
}

PencilSolver::Field3 PencilSolver::make_fields() const {
  Field3 f;
  for (auto& c : f) c.assign(fft_.spectral_elems(), Complex{0.0, 0.0});
  return f;
}

void PencilSolver::init_from_function(
    const std::function<std::array<double, 3>(double, double, double)>& f) {
  const std::size_t n = config_.n;
  const auto& g = fft_.grid();
  const std::size_t row_rank =
      static_cast<std::size_t>(comm_.rank() % config_.pr);
  const std::size_t col_rank =
      static_cast<std::size_t>(comm_.rank() / config_.pr);
  const std::size_t y0 = row_rank * g.yl();
  const std::size_t z0 = col_rank * g.zl();

  std::vector<Real> px(fft_.physical_elems()), py(fft_.physical_elems()),
      pz(fft_.physical_elems());
  for (std::size_t kk = 0; kk < g.zl(); ++kk) {
    const double z = kTwoPi * static_cast<double>(z0 + kk) / n;
    for (std::size_t jj = 0; jj < g.yl(); ++jj) {
      const double y = kTwoPi * static_cast<double>(y0 + jj) / n;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / n;
        const auto u = f(x, y, z);
        const std::size_t idx = i + n * (jj + g.yl() * kk);
        px[idx] = u[0];
        py[idx] = u[1];
        pz[idx] = u[2];
      }
    }
  }
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  fft_.forward(px, vel_[0]);
  fft_.forward(py, vel_[1]);
  fft_.forward(pz, vel_[2]);
  for (auto& c : vel_) {
    for (auto& zz : c) zz *= scale;
  }
  project(view_, vel_[0].data(), vel_[1].data(), vel_[2].data());
  for (auto& c : vel_) dealias_truncate(view_, c.data());
  time_ = 0.0;
}

void PencilSolver::init_taylor_green() {
  init_from_function([](double x, double y, double) {
    return std::array<double, 3>{std::sin(x) * std::cos(y),
                                 -std::cos(x) * std::sin(y), 0.0};
  });
}

void PencilSolver::compute_rhs(const Field3& vel, Field3& rhs) {
  const std::size_t n = config_.n;
  const double inv_n3 = 1.0 / (static_cast<double>(n) * n * n);

  // Velocities to physical space (row + column transposes per variable, the
  // 2x all-to-all pattern of the 2-D decomposition).
  for (int c = 0; c < 3; ++c) {
    fft_.inverse(vel[static_cast<std::size_t>(c)],
                 phys_[static_cast<std::size_t>(c)]);
  }

  const Real* u = phys_[0].data();
  const Real* v = phys_[1].data();
  const Real* w = phys_[2].data();
  const std::size_t m = fft_.physical_elems();
  for (std::size_t idx = 0; idx < m; ++idx) {
    phys_[3][idx] = u[idx] * u[idx];
    phys_[4][idx] = v[idx] * v[idx];
    phys_[5][idx] = w[idx] * w[idx];
    phys_[6][idx] = u[idx] * v[idx];
    phys_[7][idx] = u[idx] * w[idx];
    phys_[8][idx] = v[idx] * w[idx];
  }
  for (int t = 0; t < 6; ++t) {
    auto& ph = prod_hat_[static_cast<std::size_t>(t)];
    fft_.forward(phys_[static_cast<std::size_t>(t) + 3], ph);
    for (auto& z : ph) z *= inv_n3;
    dealias_truncate(view_, ph.data());
  }

  nonlinear_rhs(view_,
                ProductSet{prod_hat_[0].data(), prod_hat_[1].data(),
                           prod_hat_[2].data(), prod_hat_[3].data(),
                           prod_hat_[4].data(), prod_hat_[5].data()},
                rhs[0].data(), rhs[1].data(), rhs[2].data());
}

void PencilSolver::step(double dt) {
  PSDNS_REQUIRE(dt > 0.0, "dt must be positive");
  const double h = dt / 2.0;
  compute_rhs(vel_, rhs_a_);
  for (int c = 0; c < 3; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    for (std::size_t i = 0; i < vel_[ci].size(); ++i) {
      stage_[ci][i] = vel_[ci][i] + h * rhs_a_[ci][i];
    }
    apply_integrating_factor(view_, stage_[ci].data(), config_.viscosity, h);
  }
  compute_rhs(stage_, rhs_b_);
  for (int c = 0; c < 3; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    apply_integrating_factor(view_, vel_[ci].data(), config_.viscosity, dt);
    apply_integrating_factor(view_, rhs_b_[ci].data(), config_.viscosity, h);
    for (std::size_t i = 0; i < vel_[ci].size(); ++i) {
      vel_[ci][i] += dt * rhs_b_[ci][i];
    }
  }
  time_ += dt;
}

double PencilSolver::kinetic_energy() {
  return dns::kinetic_energy(view_, comm_, vel_[0].data(), vel_[1].data(),
                             vel_[2].data());
}

double PencilSolver::dissipation_rate() {
  return dns::dissipation(view_, comm_, vel_[0].data(), vel_[1].data(),
                          vel_[2].data(), config_.viscosity);
}

double PencilSolver::max_div() {
  return dns::max_divergence(view_, comm_, vel_[0].data(), vel_[1].data(),
                             vel_[2].data());
}

std::vector<double> PencilSolver::spectrum() {
  return dns::energy_spectrum(view_, comm_, vel_[0].data(), vel_[1].data(),
                              vel_[2].data());
}

}  // namespace psdns::dns
