#pragma once
// Solver configuration shared by the spectral engine, the equation systems
// and every adapter above them (slab/pencil solvers, driver, service).
// Split out of spectral_core.hpp when the physics moved behind the
// EquationSystem interface: the config names *which* system integrates the
// fields plus the per-system physical parameters, while the engine-level
// knobs (grid, scheme, dealiasing, batching) stay system-agnostic.

#include <cstddef>
#include <source_location>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace psdns::dns {

enum class TimeScheme { RK2, RK4 };

/// Which equation set the engine integrates. Each value maps to one
/// EquationSystem implementation in src/dns/systems/.
enum class SystemType {
  NavierStokes,  // incompressible NS + passive scalars (the seed physics)
  RotatingNS,    // + Coriolis force, folded exactly into the linear factor
  Boussinesq,    // + active buoyancy coupling scalar 0 (gravity along z)
  Mhd,           // + induction equation (Elsasser-form nonlinearity)
};

const char* to_string(SystemType s);
SystemType parse_system_type(const std::string& name);

/// Typed configuration error for physically meaningless forcing bands:
/// empty or inverted shells and non-positive injection power used to be
/// accepted and silently produced zero forcing.
class ForcingError : public util::Error {
 public:
  explicit ForcingError(const std::string& what,
                        std::source_location loc =
                            std::source_location::current())
      : util::Error("forcing config: " + what, loc) {}
};

struct ForcingConfig {
  bool enabled = false;
  int klo = 1;          // forced band, inclusive
  int khi = 2;
  double power = 0.1;   // energy injection rate
};

/// Rejects empty/inverted bands (klo < 1 or khi < klo) and non-positive
/// injection power when forcing is enabled. Throws ForcingError; callers
/// run it at config parse time on every rank so the whole group rejects
/// the job together instead of silently forcing nothing.
void validate_forcing(const ForcingConfig& f);

/// One passive scalar. With a uniform mean gradient G along y, the solved
/// fluctuation theta' obeys d theta'/dt + u.grad theta' = D lap theta' - G v,
/// the standard configuration for statistically stationary mixing.
struct ScalarConfig {
  double schmidt = 1.0;        // Sc = nu / D
  double mean_gradient = 0.0;  // G (0 = freely decaying scalar)
};

struct SolverConfig {
  std::size_t n = 32;
  double viscosity = 0.01;
  TimeScheme scheme = TimeScheme::RK2;
  bool phase_shift_dealias = false;  // Rogallo shifts on top of truncation
  int pencils = 1;                   // np: pencils per slab (GPU batching)
  int pencils_per_a2a = 1;           // Q: pencils aggregated per all-to-all
  ForcingConfig forcing;
  std::vector<ScalarConfig> scalars;

  // --- equation system selection -------------------------------------
  SystemType system = SystemType::NavierStokes;
  double rotation_omega = 0.0;   // RotatingNS: frame rotation rate about z
  double brunt_vaisala = 1.0;    // Boussinesq: buoyancy frequency N
  double resistivity = 0.0;      // Mhd: magnetic diffusivity eta (0 -> nu)
};

/// One-step flow statistics (all collective to compute).
struct Diagnostics {
  double energy = 0.0;        // 1/2 <u.u>
  double dissipation = 0.0;   // 2 nu sum k^2 E(k)
  double u_max = 0.0;         // max pointwise |u_i|
  double max_divergence = 0.0;
  double taylor_scale = 0.0;      // lambda = sqrt(15 nu u'^2 / eps)
  double reynolds_lambda = 0.0;   // u' lambda / nu
  double kolmogorov_eta = 0.0;    // (nu^3/eps)^(1/4)
};

/// Scalar-field statistics (collective).
struct ScalarDiagnostics {
  double variance = 0.0;       // 1/2 <theta^2>
  double dissipation = 0.0;    // chi = 2 D sum k^2 E_theta(k)
  double flux_y = 0.0;         // <v theta> (down-gradient transport)
};

/// Skewness and flatness of the longitudinal velocity derivatives.
/// A gaussian field has skewness 0 and flatness 3; developed turbulence
/// shows ~-0.5 and > 4 (small-scale intermittency - the "extreme events"
/// the record-size simulations are run to quantify).
struct DerivativeMoments {
  double skewness = 0.0;
  double flatness = 0.0;
};

}  // namespace psdns::dns
