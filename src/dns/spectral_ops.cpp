#include "dns/spectral_ops.hpp"

#include <cmath>

namespace psdns::dns {

void project(const ModeView& view, Complex* u, Complex* v, Complex* w) {
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    if (k2 == 0.0) {
      u[idx] = v[idx] = w[idx] = Complex{0.0, 0.0};
      return;
    }
    const Complex kdotu = static_cast<double>(kx) * u[idx] +
                          static_cast<double>(ky) * v[idx] +
                          static_cast<double>(kz) * w[idx];
    const Complex s = kdotu / k2;
    u[idx] -= static_cast<double>(kx) * s;
    v[idx] -= static_cast<double>(ky) * s;
    w[idx] -= static_cast<double>(kz) * s;
  });
}

void dealias_truncate(const ModeView& view, Complex* field) {
  // Strict 2/3 rule: 3*kmax < N, so that a product component of 2*kmax
  // aliases to -(N - 2*kmax) < -kmax and is removed. (kmax = N/3 exactly
  // would let boundary modes alias back onto the boundary.)
  const int kmax = (static_cast<int>(view.n) - 1) / 3;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    if (std::abs(kx) > kmax || std::abs(ky) > kmax || std::abs(kz) > kmax) {
      field[idx] = Complex{0.0, 0.0};
    }
  });
}

void dealias_spherical(const ModeView& view, Complex* field, double kmax) {
  const double k2max = kmax * kmax;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    if (k2 > k2max) field[idx] = Complex{0.0, 0.0};
  });
}

void apply_integrating_factor(const ModeView& view, Complex* field, double nu,
                              double dt) {
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    field[idx] *= std::exp(-nu * k2 * dt);
  });
}

void nonlinear_rhs(const ModeView& view, const ProductSet& t, Complex* out_u,
                   Complex* out_v, Complex* out_w) {
  const Complex mi{0.0, -1.0};  // -i
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double fx = static_cast<double>(kx);
    const double fy = static_cast<double>(ky);
    const double fz = static_cast<double>(kz);
    // Divergence of the momentum flux: N_i = -i k_m T_im.
    Complex nu_ = mi * (fx * t.t11[idx] + fy * t.t12[idx] + fz * t.t13[idx]);
    Complex nv_ = mi * (fx * t.t12[idx] + fy * t.t22[idx] + fz * t.t23[idx]);
    Complex nw_ = mi * (fx * t.t13[idx] + fy * t.t23[idx] + fz * t.t33[idx]);
    // Projection perpendicular to k (continuity / pressure, Eq. 2).
    const double k2 = fx * fx + fy * fy + fz * fz;
    if (k2 == 0.0) {
      out_u[idx] = out_v[idx] = out_w[idx] = Complex{0.0, 0.0};
      return;
    }
    const Complex kdotn = (fx * nu_ + fy * nv_ + fz * nw_) / k2;
    out_u[idx] = nu_ - fx * kdotn;
    out_v[idx] = nv_ - fy * kdotn;
    out_w[idx] = nw_ - fz * kdotn;
  });
}

void scalar_rhs(const ModeView& view, const Complex* fx, const Complex* fy,
                const Complex* fz, Complex* out) {
  const Complex mi{0.0, -1.0};
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    out[idx] = mi * (static_cast<double>(kx) * fx[idx] +
                     static_cast<double>(ky) * fy[idx] +
                     static_cast<double>(kz) * fz[idx]);
  });
}

void phase_shift(const ModeView& view, Complex* field, const double delta[3],
                 int sign) {
  const double s = sign >= 0 ? 1.0 : -1.0;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double phase =
        s * (kx * delta[0] + ky * delta[1] + kz * delta[2]);
    field[idx] *= Complex{std::cos(phase), std::sin(phase)};
  });
}

namespace {

/// Sum of w(kx) * f(k, |u|^2-ish) over local modes, then allreduce.
template <class F>
double reduce_modes(const ModeView& view, comm::Communicator& comm,
                    F&& local) {
  double sum = 0.0;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    sum += local(idx, kx, ky, kz);
  });
  return comm.allreduce_sum(sum);
}

double energy_density(const Complex* u, const Complex* v, const Complex* w,
                      std::size_t idx) {
  return 0.5 * (std::norm(u[idx]) + std::norm(v[idx]) + std::norm(w[idx]));
}

}  // namespace

double kinetic_energy(const ModeView& view, comm::Communicator& comm,
                      const Complex* u, const Complex* v, const Complex* w) {
  return reduce_modes(view, comm,
                      [&](std::size_t idx, int kx, int, int) {
                        return mode_weight(kx, view.n) *
                               energy_density(u, v, w, idx);
                      });
}

double dissipation(const ModeView& view, comm::Communicator& comm,
                   const Complex* u, const Complex* v, const Complex* w,
                   double nu) {
  return 2.0 * nu *
         reduce_modes(view, comm, [&](std::size_t idx, int kx, int ky, int kz) {
           const double k2 = static_cast<double>(kx) * kx +
                             static_cast<double>(ky) * ky +
                             static_cast<double>(kz) * kz;
           return mode_weight(kx, view.n) * k2 * energy_density(u, v, w, idx);
         });
}

std::vector<double> energy_spectrum(const ModeView& view,
                                    comm::Communicator& comm, const Complex* u,
                                    const Complex* v, const Complex* w) {
  std::vector<double> shells(view.n / 2 + 1, 0.0);
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    if (shell < shells.size()) {
      shells[shell] += mode_weight(kx, view.n) * energy_density(u, v, w, idx);
    }
  });
  comm.allreduce_sum(shells.data(), shells.data(), shells.size());
  return shells;
}

double max_divergence(const ModeView& view, comm::Communicator& comm,
                      const Complex* u, const Complex* v, const Complex* w) {
  double local = 0.0;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex div = static_cast<double>(kx) * u[idx] +
                        static_cast<double>(ky) * v[idx] +
                        static_cast<double>(kz) * w[idx];
    local = std::max(local, std::abs(div));
  });
  return comm.allreduce_max(local);
}

double band_energy(const ModeView& view, comm::Communicator& comm,
                   const Complex* u, const Complex* v, const Complex* w,
                   int klo, int khi) {
  return reduce_modes(view, comm, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const int shell = static_cast<int>(std::lround(kmag));
    if (shell < klo || shell > khi) return 0.0;
    return mode_weight(kx, view.n) * energy_density(u, v, w, idx);
  });
}

double field_variance(const ModeView& view, comm::Communicator& comm,
                      const Complex* f) {
  return reduce_modes(view, comm, [&](std::size_t idx, int kx, int, int) {
    return mode_weight(kx, view.n) * 0.5 * std::norm(f[idx]);
  });
}

double field_dissipation(const ModeView& view, comm::Communicator& comm,
                         const Complex* f, double kappa) {
  return 2.0 * kappa *
         reduce_modes(view, comm, [&](std::size_t idx, int kx, int ky, int kz) {
           const double k2 = static_cast<double>(kx) * kx +
                             static_cast<double>(ky) * ky +
                             static_cast<double>(kz) * kz;
           return mode_weight(kx, view.n) * k2 * 0.5 * std::norm(f[idx]);
         });
}

std::vector<double> field_spectrum(const ModeView& view,
                                   comm::Communicator& comm,
                                   const Complex* f) {
  std::vector<double> shells(view.n / 2 + 1, 0.0);
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    if (shell < shells.size()) {
      shells[shell] += mode_weight(kx, view.n) * 0.5 * std::norm(f[idx]);
    }
  });
  comm.allreduce_sum(shells.data(), shells.data(), shells.size());
  return shells;
}

double cospectrum_total(const ModeView& view, comm::Communicator& comm,
                        const Complex* a, const Complex* b) {
  return reduce_modes(view, comm, [&](std::size_t idx, int kx, int, int) {
    return mode_weight(kx, view.n) * (std::conj(a[idx]) * b[idx]).real();
  });
}

void add_band_forcing(const ModeView& view, Complex* rhs_u, Complex* rhs_v,
                      Complex* rhs_w, const Complex* u, const Complex* v,
                      const Complex* w, int klo, int khi, double coeff) {
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const int shell = static_cast<int>(std::lround(kmag));
    if (shell < klo || shell > khi) return;
    rhs_u[idx] += coeff * u[idx];
    rhs_v[idx] += coeff * v[idx];
    rhs_w[idx] += coeff * w[idx];
  });
}

}  // namespace psdns::dns
