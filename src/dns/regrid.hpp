#pragma once
// Spectral regridding: transfers a solver state onto a grid of different
// resolution by exact Fourier interpolation (zero-padding upward,
// truncation downward). This is how production campaigns seed a
// higher-resolution run from a developed lower-resolution field - e.g.
// stepping a turbulence database up toward the paper's 18432^3 - without
// re-spinning the flow from scratch.
//
// Both solvers must live on the same communicator. Velocity components and
// any matching passive scalars are transferred; time and step counters
// carry over. Because dealiased fields have no content at or above
// (N-1)/3 < N/2, no Nyquist-plane ambiguity arises in either direction.

#include "dns/solver.hpp"

namespace psdns::dns {

/// Copies src's spectral state into dst (exact where modes overlap, zero
/// elsewhere). Requires src.scalar_count() == dst.scalar_count().
/// Collective over the shared communicator.
void spectral_regrid(SlabSolver& src, SlabSolver& dst);

}  // namespace psdns::dns
