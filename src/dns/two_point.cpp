#include "dns/two_point.hpp"

#include <cmath>

#include "util/check.hpp"

namespace psdns::dns {

namespace {

/// Isotropic longitudinal kernel: f(r) = (2/u'^2) sum_k E(k) G(kr) with
/// G(x) = (sin x - x cos x) / x^3 and G(0) = 1/3, so that
/// sum_k E(k) * 2 * G(0) = (2/3) * E_total = u'^2 / ... checks out:
/// f(0) = (2/u'^2) * (1/3) * 2 E_total ... with u'^2 = (2/3) E_total * 2?
/// Carefully: kinetic energy E_total = (3/2) u'^2, so
/// f(0) = (2/u'^2) * sum E(k)/3 = (2/(u'^2)) * E_total/3 = 1. Correct.
double kernel(double x) {
  if (std::abs(x) < 1e-4) {
    // Series: (sin x - x cos x)/x^3 = 1/3 - x^2/30 + ...
    return 1.0 / 3.0 - x * x / 30.0;
  }
  return (std::sin(x) - x * std::cos(x)) / (x * x * x);
}

}  // namespace

std::vector<double> longitudinal_correlation(
    const std::vector<double>& spectrum, const std::vector<double>& r) {
  double e_total = 0.0;
  for (const double e : spectrum) e_total += e;
  PSDNS_REQUIRE(e_total > 0.0, "correlation of a zero-energy field");
  const double uprime2 = 2.0 * e_total / 3.0;

  std::vector<double> f(r.size(), 0.0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    PSDNS_REQUIRE(r[i] >= 0.0, "negative separation");
    double sum = 0.0;
    for (std::size_t k = 1; k < spectrum.size(); ++k) {
      sum += spectrum[k] * kernel(static_cast<double>(k) * r[i]);
    }
    // k = 0 shell has no direction; it carries no fluctuation energy after
    // mean removal, but include it with the r-independent kernel limit for
    // completeness.
    sum += spectrum[0] / 3.0;
    f[i] = 2.0 * sum / uprime2;
  }
  return f;
}

std::vector<double> structure_function_2(const std::vector<double>& spectrum,
                                         const std::vector<double>& r) {
  double e_total = 0.0;
  for (const double e : spectrum) e_total += e;
  const double uprime2 = 2.0 * e_total / 3.0;
  auto f = longitudinal_correlation(spectrum, r);
  for (auto& v : f) v = 2.0 * uprime2 * (1.0 - v);
  return f;
}

}  // namespace psdns::dns
