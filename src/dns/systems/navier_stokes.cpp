#include "dns/systems/navier_stokes.hpp"

namespace psdns::dns {

void NavierStokes::form_products(const Real* const* fields,
                                 Real* const* products, std::size_t m) const {
  const Real* u = fields[0];
  const Real* v = fields[1];
  const Real* w = fields[2];
  Real* t11 = products[0];
  Real* t22 = products[1];
  Real* t33 = products[2];
  Real* t12 = products[3];
  Real* t13 = products[4];
  Real* t23 = products[5];
  for (std::size_t idx = 0; idx < m; ++idx) {
    t11[idx] = u[idx] * u[idx];
    t22[idx] = v[idx] * v[idx];
    t33[idx] = w[idx] * w[idx];
    t12[idx] = u[idx] * v[idx];
    t13[idx] = u[idx] * w[idx];
    t23[idx] = v[idx] * w[idx];
  }
  const std::size_t nscalars = config_.scalars.size();
  for (std::size_t s = 0; s < nscalars; ++s) {
    const Real* theta = fields[3 + s];
    Real* fx = products[6 + 3 * s + 0];
    Real* fy = products[6 + 3 * s + 1];
    Real* fz = products[6 + 3 * s + 2];
    for (std::size_t idx = 0; idx < m; ++idx) {
      fx[idx] = u[idx] * theta[idx];
      fy[idx] = v[idx] * theta[idx];
      fz[idx] = w[idx] * theta[idx];
    }
  }
}

void NavierStokes::assemble_rhs(const ModeView& view, const Complex* const* in,
                                const Complex* const* products,
                                Complex* const* rhs) const {
  nonlinear_rhs(view,
                ProductSet{products[0], products[1], products[2], products[3],
                           products[4], products[5]},
                rhs[0], rhs[1], rhs[2]);

  const std::size_t spec = view.local_modes();
  const std::size_t nscalars = config_.scalars.size();
  for (std::size_t s = 0; s < nscalars; ++s) {
    scalar_rhs(view, products[6 + 3 * s + 0], products[6 + 3 * s + 1],
               products[6 + 3 * s + 2], rhs[3 + s]);
    const double g = config_.scalars[s].mean_gradient;
    if (g != 0.0) {
      Complex* out = rhs[3 + s];
      const Complex* vv = in[1];
      for (std::size_t idx = 0; idx < spec; ++idx) {
        out[idx] -= g * vv[idx];
      }
    }
  }
}

}  // namespace psdns::dns
