#pragma once
// Incompressible MHD in Elsasser form. State: (u, v, w, bx, by, bz) with b
// in Alfven velocity units. The single product tensor
//
//   G_im = (z+_i z-_m)^,   z+- = u +- b
//
// carries both nonlinearities: its symmetric part is the momentum flux
// u_i u_m - b_i b_m (Reynolds minus Maxwell stress) and its antisymmetric
// part is the induction flux b_i u_m - u_i b_m, so one 9-product forward
// transform feeds both equations:
//
//   d uhat_i/dt = -P_ij i k_m (G_jm + G_mj)/2 + nu  k^2-diffusion
//   d bhat_i/dt = -     i k_m (G_im - G_mi)/2 + eta k^2-diffusion
//
// div b stays *exactly* zero: the induction RHS contracts the symmetric
// k_i k_m with an antisymmetric tensor. The k = 0 mode of b (a uniform
// mean field B0, imposed via SpectralEngine::set_uniform_magnetic_field)
// is automatically preserved - the RHS is proportional to k and the
// diffusive factor is 1 there.

#include "dns/systems/equation_system.hpp"

namespace psdns::dns {

class IncompressibleMhd : public EquationSystem {
 public:
  using EquationSystem::EquationSystem;

  const char* name() const override { return "mhd"; }
  std::size_t extra_fields() const override { return 3; }
  std::string field_name(std::size_t f) const override;
  std::size_t product_count() const override { return 9; }
  int magnetic_base() const override { return 3; }

  /// nu for the velocity, eta for the magnetic field (resistivity 0 is
  /// shorthand for magnetic Prandtl number 1, i.e. eta = nu).
  double diffusivity(std::size_t f) const override {
    if (f < 3) return config_.viscosity;
    return config_.resistivity > 0.0 ? config_.resistivity
                                     : config_.viscosity;
  }

  /// The nine Elsasser products G_im = z+_i z-_m, row-major in (i, m).
  void form_products(const Real* const* fields, Real* const* products,
                     std::size_t m) const override;

  void assemble_rhs(const ModeView& view, const Complex* const* in,
                    const Complex* const* products,
                    Complex* const* rhs) const override;

  /// magnetic_energy (1/2 <|b|^2>) and cross_helicity (<u.b>).
  std::vector<NamedValue> diagnostics(
      const ModeView& view, comm::Communicator& comm,
      const Complex* const* fields) const override;

  std::vector<SpectrumGroup> spectra() const override {
    return {{"kinetic", {0, 1, 2}}, {"magnetic", {3, 4, 5}}};
  }
};

}  // namespace psdns::dns
