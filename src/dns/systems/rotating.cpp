#include "dns/systems/rotating.hpp"

#include <cmath>

namespace psdns::dns {

void RotatingNS::apply_linear(const ModeView& view, Complex* const* fields,
                              double dt) const {
  NavierStokes::apply_linear(view, fields, dt);

  // Rotate (uhat, vhat, what) about khat by theta = -sigma dt,
  // sigma = 2 Omega kz / |k|. The rotation matrix is real and invariant
  // under k -> -k (both the axis and the angle flip sign), so Hermitian
  // symmetry of the stored half-spectrum is preserved. The k = 0 mode has
  // no khat (and a projected-out mean flow): left untouched.
  const double omega = config_.rotation_omega;
  Complex* u = fields[0];
  Complex* v = fields[1];
  Complex* w = fields[2];
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    if (k2 == 0.0) return;
    const double kmag = std::sqrt(k2);
    const double theta = -2.0 * omega * (static_cast<double>(kz) / kmag) * dt;
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const double ax = static_cast<double>(kx) / kmag;
    const double ay = static_cast<double>(ky) / kmag;
    const double az = static_cast<double>(kz) / kmag;
    const Complex u0 = u[idx], v0 = v[idx], w0 = w[idx];
    // Rodrigues: R v = v cos + (a x v) sin + a (a.v)(1 - cos). The state
    // is solenoidal (a.v = 0) but the axial term is kept so the propagator
    // stays exactly norm-preserving on any input (RK stages included).
    const Complex adotv = ax * u0 + ay * v0 + az * w0;
    const Complex cxu = ay * w0 - az * v0;
    const Complex cxv = az * u0 - ax * w0;
    const Complex cxw = ax * v0 - ay * u0;
    u[idx] = c * u0 + s * cxu + (1.0 - c) * adotv * ax;
    v[idx] = c * v0 + s * cxv + (1.0 - c) * adotv * ay;
    w[idx] = c * w0 + s * cxw + (1.0 - c) * adotv * az;
  });
}

}  // namespace psdns::dns
