#pragma once
// The physics side of the engine/system split. An EquationSystem owns
// everything that differs between equation sets integrated by the
// pseudo-spectral engine: the field inventory beyond (u, v, w), the
// physical-space products the nonlinear terms need, the spectral RHS
// assembled from those (dealiased) product spectra, the exact linear
// propagator folded into the integrating factor (diffusion per field, plus
// e.g. the Coriolis rotation), and system-specific diagnostics/spectra.
//
// The SpectralEngine owns everything that does not: state and arena
// scratch, batched DistFft3d round trips, Rogallo phase shifts and
// dealiasing, RK2/RK4 stepping, band forcing, and the generic statistics.
// Adding a new equation set means one new file in this directory plus a
// SystemType enumerator - not a fork of the engine.
//
// Contract notes for implementers:
//  - form_products and assemble_rhs run inside step(); they must not
//    allocate (the engine's zero-allocation step contract is enforced by
//    alloc_test) and must not communicate - collectives in the RHS would
//    deadlock under the engine's batching. Reductions belong in
//    diagnostics().
//  - apply_linear is the *exact* propagator of the system's linear terms
//    over dt. It is applied to RK stages as well as the state, so anything
//    folded in here must be a genuine linear, mode-local operator.
//  - Hermitian symmetry: assemble_rhs and apply_linear see only the
//    backend's stored half-spectrum; whatever they do must be consistent
//    with u(-k) = conj(u(k)) (real operators, or identical real matrices
//    for +-k).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/solver_config.hpp"
#include "dns/spectral_ops.hpp"

namespace psdns::dns {

/// One labelled scalar statistic, e.g. {"magnetic_energy", 0.42}.
struct NamedValue {
  std::string name;
  double value = 0.0;
};

/// One labelled shell-spectrum request: the engine sums the field spectra
/// of `fields` (state indices) into a single spectrum published under
/// `name` - e.g. {"magnetic", {3, 4, 5}}.
struct SpectrumGroup {
  std::string name;
  std::vector<int> fields;
};

class EquationSystem {
 public:
  explicit EquationSystem(const SolverConfig& config) : config_(config) {}
  virtual ~EquationSystem() = default;

  EquationSystem(const EquationSystem&) = delete;
  EquationSystem& operator=(const EquationSystem&) = delete;

  const SolverConfig& config() const { return config_; }

  /// Canonical lowercase identifier, matches parse_system_type().
  virtual const char* name() const = 0;

  /// Prognostic fields beyond the three velocity components.
  virtual std::size_t extra_fields() const = 0;
  std::size_t field_count() const { return 3 + extra_fields(); }

  /// Display name of field f ("u", "bz", "scalar1", ...).
  virtual std::string field_name(std::size_t f) const;

  /// Physical-space product arrays form_products fills per RHS evaluation.
  virtual std::size_t product_count() const = 0;

  /// Diffusivity of field f (used by the default apply_linear and by the
  /// engine's per-field dissipation statistics).
  virtual double diffusivity(std::size_t f) const = 0;

  /// State index of the first magnetic-field component, or -1 when the
  /// system carries no magnetic field.
  virtual int magnetic_base() const { return -1; }

  /// Pointwise products in physical space: fields[f] (f < field_count())
  /// and products[t] (t < product_count()) are m-element blocks.
  virtual void form_products(const Real* const* fields,
                             Real* const* products, std::size_t m) const = 0;

  /// Spectral RHS of every field from the dealiased, normalized product
  /// spectra; `in` is the stage state the products were formed from (for
  /// linear-in-state couplings such as mean-gradient or buoyancy terms).
  virtual void assemble_rhs(const ModeView& view, const Complex* const* in,
                            const Complex* const* products,
                            Complex* const* rhs) const = 0;

  /// Exact propagator of the linear terms over dt, in place on all
  /// field_count() fields. Default: per-field viscous/diffusive
  /// integrating factor exp(-kappa_f k^2 dt).
  virtual void apply_linear(const ModeView& view, Complex* const* fields,
                            double dt) const;

  /// System-specific collective statistics (may allreduce).
  virtual std::vector<NamedValue> diagnostics(
      const ModeView& view, comm::Communicator& comm,
      const Complex* const* fields) const;

  /// Named shell-spectrum groups; every system publishes at least
  /// {"kinetic", {0, 1, 2}}.
  virtual std::vector<SpectrumGroup> spectra() const;

 protected:
  SolverConfig config_;  // engine-normalized copy
};

/// Builds the EquationSystem for config.system, validating the
/// system-specific parameters (rotation rate, buoyancy frequency,
/// resistivity, field-set constraints). Throws util::Error on a
/// misconfigured system.
std::unique_ptr<EquationSystem> make_equation_system(
    const SolverConfig& config);

}  // namespace psdns::dns
