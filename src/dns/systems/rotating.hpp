#pragma once
// Navier-Stokes in a frame rotating about z at rate Omega. The Coriolis
// term -2 Omega zhat x u is linear and, restricted to the solenoidal plane
// of each mode, reduces to -sigma khat x uhat with sigma = 2 Omega kz/|k|
// (the inertial-wave frequency). Its exact propagator is therefore a
// Rodrigues rotation of uhat about khat by -sigma dt, folded into the
// integrating factor alongside the viscous decay - Rogallo's (1981) exact
// Coriolis integration, which keeps the stepper's stability independent of
// the rotation rate.

#include "dns/systems/navier_stokes.hpp"

namespace psdns::dns {

class RotatingNS : public NavierStokes {
 public:
  using NavierStokes::NavierStokes;

  const char* name() const override { return "rotating"; }

  /// Per-field diffusion, then the exact Coriolis rotation of the
  /// velocity triple. The two commute (the viscous factor is a scalar per
  /// mode), so the combination is the exact linear propagator.
  void apply_linear(const ModeView& view, Complex* const* fields,
                    double dt) const override;
};

}  // namespace psdns::dns
