#include "dns/systems/boussinesq.hpp"

namespace psdns::dns {

void Boussinesq::assemble_rhs(const ModeView& view, const Complex* const* in,
                              const Complex* const* products,
                              Complex* const* rhs) const {
  NavierStokes::assemble_rhs(view, in, products, rhs);

  // Buoyancy exchange. The momentum source N theta zhat is projected onto
  // the solenoidal plane mode-by-mode: P(zhat)_i = delta_i3 - k_i kz/k^2.
  // The k = 0 mode is skipped (no projection is defined there and the
  // fluctuation fields are mean-free).
  const double bv = config_.brunt_vaisala;
  const Complex* theta = in[3];
  const Complex* w = in[2];
  Complex* ru = rhs[0];
  Complex* rv = rhs[1];
  Complex* rw = rhs[2];
  Complex* rt = rhs[3];
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    rt[idx] -= bv * w[idx];
    if (k2 == 0.0) return;
    const double kzok2 = static_cast<double>(kz) / k2;
    const Complex src = bv * theta[idx];
    ru[idx] -= src * (static_cast<double>(kx) * kzok2);
    rv[idx] -= src * (static_cast<double>(ky) * kzok2);
    rw[idx] += src * (1.0 - static_cast<double>(kz) * kzok2);
  });
}

std::vector<NamedValue> Boussinesq::diagnostics(
    const ModeView& view, comm::Communicator& comm,
    const Complex* const* fields) const {
  return {{"buoyancy_flux",
           cospectrum_total(view, comm, fields[2], fields[3])}};
}

}  // namespace psdns::dns
