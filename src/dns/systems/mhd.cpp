#include "dns/systems/mhd.hpp"

namespace psdns::dns {

std::string IncompressibleMhd::field_name(std::size_t f) const {
  switch (f) {
    case 3: return "bx";
    case 4: return "by";
    case 5: return "bz";
    default: return EquationSystem::field_name(f);
  }
}

void IncompressibleMhd::form_products(const Real* const* fields,
                                      Real* const* products,
                                      std::size_t m) const {
  const Real* vel[3] = {fields[0], fields[1], fields[2]};
  const Real* mag[3] = {fields[3], fields[4], fields[5]};
  for (std::size_t idx = 0; idx < m; ++idx) {
    const Real zp[3] = {vel[0][idx] + mag[0][idx], vel[1][idx] + mag[1][idx],
                        vel[2][idx] + mag[2][idx]};
    const Real zm[3] = {vel[0][idx] - mag[0][idx], vel[1][idx] - mag[1][idx],
                        vel[2][idx] - mag[2][idx]};
    for (int i = 0; i < 3; ++i) {
      for (int mm = 0; mm < 3; ++mm) {
        products[3 * i + mm][idx] = zp[i] * zm[mm];
      }
    }
  }
}

void IncompressibleMhd::assemble_rhs(const ModeView& view,
                                     const Complex* const* /*in*/,
                                     const Complex* const* products,
                                     Complex* const* rhs) const {
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k[3] = {static_cast<double>(kx), static_cast<double>(ky),
                         static_cast<double>(kz)};
    const double k2 = k[0] * k[0] + k[1] * k[1] + k[2] * k[2];
    // s_i = -i k_m (G_im + G_mi)/2 (momentum flux divergence, pre-projection)
    // a_i = -i k_m (G_im - G_mi)/2 (induction; exactly divergence-free)
    Complex s[3], a[3];
    for (int i = 0; i < 3; ++i) {
      Complex sym{0.0, 0.0}, asym{0.0, 0.0};
      for (int m = 0; m < 3; ++m) {
        const Complex gim = products[3 * i + m][idx];
        const Complex gmi = products[3 * m + i][idx];
        sym += k[m] * (gim + gmi);
        asym += k[m] * (gim - gmi);
      }
      s[i] = Complex{0.0, -0.5} * sym;
      a[i] = Complex{0.0, -0.5} * asym;
    }
    if (k2 > 0.0) {
      const Complex kds = (k[0] * s[0] + k[1] * s[1] + k[2] * s[2]) / k2;
      for (int i = 0; i < 3; ++i) rhs[i][idx] = s[i] - k[i] * kds;
    } else {
      for (int i = 0; i < 3; ++i) rhs[i][idx] = Complex{0.0, 0.0};
    }
    for (int i = 0; i < 3; ++i) rhs[3 + i][idx] = a[i];
  });
}

std::vector<NamedValue> IncompressibleMhd::diagnostics(
    const ModeView& view, comm::Communicator& comm,
    const Complex* const* fields) const {
  const double emag =
      kinetic_energy(view, comm, fields[3], fields[4], fields[5]);
  double hc = 0.0;
  for (int c = 0; c < 3; ++c) {
    hc += cospectrum_total(view, comm, fields[c], fields[3 + c]);
  }
  return {{"magnetic_energy", emag}, {"cross_helicity", hc}};
}

}  // namespace psdns::dns
