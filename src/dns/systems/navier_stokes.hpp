#pragma once
// Incompressible Navier-Stokes with passive scalars: the seed physics of
// the repo, moved verbatim out of the old SpectralNSCore so the engine
// refactor stays bit-compatible (pinned by the systems_test digests).

#include "dns/systems/equation_system.hpp"

namespace psdns::dns {

class NavierStokes : public EquationSystem {
 public:
  using EquationSystem::EquationSystem;

  const char* name() const override { return "navier_stokes"; }
  std::size_t extra_fields() const override { return config_.scalars.size(); }
  std::size_t product_count() const override {
    return 6 + 3 * config_.scalars.size();
  }
  double diffusivity(std::size_t f) const override {
    return f < 3 ? config_.viscosity
                 : config_.viscosity / config_.scalars[f - 3].schmidt;
  }

  /// The six symmetric velocity products, then three flux components per
  /// scalar.
  void form_products(const Real* const* fields, Real* const* products,
                     std::size_t m) const override;

  /// Projected conservative-form momentum RHS plus per-scalar
  /// flux-divergence RHS with the mean-gradient source -G v.
  void assemble_rhs(const ModeView& view, const Complex* const* in,
                    const Complex* const* products,
                    Complex* const* rhs) const override;
};

}  // namespace psdns::dns
