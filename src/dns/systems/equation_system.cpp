#include "dns/systems/equation_system.hpp"

#include <algorithm>

#include "dns/systems/boussinesq.hpp"
#include "dns/systems/mhd.hpp"
#include "dns/systems/navier_stokes.hpp"
#include "dns/systems/rotating.hpp"
#include "util/check.hpp"

namespace psdns::dns {

const char* to_string(SystemType s) {
  switch (s) {
    case SystemType::NavierStokes: return "navier_stokes";
    case SystemType::RotatingNS: return "rotating";
    case SystemType::Boussinesq: return "boussinesq";
    case SystemType::Mhd: return "mhd";
  }
  return "unknown";
}

SystemType parse_system_type(const std::string& name) {
  if (name == "navier_stokes") return SystemType::NavierStokes;
  if (name == "rotating") return SystemType::RotatingNS;
  if (name == "boussinesq") return SystemType::Boussinesq;
  if (name == "mhd") return SystemType::Mhd;
  util::raise("unknown equation system '" + name +
              "' (expected navier_stokes, rotating, boussinesq, or mhd)");
}

void validate_forcing(const ForcingConfig& f) {
  if (!f.enabled) return;
  if (f.klo < 1) {
    throw ForcingError("band lower edge klo=" + std::to_string(f.klo) +
                       " must be >= 1 (the k=0 mode carries no energy)");
  }
  if (f.khi < f.klo) {
    throw ForcingError("empty band: khi=" + std::to_string(f.khi) +
                       " < klo=" + std::to_string(f.klo));
  }
  if (!(f.power > 0.0)) {
    throw ForcingError("injection power " + std::to_string(f.power) +
                       " must be positive");
  }
}

std::string EquationSystem::field_name(std::size_t f) const {
  switch (f) {
    case 0: return "u";
    case 1: return "v";
    case 2: return "w";
    default: return "scalar" + std::to_string(f - 3);
  }
}

void EquationSystem::apply_linear(const ModeView& view,
                                  Complex* const* fields, double dt) const {
  const std::size_t nf = field_count();
  for (std::size_t f = 0; f < nf; ++f) {
    apply_integrating_factor(view, fields[f], diffusivity(f), dt);
  }
}

std::vector<NamedValue> EquationSystem::diagnostics(
    const ModeView&, comm::Communicator&, const Complex* const*) const {
  return {};
}

std::vector<SpectrumGroup> EquationSystem::spectra() const {
  return {{"kinetic", {0, 1, 2}}};
}

std::unique_ptr<EquationSystem> make_equation_system(
    const SolverConfig& config) {
  switch (config.system) {
    case SystemType::NavierStokes:
      return std::make_unique<NavierStokes>(config);
    case SystemType::RotatingNS:
      PSDNS_REQUIRE(config.rotation_omega > 0.0,
                    "rotating system needs rotation_omega > 0");
      return std::make_unique<RotatingNS>(config);
    case SystemType::Boussinesq:
      PSDNS_REQUIRE(config.brunt_vaisala > 0.0,
                    "boussinesq system needs brunt_vaisala > 0");
      PSDNS_REQUIRE(!config.scalars.empty(),
                    "boussinesq system needs the buoyancy scalar (the "
                    "engine normalizes this before construction)");
      PSDNS_REQUIRE(config.scalars[0].mean_gradient == 0.0,
                    "boussinesq scalar 0 is the buoyancy field; the "
                    "background stratification is encoded by brunt_vaisala, "
                    "not a mean gradient");
      return std::make_unique<Boussinesq>(config);
    case SystemType::Mhd:
      PSDNS_REQUIRE(config.scalars.empty(),
                    "mhd system does not support passive scalars yet");
      PSDNS_REQUIRE(config.resistivity >= 0.0,
                    "resistivity must be >= 0 (0 means eta = nu)");
      return std::make_unique<IncompressibleMhd>(config);
  }
  util::raise("unhandled SystemType");
}

}  // namespace psdns::dns
