#pragma once
// Boussinesq convection/stratification: Navier-Stokes plus an active
// buoyancy field (scalar 0) with gravity along z. In units where the
// background stratification is linear with Brunt-Vaisala frequency N, the
// symmetric coupling is
//
//   d uhat_i/dt += N thetahat P(zhat)_i = N thetahat (delta_i3 - k_i kz/k^2)
//   d thetahat/dt -= N what
//
// giving internal gravity waves with dispersion omega = N k_h/|k|. The
// coupling is integrated explicitly inside the RHS (it is weak relative to
// advection in the turbulent regime); the background stratification itself
// is encoded by N, so scalar 0 carries no mean gradient. Extra scalars
// beyond the first remain passive.

#include "dns/systems/navier_stokes.hpp"

namespace psdns::dns {

class Boussinesq : public NavierStokes {
 public:
  using NavierStokes::NavierStokes;

  const char* name() const override { return "boussinesq"; }
  std::string field_name(std::size_t f) const override {
    return f == 3 ? "buoyancy" : NavierStokes::field_name(f);
  }

  /// NS advection for all fields, then the +-N buoyancy exchange between
  /// what and thetahat.
  void assemble_rhs(const ModeView& view, const Complex* const* in,
                    const Complex* const* products,
                    Complex* const* rhs) const override;

  /// Adds the vertical buoyancy flux <w theta> (the energy exchange rate
  /// between kinetic and potential reservoirs, divided by N).
  std::vector<NamedValue> diagnostics(
      const ModeView& view, comm::Communicator& comm,
      const Complex* const* fields) const override;

  std::vector<SpectrumGroup> spectra() const override {
    return {{"kinetic", {0, 1, 2}}, {"buoyancy", {3}}};
  }
};

}  // namespace psdns::dns
