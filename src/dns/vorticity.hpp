#pragma once
// Vorticity-based diagnostics: omega = curl(u) computed spectrally
// (omega_hat = i k x u_hat), plus the integral invariants built on it.
// Helicity <u.omega> is an inviscid invariant of the Navier-Stokes
// equations and a sharp consistency check on the curl, projection and
// transform machinery; enstrophy ties back to dissipation via
// eps = 2 nu Omega.

#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/spectral_ops.hpp"

namespace psdns::dns {

/// omega_hat = i k x u_hat, written into (wx, wy, wz).
void curl(const ModeView& view, const Complex* u, const Complex* v,
          const Complex* w, Complex* wx, Complex* wy, Complex* wz);

/// Enstrophy Omega = 1/2 <omega.omega>, computed from the velocity
/// directly (sum w(kx) k^2 |u|^2, exact - no shell binning). Collective.
double enstrophy_exact(const ModeView& view, comm::Communicator& comm,
                       const Complex* u, const Complex* v, const Complex* w);

/// Helicity H = <u.omega> = sum w(kx) Re(conj(u) . (i k x u)). Collective.
double helicity(const ModeView& view, comm::Communicator& comm,
                const Complex* u, const Complex* v, const Complex* w);

/// Helicity shell spectrum H(k) (sums to the total helicity). Collective.
std::vector<double> helicity_spectrum(const ModeView& view,
                                      comm::Communicator& comm,
                                      const Complex* u, const Complex* v,
                                      const Complex* w);

}  // namespace psdns::dns
