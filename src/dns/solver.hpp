#pragma once
// The slab-decomposed pseudo-spectral Navier-Stokes solver - the "new code"
// of the paper, in its functional (numerics-exact) form. Since the physics
// moved into the decomposition-agnostic dns::SpectralNSCore, this is a thin
// adapter: it owns the transpose::SlabFft3d backend (Y-slab physical,
// Z-slab spectral layout; the paper's x,z,y transform order and np/Q
// pencil batching of Sec. 3.3-4.1) and derives the full solver API -
// RK2/RK4 stepping, forcing, passive scalars, diagnostics and spectra -
// from the core.

#include "dns/spectral_core.hpp"
#include "transpose/dist_fft.hpp"

namespace psdns::dns {

namespace detail {
/// Holder base so the FFT backend is constructed before the SpectralNSCore
/// base that takes a reference to it.
struct SlabFftMember {
  SlabFftMember(comm::Communicator& comm, std::size_t n)
      : slab_fft_(comm, n) {}
  transpose::SlabFft3d slab_fft_;
};
}  // namespace detail

class SlabSolver : private detail::SlabFftMember, public SpectralNSCore {
 public:
  SlabSolver(comm::Communicator& comm, SolverConfig config)
      : detail::SlabFftMember(comm, config.n),
        SpectralNSCore(comm, slab_fft_, std::move(config)) {}

  /// The concrete backend (tests and benches poke at slab internals).
  transpose::SlabFft3d& slab_fft() { return slab_fft_; }
  const transpose::SlabFft3d& slab_fft() const { return slab_fft_; }

  /// Back-compat alias: this used to be a nested struct.
  using DerivativeMoments = dns::DerivativeMoments;
};

}  // namespace psdns::dns
