#include "dns/statistics.hpp"

#include <cstddef>
#include <numbers>

namespace psdns::dns {

double spectrum_energy(const std::vector<double>& spectrum) {
  double total = 0.0;
  for (const double e : spectrum) total += e;
  return total;
}

double integral_length_scale(const std::vector<double>& spectrum) {
  const double energy = spectrum_energy(spectrum);
  if (energy <= 0.0) return 0.0;
  const double uprime2 = 2.0 * energy / 3.0;
  double sum = 0.0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    sum += spectrum[k] / static_cast<double>(k);
  }
  return std::numbers::pi / (2.0 * uprime2) * sum;
}

double enstrophy(const std::vector<double>& spectrum) {
  double sum = 0.0;
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    sum += static_cast<double>(k) * static_cast<double>(k) * spectrum[k];
  }
  return sum;
}

double kmax_eta(std::size_t n, double kolmogorov_eta) {
  return (static_cast<double>(n) / 3.0) * kolmogorov_eta;
}

}  // namespace psdns::dns
