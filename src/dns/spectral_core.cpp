#include "dns/spectral_core.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace psdns::dns {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Deterministic per-grid-point gaussian-ish noise from the global index.
double noise(std::uint64_t seed, std::size_t i, std::size_t j, std::size_t k,
             int component) {
  util::SplitMix64 sm(seed ^ (i + 1) * 0x9E3779B97F4A7C15ULL ^
                      (j + 1) * 0xC2B2AE3D27D4EB4FULL ^
                      (k + 1) * 0x165667B19E3779F9ULL ^
                      static_cast<std::uint64_t>(component + 1) *
                          0xFF51AFD7ED558CCDULL);
  // Sum of 4 uniforms, centered: close enough to gaussian for an IC that is
  // reshaped spectrally anyway.
  double s = 0.0;
  for (int t = 0; t < 4; ++t) {
    s += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  return s - 2.0;
}
}  // namespace

SpectralEngine::SpectralEngine(comm::Communicator& comm,
                               transpose::DistFft3d& fft, SolverConfig config)
    : comm_(comm), config_(std::move(config)), fft_(fft) {
  PSDNS_REQUIRE(config_.n >= 4, "grid too small for a DNS");
  PSDNS_REQUIRE(fft_.n() == config_.n, "FFT backend grid size mismatch");
  PSDNS_REQUIRE(config_.viscosity > 0.0, "viscosity must be positive");
  PSDNS_REQUIRE(config_.pencils >= 1 && config_.pencils_per_a2a >= 1,
                "bad pencil batching");
  validate_forcing(config_.forcing);
  // Boussinesq's buoyancy field rides in the scalar slot: materialize it
  // (Pr = 1, no mean gradient - the stratification is brunt_vaisala's job)
  // when the caller did not configure scalars explicitly.
  if (config_.system == SystemType::Boussinesq && config_.scalars.empty()) {
    config_.scalars.push_back(ScalarConfig{1.0, 0.0});
  }
  for (const auto& sc : config_.scalars) {
    PSDNS_REQUIRE(sc.schmidt > 0.0, "Schmidt number must be positive");
  }
  system_ = make_equation_system(config_);

  fft_.set_batching(config_.pencils, config_.pencils_per_a2a);
  view_ = fft_.mode_view();
  pview_ = fft_.phys_view();
  spec_ = fft_.spectral_elems();
  phys_elems_ = fft_.physical_elems();
  const std::size_t nf = field_count();
  nprod_ = system_->product_count();

  state_.resize(nf);
  for (auto& c : state_) c.assign(spec_, Complex{0.0, 0.0});

  // Check out every steady-state scratch block now: step() only reuses.
  rhs_a_.ensure(nf * spec_);
  rhs_b_.ensure(nf * spec_);
  stage_.ensure(nf * spec_);
  if (config_.scheme == TimeScheme::RK4) k_.ensure(4 * nf * spec_);
  if (config_.phase_shift_dealias) shifted_.ensure(nf * spec_);
  prod_hat_.ensure(nprod_ * spec_);
  phys_.ensure((nf + nprod_) * phys_elems_);

  state_ptrs_.resize(nf);
  state_mut_.resize(nf);
  stage_ptrs_.resize(nf);
  stage_mut_.resize(nf);
  spec_in_.resize(nf);
  rhs_a_ptrs_.resize(nf);
  rhs_b_ptrs_.resize(nf);
  phys_out_.resize(nf);
  field_phys_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    state_ptrs_[f] = state_[f].data();
    state_mut_[f] = state_[f].data();
    stage_ptrs_[f] = block(stage_, f);
    stage_mut_[f] = block(stage_, f);
    rhs_a_ptrs_[f] = block(rhs_a_, f);
    rhs_b_ptrs_[f] = block(rhs_b_, f);
    phys_out_[f] = phys_block(f);
    field_phys_[f] = phys_block(f);
  }
  if (config_.scheme == TimeScheme::RK4) {
    k_ptrs_.resize(4 * nf);
    for (std::size_t q = 0; q < 4; ++q) {
      for (std::size_t f = 0; f < nf; ++f) {
        k_ptrs_[q * nf + f] = k_.data() + (q * nf + f) * spec_;
      }
    }
  }
  prod_in_.resize(nprod_);
  prod_out_.resize(nprod_);
  prod_spec_.resize(nprod_);
  prod_spec_const_.resize(nprod_);
  for (std::size_t t = 0; t < nprod_; ++t) {
    prod_in_[t] = phys_block(nf + t);
    prod_out_[t] = phys_block(nf + t);
    prod_spec_[t] = block(prod_hat_, t);
    prod_spec_const_[t] = block(prod_hat_, t);
  }
}

void SpectralEngine::apply_dealias(Complex* field) {
  if (config_.phase_shift_dealias) {
    dealias_spherical(view_, field,
                      std::sqrt(2.0) * static_cast<double>(config_.n) / 3.0);
  } else {
    dealias_truncate(view_, field);
  }
}

void SpectralEngine::finalize_vector_ic(std::size_t base) {
  const std::size_t n = config_.n;
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (std::size_t c = 0; c < 3; ++c) {
    Complex* s = state_[base + c].data();
    for (std::size_t i = 0; i < spec_; ++i) s[i] *= scale;
  }
  project(view_, state_[base].data(), state_[base + 1].data(),
          state_[base + 2].data());
  for (std::size_t c = 0; c < 3; ++c) {
    apply_dealias(state_[base + c].data());
  }
}

void SpectralEngine::finalize_velocity_ic() {
  finalize_vector_ic(0);
  time_ = 0.0;
  steps_ = 0;
}

void SpectralEngine::init_from_function(
    const std::function<std::array<double, 3>(double, double, double)>& f) {
  const double cell = kTwoPi / static_cast<double>(config_.n);
  Real* px = phys_block(0);
  Real* py = phys_block(1);
  Real* pz = phys_block(2);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    const auto u = f(cell * static_cast<double>(xi),
                     cell * static_cast<double>(yi),
                     cell * static_cast<double>(zi));
    px[idx] = u[0];
    py[idx] = u[1];
    pz[idx] = u[2];
  });
  const Real* phys3[3] = {px, py, pz};
  Complex* spec3[3] = {state_[0].data(), state_[1].data(), state_[2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3));
  finalize_velocity_ic();
}

void SpectralEngine::init_taylor_green() {
  init_from_function([](double x, double y, double) {
    return std::array<double, 3>{std::sin(x) * std::cos(y),
                                 -std::cos(x) * std::sin(y), 0.0};
  });
}

void SpectralEngine::shape_vector_spectrum(std::size_t base, double k_peak,
                                           double energy) {
  // Shape the shell spectrum to E(k) ~ (k/k0)^4 exp(-2 (k/k0)^2).
  const auto current =
      energy_spectrum(view_, comm_, state_[base].data(),
                      state_[base + 1].data(), state_[base + 2].data());
  std::vector<double> gain(current.size(), 0.0);
  double target_total = 0.0;
  for (std::size_t s = 1; s < current.size(); ++s) {
    const double kr = static_cast<double>(s) / k_peak;
    const double target = std::pow(kr, 4.0) * std::exp(-2.0 * kr * kr);
    target_total += target;
    if (current[s] > 1e-300) gain[s] = std::sqrt(target / current[s]);
  }
  const double norm = std::sqrt(energy / target_total);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    const double g = shell < gain.size() ? gain[shell] * norm : 0.0;
    state_[base][idx] *= g;
    state_[base + 1][idx] *= g;
    state_[base + 2][idx] *= g;
  });
}

void SpectralEngine::init_isotropic(std::uint64_t seed, double k_peak,
                                    double energy) {
  PSDNS_REQUIRE(k_peak > 0.0 && energy > 0.0, "bad isotropic IC parameters");
  // White noise per component, keyed on global indices: identical physics
  // for every rank count and decomposition.
  Real* px = phys_block(0);
  Real* py = phys_block(1);
  Real* pz = phys_block(2);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    px[idx] = noise(seed, xi, yi, zi, 0);
    py[idx] = noise(seed, xi, yi, zi, 1);
    pz[idx] = noise(seed, xi, yi, zi, 2);
  });
  const Real* phys3[3] = {px, py, pz};
  Complex* spec3[3] = {state_[0].data(), state_[1].data(), state_[2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3));
  finalize_velocity_ic();
  shape_vector_spectrum(0, k_peak, energy);
}

void SpectralEngine::init_scalar_from_function(
    int s, const std::function<double(double, double, double)>& f) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  const std::size_t n = config_.n;
  const double cell = kTwoPi / static_cast<double>(n);
  Real* phys = phys_block(0);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    phys[idx] = f(cell * static_cast<double>(xi),
                  cell * static_cast<double>(yi),
                  cell * static_cast<double>(zi));
  });
  auto& theta = state_[static_cast<std::size_t>(3 + s)];
  fft_.forward(std::span<const Real>(phys, phys_elems_),
               std::span<Complex>(theta.data(), theta.size()));
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (auto& z : theta) z *= scale;
  apply_dealias(theta.data());
}

void SpectralEngine::init_scalar_isotropic(int s, std::uint64_t seed,
                                           double k_peak, double variance) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  PSDNS_REQUIRE(k_peak > 0.0 && variance > 0.0, "bad scalar IC parameters");
  const std::size_t n = config_.n;
  Real* phys = phys_block(0);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    phys[idx] = noise(seed, xi, yi, zi, 100 + s);
  });
  auto& theta = state_[static_cast<std::size_t>(3 + s)];
  fft_.forward(std::span<const Real>(phys, phys_elems_),
               std::span<Complex>(theta.data(), theta.size()));
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (auto& z : theta) z *= scale;
  // Zero-mean fluctuation: only the rank owning the k = 0 mode holds it.
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    if (kx == 0 && ky == 0 && kz == 0) theta[idx] = Complex{0.0, 0.0};
  });
  apply_dealias(theta.data());

  const auto current = field_spectrum(view_, comm_, theta.data());
  std::vector<double> gain(current.size(), 0.0);
  double target_total = 0.0;
  for (std::size_t sh = 1; sh < current.size(); ++sh) {
    const double kr = static_cast<double>(sh) / k_peak;
    const double target = std::pow(kr, 4.0) * std::exp(-2.0 * kr * kr);
    target_total += target;
    if (current[sh] > 1e-300) gain[sh] = std::sqrt(target / current[sh]);
  }
  const double norm = std::sqrt(variance / target_total);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    theta[idx] *= shell < gain.size() ? gain[shell] * norm : 0.0;
  });
}

void SpectralEngine::init_magnetic_isotropic(std::uint64_t seed, double k_peak,
                                             double energy) {
  const int mb = magnetic_base();
  PSDNS_REQUIRE(mb >= 0, "system carries no magnetic field");
  PSDNS_REQUIRE(k_peak > 0.0 && energy > 0.0, "bad magnetic IC parameters");
  const auto base = static_cast<std::size_t>(mb);

  // Preserve any previously imposed uniform mean field across the refill.
  Complex b0[3] = {};
  std::size_t zero_idx = spec_;  // sentinel: this rank may not own k = 0
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    if (kx == 0 && ky == 0 && kz == 0) zero_idx = idx;
  });
  if (zero_idx < spec_) {
    for (std::size_t c = 0; c < 3; ++c) b0[c] = state_[base + c][zero_idx];
  }

  Real* px = phys_block(0);
  Real* py = phys_block(1);
  Real* pz = phys_block(2);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    px[idx] = noise(seed, xi, yi, zi, 200);
    py[idx] = noise(seed, xi, yi, zi, 201);
    pz[idx] = noise(seed, xi, yi, zi, 202);
  });
  const Real* phys3[3] = {px, py, pz};
  Complex* spec3[3] = {state_[base].data(), state_[base + 1].data(),
                       state_[base + 2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3));
  finalize_vector_ic(base);
  shape_vector_spectrum(base, k_peak, energy);

  if (zero_idx < spec_) {
    for (std::size_t c = 0; c < 3; ++c) state_[base + c][zero_idx] = b0[c];
  }
}

void SpectralEngine::init_magnetic_from_function(
    const std::function<std::array<double, 3>(double, double, double)>& f) {
  const int mb = magnetic_base();
  PSDNS_REQUIRE(mb >= 0, "system carries no magnetic field");
  const auto base = static_cast<std::size_t>(mb);
  const double cell = kTwoPi / static_cast<double>(config_.n);
  Real* px = phys_block(0);
  Real* py = phys_block(1);
  Real* pz = phys_block(2);
  for_each_point(pview_, [&](std::size_t idx, std::size_t xi, std::size_t yi,
                             std::size_t zi) {
    const auto b = f(cell * static_cast<double>(xi),
                     cell * static_cast<double>(yi),
                     cell * static_cast<double>(zi));
    px[idx] = b[0];
    py[idx] = b[1];
    pz[idx] = b[2];
  });
  const Real* phys3[3] = {px, py, pz};
  Complex* spec3[3] = {state_[base].data(), state_[base + 1].data(),
                       state_[base + 2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3));
  finalize_vector_ic(base);
}

void SpectralEngine::set_uniform_magnetic_field(
    const std::array<double, 3>& b0) {
  const int mb = magnetic_base();
  PSDNS_REQUIRE(mb >= 0, "system carries no magnetic field");
  const auto base = static_cast<std::size_t>(mb);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    if (kx == 0 && ky == 0 && kz == 0) {
      for (std::size_t c = 0; c < 3; ++c) {
        state_[base + c][idx] = Complex{b0[c], 0.0};
      }
    }
  });
}

void SpectralEngine::restore(std::span<const Complex* const> fields, double t,
                             std::int64_t steps) {
  PSDNS_REQUIRE(fields.size() == field_count(),
                "restore needs 3 velocity components plus every extra field");
  for (std::size_t f = 0; f < field_count(); ++f) {
    std::copy(fields[f], fields[f] + spec_, state_[f].begin());
  }
  time_ = t;
  steps_ = steps;
  last_umax_ = 0.0;
}

void SpectralEngine::compute_rhs(const Complex* const* in, Complex* const* rhs,
                                 bool with_forcing) {
  const std::size_t n = config_.n;
  const std::size_t nf = field_count();
  const double inv_n3 = 1.0 / (static_cast<double>(n) * n * n);

  // Optional Rogallo phase shift: alternate RK substages between the
  // unshifted grid and a grid shifted by half a cell, so the leading
  // aliasing contributions cancel across the substages; the truncation
  // radius is then the larger spherical sqrt(2)/3 N.
  double delta[3] = {0.0, 0.0, 0.0};
  const bool shift = config_.phase_shift_dealias && (rhs_evals_++ % 2 == 1);
  if (shift) {
    const double half_cell = std::numbers::pi / static_cast<double>(n);
    delta[0] = delta[1] = delta[2] = half_cell;
  }

  // 1. All fields to physical space (one multi-variable transform, exactly
  //    how the production code amortizes message size over variables).
  if (shift) {
    for (std::size_t f = 0; f < nf; ++f) {
      Complex* sh = block(shifted_, f);
      std::copy(in[f], in[f] + spec_, sh);
      phase_shift(view_, sh, delta, +1);
      spec_in_[f] = sh;
    }
  } else {
    for (std::size_t f = 0; f < nf; ++f) spec_in_[f] = in[f];
  }
  fft_.inverse(std::span<const Complex* const>(spec_in_.data(), nf),
               std::span<Real* const>(phys_out_.data(), nf));

  // 2. Pointwise max signal speed (CFL bookkeeping): the velocity, plus the
  //    magnetic field for MHD (b is in Alfven-velocity units, so this keeps
  //    the estimate honest for Alfven waves too).
  double umax = 0.0;
  for (int c = 0; c < 3; ++c) {
    const Real* p = phys_block(static_cast<std::size_t>(c));
    for (std::size_t idx = 0; idx < phys_elems_; ++idx) {
      umax = std::max(umax, std::abs(p[idx]));
    }
  }
  if (const int mb = magnetic_base(); mb >= 0) {
    for (int c = 0; c < 3; ++c) {
      const Real* p = phys_block(static_cast<std::size_t>(mb + c));
      for (std::size_t idx = 0; idx < phys_elems_; ++idx) {
        umax = std::max(umax, std::abs(p[idx]));
      }
    }
  }
  last_umax_ = comm_.allreduce_max(umax);

  // 3. The system's products in physical space.
  system_->form_products(field_phys_.data(), prod_out_.data(), phys_elems_);

  // 4. Products to spectral space (one multi-variable transform).
  fft_.forward(std::span<const Real* const>(prod_in_.data(), nprod_),
               std::span<Complex* const>(prod_spec_.data(), nprod_));
  for (std::size_t t = 0; t < nprod_; ++t) {
    Complex* p = block(prod_hat_, t);
    for (std::size_t i = 0; i < spec_; ++i) p[i] *= inv_n3;
    if (shift) phase_shift(view_, p, delta, -1);
    apply_dealias(p);
  }

  // 5. The system's spectral RHS from the dealiased product spectra.
  system_->assemble_rhs(view_, in, prod_spec_const_.data(), rhs);

  // 6. Velocity-proportional band forcing with fixed injection power.
  if (with_forcing && config_.forcing.enabled) {
    const double eband =
        band_energy(view_, comm_, in[0], in[1], in[2], config_.forcing.klo,
                    config_.forcing.khi);
    if (eband > 1e-12) {
      const double coeff = config_.forcing.power / (2.0 * eband);
      add_band_forcing(view_, rhs[0], rhs[1], rhs[2], in[0], in[1], in[2],
                       config_.forcing.klo, config_.forcing.khi, coeff);
    }
  }
}

void SpectralEngine::step(double dt) {
  PSDNS_REQUIRE(dt > 0.0, "dt must be positive");
  const double h = dt / 2.0;
  const std::size_t nf = field_count();

  // The linear propagator E (viscous/diffusive decay plus any system terms
  // such as the Coriolis rotation) is applied to whole field *sets* so
  // systems whose linear operator couples components stay exact.
  if (config_.scheme == TimeScheme::RK2) {
    // Midpoint RK2 with exact linear terms:
    //   u_mid = E_h (u + dt/2 N(u));  u_new = E_f u + dt E_h N(u_mid).
    compute_rhs(state_ptrs_.data(), rhs_a_ptrs_.data());
    for (std::size_t f = 0; f < nf; ++f) {
      const Complex* s = state_[f].data();
      const Complex* ra = block(rhs_a_, f);
      Complex* st = block(stage_, f);
      for (std::size_t i = 0; i < spec_; ++i) st[i] = s[i] + h * ra[i];
    }
    apply_linear(stage_mut_.data(), h);
    compute_rhs(stage_ptrs_.data(), rhs_b_ptrs_.data());
    apply_linear(state_mut_.data(), dt);   // E_f u
    apply_linear(rhs_b_ptrs_.data(), h);   // E_h N(u_mid)
    for (std::size_t f = 0; f < nf; ++f) {
      const Complex* rb = block(rhs_b_, f);
      Complex* s = state_[f].data();
      for (std::size_t i = 0; i < spec_; ++i) s[i] += dt * rb[i];
    }
  } else {
    // Integrating-factor RK4 (classical RK4 on v = E(-t) u):
    //   k1 = N(u)
    //   u1 = E_h (u + dt/2 k1);      k2 = N(u1)
    //   u2 = E_h u + dt/2 k2;        k3 = N(u2)
    //   u3 = E_f u + dt E_h k3;      k4 = N(u3)
    //   u+ = E_f u + dt/6 (E_f k1 + 2 E_h (k2 + k3) + k4)
    Complex* const* k1 = k_ptrs_.data();
    Complex* const* k2 = k_ptrs_.data() + nf;
    Complex* const* k3 = k_ptrs_.data() + 2 * nf;
    Complex* const* k4 = k_ptrs_.data() + 3 * nf;
    compute_rhs(state_ptrs_.data(), k1);
    for (std::size_t f = 0; f < nf; ++f) {
      const Complex* s = state_[f].data();
      Complex* st = block(stage_, f);
      for (std::size_t i = 0; i < spec_; ++i) st[i] = s[i] + h * k1[f][i];
    }
    apply_linear(stage_mut_.data(), h);
    compute_rhs(stage_ptrs_.data(), k2);
    for (std::size_t f = 0; f < nf; ++f) {
      std::copy(state_[f].begin(), state_[f].end(), block(stage_, f));
    }
    apply_linear(stage_mut_.data(), h);  // E_h u
    for (std::size_t f = 0; f < nf; ++f) {
      Complex* st = block(stage_, f);
      for (std::size_t i = 0; i < spec_; ++i) st[i] += h * k2[f][i];
    }
    compute_rhs(stage_ptrs_.data(), k3);
    for (std::size_t f = 0; f < nf; ++f) {
      std::copy(state_[f].begin(), state_[f].end(), block(stage_, f));
    }
    apply_linear(stage_mut_.data(), dt);  // E_f u
    apply_linear(k3, h);                  // k3 <- E_h k3
    for (std::size_t f = 0; f < nf; ++f) {
      Complex* st = block(stage_, f);
      for (std::size_t i = 0; i < spec_; ++i) st[i] += dt * k3[f][i];
    }
    compute_rhs(stage_ptrs_.data(), k4);
    apply_linear(k1, dt);  // E_f k1
    apply_linear(k2, h);   // E_h k2
    apply_linear(state_mut_.data(), dt);
    for (std::size_t f = 0; f < nf; ++f) {
      Complex* s = state_[f].data();
      for (std::size_t i = 0; i < spec_; ++i) {
        s[i] += dt / 6.0 *
                (k1[f][i] + 2.0 * k2[f][i] + 2.0 * k3[f][i] + k4[f][i]);
      }
    }
  }

  time_ += dt;
  ++steps_;
}

double SpectralEngine::cfl_dt(double cfl) {
  if (last_umax_ <= 0.0) {
    // No RHS evaluated yet: measure once via a throwaway evaluation.
    compute_rhs(state_ptrs_.data(), rhs_a_ptrs_.data());
  }
  const double dx = kTwoPi / static_cast<double>(config_.n);
  return last_umax_ > 0.0 ? cfl * dx / last_umax_ : 1e9;
}

Diagnostics SpectralEngine::diagnostics() {
  Diagnostics d;
  d.energy = kinetic_energy(view_, comm_, state_[0].data(), state_[1].data(),
                            state_[2].data());
  d.dissipation = dissipation(view_, comm_, state_[0].data(),
                              state_[1].data(), state_[2].data(),
                              config_.viscosity);
  d.max_divergence = max_divergence(view_, comm_, state_[0].data(),
                                    state_[1].data(), state_[2].data());
  d.u_max = last_umax_;
  if (d.dissipation > 1e-300) {
    const double uprime2 = 2.0 * d.energy / 3.0;
    d.taylor_scale =
        std::sqrt(15.0 * config_.viscosity * uprime2 / d.dissipation);
    d.reynolds_lambda =
        std::sqrt(uprime2) * d.taylor_scale / config_.viscosity;
    d.kolmogorov_eta = std::pow(
        config_.viscosity * config_.viscosity * config_.viscosity /
            d.dissipation,
        0.25);
  }
  return d;
}

ScalarDiagnostics SpectralEngine::scalar_diagnostics(int s) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  const auto si = static_cast<std::size_t>(3 + s);
  ScalarDiagnostics d;
  d.variance = field_variance(view_, comm_, state_[si].data());
  d.dissipation =
      field_dissipation(view_, comm_, state_[si].data(), diffusivity(si));
  d.flux_y =
      cospectrum_total(view_, comm_, state_[1].data(), state_[si].data());
  return d;
}

std::vector<NamedValue> SpectralEngine::system_diagnostics() {
  return system_->diagnostics(view_, comm_, state_ptrs_.data());
}

std::vector<double> SpectralEngine::spectrum() {
  return energy_spectrum(view_, comm_, state_[0].data(), state_[1].data(),
                         state_[2].data());
}

std::vector<double> SpectralEngine::scalar_spectrum(int s) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  return field_spectrum(view_, comm_,
                        state_[static_cast<std::size_t>(3 + s)].data());
}

std::vector<std::pair<std::string, std::vector<double>>>
SpectralEngine::named_spectra() {
  std::vector<std::pair<std::string, std::vector<double>>> out;
  for (const auto& group : system_->spectra()) {
    std::vector<double> sum;
    for (const int f : group.fields) {
      PSDNS_REQUIRE(f >= 0 && static_cast<std::size_t>(f) < field_count(),
                    "spectrum group references an unknown field");
      auto one = field_spectrum(view_, comm_,
                                state_[static_cast<std::size_t>(f)].data());
      if (sum.empty()) {
        sum = std::move(one);
      } else {
        for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += one[i];
      }
    }
    out.emplace_back(group.name, std::move(sum));
  }
  return out;
}

std::vector<double> SpectralEngine::transfer_spectrum() {
  compute_rhs(state_ptrs_.data(), rhs_a_ptrs_.data(), /*with_forcing=*/false);
  std::vector<double> shells(config_.n / 2 + 1, 0.0);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    if (shell >= shells.size()) return;
    // d(1/2 |u|^2)/dt contribution of the nonlinear term.
    double rate = 0.0;
    for (int c = 0; c < 3; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      rate += (std::conj(state_[ci][idx]) * rhs_a_ptrs_[ci][idx]).real();
    }
    shells[shell] += mode_weight(kx, view_.n) * rate;
  });
  comm_.allreduce_sum(shells.data(), shells.data(), shells.size());
  return shells;
}

DerivativeMoments SpectralEngine::derivative_moments() {
  // Longitudinal derivatives via spectral differentiation (du/dx needs
  // i*kx, dv/dy i*ky, dw/dz i*kz), then pointwise moments in physical
  // space. The stage block doubles as gradient scratch (never live between
  // steps).
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex iu{0.0, 1.0};
    block(stage_, 0)[idx] = iu * static_cast<double>(kx) * state_[0][idx];
    block(stage_, 1)[idx] = iu * static_cast<double>(ky) * state_[1][idx];
    block(stage_, 2)[idx] = iu * static_cast<double>(kz) * state_[2][idx];
  });
  const Complex* spec3[3] = {block(stage_, 0), block(stage_, 1),
                             block(stage_, 2)};
  Real* phys3[3] = {phys_block(0), phys_block(1), phys_block(2)};
  fft_.inverse(std::span<const Complex* const>(spec3, 3),
               std::span<Real* const>(phys3, 3));

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (int c = 0; c < 3; ++c) {
    const Real* p = phys_block(static_cast<std::size_t>(c));
    for (std::size_t idx = 0; idx < phys_elems_; ++idx) {
      const double g2 = p[idx] * p[idx];
      m2 += g2;
      m3 += g2 * p[idx];
      m4 += g2 * g2;
    }
  }
  double sums[3] = {m2, m3, m4};
  comm_.allreduce_sum(sums, sums, 3);
  const double count =
      3.0 * static_cast<double>(config_.n) * config_.n * config_.n;
  m2 = sums[0] / count;
  m3 = sums[1] / count;
  m4 = sums[2] / count;
  DerivativeMoments out;
  if (m2 > 1e-300) {
    out.skewness = m3 / std::pow(m2, 1.5);
    out.flatness = m4 / (m2 * m2);
  }
  return out;
}

double SpectralEngine::derivative_skewness() {
  return derivative_moments().skewness;
}

}  // namespace psdns::dns
