#pragma once
// Spectral-space physics of Eq. 2: solenoidal projection, 2/3-rule
// dealiasing, exact viscous integrating factor, nonlinear RHS assembly from
// transformed products, and shell-averaged statistics. All operations are
// layout-generic over a ModeView and are shared by the slab solver and the
// pencil baseline.

#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "fft/types.hpp"

namespace psdns::dns {

using fft::Complex;
using fft::Real;

/// Applies the solenoidal projection P_ij = delta_ij - k_i k_j / k^2 to the
/// vector field (u, v, w); enforces a zero mean mode.
void project(const ModeView& view, Complex* u, Complex* v, Complex* w);

/// Zeroes every mode with max(|kx|,|ky|,|kz|) > (N-1)/3 (strict 2/3-rule
/// truncation, Sec. 2 / Rogallo 1981). Removes quadratic aliasing
/// completely on its own.
void dealias_truncate(const ModeView& view, Complex* field);

/// Zeroes every mode with |k| > kmax (spherical truncation). Used with
/// phase shifting (Rogallo's scheme): the larger radius sqrt(2)/3 N keeps
/// more resolved modes, and the alternating half-cell grid shifts cancel
/// the leading aliasing contributions across RK substages.
void dealias_spherical(const ModeView& view, Complex* field, double kmax);

/// Multiplies by exp(-nu k^2 dt) (exact viscous integration).
void apply_integrating_factor(const ModeView& view, Complex* field, double nu,
                              double dt);

/// out_i = -P_ij * (i k_m T_jm) from the 6 transformed symmetric products
/// T = {t11,t22,t33,t12,t13,t23} of the velocity field: the conservative-
/// form nonlinear term of Eq. 2, projected to the divergence-free plane.
struct ProductSet {
  const Complex* t11;
  const Complex* t22;
  const Complex* t33;
  const Complex* t12;
  const Complex* t13;
  const Complex* t23;
};
void nonlinear_rhs(const ModeView& view, const ProductSet& products,
                   Complex* out_u, Complex* out_v, Complex* out_w);

/// Scalar advection RHS in conservative form: out = -i k . F from the
/// transformed flux vector F = (u theta, v theta, w theta)^. No projection
/// (scalars carry no pressure); dealias separately.
void scalar_rhs(const ModeView& view, const Complex* fx, const Complex* fy,
                const Complex* fz, Complex* out);

/// 1/2 sum w(kx) |f|^2 - the variance functional of one field. Collective.
double field_variance(const ModeView& view, comm::Communicator& comm,
                      const Complex* f);

/// 2 kappa sum w(kx) k^2 (1/2 |f|^2) - scalar dissipation chi. Collective.
double field_dissipation(const ModeView& view, comm::Communicator& comm,
                         const Complex* f, double kappa);

/// Shell spectrum of 1/2 |f|^2. Collective.
std::vector<double> field_spectrum(const ModeView& view,
                                   comm::Communicator& comm,
                                   const Complex* f);

/// sum w(kx) Re(conj(a) b) - total cospectrum, e.g. the scalar flux
/// <v theta> when called with (vhat, thetahat). Collective.
double cospectrum_total(const ModeView& view, comm::Communicator& comm,
                        const Complex* a, const Complex* b);

/// Multiplies by the phase factor exp(+- i k . delta) (Rogallo phase-shift
/// dealiasing); sign = +1 or -1, delta in radians per axis.
void phase_shift(const ModeView& view, Complex* field, const double delta[3],
                 int sign);

/// Total kinetic energy (1/2 <|u|^2>) of the local modes; collective sum.
double kinetic_energy(const ModeView& view, comm::Communicator& comm,
                      const Complex* u, const Complex* v, const Complex* w);

/// Energy dissipation rate 2 nu sum k^2 E(k); collective.
double dissipation(const ModeView& view, comm::Communicator& comm,
                   const Complex* u, const Complex* v, const Complex* w,
                   double nu);

/// Shell-averaged energy spectrum: E[s] sums 1/2 |u|^2 over modes with
/// round(|k|) == s, s in [0, N/2]. Collective.
std::vector<double> energy_spectrum(const ModeView& view,
                                    comm::Communicator& comm, const Complex* u,
                                    const Complex* v, const Complex* w);

/// max_k |k . u(k)| - divergence residual, should be ~round-off after
/// projection. Collective.
double max_divergence(const ModeView& view, comm::Communicator& comm,
                      const Complex* u, const Complex* v, const Complex* w);

/// Energy contained in shells klo <= round(|k|) <= khi. Collective.
double band_energy(const ModeView& view, comm::Communicator& comm,
                   const Complex* u, const Complex* v, const Complex* w,
                   int klo, int khi);

/// Adds coeff * u to f for modes in the band (velocity-proportional band
/// forcing, see dns/forcing.hpp).
void add_band_forcing(const ModeView& view, Complex* rhs_u, Complex* rhs_v,
                      Complex* rhs_w, const Complex* u, const Complex* v,
                      const Complex* w, int klo, int khi, double coeff);

}  // namespace psdns::dns
