#include "dns/solver.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace psdns::dns {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Deterministic per-grid-point gaussian-ish noise from the global index.
double noise(std::uint64_t seed, std::size_t i, std::size_t j, std::size_t k,
             int component) {
  util::SplitMix64 sm(seed ^ (i + 1) * 0x9E3779B97F4A7C15ULL ^
                      (j + 1) * 0xC2B2AE3D27D4EB4FULL ^
                      (k + 1) * 0x165667B19E3779F9ULL ^
                      static_cast<std::uint64_t>(component + 1) *
                          0xFF51AFD7ED558CCDULL);
  // Sum of 4 uniforms, centered: close enough to gaussian for an IC that is
  // reshaped spectrally anyway.
  double s = 0.0;
  for (int t = 0; t < 4; ++t) {
    s += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  return s - 2.0;
}
}  // namespace

SlabSolver::SlabSolver(comm::Communicator& comm, SolverConfig config)
    : comm_(comm), config_(std::move(config)), fft_(comm, config_.n) {
  PSDNS_REQUIRE(config_.n >= 4, "grid too small for a DNS");
  PSDNS_REQUIRE(config_.viscosity > 0.0, "viscosity must be positive");
  PSDNS_REQUIRE(config_.pencils >= 1 && config_.pencils_per_a2a >= 1,
                "bad pencil batching");
  for (const auto& sc : config_.scalars) {
    PSDNS_REQUIRE(sc.schmidt > 0.0, "Schmidt number must be positive");
  }
  view_ = ModeView::zslab(config_.n, fft_.mz(),
                          static_cast<std::size_t>(comm.rank()) * fft_.mz());
  state_ = make_state();
  rhs_a_ = make_state();
  rhs_b_ = make_state();
  stage_ = make_state();
  const std::size_t nf = field_count();
  const std::size_t nprod = 6 + 3 * config_.scalars.size();
  phys_.resize(nf + nprod);
  for (auto& p : phys_) p.resize(fft_.physical_elems());
  prod_hat_.resize(nprod);
  for (auto& p : prod_hat_) p.resize(fft_.spectral_elems());
}

SlabSolver::State SlabSolver::make_state() const {
  State f(field_count());
  for (auto& c : f) c.assign(fft_.spectral_elems(), Complex{0.0, 0.0});
  return f;
}

void SlabSolver::apply_dealias(Complex* field) {
  if (config_.phase_shift_dealias) {
    dealias_spherical(view_, field,
                      std::sqrt(2.0) * static_cast<double>(config_.n) / 3.0);
  } else {
    dealias_truncate(view_, field);
  }
}

void SlabSolver::apply_if(std::size_t f, Field& field, double dt) {
  apply_integrating_factor(view_, field.data(), diffusivity(f), dt);
}

void SlabSolver::init_from_function(
    const std::function<std::array<double, 3>(double, double, double)>& f) {
  const std::size_t n = config_.n;
  const std::size_t my = fft_.my();
  const std::size_t y0 = static_cast<std::size_t>(comm_.rank()) * my;
  std::vector<Real> px(fft_.physical_elems()), py(fft_.physical_elems()),
      pz(fft_.physical_elems());
  for (std::size_t jj = 0; jj < my; ++jj) {
    const double y = kTwoPi * static_cast<double>(y0 + jj) / n;
    for (std::size_t k = 0; k < n; ++k) {
      const double z = kTwoPi * static_cast<double>(k) / n;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / n;
        const auto u = f(x, y, z);
        px[i + n * (k + n * jj)] = u[0];
        py[i + n * (k + n * jj)] = u[1];
        pz[i + n * (k + n * jj)] = u[2];
      }
    }
  }
  const Real* phys3[3] = {px.data(), py.data(), pz.data()};
  Complex* spec3[3] = {state_[0].data(), state_[1].data(), state_[2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3), config_.pencils,
               config_.pencils_per_a2a);
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (int c = 0; c < 3; ++c) {
    for (auto& z : state_[static_cast<std::size_t>(c)]) z *= scale;
  }
  project(view_, state_[0].data(), state_[1].data(), state_[2].data());
  for (int c = 0; c < 3; ++c) {
    apply_dealias(state_[static_cast<std::size_t>(c)].data());
  }
  time_ = 0.0;
  steps_ = 0;
}

void SlabSolver::init_taylor_green() {
  init_from_function([](double x, double y, double) {
    return std::array<double, 3>{std::sin(x) * std::cos(y),
                                 -std::cos(x) * std::sin(y), 0.0};
  });
}

void SlabSolver::init_isotropic(std::uint64_t seed, double k_peak,
                                double energy) {
  PSDNS_REQUIRE(k_peak > 0.0 && energy > 0.0, "bad isotropic IC parameters");
  const std::size_t n = config_.n;
  const std::size_t my = fft_.my();
  const std::size_t y0 = static_cast<std::size_t>(comm_.rank()) * my;

  // White noise per component, keyed on global indices: identical physics
  // for every rank count.
  std::vector<Real> px(fft_.physical_elems()), py(fft_.physical_elems()),
      pz(fft_.physical_elems());
  for (std::size_t jj = 0; jj < my; ++jj) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = i + n * (k + n * jj);
        px[idx] = noise(seed, i, y0 + jj, k, 0);
        py[idx] = noise(seed, i, y0 + jj, k, 1);
        pz[idx] = noise(seed, i, y0 + jj, k, 2);
      }
    }
  }
  const Real* phys3[3] = {px.data(), py.data(), pz.data()};
  Complex* spec3[3] = {state_[0].data(), state_[1].data(), state_[2].data()};
  fft_.forward(std::span<const Real* const>(phys3, 3),
               std::span<Complex* const>(spec3, 3), config_.pencils,
               config_.pencils_per_a2a);
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (int c = 0; c < 3; ++c) {
    for (auto& z : state_[static_cast<std::size_t>(c)]) z *= scale;
  }
  project(view_, state_[0].data(), state_[1].data(), state_[2].data());
  for (int c = 0; c < 3; ++c) {
    apply_dealias(state_[static_cast<std::size_t>(c)].data());
  }

  // Shape the shell spectrum to E(k) ~ (k/k0)^4 exp(-2 (k/k0)^2).
  const auto current = energy_spectrum(view_, comm_, state_[0].data(),
                                       state_[1].data(), state_[2].data());
  std::vector<double> gain(current.size(), 0.0);
  double target_total = 0.0;
  for (std::size_t s = 1; s < current.size(); ++s) {
    const double kr = static_cast<double>(s) / k_peak;
    const double target = std::pow(kr, 4.0) * std::exp(-2.0 * kr * kr);
    target_total += target;
    if (current[s] > 1e-300) gain[s] = std::sqrt(target / current[s]);
  }
  const double norm = std::sqrt(energy / target_total);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    const double g = shell < gain.size() ? gain[shell] * norm : 0.0;
    state_[0][idx] *= g;
    state_[1][idx] *= g;
    state_[2][idx] *= g;
  });
  time_ = 0.0;
  steps_ = 0;
}

void SlabSolver::init_scalar_from_function(
    int s, const std::function<double(double, double, double)>& f) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  const std::size_t n = config_.n;
  const std::size_t my = fft_.my();
  const std::size_t y0 = static_cast<std::size_t>(comm_.rank()) * my;
  std::vector<Real> phys(fft_.physical_elems());
  for (std::size_t jj = 0; jj < my; ++jj) {
    const double y = kTwoPi * static_cast<double>(y0 + jj) / n;
    for (std::size_t k = 0; k < n; ++k) {
      const double z = kTwoPi * static_cast<double>(k) / n;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / n;
        phys[i + n * (k + n * jj)] = f(x, y, z);
      }
    }
  }
  auto& theta = state_[static_cast<std::size_t>(3 + s)];
  fft_.forward(std::span<const Real>(phys.data(), phys.size()),
               std::span<Complex>(theta.data(), theta.size()),
               config_.pencils, config_.pencils_per_a2a);
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (auto& z : theta) z *= scale;
  apply_dealias(theta.data());
}

void SlabSolver::init_scalar_isotropic(int s, std::uint64_t seed,
                                       double k_peak, double variance) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  PSDNS_REQUIRE(k_peak > 0.0 && variance > 0.0, "bad scalar IC parameters");
  const std::size_t n = config_.n;
  const std::size_t my = fft_.my();
  const std::size_t y0 = static_cast<std::size_t>(comm_.rank()) * my;
  std::vector<Real> phys(fft_.physical_elems());
  for (std::size_t jj = 0; jj < my; ++jj) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        phys[i + n * (k + n * jj)] = noise(seed, i, y0 + jj, k, 100 + s);
      }
    }
  }
  auto& theta = state_[static_cast<std::size_t>(3 + s)];
  fft_.forward(std::span<const Real>(phys.data(), phys.size()),
               std::span<Complex>(theta.data(), theta.size()),
               config_.pencils, config_.pencils_per_a2a);
  const double scale = 1.0 / (static_cast<double>(n) * n * n);
  for (auto& z : theta) z *= scale;
  // Zero-mean fluctuation: only the rank owning the k = 0 mode holds it.
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    if (kx == 0 && ky == 0 && kz == 0) theta[idx] = Complex{0.0, 0.0};
  });
  apply_dealias(theta.data());

  const auto current = field_spectrum(view_, comm_, theta.data());
  std::vector<double> gain(current.size(), 0.0);
  double target_total = 0.0;
  for (std::size_t sh = 1; sh < current.size(); ++sh) {
    const double kr = static_cast<double>(sh) / k_peak;
    const double target = std::pow(kr, 4.0) * std::exp(-2.0 * kr * kr);
    target_total += target;
    if (current[sh] > 1e-300) gain[sh] = std::sqrt(target / current[sh]);
  }
  const double norm = std::sqrt(variance / target_total);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    theta[idx] *= shell < gain.size() ? gain[shell] * norm : 0.0;
  });
}

void SlabSolver::restore(std::span<const Complex* const> fields, double t,
                         std::int64_t steps) {
  PSDNS_REQUIRE(fields.size() == field_count(),
                "restore needs 3 velocity components plus every scalar");
  for (std::size_t f = 0; f < field_count(); ++f) {
    std::copy(fields[f], fields[f] + fft_.spectral_elems(),
              state_[f].begin());
  }
  time_ = t;
  steps_ = steps;
  last_umax_ = 0.0;
}

void SlabSolver::compute_rhs(const State& state, State& rhs,
                             bool with_forcing) {
  const std::size_t n = config_.n;
  const std::size_t nf = field_count();
  const std::size_t nscalars = config_.scalars.size();
  const std::size_t nprod = 6 + 3 * nscalars;
  const double inv_n3 = 1.0 / (static_cast<double>(n) * n * n);

  // Optional Rogallo phase shift: alternate RK substages between the
  // unshifted grid and a grid shifted by half a cell, so the leading
  // aliasing contributions cancel across the substages; the truncation
  // radius is then the larger spherical sqrt(2)/3 N.
  double delta[3] = {0.0, 0.0, 0.0};
  const bool shift = config_.phase_shift_dealias && (rhs_evals_++ % 2 == 1);
  if (shift) {
    const double half_cell = std::numbers::pi / static_cast<double>(n);
    delta[0] = delta[1] = delta[2] = half_cell;
  }

  // 1. All fields to physical space (one multi-variable transpose, exactly
  //    how the production code amortizes message size over variables).
  State shifted;
  std::vector<const Complex*> spec(nf);
  if (shift) {
    shifted = state;
    for (std::size_t f = 0; f < nf; ++f) {
      phase_shift(view_, shifted[f].data(), delta, +1);
      spec[f] = shifted[f].data();
    }
  } else {
    for (std::size_t f = 0; f < nf; ++f) spec[f] = state[f].data();
  }
  std::vector<Real*> phys(nf);
  for (std::size_t f = 0; f < nf; ++f) phys[f] = phys_[f].data();
  fft_.inverse(std::span<const Complex* const>(spec.data(), nf),
               std::span<Real* const>(phys.data(), nf), config_.pencils,
               config_.pencils_per_a2a);

  // 2. Pointwise max velocity (CFL bookkeeping).
  double umax = 0.0;
  for (int c = 0; c < 3; ++c) {
    for (const Real v : phys_[static_cast<std::size_t>(c)]) {
      umax = std::max(umax, std::abs(v));
    }
  }
  last_umax_ = comm_.allreduce_max(umax);

  // 3. Products in physical space: the six symmetric velocity products,
  //    then the three flux components per scalar.
  const Real* u = phys_[0].data();
  const Real* v = phys_[1].data();
  const Real* w = phys_[2].data();
  const std::size_t m = fft_.physical_elems();
  for (std::size_t idx = 0; idx < m; ++idx) {
    phys_[nf + 0][idx] = u[idx] * u[idx];
    phys_[nf + 1][idx] = v[idx] * v[idx];
    phys_[nf + 2][idx] = w[idx] * w[idx];
    phys_[nf + 3][idx] = u[idx] * v[idx];
    phys_[nf + 4][idx] = u[idx] * w[idx];
    phys_[nf + 5][idx] = v[idx] * w[idx];
  }
  for (std::size_t s = 0; s < nscalars; ++s) {
    const Real* theta = phys_[3 + s].data();
    Real* fx = phys_[nf + 6 + 3 * s + 0].data();
    Real* fy = phys_[nf + 6 + 3 * s + 1].data();
    Real* fz = phys_[nf + 6 + 3 * s + 2].data();
    for (std::size_t idx = 0; idx < m; ++idx) {
      fx[idx] = u[idx] * theta[idx];
      fy[idx] = v[idx] * theta[idx];
      fz[idx] = w[idx] * theta[idx];
    }
  }

  // 4. Products to spectral space (one multi-variable transpose).
  std::vector<const Real*> prod_phys(nprod);
  std::vector<Complex*> prod_spec(nprod);
  for (std::size_t t = 0; t < nprod; ++t) {
    prod_phys[t] = phys_[nf + t].data();
    prod_spec[t] = prod_hat_[t].data();
  }
  fft_.forward(std::span<const Real* const>(prod_phys.data(), nprod),
               std::span<Complex* const>(prod_spec.data(), nprod),
               config_.pencils, config_.pencils_per_a2a);
  for (auto& p : prod_hat_) {
    for (auto& z : p) z *= inv_n3;
    if (shift) phase_shift(view_, p.data(), delta, -1);
    apply_dealias(p.data());
  }

  // 5. Projected conservative-form momentum RHS.
  nonlinear_rhs(view_,
                ProductSet{prod_hat_[0].data(), prod_hat_[1].data(),
                           prod_hat_[2].data(), prod_hat_[3].data(),
                           prod_hat_[4].data(), prod_hat_[5].data()},
                rhs[0].data(), rhs[1].data(), rhs[2].data());

  // 6. Scalar flux-divergence RHS plus the mean-gradient source -G v.
  for (std::size_t s = 0; s < nscalars; ++s) {
    scalar_rhs(view_, prod_hat_[6 + 3 * s + 0].data(),
               prod_hat_[6 + 3 * s + 1].data(),
               prod_hat_[6 + 3 * s + 2].data(), rhs[3 + s].data());
    const double g = config_.scalars[s].mean_gradient;
    if (g != 0.0) {
      for (std::size_t idx = 0; idx < rhs[3 + s].size(); ++idx) {
        rhs[3 + s][idx] -= g * state[1][idx];
      }
    }
  }

  // 7. Velocity-proportional band forcing with fixed injection power.
  if (with_forcing && config_.forcing.enabled) {
    const double eband =
        band_energy(view_, comm_, state[0].data(), state[1].data(),
                    state[2].data(), config_.forcing.klo, config_.forcing.khi);
    if (eband > 1e-12) {
      const double coeff = config_.forcing.power / (2.0 * eband);
      add_band_forcing(view_, rhs[0].data(), rhs[1].data(), rhs[2].data(),
                       state[0].data(), state[1].data(), state[2].data(),
                       config_.forcing.klo, config_.forcing.khi, coeff);
    }
  }
}

void SlabSolver::step(double dt) {
  PSDNS_REQUIRE(dt > 0.0, "dt must be positive");
  const double h = dt / 2.0;
  const std::size_t nf = field_count();

  if (config_.scheme == TimeScheme::RK2) {
    // Midpoint RK2 with exact diffusion:
    //   u_mid = E_h (u + dt/2 N(u));  u_new = E_f u + dt E_h N(u_mid).
    compute_rhs(state_, rhs_a_);
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < state_[f].size(); ++i) {
        stage_[f][i] = state_[f][i] + h * rhs_a_[f][i];
      }
      apply_if(f, stage_[f], h);
    }
    compute_rhs(stage_, rhs_b_);
    for (std::size_t f = 0; f < nf; ++f) {
      apply_if(f, state_[f], dt);   // E_f u
      apply_if(f, rhs_b_[f], h);    // E_h N(u_mid)
      for (std::size_t i = 0; i < state_[f].size(); ++i) {
        state_[f][i] += dt * rhs_b_[f][i];
      }
    }
  } else {
    // Integrating-factor RK4 (classical RK4 on v = exp(kappa k^2 t) u):
    //   k1 = N(u)
    //   u1 = E_h (u + dt/2 k1);      k2 = N(u1)
    //   u2 = E_h u + dt/2 k2;        k3 = N(u2)
    //   u3 = E_f u + dt E_h k3;      k4 = N(u3)
    //   u+ = E_f u + dt/6 (E_f k1 + 2 E_h (k2 + k3) + k4)
    State k1 = make_state(), k2 = make_state(), k3 = make_state(),
          k4 = make_state();
    compute_rhs(state_, k1);
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < state_[f].size(); ++i) {
        stage_[f][i] = state_[f][i] + h * k1[f][i];
      }
      apply_if(f, stage_[f], h);
    }
    compute_rhs(stage_, k2);
    for (std::size_t f = 0; f < nf; ++f) {
      stage_[f] = state_[f];
      apply_if(f, stage_[f], h);  // E_h u
      for (std::size_t i = 0; i < stage_[f].size(); ++i) {
        stage_[f][i] += h * k2[f][i];
      }
    }
    compute_rhs(stage_, k3);
    for (std::size_t f = 0; f < nf; ++f) {
      stage_[f] = state_[f];
      apply_if(f, stage_[f], dt);  // E_f u
      apply_if(f, k3[f], h);       // k3 <- E_h k3
      for (std::size_t i = 0; i < stage_[f].size(); ++i) {
        stage_[f][i] += dt * k3[f][i];
      }
    }
    compute_rhs(stage_, k4);
    for (std::size_t f = 0; f < nf; ++f) {
      apply_if(f, k1[f], dt);  // E_f k1
      apply_if(f, k2[f], h);   // E_h k2
      apply_if(f, state_[f], dt);
      for (std::size_t i = 0; i < state_[f].size(); ++i) {
        state_[f][i] += dt / 6.0 *
                        (k1[f][i] + 2.0 * k2[f][i] + 2.0 * k3[f][i] +
                         k4[f][i]);
      }
    }
  }

  time_ += dt;
  ++steps_;
}

double SlabSolver::cfl_dt(double cfl) {
  if (last_umax_ <= 0.0) {
    // No RHS evaluated yet: measure once via a throwaway evaluation.
    compute_rhs(state_, rhs_a_);
  }
  const double dx = kTwoPi / static_cast<double>(config_.n);
  return last_umax_ > 0.0 ? cfl * dx / last_umax_ : 1e9;
}

Diagnostics SlabSolver::diagnostics() {
  Diagnostics d;
  d.energy = kinetic_energy(view_, comm_, state_[0].data(), state_[1].data(),
                            state_[2].data());
  d.dissipation = dissipation(view_, comm_, state_[0].data(),
                              state_[1].data(), state_[2].data(),
                              config_.viscosity);
  d.max_divergence = max_divergence(view_, comm_, state_[0].data(),
                                    state_[1].data(), state_[2].data());
  d.u_max = last_umax_;
  if (d.dissipation > 1e-300) {
    const double uprime2 = 2.0 * d.energy / 3.0;
    d.taylor_scale =
        std::sqrt(15.0 * config_.viscosity * uprime2 / d.dissipation);
    d.reynolds_lambda =
        std::sqrt(uprime2) * d.taylor_scale / config_.viscosity;
    d.kolmogorov_eta = std::pow(
        config_.viscosity * config_.viscosity * config_.viscosity /
            d.dissipation,
        0.25);
  }
  return d;
}

ScalarDiagnostics SlabSolver::scalar_diagnostics(int s) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  const auto si = static_cast<std::size_t>(3 + s);
  ScalarDiagnostics d;
  d.variance = field_variance(view_, comm_, state_[si].data());
  d.dissipation =
      field_dissipation(view_, comm_, state_[si].data(), diffusivity(si));
  d.flux_y =
      cospectrum_total(view_, comm_, state_[1].data(), state_[si].data());
  return d;
}

std::vector<double> SlabSolver::spectrum() {
  return energy_spectrum(view_, comm_, state_[0].data(), state_[1].data(),
                         state_[2].data());
}

std::vector<double> SlabSolver::scalar_spectrum(int s) {
  PSDNS_REQUIRE(s >= 0 && s < scalar_count(), "scalar index out of range");
  return field_spectrum(view_, comm_,
                        state_[static_cast<std::size_t>(3 + s)].data());
}

std::vector<double> SlabSolver::transfer_spectrum() {
  compute_rhs(state_, rhs_a_, /*with_forcing=*/false);
  std::vector<double> shells(config_.n / 2 + 1, 0.0);
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    if (shell >= shells.size()) return;
    // d(1/2 |u|^2)/dt contribution of the nonlinear term.
    double rate = 0.0;
    for (int c = 0; c < 3; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      rate += (std::conj(state_[ci][idx]) * rhs_a_[ci][idx]).real();
    }
    shells[shell] += mode_weight(kx, view_.n) * rate;
  });
  comm_.allreduce_sum(shells.data(), shells.data(), shells.size());
  return shells;
}

SlabSolver::DerivativeMoments SlabSolver::derivative_moments() {
  // Longitudinal derivatives via spectral differentiation, then pointwise
  // moments in physical space.
  State grad = make_state();
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex iu{0.0, 1.0};
    grad[0][idx] = iu * static_cast<double>(kx) * state_[0][idx];
    grad[1][idx] = iu * static_cast<double>(ky) * state_[1][idx];
    grad[2][idx] = iu * static_cast<double>(kz) * state_[2][idx];
  });
  const Complex* spec3[3] = {grad[0].data(), grad[1].data(), grad[2].data()};
  Real* phys3[3] = {phys_[0].data(), phys_[1].data(), phys_[2].data()};
  fft_.inverse(std::span<const Complex* const>(spec3, 3),
               std::span<Real* const>(phys3, 3), config_.pencils,
               config_.pencils_per_a2a);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (int c = 0; c < 3; ++c) {
    for (const Real g : phys_[static_cast<std::size_t>(c)]) {
      const double g2 = g * g;
      m2 += g2;
      m3 += g2 * g;
      m4 += g2 * g2;
    }
  }
  double sums[3] = {m2, m3, m4};
  comm_.allreduce_sum(sums, sums, 3);
  const double count =
      3.0 * static_cast<double>(config_.n) * config_.n * config_.n;
  m2 = sums[0] / count;
  m3 = sums[1] / count;
  m4 = sums[2] / count;
  DerivativeMoments out;
  if (m2 > 1e-300) {
    out.skewness = m3 / std::pow(m2, 1.5);
    out.flatness = m4 / (m2 * m2);
  }
  return out;
}

double SlabSolver::derivative_skewness() {
  // Longitudinal derivatives via spectral differentiation: du/dx needs i*kx,
  // dv/dy needs i*ky, dw/dz needs i*kz; transform back and average moments.
  State grad = make_state();
  for_each_mode(view_, [&](std::size_t idx, int kx, int ky, int kz) {
    const Complex iu{0.0, 1.0};
    grad[0][idx] = iu * static_cast<double>(kx) * state_[0][idx];
    grad[1][idx] = iu * static_cast<double>(ky) * state_[1][idx];
    grad[2][idx] = iu * static_cast<double>(kz) * state_[2][idx];
  });
  const Complex* spec3[3] = {grad[0].data(), grad[1].data(), grad[2].data()};
  Real* phys3[3] = {phys_[0].data(), phys_[1].data(), phys_[2].data()};
  fft_.inverse(std::span<const Complex* const>(spec3, 3),
               std::span<Real* const>(phys3, 3), config_.pencils,
               config_.pencils_per_a2a);

  double m2 = 0.0, m3 = 0.0;
  for (int c = 0; c < 3; ++c) {
    for (const Real g : phys_[static_cast<std::size_t>(c)]) {
      m2 += g * g;
      m3 += g * g * g;
    }
  }
  m2 = comm_.allreduce_sum(m2);
  m3 = comm_.allreduce_sum(m3);
  const double count =
      3.0 * static_cast<double>(config_.n) * config_.n * config_.n;
  m2 /= count;
  m3 /= count;
  return m2 > 1e-300 ? m3 / std::pow(m2, 1.5) : 0.0;
}

}  // namespace psdns::dns
