#include "dns/vorticity.hpp"

#include <cmath>

namespace psdns::dns {

void curl(const ModeView& view, const Complex* u, const Complex* v,
          const Complex* w, Complex* wx, Complex* wy, Complex* wz) {
  const Complex iu{0.0, 1.0};
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double fx = kx, fy = ky, fz = kz;
    wx[idx] = iu * (fy * w[idx] - fz * v[idx]);
    wy[idx] = iu * (fz * u[idx] - fx * w[idx]);
    wz[idx] = iu * (fx * v[idx] - fy * u[idx]);
  });
}

namespace {

/// Pointwise helicity density Re(conj(u) . (i k x u)) for one mode.
double helicity_density(const Complex* u, const Complex* v, const Complex* w,
                        std::size_t idx, int kx, int ky, int kz) {
  const Complex iu{0.0, 1.0};
  const double fx = kx, fy = ky, fz = kz;
  const Complex wx = iu * (fy * w[idx] - fz * v[idx]);
  const Complex wy = iu * (fz * u[idx] - fx * w[idx]);
  const Complex wz = iu * (fx * v[idx] - fy * u[idx]);
  return (std::conj(u[idx]) * wx + std::conj(v[idx]) * wy +
          std::conj(w[idx]) * wz)
      .real();
}

}  // namespace

double enstrophy_exact(const ModeView& view, comm::Communicator& comm,
                       const Complex* u, const Complex* v, const Complex* w) {
  double sum = 0.0;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double k2 = static_cast<double>(kx) * kx +
                      static_cast<double>(ky) * ky +
                      static_cast<double>(kz) * kz;
    sum += mode_weight(kx, view.n) * k2 * 0.5 *
           (std::norm(u[idx]) + std::norm(v[idx]) + std::norm(w[idx]));
  });
  return comm.allreduce_sum(sum);
}

double helicity(const ModeView& view, comm::Communicator& comm,
                const Complex* u, const Complex* v, const Complex* w) {
  double sum = 0.0;
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    sum += mode_weight(kx, view.n) * helicity_density(u, v, w, idx, kx, ky, kz);
  });
  return comm.allreduce_sum(sum);
}

std::vector<double> helicity_spectrum(const ModeView& view,
                                      comm::Communicator& comm,
                                      const Complex* u, const Complex* v,
                                      const Complex* w) {
  std::vector<double> shells(view.n / 2 + 1, 0.0);
  for_each_mode(view, [&](std::size_t idx, int kx, int ky, int kz) {
    const double kmag = std::sqrt(static_cast<double>(kx) * kx +
                                  static_cast<double>(ky) * ky +
                                  static_cast<double>(kz) * kz);
    const auto shell = static_cast<std::size_t>(std::lround(kmag));
    if (shell < shells.size()) {
      shells[shell] +=
          mode_weight(kx, view.n) * helicity_density(u, v, w, idx, kx, ky, kz);
    }
  });
  comm.allreduce_sum(shells.data(), shells.data(), shells.size());
  return shells;
}

}  // namespace psdns::dns
