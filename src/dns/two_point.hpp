#pragma once
// Two-point statistics from the shell spectrum: the longitudinal
// correlation f(r) and the second-order longitudinal structure function
// S2(r) - the classical objects of isotropic turbulence theory that
// spectra are published alongside.
//
// For isotropic turbulence (Monin & Yaglom):
//   u'^2 f(r)  = 2 * sum_k E(k) [ sin(kr)/(kr)^3 - cos(kr)/(kr)^2 ] / ...
// evaluated here with the standard kernel
//   f(r) = (2 / u'^2) * sum_k E(k) * g(kr),
//   g(x) = (sin x - x cos x) * 3 / x^3 / 3 ... (g(0) = 1/3; normalized so
// f(0) = 1), and S2(r) = 2 u'^2 (1 - f(r)).

#include <vector>

namespace psdns::dns {

/// Longitudinal velocity correlation f(r) at separations r[i] (radians on
/// the 2*pi box), from the shell spectrum. f(0) = 1 by construction.
std::vector<double> longitudinal_correlation(
    const std::vector<double>& spectrum, const std::vector<double>& r);

/// Second-order longitudinal structure function S2(r) = 2 u'^2 (1 - f(r)).
std::vector<double> structure_function_2(const std::vector<double>& spectrum,
                                         const std::vector<double>& r);

}  // namespace psdns::dns
