#pragma once
// The synchronous pencil-decomposed CPU baseline: the same Navier-Stokes
// physics as SlabSolver, on the 2-D domain decomposition used by the
// production CPU code of Yeung et al. (2015) that the paper benchmarks
// against (Table 3 "Sync CPU"). Since both solvers are adapters over
// dns::SpectralNSCore, the baseline gets the full feature set - RK2/RK4,
// forcing, passive scalars, phase-shift dealiasing, diagnostics - and the
// test suite can assert that both decompositions advance the flow
// identically from the same decomposition-invariant initial conditions.

#include "dns/spectral_core.hpp"
#include "transpose/dist_fft.hpp"

namespace psdns::dns {

struct PencilSolverConfig {
  std::size_t n = 32;
  double viscosity = 0.01;
  int pr = 1;  // process-grid rows (on-node communicator in production)
  int pc = 1;  // process-grid columns
  TimeScheme scheme = TimeScheme::RK2;
  bool phase_shift_dealias = false;
  ForcingConfig forcing;
  std::vector<ScalarConfig> scalars;
  SystemType system = SystemType::NavierStokes;
  double rotation_omega = 0.0;
  double brunt_vaisala = 1.0;
  double resistivity = 0.0;
};

namespace detail {
/// Holder base so the FFT backend is constructed before the SpectralNSCore
/// base that takes a reference to it.
struct PencilFftMember {
  PencilFftMember(comm::Communicator& comm, std::size_t n, int pr, int pc)
      : pencil_fft_(comm, n, pr, pc) {}
  transpose::PencilFft3d pencil_fft_;
};
}  // namespace detail

class PencilSolver : private detail::PencilFftMember, public SpectralNSCore {
 public:
  PencilSolver(comm::Communicator& comm, PencilSolverConfig config)
      : detail::PencilFftMember(comm, config.n, config.pr, config.pc),
        SpectralNSCore(comm, pencil_fft_, to_solver_config(config)),
        pencil_config_(std::move(config)) {}

  /// Hides the base config(): pencil callers care about pr/pc.
  const PencilSolverConfig& config() const { return pencil_config_; }

  transpose::PencilFft3d& pencil_fft() { return pencil_fft_; }
  const transpose::PencilFft3d& pencil_fft() const { return pencil_fft_; }

  // --- legacy baseline API (thin wrappers over the shared physics) ---

  double kinetic_energy() {
    return dns::kinetic_energy(modes(), communicator(), uhat(0), uhat(1),
                               uhat(2));
  }
  double dissipation_rate() {
    return dns::dissipation(modes(), communicator(), uhat(0), uhat(1),
                            uhat(2), pencil_config_.viscosity);
  }
  double max_div() {
    return dns::max_divergence(modes(), communicator(), uhat(0), uhat(1),
                               uhat(2));
  }

 private:
  static SolverConfig to_solver_config(const PencilSolverConfig& pc) {
    SolverConfig sc;
    sc.n = pc.n;
    sc.viscosity = pc.viscosity;
    sc.scheme = pc.scheme;
    sc.phase_shift_dealias = pc.phase_shift_dealias;
    sc.pencils = 1;
    sc.pencils_per_a2a = 1;
    sc.forcing = pc.forcing;
    sc.scalars = pc.scalars;
    sc.system = pc.system;
    sc.rotation_omega = pc.rotation_omega;
    sc.brunt_vaisala = pc.brunt_vaisala;
    sc.resistivity = pc.resistivity;
    return sc;
  }

  PencilSolverConfig pencil_config_;
};

}  // namespace psdns::dns
