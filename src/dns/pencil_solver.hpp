#pragma once
// The synchronous pencil-decomposed CPU baseline: the same Navier-Stokes
// physics as SlabSolver, on the 2-D domain decomposition used by the
// production CPU code of Yeung et al. (2015) that the paper benchmarks
// against (Table 3 "Sync CPU"). RK2, 2/3-rule truncation. Sharing
// spectral_ops with the slab solver lets the test suite assert that both
// decompositions advance the flow identically.

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/modes.hpp"
#include "dns/spectral_ops.hpp"
#include "transpose/dist_fft.hpp"

namespace psdns::dns {

struct PencilSolverConfig {
  std::size_t n = 32;
  double viscosity = 0.01;
  int pr = 1;  // process-grid rows (on-node communicator in production)
  int pc = 1;  // process-grid columns
};

class PencilSolver {
 public:
  PencilSolver(comm::Communicator& comm, PencilSolverConfig config);

  const PencilSolverConfig& config() const { return config_; }
  std::size_t n() const { return config_.n; }
  double time() const { return time_; }
  const ModeView& modes() const { return view_; }

  Complex* uhat(int c) { return vel_[static_cast<std::size_t>(c)].data(); }

  /// Same validation initial condition as SlabSolver::init_taylor_green.
  void init_taylor_green();

  /// Fills from a physical-space function u_c(x, y, z).
  void init_from_function(
      const std::function<std::array<double, 3>(double, double, double)>& f);

  /// One RK2 step with exact viscous integration.
  void step(double dt);

  double kinetic_energy();
  double dissipation_rate();
  double max_div();
  std::vector<double> spectrum();

 private:
  using Field = std::vector<Complex>;
  using Field3 = std::array<Field, 3>;

  void compute_rhs(const Field3& vel, Field3& rhs);
  Field3 make_fields() const;

  comm::Communicator& comm_;
  PencilSolverConfig config_;
  transpose::PencilFft3d fft_;
  ModeView view_;
  Field3 vel_, rhs_a_, rhs_b_, stage_;
  std::vector<std::vector<Real>> phys_;
  std::vector<Field> prod_hat_;
  double time_ = 0.0;
};

}  // namespace psdns::dns
