#pragma once
// The mode/point views moved to transpose/views.hpp so the transpose layer
// can describe its own layouts (transpose::DistFft3d backends publish a
// ModeView and a PhysView) without depending on dns. This header keeps the
// historical dns-namespace spellings alive for the spectral operators and
// existing callers.

#include "transpose/views.hpp"

namespace psdns::dns {

using transpose::ModeView;
using transpose::PhysView;
using transpose::for_each_mode;
using transpose::for_each_point;
using transpose::mode_weight;
using transpose::wrap_wavenumber;

}  // namespace psdns::dns
