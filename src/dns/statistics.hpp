#pragma once
// Derived turbulence statistics computed from shell spectra - the
// quantities the paper's scientific campaigns (energy spectra, extreme
// events, resolution studies) are run to obtain.

#include <vector>

namespace psdns::dns {

/// Integral length scale L = (pi / (2 u'^2)) * sum_k E(k)/k  (k >= 1),
/// with u'^2 = (2/3) * total energy.
double integral_length_scale(const std::vector<double>& spectrum);

/// Enstrophy Omega = sum_k k^2 E(k). Related to dissipation by
/// eps = 2 nu Omega for isotropic turbulence.
double enstrophy(const std::vector<double>& spectrum);

/// Total energy: sum of the shell spectrum.
double spectrum_energy(const std::vector<double>& spectrum);

/// Kolmogorov-normalized resolution metric k_max * eta, with
/// k_max = N/3 under 2/3 truncation (the paper's headline motivation is
/// pushing this with higher N).
double kmax_eta(std::size_t n, double kolmogorov_eta);

}  // namespace psdns::dns
