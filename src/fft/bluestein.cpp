#include "fft/bluestein.hpp"

#include <cmath>
#include <numbers>

#include "fft/factor.hpp"
#include "util/check.hpp"

namespace psdns::fft {

BluesteinEngine::BluesteinEngine(std::size_t n)
    : n_(n), m_(next_pow2(2 * n - 1)), conv_(m_) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");

  chirp_.resize(n_);
  // k^2 mod 2n keeps the phase argument exact for large k.
  const double base = -std::numbers::pi / static_cast<double>(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t k2 = (k * k) % (2 * n_);
    const double phase = base * static_cast<double>(k2);
    chirp_[k] = Complex{std::cos(phase), std::sin(phase)};
  }

  // Convolution kernel b[k] = conj(chirp[|k|]) laid out circularly, then
  // transformed once at plan time.
  std::vector<Complex> b(m_, Complex{0.0, 0.0});
  b[0] = std::conj(chirp_[0]);
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m_ - k] = std::conj(chirp_[k]);
  }
  kernel_fft_.resize(m_);
  conv_.execute(Direction::Forward, b.data(), 1, kernel_fft_.data());
}

void BluesteinEngine::execute(Direction dir, const Complex* in,
                              std::ptrdiff_t in_stride, Complex* out) const {
  const bool inverse = dir == Direction::Inverse;
  auto chirp = [&](std::size_t k) {
    const Complex c = chirp_[k];
    return inverse ? std::conj(c) : c;
  };

  std::vector<Complex> a(m_, Complex{0.0, 0.0});
  for (std::size_t k = 0; k < n_; ++k) {
    a[k] = in[static_cast<std::ptrdiff_t>(k) * in_stride] * chirp(k);
  }

  std::vector<Complex> fa(m_);
  conv_.execute(Direction::Forward, a.data(), 1, fa.data());
  for (std::size_t k = 0; k < m_; ++k) {
    const Complex kf = inverse ? std::conj(kernel_fft_[k]) : kernel_fft_[k];
    fa[k] *= kf;
  }
  conv_.execute(Direction::Inverse, fa.data(), 1, a.data());

  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    out[k] = a[k] * chirp(k) * scale;
  }
}

}  // namespace psdns::fft
