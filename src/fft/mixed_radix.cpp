#include "fft/mixed_radix.hpp"

#include <cmath>
#include <numbers>

#include "fft/factor.hpp"
#include "util/check.hpp"

namespace psdns::fft {

MixedRadixEngine::MixedRadixEngine(std::size_t n)
    : n_(n), factors_(prime_factors(n)) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");
  PSDNS_REQUIRE(is_smooth(n),
                "length has a large prime factor; use Bluestein instead");
  // Merge pairs of 2s into radix-4 stages: the specialized radix-4
  // butterfly halves the twiddle multiplies of two radix-2 passes.
  std::vector<std::size_t> merged;
  std::size_t twos = 0;
  for (const std::size_t f : factors_) {
    if (f == 2) {
      ++twos;
    } else {
      merged.push_back(f);
    }
  }
  for (; twos >= 2; twos -= 2) merged.insert(merged.begin(), 4);
  if (twos == 1) merged.insert(merged.begin(), 2);
  factors_ = std::move(merged);
  twiddle_.resize(n_);
  const double base = -2.0 * std::numbers::pi / static_cast<double>(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    const double phase = base * static_cast<double>(j);
    twiddle_[j] = Complex{std::cos(phase), std::sin(phase)};
  }
  for (const std::size_t r : factors_) {
    if (r == 2 || r == 4 || radix_row(r, 0) != nullptr) continue;
    const std::size_t r_stride = n_ / r;
    std::vector<Complex> mat(r * r);
    for (std::size_t k2 = 0; k2 < r; ++k2) {
      for (std::size_t q = 0; q < r; ++q) {
        mat[k2 * r + q] = twiddle_[((q * k2) % r) * r_stride];
      }
    }
    radix_dft_.emplace_back(r, std::move(mat));
  }
}

const Complex* MixedRadixEngine::radix_row(std::size_t r,
                                           std::size_t k2) const {
  for (const auto& [radix, mat] : radix_dft_) {
    if (radix == r) return mat.data() + k2 * r;
  }
  return nullptr;
}

void MixedRadixEngine::execute(Direction dir, const Complex* in,
                               std::ptrdiff_t in_stride, Complex* out) const {
  recurse(dir == Direction::Inverse, n_, factors_.data(), in, in_stride, out);
}

void MixedRadixEngine::recurse(bool inverse, std::size_t n,
                               const std::size_t* factor, const Complex* x,
                               std::ptrdiff_t xs, Complex* y) const {
  if (n == 1) {
    y[0] = x[0];
    return;
  }
  const std::size_t r = *factor;
  const std::size_t m = n / r;

  // Sub-transforms of the r interleaved subsequences x[q + r*t].
  for (std::size_t q = 0; q < r; ++q) {
    recurse(inverse, m, factor + 1, x + static_cast<std::ptrdiff_t>(q) * xs,
            xs * static_cast<std::ptrdiff_t>(r), y + q * m);
  }

  // Combine: X[k1 + m*k2] = sum_q w_n^{q*k1} * w_r^{q*k2} * A_q[k1].
  // The read set {q*m + k1} and write set {k1 + m*k2} coincide for fixed k1,
  // so the combine is in-place with an r-element temporary.
  const std::size_t tw_stride = n_ / n;  // w_n^j == twiddle_[j * tw_stride]

  if (r == 2) {
    for (std::size_t k1 = 0; k1 < m; ++k1) {
      const Complex a = y[k1];
      const Complex b = y[m + k1] * tw(inverse, k1 * tw_stride);
      y[k1] = a + b;
      y[m + k1] = a - b;
    }
    return;
  }

  if (r == 4) {
    // Radix-4 butterfly: with s = -i (forward) or +i (inverse),
    //   X0 = (t0+t2) + (t1+t3)
    //   X1 = (t0-t2) + s (t1-t3)
    //   X2 = (t0+t2) - (t1+t3)
    //   X3 = (t0-t2) - s (t1-t3)
    for (std::size_t k1 = 0; k1 < m; ++k1) {
      const Complex t0 = y[k1];
      const Complex t1 = y[m + k1] * tw(inverse, k1 * tw_stride);
      const Complex t2 = y[2 * m + k1] * tw(inverse, 2 * k1 * tw_stride);
      const Complex t3 = y[3 * m + k1] * tw(inverse, 3 * k1 * tw_stride);
      const Complex a = t0 + t2;
      const Complex b = t0 - t2;
      const Complex c = t1 + t3;
      const Complex d = t1 - t3;
      // s*d: multiply by -i (forward) or +i (inverse).
      const Complex sd = inverse ? Complex{-d.imag(), d.real()}
                                 : Complex{d.imag(), -d.real()};
      y[k1] = a + c;
      y[m + k1] = b + sd;
      y[2 * m + k1] = a - c;
      y[3 * m + k1] = b - sd;
    }
    return;
  }

  Complex t[kMaxDirectPrime];
  for (std::size_t k1 = 0; k1 < m; ++k1) {
    for (std::size_t q = 0; q < r; ++q) {
      t[q] = y[q * m + k1] * tw(inverse, q * k1 * tw_stride);
    }
    for (std::size_t k2 = 0; k2 < r; ++k2) {
      const Complex* row = radix_row(r, k2);
      Complex acc = t[0];
      for (std::size_t q = 1; q < r; ++q) {
        const Complex w = row[q];
        acc += t[q] * (inverse ? Complex{w.real(), -w.imag()} : w);
      }
      y[k1 + m * k2] = acc;
    }
  }
}

}  // namespace psdns::fft
