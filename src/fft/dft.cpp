#include "fft/dft.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace psdns::fft {

void dft_reference(Direction dir, std::size_t n, const Complex* in,
                   Complex* out) {
  PSDNS_REQUIRE(in != out, "dft_reference is out-of-place");
  const double sign = dir == Direction::Forward ? -1.0 : 1.0;
  const double base = sign * 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double phase = base * static_cast<double>((j * k) % n);
      acc += in[j] * Complex{std::cos(phase), std::sin(phase)};
    }
    out[k] = acc;
  }
}

}  // namespace psdns::fft
