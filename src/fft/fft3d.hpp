#pragma once
// Serial 3-D transforms on contiguous arrays (x fastest, then y, then z).
// These serve as the ground-truth reference that the distributed slab/pencil
// transposed transforms are tested against, and as the engine of the serial
// DNS reference solver.

#include <cstddef>
#include <vector>

#include "fft/types.hpp"

namespace psdns::fft {

/// Dense 3-D shape; index (i, j, k) maps to data[i + nx*(j + ny*k)].
struct Shape3 {
  std::size_t nx = 0, ny = 0, nz = 0;
  std::size_t volume() const { return nx * ny * nz; }
};

/// In-place 3-D complex transform, one direction at a time (x, then y, then
/// z for Forward; the DNS uses the reversed y,z,x order but the composite is
/// identical). Unnormalized in both directions.
void fft3d_c2c(Direction dir, const Shape3& shape, Complex* data);

/// Real nx*ny*nz array -> complex (nx/2+1)*ny*nz spectrum (x is the
/// conjugate-symmetric complex-to-real direction, as in the paper).
void fft3d_r2c(const Shape3& shape, const Real* in, Complex* out);

/// Inverse of fft3d_r2c, unnormalized: returns volume() * original.
void fft3d_c2r(const Shape3& shape, const Complex* in, Real* out);

}  // namespace psdns::fft
