#include "fft/stockham.hpp"

#include <cmath>
#include <numbers>

#include "fft/factor.hpp"
#include "util/check.hpp"

namespace psdns::fft {

namespace {

// Twiddles are stored in the forward (exp(-i)) convention; the inverse
// transform conjugates them outside the batch loops.
inline Complex pick(bool inverse, Complex w) {
  return inverse ? Complex{w.real(), -w.imag()} : w;
}

// y[q] = x[q] * w, spelled out in real arithmetic so the compiler emits
// straight-line vector code (std::complex operator* carries NaN-recovery
// branches that block vectorization).
inline Complex cmul(Complex x, double wr, double wi) {
  const double xr = x.real(), xi = x.imag();
  return Complex{xr * wr - xi * wi, xr * wi + xi * wr};
}

}  // namespace

StockhamEngine::StockhamEngine(std::size_t n) : n_(n) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");
  PSDNS_REQUIRE(is_smooth(n),
                "length has a large prime factor; use Bluestein instead");

  // Same radix schedule as MixedRadixEngine: pairs of 2s merge into radix-4
  // stages (half the twiddle multiplies), remaining factors as-is.
  std::vector<std::size_t> factors = prime_factors(n);
  std::vector<std::size_t> merged;
  std::size_t twos = 0;
  for (const std::size_t f : factors) {
    if (f == 2) {
      ++twos;
    } else {
      merged.push_back(f);
    }
  }
  for (; twos >= 2; twos -= 2) merged.insert(merged.begin(), 4);
  if (twos == 1) merged.insert(merged.begin(), 2);

  // Decimation in frequency: stage radixes consume n from the top. Stage
  // twiddles w_nsub^{p*j} are stored as (radix-1) columns per p (the j = 0
  // column is always 1).
  std::size_t nsub = n;
  std::size_t off = 0;
  for (const std::size_t r : merged) {
    Stage st;
    st.radix = r;
    st.m = nsub / r;
    st.tw = off;
    const double base = -2.0 * std::numbers::pi / static_cast<double>(nsub);
    for (std::size_t p = 0; p < st.m; ++p) {
      for (std::size_t j = 1; j < r; ++j) {
        const double phase = base * static_cast<double>(p * j);
        twiddle_.push_back(Complex{std::cos(phase), std::sin(phase)});
      }
    }
    off += st.m * (r - 1);
    if (r != 2 && r != 3 && r != 4) {
      // Dedupe the r x r DFT matrix across stages with the same radix.
      for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i].radix == r && stages_[i].mat != kNoMat) {
          st.mat = stages_[i].mat;
          break;
        }
      }
      if (st.mat == kNoMat) {
        std::vector<Complex> mat(r * r);
        const double rb = -2.0 * std::numbers::pi / static_cast<double>(r);
        for (std::size_t j = 0; j < r; ++j) {
          for (std::size_t q = 0; q < r; ++q) {
            const double phase = rb * static_cast<double>((j * q) % r);
            mat[j * r + q] = Complex{std::cos(phase), std::sin(phase)};
          }
        }
        st.mat = radix_mats_.size();
        radix_mats_.push_back(std::move(mat));
      }
    }
    stages_.push_back(st);
    nsub = st.m;
  }
}

void StockhamEngine::execute_batch(Direction dir, Complex* data, Complex* work,
                                   std::size_t batch) const {
  PSDNS_REQUIRE(batch >= 1, "batch must be positive");
  if (stages_.empty()) return;  // n == 1: input in data is already the result
  const bool inverse = dir == Direction::Inverse;
  Complex* src = prefers_work_input() ? work : data;
  Complex* dst = prefers_work_input() ? data : work;
  std::size_t s = batch;
  for (const Stage& st : stages_) {
    run_stage(st, inverse, s, src, dst);
    s *= st.radix;
    std::swap(src, dst);
  }
  // The final stage wrote the buffer that is now `src`; by the parity choice
  // above that is always `data`.
}

void StockhamEngine::run_stage(const Stage& st, bool inverse, std::size_t s,
                               const Complex* x, Complex* y) const {
  const std::size_t m = st.m;
  const Complex* tw = twiddle_.data() + st.tw;

  if (st.radix == 2) {
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w = pick(inverse, tw[p]);
      const double wr = w.real(), wi = w.imag();
      const Complex* xa = x + s * p;
      const Complex* xb = x + s * (p + m);
      Complex* ya = y + s * (2 * p);
      Complex* yb = ya + s;
      for (std::size_t q = 0; q < s; ++q) {
        const double ar = xa[q].real(), ai = xa[q].imag();
        const double br = xb[q].real(), bi = xb[q].imag();
        ya[q] = Complex{ar + br, ai + bi};
        yb[q] = Complex{(ar - br) * wr - (ai - bi) * wi,
                        (ar - br) * wi + (ai - bi) * wr};
      }
    }
    return;
  }

  if (st.radix == 4) {
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w1 = pick(inverse, tw[3 * p]);
      const Complex w2 = pick(inverse, tw[3 * p + 1]);
      const Complex w3 = pick(inverse, tw[3 * p + 2]);
      const Complex* xa = x + s * p;
      const Complex* xb = x + s * (p + m);
      const Complex* xc = x + s * (p + 2 * m);
      const Complex* xd = x + s * (p + 3 * m);
      Complex* y0 = y + s * (4 * p);
      Complex* y1 = y0 + s;
      Complex* y2 = y1 + s;
      Complex* y3 = y2 + s;
      // Forward: w_4 = -i, so X1/X3 = (a-c) -+ i(b-d); inverse flips the i.
      const double sg = inverse ? -1.0 : 1.0;
      for (std::size_t q = 0; q < s; ++q) {
        const double ar = xa[q].real(), ai = xa[q].imag();
        const double br = xb[q].real(), bi = xb[q].imag();
        const double cr = xc[q].real(), ci = xc[q].imag();
        const double dr = xd[q].real(), di = xd[q].imag();
        const double pr = ar + cr, pi = ai + ci;   // a + c
        const double mr = ar - cr, mi = ai - ci;   // a - c
        const double qr = br + dr, qi = bi + di;   // b + d
        const double ur = bi - di, ui = dr - br;   // -i*(b - d)
        y0[q] = Complex{pr + qr, pi + qi};
        y1[q] = cmul(Complex{mr + sg * ur, mi + sg * ui}, w1.real(),
                     w1.imag());
        y2[q] = cmul(Complex{pr - qr, pi - qi}, w2.real(), w2.imag());
        y3[q] = cmul(Complex{mr - sg * ur, mi - sg * ui}, w3.real(),
                     w3.imag());
      }
    }
    return;
  }

  if (st.radix == 3) {
    // X1/X2 = (a - (b+c)/2) -+ i*(sqrt(3)/2)*(b-c) in the forward direction.
    const double h = inverse ? -0.8660254037844386 : 0.8660254037844386;
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w1 = pick(inverse, tw[2 * p]);
      const Complex w2 = pick(inverse, tw[2 * p + 1]);
      const Complex* xa = x + s * p;
      const Complex* xb = x + s * (p + m);
      const Complex* xc = x + s * (p + 2 * m);
      Complex* y0 = y + s * (3 * p);
      Complex* y1 = y0 + s;
      Complex* y2 = y1 + s;
      for (std::size_t q = 0; q < s; ++q) {
        const double ar = xa[q].real(), ai = xa[q].imag();
        const double br = xb[q].real(), bi = xb[q].imag();
        const double cr = xc[q].real(), ci = xc[q].imag();
        const double tr = br + cr, ti = bi + ci;
        const double ur = br - cr, ui = bi - ci;
        y0[q] = Complex{ar + tr, ai + ti};
        const double er = ar - 0.5 * tr, ei = ai - 0.5 * ti;
        // -i*h*(u) = (h*ui, -h*ur) for forward h > 0.
        y1[q] = cmul(Complex{er + h * ui, ei - h * ur}, w1.real(), w1.imag());
        y2[q] = cmul(Complex{er - h * ui, ei + h * ur}, w2.real(), w2.imag());
      }
    }
    return;
  }

  // Generic radix: per output j, fold the stage twiddle into the radix-r DFT
  // row once, then stream the batch.
  const std::size_t r = st.radix;
  const Complex* mat = radix_mats_[st.mat].data();
  for (std::size_t p = 0; p < m; ++p) {
    const Complex* twrow = tw + p * (r - 1);
    for (std::size_t j = 0; j < r; ++j) {
      Complex coef[kMaxDirectPrime];
      const Complex wj =
          j == 0 ? Complex{1.0, 0.0} : pick(inverse, twrow[j - 1]);
      for (std::size_t q2 = 0; q2 < r; ++q2) {
        coef[q2] = pick(inverse, mat[j * r + q2]) * wj;
      }
      Complex* yj = y + s * (r * p + j);
      for (std::size_t q = 0; q < s; ++q) {
        double accr = 0.0, acci = 0.0;
        for (std::size_t q2 = 0; q2 < r; ++q2) {
          const Complex v = x[q + s * (p + m * q2)];
          accr += v.real() * coef[q2].real() - v.imag() * coef[q2].imag();
          acci += v.real() * coef[q2].imag() + v.imag() * coef[q2].real();
        }
        yj[q] = Complex{accr, acci};
      }
    }
  }
}

}  // namespace psdns::fft
