#include "fft/stockham.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "fft/factor.hpp"
#include "fft/stockham_kernels.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace psdns::fft {

namespace {

using StageFn = void (*)(const StockhamStage&, const Complex*, const Complex*,
                         bool, std::size_t, std::size_t, std::size_t,
                         const Complex*, Complex*);
using TailFn = void (*)(const StockhamStage&, const Complex*, const Complex*,
                        bool, std::size_t, std::size_t, std::size_t,
                        std::size_t, const Complex*, Complex*);

// One backend per execute: all stages of a transform run the same kernel,
// so scalar and SIMD runs are comparable stage by stage.
StageFn pick_stage_fn() {
#if defined(PSDNS_HAVE_AVX2)
  if (util::simd::active_backend() == util::simd::Backend::Avx2) {
    return &detail::run_stage_avx2;
  }
#endif
  return &detail::run_stage_scalar;
}

TailFn pick_tail_fn() {
#if defined(PSDNS_HAVE_AVX2)
  if (util::simd::active_backend() == util::simd::Backend::Avx2) {
    return &detail::run_stage_tail_avx2;
  }
#endif
  return &detail::run_stage_tail_scalar;
}

}  // namespace

namespace detail {

void run_stage_scalar(const StockhamStage& st, const Complex* tw,
                      const Complex* mat, bool inverse, std::size_t s,
                      std::size_t xs, std::size_t ys, const Complex* x,
                      Complex* y) {
  run_stage_impl<util::simd::ScalarPack>(st, tw, mat, inverse, s, xs, ys, x,
                                         y);
}

void run_stage_tail_scalar(const StockhamStage& st, const Complex* tw,
                           const Complex* mat, bool inverse, std::size_t nb,
                           std::size_t nchunks, std::size_t xs,
                           std::size_t out_stride, const Complex* x,
                           Complex* y) {
  run_stage_tail_impl<util::simd::ScalarPack>(st, tw, mat, inverse, nb,
                                              nchunks, xs, out_stride, x, y);
}

}  // namespace detail

StockhamEngine::StockhamEngine(std::size_t n) : n_(n) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");
  PSDNS_REQUIRE(is_smooth(n),
                "length has a large prime factor; use Bluestein instead");

  // Same radix schedule as MixedRadixEngine: pairs of 2s merge into radix-4
  // stages (half the twiddle multiplies), remaining factors as-is.
  std::vector<std::size_t> factors = prime_factors(n);
  std::vector<std::size_t> merged;
  std::size_t twos = 0;
  for (const std::size_t f : factors) {
    if (f == 2) {
      ++twos;
    } else {
      merged.push_back(f);
    }
  }
  for (; twos >= 2; twos -= 2) merged.insert(merged.begin(), 4);
  if (twos == 1) merged.insert(merged.begin(), 2);

  // Decimation in frequency: stage radixes consume n from the top. Stage
  // twiddles w_nsub^{p*j} are stored as (radix-1) columns per p (the j = 0
  // column is always 1).
  std::size_t nsub = n;
  std::size_t off = 0;
  for (const std::size_t r : merged) {
    StockhamStage st;
    st.radix = r;
    st.m = nsub / r;
    st.tw = off;
    const double base = -2.0 * std::numbers::pi / static_cast<double>(nsub);
    for (std::size_t p = 0; p < st.m; ++p) {
      for (std::size_t j = 1; j < r; ++j) {
        const double phase = base * static_cast<double>(p * j);
        twiddle_.push_back(Complex{std::cos(phase), std::sin(phase)});
      }
    }
    off += st.m * (r - 1);
    if (r != 2 && r != 3 && r != 4) {
      // Dedupe the r x r DFT matrix across stages with the same radix.
      for (std::size_t i = 0; i < stages_.size(); ++i) {
        if (stages_[i].radix == r && stages_[i].mat != kNoMat) {
          st.mat = stages_[i].mat;
          break;
        }
      }
      if (st.mat == kNoMat) {
        std::vector<Complex> mat(r * r);
        const double rb = -2.0 * std::numbers::pi / static_cast<double>(r);
        for (std::size_t j = 0; j < r; ++j) {
          for (std::size_t q = 0; q < r; ++q) {
            const double phase = rb * static_cast<double>((j * q) % r);
            mat[j * r + q] = Complex{std::cos(phase), std::sin(phase)};
          }
        }
        st.mat = radix_mats_.size();
        radix_mats_.push_back(std::move(mat));
      }
    }
    stages_.push_back(st);
    nsub = st.m;
  }
}

void StockhamEngine::execute_batch(Direction dir, Complex* data, Complex* work,
                                   std::size_t batch) const {
  PSDNS_REQUIRE(batch >= 1, "batch must be positive");
  if (stages_.empty()) return;  // n == 1: input in data is already the result
  const bool inverse = dir == Direction::Inverse;
  Complex* src = prefers_work_input() ? work : data;
  Complex* dst = prefers_work_input() ? data : work;
  const StageFn stage_fn = pick_stage_fn();
  std::size_t s = batch;
  for (const StockhamStage& st : stages_) {
    const Complex* mat =
        st.mat == kNoMat ? nullptr : radix_mats_[st.mat].data();
    stage_fn(st, twiddle_.data() + st.tw, mat, inverse, s, s, s, src, dst);
    s *= st.radix;
    std::swap(src, dst);
  }
  // The final stage wrote the buffer that is now `src`; by the parity choice
  // above that is always `data`.
}

void StockhamEngine::execute_batch_plane(Direction dir, const Complex* in,
                                         std::size_t in_stride, Complex* out,
                                         std::size_t out_stride,
                                         Complex* stage0, Complex* stage1,
                                         std::size_t batch) const {
  PSDNS_REQUIRE(batch >= 1, "batch must be positive");
  if (stages_.empty()) {  // n == 1: the single element of each line
    for (std::size_t b = 0; b < batch; ++b) out[b] = in[b];
    return;
  }
  const bool inverse = dir == Direction::Inverse;
  const StageFn stage_fn = pick_stage_fn();
  const std::size_t nstages = stages_.size();

  const Complex* src = in;      // current stage input
  std::size_t xs = in_stride;   // and its row stride
  if (nstages == 1 && in == out) {
    // A single stage would read and write the same buffer, which the
    // kernels' no-alias contract forbids. Compact the n_ pitched input rows
    // into stage0 first (n_ is one radix here, so this is a handful of
    // short contiguous copies).
    for (std::size_t k = 0; k < n_; ++k) {
      std::copy(in + in_stride * k, in + in_stride * k + batch,
                stage0 + batch * k);
    }
    src = stage0;
    xs = batch;
  }
  Complex* pong[2] = {stage0, stage1};
  int which = 0;
  std::size_t s = batch;
  for (std::size_t i = 0; i < nstages; ++i) {
    const StockhamStage& st = stages_[i];
    const Complex* mat =
        st.mat == kNoMat ? nullptr : radix_mats_[st.mat].data();
    const Complex* tws = twiddle_.data() + st.tw;
    if (i + 1 < nstages) {
      Complex* dst = pong[which];
      stage_fn(st, tws, mat, inverse, s, xs, s, src, dst);
      s *= st.radix;
      src = dst;
      xs = s;
      which ^= 1;
    } else {
      // Final stage: m == 1, so its outputs are r rows of s = batch*(n/r)
      // elements, i.e. n/r runs of `batch` contiguous user elements each.
      // The tail kernel sweeps each run with the x rows at their full
      // stride and the y rows landing directly in the pitched user buffer.
      pick_tail_fn()(st, tws, mat, inverse, batch, n_ / st.radix, xs,
                     out_stride, src, out);
    }
  }
}

}  // namespace psdns::fft
