#pragma once
// Bluestein chirp-z transform: complex FFT of arbitrary length n via a
// power-of-two convolution of size >= 2n-1. Covers lengths with large prime
// factors that the mixed-radix core does not accept.

#include <cstddef>
#include <vector>

#include "fft/mixed_radix.hpp"
#include "fft/types.hpp"

namespace psdns::fft {

class BluesteinEngine {
 public:
  explicit BluesteinEngine(std::size_t n);

  std::size_t size() const { return n_; }

  /// Same contract as MixedRadixEngine::execute.
  void execute(Direction dir, const Complex* in, std::ptrdiff_t in_stride,
               Complex* out) const;

 private:
  std::size_t n_;
  std::size_t m_;  // convolution length, power of two >= 2n-1
  MixedRadixEngine conv_;
  std::vector<Complex> chirp_;       // exp(-i*pi*k^2/n), k in [0, n)
  std::vector<Complex> kernel_fft_;  // FFT of the forward chirp kernel
};

}  // namespace psdns::fft
