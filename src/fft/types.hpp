#pragma once
// Common numeric types for the FFT library.
//
// The paper runs single precision on Summit; we compute in double so that the
// numerical-validation tests (Taylor-Green decay, Parseval, round trips) can
// assert near round-off agreement. Precision only enters the performance
// model as a bytes-per-word constant (see psdns::model).

#include <complex>
#include <cstddef>

namespace psdns::fft {

using Real = double;
using Complex = std::complex<double>;

enum class Direction {
  Forward,  // exp(-i k x) convention
  Inverse,  // exp(+i k x), unnormalized (scale by 1/n to invert Forward)
};

}  // namespace psdns::fft
