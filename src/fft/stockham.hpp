#pragma once
// Iterative Stockham autosort FFT over a contiguous batch of lines.
//
// The engine transforms B lines at once, stored batch-innermost: element j of
// line b lives at data[b + B*j]. Each decimation-in-frequency stage streams
// the whole buffer exactly once with a unit-stride inner loop over the batch
// index, so the compiler vectorizes across lines; the autosort property means
// no bit-reversal pass and natural-order output. All stage twiddles and the
// small DFT matrices for generic radices are precomputed at plan time, so the
// inner loops contain no trigonometry and no modular index arithmetic. This
// is the CPU analogue of a batched cuFFT plan over pencil lines — the access
// pattern the paper's GPU port is built around.

#include <cstddef>
#include <vector>

#include "fft/types.hpp"

namespace psdns::fft {

/// One decimation-in-frequency stage of the schedule. Public so the stage
/// kernels (instantiated per SIMD backend in their own translation units)
/// can share it.
struct StockhamStage {
  static constexpr std::size_t kNoMat = static_cast<std::size_t>(-1);
  std::size_t radix = 0;
  std::size_t m = 0;   // sub-transform length after this stage
  std::size_t tw = 0;  // offset into the engine twiddle table
  std::size_t mat = kNoMat;  // index into the generic-radix DFT matrices
};

namespace detail {

/// Scalar stage kernel: always available, the reference semantics.
/// `tw` points at the stage's own twiddle block, `mat` at the stage's r*r
/// DFT matrix (nullptr for radix 2/3/4). `s` is the batch sweep width;
/// `xs`/`ys` are the row strides of `x`/`y`, equal to `s` except when the
/// first/last stage streams a pitched user buffer directly
/// (execute_batch_plane).
void run_stage_scalar(const StockhamStage& st, const Complex* tw,
                      const Complex* mat, bool inverse, std::size_t s,
                      std::size_t xs, std::size_t ys, const Complex* x,
                      Complex* y);

/// Final-stage variant for execute_batch_plane: runs the (m == 1) stage as
/// `nchunks` sweeps of `nb` lines, writing chunk c's rows straight into the
/// pitched user buffer at y + out_stride*c.
void run_stage_tail_scalar(const StockhamStage& st, const Complex* tw,
                           const Complex* mat, bool inverse, std::size_t nb,
                           std::size_t nchunks, std::size_t xs,
                           std::size_t out_stride, const Complex* x,
                           Complex* y);

#if defined(PSDNS_HAVE_AVX2)
/// AVX2+FMA instantiation of the same kernel (stockham_avx2.cpp, compiled
/// with -mavx2 -mfma); call only when util::simd::avx2_supported().
void run_stage_avx2(const StockhamStage& st, const Complex* tw,
                    const Complex* mat, bool inverse, std::size_t s,
                    std::size_t xs, std::size_t ys, const Complex* x,
                    Complex* y);
void run_stage_tail_avx2(const StockhamStage& st, const Complex* tw,
                         const Complex* mat, bool inverse, std::size_t nb,
                         std::size_t nchunks, std::size_t xs,
                         std::size_t out_stride, const Complex* x, Complex* y);
#endif

}  // namespace detail

class StockhamEngine {
 public:
  /// Requires is_smooth(n).
  explicit StockhamEngine(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t stage_count() const { return stages_.size(); }

  /// True when execute_batch expects its input in `work` (odd stage count);
  /// otherwise the input must be in `data`. The result is always in `data`,
  /// so a caller that gathers into the right buffer pays no parity copy.
  bool prefers_work_input() const { return stages_.size() % 2 == 1; }

  /// Transforms `batch` lines of length size(), stored batch-innermost in
  /// the input buffer (see prefers_work_input()). `data` and `work` must
  /// each hold size()*batch elements and must not alias; both are clobbered
  /// and the result lands in `data` in natural order. Inverse is
  /// unnormalized, matching MixedRadixEngine.
  void execute_batch(Direction dir, Complex* data, Complex* work,
                     std::size_t batch) const;

  /// Like execute_batch, but for plane layouts (dist == 1): element j of
  /// line b is read from in[b + in_stride*j] and written to
  /// out[b + out_stride*j]. The first stage streams the pitched input and
  /// the last stage writes the pitched output directly, so neither a
  /// gather nor a scatter pass touches the block. `in == out` is allowed
  /// (the input is fully consumed before the final stage writes).
  /// `stage0`/`stage1` are staging only (batch*size() each, clobbered).
  void execute_batch_plane(Direction dir, const Complex* in,
                           std::size_t in_stride, Complex* out,
                           std::size_t out_stride, Complex* stage0,
                           Complex* stage1, std::size_t batch) const;

 private:
  static constexpr std::size_t kNoMat = StockhamStage::kNoMat;

  std::size_t n_;
  std::vector<StockhamStage> stages_;
  std::vector<Complex> twiddle_;  // per-stage tables, forward convention
  std::vector<std::vector<Complex>> radix_mats_;  // w_r^{j*q} DFT matrices
};

}  // namespace psdns::fft
