#pragma once
// Iterative Stockham autosort FFT over a contiguous batch of lines.
//
// The engine transforms B lines at once, stored batch-innermost: element j of
// line b lives at data[b + B*j]. Each decimation-in-frequency stage streams
// the whole buffer exactly once with a unit-stride inner loop over the batch
// index, so the compiler vectorizes across lines; the autosort property means
// no bit-reversal pass and natural-order output. All stage twiddles and the
// small DFT matrices for generic radices are precomputed at plan time, so the
// inner loops contain no trigonometry and no modular index arithmetic. This
// is the CPU analogue of a batched cuFFT plan over pencil lines — the access
// pattern the paper's GPU port is built around.

#include <cstddef>
#include <vector>

#include "fft/types.hpp"

namespace psdns::fft {

class StockhamEngine {
 public:
  /// Requires is_smooth(n).
  explicit StockhamEngine(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t stage_count() const { return stages_.size(); }

  /// True when execute_batch expects its input in `work` (odd stage count);
  /// otherwise the input must be in `data`. The result is always in `data`,
  /// so a caller that gathers into the right buffer pays no parity copy.
  bool prefers_work_input() const { return stages_.size() % 2 == 1; }

  /// Transforms `batch` lines of length size(), stored batch-innermost in
  /// the input buffer (see prefers_work_input()). `data` and `work` must
  /// each hold size()*batch elements and must not alias; both are clobbered
  /// and the result lands in `data` in natural order. Inverse is
  /// unnormalized, matching MixedRadixEngine.
  void execute_batch(Direction dir, Complex* data, Complex* work,
                     std::size_t batch) const;

 private:
  static constexpr std::size_t kNoMat = static_cast<std::size_t>(-1);

  struct Stage {
    std::size_t radix = 0;
    std::size_t m = 0;    // sub-transform length after this stage
    std::size_t tw = 0;   // offset into twiddle_: m*(radix-1) entries
    std::size_t mat = kNoMat;  // index into radix_mats_ (generic radices)
  };

  void run_stage(const Stage& st, bool inverse, std::size_t s,
                 const Complex* x, Complex* y) const;

  std::size_t n_;
  std::vector<Stage> stages_;
  std::vector<Complex> twiddle_;  // per-stage tables, forward convention
  std::vector<std::vector<Complex>> radix_mats_;  // w_r^{j*q} DFT matrices
};

}  // namespace psdns::fft
