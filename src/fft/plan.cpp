#include "fft/plan.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "fft/bluestein.hpp"
#include "fft/factor.hpp"
#include "fft/mixed_radix.hpp"
#include "fft/stockham.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::fft {

struct PlanC2C::Impl {
  std::optional<MixedRadixEngine> smooth;     // strided single-line path
  std::optional<StockhamEngine> stockham;     // batched/contiguous path
  std::optional<BluesteinEngine> bluestein;   // non-smooth lengths

  void execute(Direction dir, const Complex* in, std::ptrdiff_t stride,
               Complex* out) const {
    if (smooth) {
      smooth->execute(dir, in, stride, out);
    } else {
      bluestein->execute(dir, in, stride, out);
    }
  }
};

namespace {

// Per-thread scratch shared by all plans, checked out of the workspace
// arena (so FFT scratch shows up in the arena's peak accounting). Keeps
// transform() allocation-free in steady state while plans stay const and
// shareable between the functional communicator's rank threads.
util::WorkspaceArena::Handle<Complex>& scratch(std::size_t n) {
  thread_local util::WorkspaceArena::Handle<Complex> buf;
  buf.ensure(n);
  return buf;
}

// Ping-pong staging buffers of the blocked batch path (distinct from
// scratch() so transform_batch may call into plans that use scratch()).
util::WorkspaceArena::Handle<Complex>& batch_scratch(std::size_t n) {
  thread_local util::WorkspaceArena::Handle<Complex> buf;
  buf.ensure(n);
  return buf;
}

}  // namespace

std::size_t batch_block_lines(std::size_t n) {
  // 512 KiB per staging buffer (two are live at once, comfortably inside a
  // 2 MiB L2), at least 8 lines so the inner batch loop fills a vector
  // register, at most 64 so the gather touches a bounded set of cache lines
  // per column.
  constexpr std::size_t kBlockBytes = std::size_t{1} << 19;
  const std::size_t lines =
      kBlockBytes / (sizeof(Complex) * std::max<std::size_t>(n, 1));
  return std::clamp<std::size_t>(lines, 8, 64);
}

PlanC2C::PlanC2C(std::size_t n) : n_(n), impl_(std::make_unique<Impl>()) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");
  if (is_smooth(n)) {
    impl_->smooth.emplace(n);
    impl_->stockham.emplace(n);
  } else {
    impl_->bluestein.emplace(n);
  }
}

const StockhamEngine* PlanC2C::stockham() const {
  return impl_->stockham ? &*impl_->stockham : nullptr;
}

PlanC2C::~PlanC2C() = default;
PlanC2C::PlanC2C(PlanC2C&&) noexcept = default;
PlanC2C& PlanC2C::operator=(PlanC2C&&) noexcept = default;

void PlanC2C::transform(Direction dir, const Complex* in, Complex* out) const {
  if (impl_->stockham) {
    // Single-line (batch = 1) run of the iterative engine: `out` doubles as
    // the result buffer, the thread-local scratch as the ping-pong partner.
    auto& tmp = scratch(n_);
    if (impl_->stockham->prefers_work_input()) {
      std::copy(in, in + n_, tmp.data());
    } else if (in != out) {
      std::copy(in, in + n_, out);
    }
    impl_->stockham->execute_batch(dir, out, tmp.data(), 1);
    return;
  }
  if (in == out) {
    auto& tmp = scratch(n_);
    impl_->execute(dir, in, 1, tmp.data());
    std::copy(tmp.data(), tmp.data() + n_, out);
  } else {
    impl_->execute(dir, in, 1, out);
  }
}

void PlanC2C::transform_strided(Direction dir, const Complex* in,
                                std::ptrdiff_t in_stride, Complex* out,
                                std::ptrdiff_t out_stride) const {
  auto& tmp = scratch(n_);
  impl_->execute(dir, in, in_stride, tmp.data());
  for (std::size_t k = 0; k < n_; ++k) {
    out[static_cast<std::ptrdiff_t>(k) * out_stride] = tmp[k];
  }
}

void PlanC2C::transform_batch(Direction dir, const Complex* in, Complex* out,
                              const BatchLayout& layout) const {
  PSDNS_REQUIRE(layout.count >= 1, "batch count must be positive");
  const std::size_t dist = layout.dist == 0 ? n_ * layout.stride : layout.dist;

  if (!impl_->stockham) {
    // Non-smooth fallback: per-line Bluestein, correctness-equivalent to the
    // pre-batched code path.
    for (std::size_t b = 0; b < layout.count; ++b) {
      transform_strided(dir, in + b * dist,
                        static_cast<std::ptrdiff_t>(layout.stride),
                        out + b * dist,
                        static_cast<std::ptrdiff_t>(layout.stride));
    }
    return;
  }

  const StockhamEngine& eng = *impl_->stockham;
  const std::size_t bmax = batch_block_lines(n_);
  const std::size_t blocks = (layout.count + bmax - 1) / bmax;

  // Blocks are independent (disjoint line ranges, per-thread staging), so
  // they stripe across the worker pool; each executing thread checks out
  // its own thread_local ping-pong buffers. The block partition is fixed by
  // bmax alone, so results are bitwise identical at any thread count.
  util::ThreadPool::global().parallel_for(
      "fft.c2c.batch", 0, blocks, [&](std::size_t blk) {
        const std::size_t b0 = blk * bmax;
        const std::size_t nb = std::min(bmax, layout.count - b0);
        auto& buf = batch_scratch(2 * bmax * n_);
        Complex* stage0 = buf.data();
        Complex* stage1 = buf.data() + bmax * n_;
        if (dist == 1) {
          // Plane layout: line b's element j already sits at
          // in[b + j*stride], which is exactly the pitched row layout the
          // first and last Stockham stages can stream directly — neither a
          // gather nor a scatter pass touches the block.
          eng.execute_batch_plane(dir, in + b0, layout.stride, out + b0,
                                  layout.stride, stage0, stage1, nb);
          return;
        }
        // Blocked gather: column j of the staging buffer holds element j
        // of all nb lines, so the write side is always unit-stride.
        Complex* gbuf = eng.prefers_work_input() ? stage1 : stage0;
        const Complex* src = in + b0 * dist;
        for (std::size_t j = 0; j < n_; ++j) {
          const Complex* col = src + j * layout.stride;
          Complex* dst = gbuf + j * nb;
          for (std::size_t b = 0; b < nb; ++b) dst[b] = col[b * dist];
        }
        eng.execute_batch(dir, stage0, stage1, nb);
        Complex* obase = out + b0 * dist;
        for (std::size_t j = 0; j < n_; ++j) {
          const Complex* srcj = stage0 + j * nb;
          Complex* col = obase + j * layout.stride;
          for (std::size_t b = 0; b < nb; ++b) col[b * dist] = srcj[b];
        }
      });

  auto& reg = obs::registry();
  reg.counter_add("fft.stockham.batches", static_cast<std::int64_t>(blocks));
  reg.counter_add("fft.stockham.lines",
                  static_cast<std::int64_t>(layout.count));
  reg.counter_add("fft.stockham.gathered_bytes",
                  static_cast<std::int64_t>(2 * layout.count * n_ *
                                            sizeof(Complex)));
}

void PlanC2C::normalize(Complex* data, std::size_t count) const {
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < count; ++i) data[i] *= scale;
}

std::shared_ptr<const PlanC2C> get_plan(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const PlanC2C>> cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[n];
  if (!slot) {
    obs::registry().counter_add("fft.plan_cache.miss");
    obs::log_event(obs::LogLevel::Debug, "fft", "plan cache miss",
                   {{"n", n}});
    slot = std::make_shared<const PlanC2C>(n);
  } else {
    obs::registry().counter_add("fft.plan_cache.hit");
  }
  return slot;
}

}  // namespace psdns::fft
