#include "fft/plan.hpp"

#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "fft/bluestein.hpp"
#include "fft/factor.hpp"
#include "fft/mixed_radix.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::fft {

struct PlanC2C::Impl {
  std::optional<MixedRadixEngine> smooth;
  std::optional<BluesteinEngine> bluestein;

  void execute(Direction dir, const Complex* in, std::ptrdiff_t stride,
               Complex* out) const {
    if (smooth) {
      smooth->execute(dir, in, stride, out);
    } else {
      bluestein->execute(dir, in, stride, out);
    }
  }
};

namespace {

// Per-thread scratch shared by all plans; grows monotonically. Keeps
// transform() allocation-free in steady state while plans stay const and
// shareable between the functional communicator's rank threads.
std::vector<Complex>& scratch(std::size_t n) {
  thread_local std::vector<Complex> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

PlanC2C::PlanC2C(std::size_t n) : n_(n), impl_(std::make_unique<Impl>()) {
  PSDNS_REQUIRE(n >= 1, "transform length must be positive");
  if (is_smooth(n)) {
    impl_->smooth.emplace(n);
  } else {
    impl_->bluestein.emplace(n);
  }
}

PlanC2C::~PlanC2C() = default;
PlanC2C::PlanC2C(PlanC2C&&) noexcept = default;
PlanC2C& PlanC2C::operator=(PlanC2C&&) noexcept = default;

void PlanC2C::transform(Direction dir, const Complex* in, Complex* out) const {
  if (in == out) {
    auto& tmp = scratch(n_);
    impl_->execute(dir, in, 1, tmp.data());
    std::copy(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(n_), out);
  } else {
    impl_->execute(dir, in, 1, out);
  }
}

void PlanC2C::transform_strided(Direction dir, const Complex* in,
                                std::ptrdiff_t in_stride, Complex* out,
                                std::ptrdiff_t out_stride) const {
  auto& tmp = scratch(n_);
  impl_->execute(dir, in, in_stride, tmp.data());
  for (std::size_t k = 0; k < n_; ++k) {
    out[static_cast<std::ptrdiff_t>(k) * out_stride] = tmp[k];
  }
}

void PlanC2C::transform_batch(Direction dir, const Complex* in, Complex* out,
                              const BatchLayout& layout) const {
  PSDNS_REQUIRE(layout.count >= 1, "batch count must be positive");
  const std::size_t dist = layout.dist == 0 ? n_ * layout.stride : layout.dist;
  for (std::size_t b = 0; b < layout.count; ++b) {
    transform_strided(dir, in + b * dist,
                      static_cast<std::ptrdiff_t>(layout.stride),
                      out + b * dist,
                      static_cast<std::ptrdiff_t>(layout.stride));
  }
}

void PlanC2C::normalize(Complex* data, std::size_t count) const {
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < count; ++i) data[i] *= scale;
}

std::shared_ptr<const PlanC2C> get_plan(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const PlanC2C>> cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[n];
  if (!slot) {
    obs::registry().counter_add("fft.plan_cache.miss");
    obs::log_event(obs::LogLevel::Debug, "fft", "plan cache miss",
                   {{"n", n}});
    slot = std::make_shared<const PlanC2C>(n);
  } else {
    obs::registry().counter_add("fft.plan_cache.hit");
  }
  return slot;
}

}  // namespace psdns::fft
