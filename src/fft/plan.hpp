#pragma once
// Plan-based 1-D complex-to-complex FFT API, mirroring the shape of
// cuFFT/FFTW plans: a plan is built once per (length), is immutable and
// thread-safe, and supports batched and strided execution (cuFFT "advanced
// data layout": count / stride / dist).

#include <cstddef>
#include <memory>

#include "fft/types.hpp"

namespace psdns::fft {

class StockhamEngine;

/// Batched layout: element k of batch b lives at data[b*dist + k*stride].
struct BatchLayout {
  std::size_t count = 1;   // number of transforms
  std::size_t stride = 1;  // distance between successive elements of one line
  std::size_t dist = 0;    // distance between first elements of lines
};

/// Cache-block width of the batched path: how many lines of length n are
/// gathered into contiguous scratch and transformed together. Sized so the
/// two ping-pong staging buffers stay cache-resident for common line
/// lengths, with a floor that keeps the batch-innermost loops vectorizable.
std::size_t batch_block_lines(std::size_t n);

class PlanC2C {
 public:
  explicit PlanC2C(std::size_t n);
  ~PlanC2C();
  PlanC2C(PlanC2C&&) noexcept;
  PlanC2C& operator=(PlanC2C&&) noexcept;
  PlanC2C(const PlanC2C&) = delete;
  PlanC2C& operator=(const PlanC2C&) = delete;

  std::size_t size() const { return n_; }

  /// Contiguous transform; in == out (in-place) is allowed.
  void transform(Direction dir, const Complex* in, Complex* out) const;

  /// Strided transform of a single line; in-place allowed when the strides
  /// match. Inverse is unnormalized (as with FFTW/cuFFT).
  void transform_strided(Direction dir, const Complex* in,
                         std::ptrdiff_t in_stride, Complex* out,
                         std::ptrdiff_t out_stride) const;

  /// Batched transform with identical input and output layout. For smooth
  /// lengths this is the fast path: blocks of batch_block_lines(n) strided
  /// lines are gathered into contiguous scratch (batch-innermost), run
  /// through the iterative Stockham engine in one streaming pass per stage,
  /// and scattered back. Non-smooth lengths fall back to a per-line loop
  /// over the Bluestein engine. in == out (fully in-place) is allowed.
  void transform_batch(Direction dir, const Complex* in, Complex* out,
                       const BatchLayout& layout) const;

  /// The batched smooth-length engine, or nullptr when this length routes
  /// through Bluestein. Lets the real-transform plans batch their
  /// half-length transforms without re-gathering.
  const StockhamEngine* stockham() const;

  /// Scales `count` elements by 1/n (normalizing a Forward+Inverse pair).
  void normalize(Complex* data, std::size_t count) const;

 private:
  struct Impl;
  std::size_t n_;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide plan cache; returns a shared immutable plan for length n.
/// Thread-safe.
std::shared_ptr<const PlanC2C> get_plan(std::size_t n);

}  // namespace psdns::fft
