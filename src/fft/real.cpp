#include "fft/real.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <vector>

#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::fft {

namespace {

// Per-thread scratch shared by all real plans: the r2c/c2r paths run once
// per grid line in the DNS, so per-call allocation would dominate.
std::vector<Complex>& scratch(std::size_t slot, std::size_t n) {
  thread_local std::vector<Complex> buf[2];
  if (buf[slot].size() < n) buf[slot].resize(n);
  return buf[slot];
}

}  // namespace

PlanR2C::PlanR2C(std::size_t n) : n_(n) {
  PSDNS_REQUIRE(n >= 2, "real transform length must be >= 2");
  if (n % 2 == 0) {
    half_ = get_plan(n / 2);
    const std::size_t h = n / 2;
    omega_.resize(h + 1);
    const double base = -2.0 * std::numbers::pi / static_cast<double>(n);
    for (std::size_t k = 0; k <= h; ++k) {
      const double phase = base * static_cast<double>(k);
      omega_[k] = Complex{std::cos(phase), std::sin(phase)};
    }
  } else {
    full_ = get_plan(n);
  }
}

void PlanR2C::forward(const Real* in, Complex* out) const {
  if (n_ % 2 != 0) {
    auto& tmp_in = scratch(0, n_);
    auto& tmp_out = scratch(1, n_);
    for (std::size_t j = 0; j < n_; ++j) tmp_in[j] = Complex{in[j], 0.0};
    full_->transform(Direction::Forward, tmp_in.data(), tmp_out.data());
    for (std::size_t k = 0; k < spectrum_size(); ++k) out[k] = tmp_out[k];
    return;
  }

  const std::size_t h = n_ / 2;
  // Pack adjacent real pairs into h complex samples and take one half-length
  // complex transform.
  auto& z = scratch(0, h);
  auto& zf = scratch(1, h);
  for (std::size_t j = 0; j < h; ++j) {
    z[j] = Complex{in[2 * j], in[2 * j + 1]};
  }
  half_->transform(Direction::Forward, z.data(), zf.data());

  // Unravel: A[k] = FFT(even samples), B[k] = FFT(odd samples);
  // X[k] = A[k] + w^k B[k] with w = exp(-2*pi*i/n).
  const Complex i_unit{0.0, 1.0};
  for (std::size_t k = 0; k <= h; ++k) {
    const Complex zk = k == h ? zf[0] : zf[k];
    const Complex zmk = std::conj(zf[(h - k) % h]);
    const Complex a = 0.5 * (zk + zmk);
    const Complex b = (zk - zmk) / (2.0 * i_unit);
    out[k] = a + omega_[k] * b;
  }
}

void PlanR2C::inverse(const Complex* in, Real* out) const {
  if (n_ % 2 != 0) {
    // Expand conjugate-symmetric spectrum and use the full complex plan.
    auto& spec = scratch(0, n_);
    auto& tmp = scratch(1, n_);
    for (std::size_t k = 0; k < spectrum_size(); ++k) spec[k] = in[k];
    for (std::size_t k = spectrum_size(); k < n_; ++k) {
      spec[k] = std::conj(in[n_ - k]);
    }
    full_->transform(Direction::Inverse, spec.data(), tmp.data());
    for (std::size_t j = 0; j < n_; ++j) out[j] = tmp[j].real();
    return;
  }

  const std::size_t h = n_ / 2;
  // Recover the packed half-length spectrum: Z[k] = A[k] + i*B[k] with
  // A[k] = (X[k] + conj(X[h-k]))/2, B[k] = (X[k] - conj(X[h-k])) * wbar^k / 2.
  auto& z = scratch(0, h);
  auto& zt = scratch(1, h);
  const Complex i_unit{0.0, 1.0};
  for (std::size_t k = 0; k < h; ++k) {
    const Complex xk = in[k];
    const Complex xmk = std::conj(in[h - k]);
    const Complex a = 0.5 * (xk + xmk);
    const Complex b = 0.5 * (xk - xmk) * std::conj(omega_[k]);
    z[k] = a + i_unit * b;
  }
  half_->transform(Direction::Inverse, z.data(), zt.data());
  // The half-length unnormalized inverse carries a factor h; the FFTW c2r
  // convention wants a factor n = 2h, hence the extra 2.
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = 2.0 * zt[j].real();
    out[2 * j + 1] = 2.0 * zt[j].imag();
  }
}

std::shared_ptr<const PlanR2C> get_plan_r2c(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const PlanR2C>> cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[n];
  if (!slot) {
    obs::registry().counter_add("fft.plan_cache.miss");
    obs::log_event(obs::LogLevel::Debug, "fft", "r2c plan cache miss",
                   {{"n", n}});
    slot = std::make_shared<const PlanR2C>(n);
  } else {
    obs::registry().counter_add("fft.plan_cache.hit");
  }
  return slot;
}

}  // namespace psdns::fft
