#include "fft/real.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>
#include <vector>

#include "fft/stockham.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::fft {

namespace {

// Per-thread scratch shared by all real plans, checked out of the
// workspace arena so it participates in the arena's peak accounting: the
// r2c/c2r paths run once per grid line in the DNS, so per-call allocation
// would dominate.
util::WorkspaceArena::Handle<Complex>& scratch(std::size_t slot,
                                               std::size_t n) {
  thread_local util::WorkspaceArena::Handle<Complex> buf[2];
  buf[slot].ensure(n);
  return buf[slot];
}

// Ping-pong staging for the batched paths (separate from scratch(): the
// per-line fallbacks this file keeps use scratch() internally).
util::WorkspaceArena::Handle<Complex>& batch_scratch(std::size_t slot,
                                                     std::size_t n) {
  thread_local util::WorkspaceArena::Handle<Complex> buf[2];
  buf[slot].ensure(n);
  return buf[slot];
}

}  // namespace

PlanR2C::PlanR2C(std::size_t n) : n_(n) {
  PSDNS_REQUIRE(n >= 2, "real transform length must be >= 2");
  if (n % 2 == 0) {
    half_ = get_plan(n / 2);
    const std::size_t h = n / 2;
    omega_.resize(h + 1);
    const double base = -2.0 * std::numbers::pi / static_cast<double>(n);
    for (std::size_t k = 0; k <= h; ++k) {
      const double phase = base * static_cast<double>(k);
      omega_[k] = Complex{std::cos(phase), std::sin(phase)};
    }
  } else {
    full_ = get_plan(n);
  }
}

void PlanR2C::forward(const Real* in, Complex* out) const {
  if (n_ % 2 != 0) {
    auto& tmp_in = scratch(0, n_);
    auto& tmp_out = scratch(1, n_);
    for (std::size_t j = 0; j < n_; ++j) tmp_in[j] = Complex{in[j], 0.0};
    full_->transform(Direction::Forward, tmp_in.data(), tmp_out.data());
    for (std::size_t k = 0; k < spectrum_size(); ++k) out[k] = tmp_out[k];
    return;
  }

  const std::size_t h = n_ / 2;
  // Pack adjacent real pairs into h complex samples and take one half-length
  // complex transform.
  auto& z = scratch(0, h);
  auto& zf = scratch(1, h);
  for (std::size_t j = 0; j < h; ++j) {
    z[j] = Complex{in[2 * j], in[2 * j + 1]};
  }
  half_->transform(Direction::Forward, z.data(), zf.data());

  // Unravel: A[k] = FFT(even samples), B[k] = FFT(odd samples);
  // X[k] = A[k] + w^k B[k] with w = exp(-2*pi*i/n).
  const Complex i_unit{0.0, 1.0};
  for (std::size_t k = 0; k <= h; ++k) {
    const Complex zk = k == h ? zf[0] : zf[k];
    const Complex zmk = std::conj(zf[(h - k) % h]);
    const Complex a = 0.5 * (zk + zmk);
    const Complex b = (zk - zmk) / (2.0 * i_unit);
    out[k] = a + omega_[k] * b;
  }
}

void PlanR2C::inverse(const Complex* in, Real* out) const {
  if (n_ % 2 != 0) {
    // Expand conjugate-symmetric spectrum and use the full complex plan.
    auto& spec = scratch(0, n_);
    auto& tmp = scratch(1, n_);
    for (std::size_t k = 0; k < spectrum_size(); ++k) spec[k] = in[k];
    for (std::size_t k = spectrum_size(); k < n_; ++k) {
      spec[k] = std::conj(in[n_ - k]);
    }
    full_->transform(Direction::Inverse, spec.data(), tmp.data());
    for (std::size_t j = 0; j < n_; ++j) out[j] = tmp[j].real();
    return;
  }

  const std::size_t h = n_ / 2;
  // Recover the packed half-length spectrum: Z[k] = A[k] + i*B[k] with
  // A[k] = (X[k] + conj(X[h-k]))/2, B[k] = (X[k] - conj(X[h-k])) * wbar^k / 2.
  auto& z = scratch(0, h);
  auto& zt = scratch(1, h);
  const Complex i_unit{0.0, 1.0};
  for (std::size_t k = 0; k < h; ++k) {
    const Complex xk = in[k];
    const Complex xmk = std::conj(in[h - k]);
    const Complex a = 0.5 * (xk + xmk);
    const Complex b = 0.5 * (xk - xmk) * std::conj(omega_[k]);
    z[k] = a + i_unit * b;
  }
  half_->transform(Direction::Inverse, z.data(), zt.data());
  // The half-length unnormalized inverse carries a factor h; the FFTW c2r
  // convention wants a factor n = 2h, hence the extra 2.
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = 2.0 * zt[j].real();
    out[2 * j + 1] = 2.0 * zt[j].imag();
  }
}

void PlanR2C::forward_batch(const Real* in, std::size_t in_dist, Complex* out,
                            std::size_t out_dist, std::size_t count) const {
  const StockhamEngine* eng = n_ % 2 == 0 ? half_->stockham() : nullptr;
  if (!eng) {
    for (std::size_t b = 0; b < count; ++b) {
      forward(in + b * in_dist, out + b * out_dist);
    }
    return;
  }

  const std::size_t h = n_ / 2;
  const std::size_t bmax = batch_block_lines(h);
  const std::size_t blocks = (count + bmax - 1) / bmax;

  // Blocks stripe across the worker pool; per-thread staging keeps them
  // independent and the fixed bmax partition keeps results bitwise identical
  // at any thread count (see PlanC2C::transform_batch).
  util::ThreadPool::global().parallel_for(
      "fft.r2c.batch", 0, blocks, [&](std::size_t blk) {
        const std::size_t b0 = blk * bmax;
        const std::size_t nb = std::min(bmax, count - b0);
        Complex* stage0 =
            batch_scratch(0, bmax * std::max<std::size_t>(h, 1)).data();
        Complex* stage1 =
            batch_scratch(1, bmax * std::max<std::size_t>(h, 1)).data();
        // Pack adjacent real pairs of every line, batch-innermost.
        Complex* gbuf = eng->prefers_work_input() ? stage1 : stage0;
        for (std::size_t j = 0; j < h; ++j) {
          const Real* col = in + b0 * in_dist + 2 * j;
          Complex* dst = gbuf + j * nb;
          for (std::size_t b = 0; b < nb; ++b) {
            dst[b] = Complex{col[b * in_dist], col[b * in_dist + 1]};
          }
        }
        eng->execute_batch(Direction::Forward, stage0, stage1, nb);
        // Unravel X[k] = A[k] + w^k B[k] across the batch; the zk/zmk
        // columns are contiguous nb-wide runs of the staging buffer.
        for (std::size_t k = 0; k <= h; ++k) {
          const Complex w = omega_[k];
          const Complex* zkc = stage0 + (k == h ? 0 : k) * nb;
          const Complex* zmc = stage0 + ((h - k) % h) * nb;
          Complex* dst = out + b0 * out_dist + k;
          for (std::size_t b = 0; b < nb; ++b) {
            const double zkr = zkc[b].real(), zki = zkc[b].imag();
            const double zmr = zmc[b].real(), zmi = -zmc[b].imag();
            const double ar = 0.5 * (zkr + zmr), ai = 0.5 * (zki + zmi);
            // (zk - zmk) / (2i) == (zk - zmk) * (-i/2)
            const double br = 0.5 * (zki - zmi), bi = -0.5 * (zkr - zmr);
            dst[b * out_dist] = Complex{ar + br * w.real() - bi * w.imag(),
                                        ai + br * w.imag() + bi * w.real()};
          }
        }
      });
}

void PlanR2C::inverse_batch(const Complex* in, std::size_t in_dist, Real* out,
                            std::size_t out_dist, std::size_t count) const {
  const StockhamEngine* eng = n_ % 2 == 0 ? half_->stockham() : nullptr;
  if (!eng) {
    for (std::size_t b = 0; b < count; ++b) {
      inverse(in + b * in_dist, out + b * out_dist);
    }
    return;
  }

  const std::size_t h = n_ / 2;
  const std::size_t bmax = batch_block_lines(h);
  const std::size_t blocks = (count + bmax - 1) / bmax;

  util::ThreadPool::global().parallel_for(
      "fft.r2c.batch", 0, blocks, [&](std::size_t blk) {
        const std::size_t b0 = blk * bmax;
        const std::size_t nb = std::min(bmax, count - b0);
        Complex* stage0 =
            batch_scratch(0, bmax * std::max<std::size_t>(h, 1)).data();
        Complex* stage1 =
            batch_scratch(1, bmax * std::max<std::size_t>(h, 1)).data();
        // Recover the packed half-length spectrum Z[k] = A[k] + i*B[k].
        Complex* gbuf = eng->prefers_work_input() ? stage1 : stage0;
        for (std::size_t k = 0; k < h; ++k) {
          const Complex wb = std::conj(omega_[k]);
          const Complex* xkc = in + b0 * in_dist + k;
          const Complex* xmc = in + b0 * in_dist + (h - k);
          Complex* dst = gbuf + k * nb;
          for (std::size_t b = 0; b < nb; ++b) {
            const double xkr = xkc[b * in_dist].real();
            const double xki = xkc[b * in_dist].imag();
            const double xmr = xmc[b * in_dist].real();
            const double xmi = -xmc[b * in_dist].imag();
            const double ar = 0.5 * (xkr + xmr), ai = 0.5 * (xki + xmi);
            const double dr = 0.5 * (xkr - xmr), di = 0.5 * (xki - xmi);
            const double br = dr * wb.real() - di * wb.imag();
            const double bi = dr * wb.imag() + di * wb.real();
            // Z = a + i*b
            dst[b] = Complex{ar - bi, ai + br};
          }
        }
        eng->execute_batch(Direction::Inverse, stage0, stage1, nb);
        // The half-length unnormalized inverse carries a factor h; the c2r
        // convention wants n = 2h, hence the factor 2.
        for (std::size_t j = 0; j < h; ++j) {
          const Complex* src = stage0 + j * nb;
          Real* col = out + b0 * out_dist + 2 * j;
          for (std::size_t b = 0; b < nb; ++b) {
            col[b * out_dist] = 2.0 * src[b].real();
            col[b * out_dist + 1] = 2.0 * src[b].imag();
          }
        }
      });
}

std::shared_ptr<const PlanR2C> get_plan_r2c(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::shared_ptr<const PlanR2C>> cache;
  std::lock_guard lock(mutex);
  auto& slot = cache[n];
  if (!slot) {
    obs::registry().counter_add("fft.plan_cache.miss");
    obs::log_event(obs::LogLevel::Debug, "fft", "r2c plan cache miss",
                   {{"n", n}});
    slot = std::make_shared<const PlanR2C>(n);
  } else {
    obs::registry().counter_add("fft.plan_cache.hit");
  }
  return slot;
}

}  // namespace psdns::fft
