#pragma once
// Length factorization for the mixed-radix engine.

#include <cstddef>
#include <vector>

namespace psdns::fft {

/// Largest prime factor the specialized/generic butterfly path will accept;
/// lengths with a prime factor above this go through Bluestein's algorithm.
inline constexpr std::size_t kMaxDirectPrime = 19;

/// Factors n into primes, smallest first (e.g. 18432 -> 2^11 * 3^2).
std::vector<std::size_t> prime_factors(std::size_t n);

/// True if all prime factors of n are <= kMaxDirectPrime.
bool is_smooth(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace psdns::fft
