#pragma once
// Real <-> complex 1-D transforms using the half-length complex trick for
// even lengths (the DNS takes complex-to-real transforms in the unit-stride x
// direction, exactly as Sec. 3.3 of the paper describes).
//
// Conventions match FFTW: forward(x) yields the first n/2+1 coefficients of
// the DFT of x; inverse is unnormalized, so inverse(forward(x)) == n * x.

#include <cstddef>
#include <memory>
#include <vector>

#include "fft/plan.hpp"
#include "fft/types.hpp"

namespace psdns::fft {

class PlanR2C {
 public:
  explicit PlanR2C(std::size_t n);

  std::size_t size() const { return n_; }
  std::size_t spectrum_size() const { return n_ / 2 + 1; }

  /// out[k], k in [0, n/2], = sum_j in[j] exp(-2*pi*i*j*k/n). Out-of-place.
  void forward(const Real* in, Complex* out) const;

  /// Inverse of `forward`, unnormalized (result is n * original signal).
  /// Out-of-place; `in` must hold spectrum_size() coefficients.
  void inverse(const Complex* in, Real* out) const;

  /// Batched forward over `count` lines: line b reads n reals starting at
  /// in[b*in_dist] and writes spectrum_size() coefficients starting at
  /// out[b*out_dist]. Even smooth lengths run blocks of lines through the
  /// batched Stockham half-length engine (pack, transform, unravel all
  /// vectorize across the batch); other lengths fall back per line.
  void forward_batch(const Real* in, std::size_t in_dist, Complex* out,
                     std::size_t out_dist, std::size_t count) const;

  /// Batched inverse, same layout contract as forward_batch.
  void inverse_batch(const Complex* in, std::size_t in_dist, Real* out,
                     std::size_t out_dist, std::size_t count) const;

 private:
  std::size_t n_;
  std::shared_ptr<const PlanC2C> half_;  // length n/2 plan (even n)
  std::shared_ptr<const PlanC2C> full_;  // length n fallback (odd n)
  std::vector<Complex> omega_;           // exp(-2*pi*i*k/n), k in [0, n/2]
};

/// Process-wide plan cache for real transforms. Thread-safe.
std::shared_ptr<const PlanR2C> get_plan_r2c(std::size_t n);

}  // namespace psdns::fft
