#pragma once
// Naive O(n^2) reference DFT. Used by tests as the ground truth and by the
// Bluestein path for very small lengths where table setup is not worthwhile.

#include <cstddef>

#include "fft/types.hpp"

namespace psdns::fft {

/// out[k] = sum_j in[j] * exp(-+ 2*pi*i*j*k/n). Out-of-place; in != out.
void dft_reference(Direction dir, std::size_t n, const Complex* in,
                   Complex* out);

}  // namespace psdns::fft
