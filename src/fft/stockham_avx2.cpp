// AVX2+FMA instantiation of the Stockham stage kernels. This translation
// unit is the only one compiled with -mavx2 -mfma (see fft/CMakeLists.txt),
// so a generic x86-64 build still links it and dispatches here at runtime
// when CPUID reports AVX2+FMA (util::simd::active_backend()).

#include "fft/stockham_kernels.hpp"

#if !defined(__AVX2__) || !defined(__FMA__)
#error "stockham_avx2.cpp must be compiled with -mavx2 -mfma"
#endif

namespace psdns::fft::detail {

void run_stage_avx2(const StockhamStage& st, const Complex* tw,
                    const Complex* mat, bool inverse, std::size_t s,
                    std::size_t xs, std::size_t ys, const Complex* x,
                    Complex* y) {
  run_stage_impl<util::simd::Avx2Pack>(st, tw, mat, inverse, s, xs, ys, x, y);
}

void run_stage_tail_avx2(const StockhamStage& st, const Complex* tw,
                         const Complex* mat, bool inverse, std::size_t nb,
                         std::size_t nchunks, std::size_t xs,
                         std::size_t out_stride, const Complex* x,
                         Complex* y) {
  run_stage_tail_impl<util::simd::Avx2Pack>(st, tw, mat, inverse, nb, nchunks,
                                            xs, out_stride, x, y);
}

}  // namespace psdns::fft::detail
