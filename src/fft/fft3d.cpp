#include "fft/fft3d.hpp"

#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "util/check.hpp"

namespace psdns::fft {

void fft3d_c2c(Direction dir, const Shape3& shape, Complex* data) {
  const auto [nx, ny, nz] = shape;
  PSDNS_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "empty shape");
  const auto px = get_plan(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  // x lines: contiguous.
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      Complex* line = data + nx * (j + ny * k);
      px->transform(dir, line, line);
    }
  }
  // y lines: stride nx.
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t i = 0; i < nx; ++i) {
      Complex* line = data + i + nx * ny * k;
      py->transform_strided(dir, line, static_cast<std::ptrdiff_t>(nx), line,
                            static_cast<std::ptrdiff_t>(nx));
    }
  }
  // z lines: stride nx*ny.
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      Complex* line = data + i + nx * j;
      pz->transform_strided(dir, line, static_cast<std::ptrdiff_t>(nx * ny),
                            line, static_cast<std::ptrdiff_t>(nx * ny));
    }
  }
}

void fft3d_r2c(const Shape3& shape, const Real* in, Complex* out) {
  const auto [nx, ny, nz] = shape;
  const std::size_t nxh = nx / 2 + 1;
  const auto prx = get_plan_r2c(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  // Real-to-complex in x.
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      prx->forward(in + nx * (j + ny * k), out + nxh * (j + ny * k));
    }
  }
  // Complex in y, then z, on the reduced grid.
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = out + i + nxh * ny * k;
      py->transform_strided(Direction::Forward, line,
                            static_cast<std::ptrdiff_t>(nxh), line,
                            static_cast<std::ptrdiff_t>(nxh));
    }
  }
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = out + i + nxh * j;
      pz->transform_strided(Direction::Forward, line,
                            static_cast<std::ptrdiff_t>(nxh * ny), line,
                            static_cast<std::ptrdiff_t>(nxh * ny));
    }
  }
}

void fft3d_c2r(const Shape3& shape, const Complex* in, Real* out) {
  const auto [nx, ny, nz] = shape;
  const std::size_t nxh = nx / 2 + 1;
  const auto prx = get_plan_r2c(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  std::vector<Complex> work(in, in + nxh * ny * nz);

  // Inverse order: z, then y, then complex-to-real in x.
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = work.data() + i + nxh * j;
      pz->transform_strided(Direction::Inverse, line,
                            static_cast<std::ptrdiff_t>(nxh * ny), line,
                            static_cast<std::ptrdiff_t>(nxh * ny));
    }
  }
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t i = 0; i < nxh; ++i) {
      Complex* line = work.data() + i + nxh * ny * k;
      py->transform_strided(Direction::Inverse, line,
                            static_cast<std::ptrdiff_t>(nxh), line,
                            static_cast<std::ptrdiff_t>(nxh));
    }
  }
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      prx->inverse(work.data() + nxh * (j + ny * k), out + nx * (j + ny * k));
    }
  }
}

}  // namespace psdns::fft
