#include "fft/fft3d.hpp"

#include <algorithm>

#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::fft {

namespace {

// c2r needs a spectrum-sized working copy (the input is const); hoisted out
// of the call into per-thread scratch so the solver's hot loop never
// allocates.
std::vector<Complex>& c2r_work(std::size_t n) {
  thread_local std::vector<Complex> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

// All three transforms below batch every line family through
// PlanC2C::transform_batch / PlanR2C::*_batch: y lines of one z-plane are
// adjacent in memory (dist 1, stride nx), z lines of the whole volume are
// one arithmetic progression (dist 1, stride nx*ny), and the unit-stride x
// lines batch with dist nx. Each stage carries a scoped timer so span
// capture shows the x/y/z spans of every 3-D transform.

void fft3d_c2c(Direction dir, const Shape3& shape, Complex* data) {
  const auto [nx, ny, nz] = shape;
  PSDNS_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1, "empty shape");
  const auto px = get_plan(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  {
    obs::ScopedTimer timer("fft3d.c2c.x");
    px->transform_batch(dir, data, data,
                        BatchLayout{.count = ny * nz, .stride = 1, .dist = nx});
  }
  {
    obs::ScopedTimer timer("fft3d.c2c.y");
    // z-planes are disjoint, so they stripe across the worker pool; the
    // per-plane transform_batch runs inline inside a stripe (nested
    // parallel_for executes on the calling thread).
    util::ThreadPool::global().parallel_for(
        "fft.3d.y", 0, nz, [&](std::size_t k) {
          Complex* base = data + nx * ny * k;
          py->transform_batch(
              dir, base, base,
              BatchLayout{.count = nx, .stride = nx, .dist = 1});
        });
  }
  {
    obs::ScopedTimer timer("fft3d.c2c.z");
    pz->transform_batch(
        dir, data, data,
        BatchLayout{.count = nx * ny, .stride = nx * ny, .dist = 1});
  }
}

void fft3d_r2c(const Shape3& shape, const Real* in, Complex* out) {
  const auto [nx, ny, nz] = shape;
  const std::size_t nxh = nx / 2 + 1;
  const auto prx = get_plan_r2c(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  {
    obs::ScopedTimer timer("fft3d.r2c.x");
    prx->forward_batch(in, nx, out, nxh, ny * nz);
  }
  {
    obs::ScopedTimer timer("fft3d.r2c.y");
    util::ThreadPool::global().parallel_for(
        "fft.3d.y", 0, nz, [&](std::size_t k) {
          Complex* base = out + nxh * ny * k;
          py->transform_batch(
              Direction::Forward, base, base,
              BatchLayout{.count = nxh, .stride = nxh, .dist = 1});
        });
  }
  {
    obs::ScopedTimer timer("fft3d.r2c.z");
    pz->transform_batch(
        Direction::Forward, out, out,
        BatchLayout{.count = nxh * ny, .stride = nxh * ny, .dist = 1});
  }
}

void fft3d_c2r(const Shape3& shape, const Complex* in, Real* out) {
  const auto [nx, ny, nz] = shape;
  const std::size_t nxh = nx / 2 + 1;
  const auto prx = get_plan_r2c(nx);
  const auto py = get_plan(ny);
  const auto pz = get_plan(nz);

  auto& work = c2r_work(nxh * ny * nz);
  std::copy(in, in + static_cast<std::ptrdiff_t>(nxh * ny * nz), work.begin());

  // Inverse order: z, then y, then complex-to-real in x.
  {
    obs::ScopedTimer timer("fft3d.c2r.z");
    pz->transform_batch(
        Direction::Inverse, work.data(), work.data(),
        BatchLayout{.count = nxh * ny, .stride = nxh * ny, .dist = 1});
  }
  {
    obs::ScopedTimer timer("fft3d.c2r.y");
    util::ThreadPool::global().parallel_for(
        "fft.3d.y", 0, nz, [&](std::size_t k) {
          Complex* base = work.data() + nxh * ny * k;
          py->transform_batch(
              Direction::Inverse, base, base,
              BatchLayout{.count = nxh, .stride = nxh, .dist = 1});
        });
  }
  {
    obs::ScopedTimer timer("fft3d.c2r.x");
    prx->inverse_batch(work.data(), nxh, out, nx, ny * nz);
  }
}

}  // namespace psdns::fft
