#pragma once
// Recursive decimation-in-time mixed-radix complex FFT core.
//
// Handles any length whose prime factors are all <= kMaxDirectPrime (the DNS
// uses N rich in factors of 2 and divisible by 3, exactly like the paper's
// 18432 = 2^11 * 3^2). Other lengths are served by the Bluestein wrapper.
//
// The transform reads a (possibly strided) input sequence and writes a
// contiguous output sequence; the combine step is in-place within the output
// buffer, so no auxiliary workspace is required.

#include <cstddef>
#include <utility>
#include <vector>

#include "fft/types.hpp"

namespace psdns::fft {

class MixedRadixEngine {
 public:
  /// Requires is_smooth(n).
  explicit MixedRadixEngine(std::size_t n);

  std::size_t size() const { return n_; }

  /// out[k] = sum_j in[j*in_stride] * exp(-+ 2*pi*i*j*k/n).
  /// `out` must not alias the input sequence.
  void execute(Direction dir, const Complex* in, std::ptrdiff_t in_stride,
               Complex* out) const;

 private:
  void recurse(bool inverse, std::size_t n, const std::size_t* factor,
               const Complex* x, std::ptrdiff_t xs, Complex* y) const;

  Complex tw(bool inverse, std::size_t index) const {
    const Complex w = twiddle_[index];
    return inverse ? Complex{w.real(), -w.imag()} : w;
  }

  const Complex* radix_row(std::size_t r, std::size_t k2) const;

  std::size_t n_;
  std::vector<std::size_t> factors_;
  std::vector<Complex> twiddle_;  // twiddle_[j] = exp(-2*pi*i*j/n)
  // Per distinct generic radix r (not 2/4): the r x r DFT matrix
  // w_r^{q*k2}, so the combine loop does no modular index arithmetic.
  std::vector<std::pair<std::size_t, std::vector<Complex>>> radix_dft_;
};

}  // namespace psdns::fft
