#pragma once
// Stage kernel bodies for the Stockham engine, written once as templates
// over a SIMD pack type (util::simd::ScalarPack / Avx2Pack) and instantiated
// per backend in their own translation units: stockham.cpp (scalar, plain
// flags) and stockham_avx2.cpp (-mavx2 -mfma). Each butterfly is spelled as
// a generic lambda over the pack type; sweep() runs it once for the full
// packs and once more (scalar) for an odd batch remainder, so the vector
// main loop and the tail share one body. With P = ScalarPack the remainder
// call compiles away and the arithmetic is exactly the pre-SIMD scalar path.
//
// The lambda receives a [q0, q1) range rather than a single index so that
// loop-invariant twiddle broadcasts hoist naturally: each instantiation
// broadcasts its constants once, then iterates. (Leaving the q loop outside
// the typed body makes GCC spill the 6+ broadcast registers of the radix-4
// butterfly and re-broadcast from the stack every iteration.)
//
// Internal header: include only from the stockham kernel translation units.

#include <cstddef>

#include "fft/factor.hpp"
#include "fft/stockham.hpp"
#include "fft/types.hpp"
#include "util/simd.hpp"

// The stage buffers never alias each other (ping-pong pair) nor the twiddle
// tables; saying so lets the compiler keep broadcast twiddles in registers
// across the batch sweep instead of reloading them after every store.
#if defined(__GNUC__) || defined(__clang__)
#define PSDNS_RESTRICT __restrict__
#else
#define PSDNS_RESTRICT
#endif

namespace psdns::fft::detail {

// Twiddles are stored in the forward (exp(-i)) convention; the inverse
// transform conjugates them outside the batch loops.
inline Complex pick_tw(bool inverse, Complex w) {
  return inverse ? Complex{w.real(), -w.imag()} : w;
}

template <class P>
void run_stage_impl(const StockhamStage& st, const Complex* PSDNS_RESTRICT tw,
                    const Complex* PSDNS_RESTRICT mat, bool inverse,
                    std::size_t s, std::size_t xs, std::size_t ys,
                    const Complex* PSDNS_RESTRICT x,
                    Complex* PSDNS_RESTRICT y) {
  using util::simd::ScalarPack;
  const std::size_t m = st.m;

  // Runs `body(pack_tag, q0, q1)` over [0, s): one full-pack range, then a
  // scalar-tail range for odd batch remainders (compiled out when P is
  // scalar). The body loops q0..q1 itself in steps of the pack width.
  const std::size_t main = s - s % P::width;
  const auto sweep = [s, main](auto&& body) {
    if (main != 0) body(P{}, std::size_t{0}, main);
    if constexpr (P::width > 1) {
      if (main != s) body(ScalarPack{}, main, s);
    }
  };

  if (st.radix == 2) {
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w = pick_tw(inverse, tw[p]);
      const Complex* xa = x + xs * p;
      const Complex* xb = x + xs * (p + m);
      Complex* ya = y + ys * (2 * p);
      Complex* yb = ya + ys;
      sweep([=](auto tag, std::size_t q0, std::size_t q1) {
        using Q = decltype(tag);
        const Q wr = Q::broadcast(w.real()), wi = Q::broadcast(w.imag());
        for (std::size_t q = q0; q < q1; q += Q::width) {
          const Q a = Q::load(xa + q);
          const Q b = Q::load(xb + q);
          (a + b).store(ya + q);
          (a - b).cmul(wr, wi).store(yb + q);
        }
      });
    }
    return;
  }

  if (st.radix == 4) {
    // Forward: w_4 = -i, so X1/X3 = (a-c) -+ i(b-d). The inverse flips the
    // sign of the odd-term rotation, which is the same butterfly with the
    // b and d inputs exchanged -- so swap the pointers instead of carrying a
    // sign multiply through the inner loop.
    const std::size_t ob = inverse ? 3 : 1;
    const std::size_t od = inverse ? 1 : 3;
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w1 = pick_tw(inverse, tw[3 * p]);
      const Complex w2 = pick_tw(inverse, tw[3 * p + 1]);
      const Complex w3 = pick_tw(inverse, tw[3 * p + 2]);
      const Complex* xa = x + xs * p;
      const Complex* xb = x + xs * (p + ob * m);
      const Complex* xc = x + xs * (p + 2 * m);
      const Complex* xd = x + xs * (p + od * m);
      Complex* y0 = y + ys * (4 * p);
      Complex* y1 = y0 + ys;
      Complex* y2 = y1 + ys;
      Complex* y3 = y2 + ys;
      sweep([=](auto tag, std::size_t q0, std::size_t q1) {
        using Q = decltype(tag);
        const Q w1r = Q::broadcast(w1.real()), w1i = Q::broadcast(w1.imag());
        const Q w2r = Q::broadcast(w2.real()), w2i = Q::broadcast(w2.imag());
        const Q w3r = Q::broadcast(w3.real()), w3i = Q::broadcast(w3.imag());
        const Complex* PSDNS_RESTRICT pa = xa;
        const Complex* PSDNS_RESTRICT pb = xb;
        const Complex* PSDNS_RESTRICT pc = xc;
        const Complex* PSDNS_RESTRICT pd = xd;
        Complex* PSDNS_RESTRICT o0 = y0;
        Complex* PSDNS_RESTRICT o1 = y1;
        Complex* PSDNS_RESTRICT o2 = y2;
        Complex* PSDNS_RESTRICT o3 = y3;
        for (std::size_t q = q0; q < q1; q += Q::width) {
          const Q a = Q::load(pa + q);
          const Q b = Q::load(pb + q);
          const Q c = Q::load(pc + q);
          const Q d = Q::load(pd + q);
          const Q ac = a + c;
          const Q amc = a - c;
          const Q bd = b + d;
          const Q u = (b - d).mul_neg_i();
          (ac + bd).store(o0 + q);
          (amc + u).cmul(w1r, w1i).store(o1 + q);
          (ac - bd).cmul(w2r, w2i).store(o2 + q);
          (amc - u).cmul(w3r, w3i).store(o3 + q);
        }
      });
    }
    return;
  }

  if (st.radix == 3) {
    // X1/X2 = (a - (b+c)/2) -+ i*(sqrt(3)/2)*(b-c) in the forward direction.
    const double h = inverse ? -0.8660254037844386 : 0.8660254037844386;
    for (std::size_t p = 0; p < m; ++p) {
      const Complex w1 = pick_tw(inverse, tw[2 * p]);
      const Complex w2 = pick_tw(inverse, tw[2 * p + 1]);
      const Complex* xa = x + xs * p;
      const Complex* xb = x + xs * (p + m);
      const Complex* xc = x + xs * (p + 2 * m);
      Complex* y0 = y + ys * (3 * p);
      Complex* y1 = y0 + ys;
      Complex* y2 = y1 + ys;
      sweep([=](auto tag, std::size_t q0, std::size_t q1) {
        using Q = decltype(tag);
        const Q w1r = Q::broadcast(w1.real()), w1i = Q::broadcast(w1.imag());
        const Q w2r = Q::broadcast(w2.real()), w2i = Q::broadcast(w2.imag());
        const Q mh = Q::broadcast(-0.5);
        const Q hp = Q::broadcast(h);
        const Q hn = Q::broadcast(-h);
        for (std::size_t q = q0; q < q1; q += Q::width) {
          const Q a = Q::load(xa + q);
          const Q b = Q::load(xb + q);
          const Q c = Q::load(xc + q);
          const Q t = b + c;
          const Q u = (b - c).mul_neg_i();
          (a + t).store(y0 + q);
          const Q e = a.add_scaled(t, mh);
          e.add_scaled(u, hp).cmul(w1r, w1i).store(y1 + q);
          e.add_scaled(u, hn).cmul(w2r, w2i).store(y2 + q);
        }
      });
    }
    return;
  }

  // Generic radix: per output j, fold the stage twiddle into the radix-r DFT
  // row once, then stream the batch accumulating r scaled loads. The
  // broadcast coefficient packs live outside the q loop; for small r they
  // stay in registers, for larger r they spill as full packs (a plain load
  // per use instead of a broadcast).
  const std::size_t r = st.radix;
  for (std::size_t p = 0; p < m; ++p) {
    const Complex* twrow = tw + p * (r - 1);
    const Complex* xp = x + xs * p;
    for (std::size_t j = 0; j < r; ++j) {
      Complex coef[kMaxDirectPrime];
      const Complex wj =
          j == 0 ? Complex{1.0, 0.0} : pick_tw(inverse, twrow[j - 1]);
      for (std::size_t q2 = 0; q2 < r; ++q2) {
        coef[q2] = pick_tw(inverse, mat[j * r + q2]) * wj;
      }
      Complex* yj = y + ys * (r * p + j);
      sweep([=](auto tag, std::size_t q0, std::size_t q1) {
        using Q = decltype(tag);
        Q cr[kMaxDirectPrime];
        Q ci[kMaxDirectPrime];
        for (std::size_t q2 = 0; q2 < r; ++q2) {
          cr[q2] = Q::broadcast(coef[q2].real());
          ci[q2] = Q::broadcast(coef[q2].imag());
        }
        for (std::size_t q = q0; q < q1; q += Q::width) {
          Q acc = Q::zero();
          for (std::size_t q2 = 0; q2 < r; ++q2) {
            acc = acc.axpy(Q::load(xp + q + xs * (m * q2)), cr[q2], ci[q2]);
          }
          acc.store(yj + q);
        }
      });
    }
  }
}

// Final-stage kernel for execute_batch_plane: the last stage (st.m == 1)
// writes its r output rows as `nchunks` runs of `nb` contiguous user
// elements each. Keeping the chunk loop inside the template lets the
// compiler inline the stage body and hoist the (single) twiddle row's
// broadcasts across all chunks instead of redoing them per call.
template <class P>
void run_stage_tail_impl(const StockhamStage& st,
                         const Complex* PSDNS_RESTRICT tw,
                         const Complex* PSDNS_RESTRICT mat, bool inverse,
                         std::size_t nb, std::size_t nchunks, std::size_t xs,
                         std::size_t out_stride,
                         const Complex* PSDNS_RESTRICT x,
                         Complex* PSDNS_RESTRICT y) {
  for (std::size_t c = 0; c < nchunks; ++c) {
    run_stage_impl<P>(st, tw, mat, inverse, nb, xs, out_stride * nchunks,
                      x + c * nb, y + out_stride * c);
  }
}

}  // namespace psdns::fft::detail
