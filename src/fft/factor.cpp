#include "fft/factor.hpp"

#include "util/check.hpp"

namespace psdns::fft {

std::vector<std::size_t> prime_factors(std::size_t n) {
  PSDNS_REQUIRE(n >= 1, "factorization needs n >= 1");
  std::vector<std::size_t> factors;
  for (std::size_t p = 2; p * p <= n; p += (p == 2 ? 1 : 2)) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

bool is_smooth(std::size_t n) {
  for (const std::size_t p : prime_factors(n)) {
    if (p > kMaxDirectPrime) return false;
  }
  return true;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace psdns::fft
