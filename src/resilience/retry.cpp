#include "resilience/retry.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "util/rng.hpp"

namespace psdns::resilience {

double backoff_delay_s(const RetryPolicy& policy, int attempt) {
  PSDNS_REQUIRE(attempt >= 1, "attempt is 1-based");
  const double base =
      policy.base_delay_s * std::pow(policy.backoff, attempt - 1);
  // Stream id = attempt: the k-th retry of a given policy always draws the
  // same jitter, independent of anything retried before it.
  util::Rng rng(policy.seed, static_cast<std::uint64_t>(attempt));
  return base * (1.0 + policy.jitter * rng.uniform());
}

void sleep_s(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace psdns::resilience
