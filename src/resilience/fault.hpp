#pragma once
// Deterministic, seeded fault injection: the drill harness that proves the
// recovery machinery (hardened checkpoints, retry policies, the campaign
// supervisor) actually works. Production runs on Summit-class machines see
// node failures and job kills as routine events; reproducing them on demand
// is the only way to test the reaction paths.
//
// A *fault plan* is a list of (site, call-index, kind) triples armed process
// wide, either programmatically or from the PSDNS_FAULT_PLAN environment
// variable:
//
//   PSDNS_FAULT_PLAN="comm.alltoall@12=throw;io.ckpt.write@0=short_write"
//
// Sites are fixed names compiled into the hooked subsystems (see
// known_sites()). The call index is 0-based and counted PER THREAD: in the
// SPMD communicator every rank thread executes the same call sequence, so a
// plan entry fires on every rank at the same logical point - which is
// exactly what keeps collectives from deadlocking when the fault is thrown.
// Each plan entry fires at most once per thread (one-shot), so a recovered
// replay does not re-trip the same fault.
//
// Fault kinds:
//   throw       - the hook throws InjectedFault.
//   short_write - IO sites produce a truncated artifact / read; data-movement
//                 sites copy fewer elements than asked (silent truncation).
//   bit_flip    - flips one bit of the payload (silent corruption; detected
//                 downstream by the checkpoint CRCs).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace psdns::resilience {

enum class FaultKind { Throw, ShortWrite, BitFlip };

const char* to_string(FaultKind kind);

/// Injection-site names (the registry every hook and plan entry refers to).
namespace site {
inline constexpr const char* comm_alltoall = "comm.alltoall";
inline constexpr const char* ckpt_write = "io.ckpt.write";
inline constexpr const char* ckpt_read = "io.ckpt.read";
inline constexpr const char* gpu_memcpy2d = "gpu.memcpy2d";
}  // namespace site

/// All site names a plan may reference, in a stable order.
const std::vector<std::string>& known_sites();

struct FaultSpec {
  std::string site;
  std::int64_t call = 0;  // 0-based per-thread call index at which to fire
  FaultKind kind = FaultKind::Throw;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  /// Parses "site@call=kind[;site@call=kind...]" (',' also separates
  /// entries; whitespace around tokens is ignored; the empty string is the
  /// empty plan). Unknown sites, kinds, or malformed entries throw
  /// util::Error - a typo'd drill must not silently run fault-free.
  static FaultPlan parse(const std::string& text);

  /// Round-trips through parse().
  std::string to_string() const;
};

/// Thrown by hooks when a plan entry of kind `throw` fires.
class InjectedFault : public util::Error {
 public:
  InjectedFault(std::string fault_site, FaultKind kind,
                std::source_location loc = std::source_location::current())
      : util::Error("injected fault at site " + fault_site + " (" +
                        resilience::to_string(kind) + ")",
                    loc),
        site_(std::move(fault_site)),
        kind_(kind) {}

  const std::string& site() const { return site_; }
  FaultKind kind() const { return kind_; }

 private:
  std::string site_;
  FaultKind kind_;
};

/// Arms `plan` process-wide, resetting every thread's call counters and
/// one-shot state. An empty plan is equivalent to disarm().
void arm(FaultPlan plan);

/// Arms the plan in PSDNS_FAULT_PLAN if the variable is set (throws on a
/// malformed value); no-op otherwise. Returns true when a plan was armed.
bool arm_from_env();

void disarm();
bool armed();

/// Called by subsystem hooks: counts one call of `site` on this thread and
/// returns the fault kind if an armed entry fires at this index. Cheap
/// (one relaxed atomic load) while disarmed. Increments the
/// `fault.injected` and `fault.injected.<site>` counters when firing.
std::optional<FaultKind> poll(const char* fault_site);

/// poll(); any firing kind throws InjectedFault. For sites where partial or
/// corrupt completion has no meaningful functional model.
void maybe_throw(const char* fault_site);

/// RAII plan for tests and drills: arms on construction, disarms on scope
/// exit.
class ScopedPlan {
 public:
  explicit ScopedPlan(const std::string& text) { arm(FaultPlan::parse(text)); }
  explicit ScopedPlan(FaultPlan plan) { arm(std::move(plan)); }
  ~ScopedPlan() { disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace psdns::resilience
