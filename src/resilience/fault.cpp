#include "resilience/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/log.hpp"
#include "obs/registry.hpp"

namespace psdns::resilience {

namespace {

struct Global {
  std::mutex mutex;
  FaultPlan plan;
  std::uint64_t generation = 0;  // bumped on every arm()
};

Global& global() {
  static Global g;
  return g;
}

// 0 = disarmed; otherwise the generation of the armed plan. Hooks read this
// without the mutex so the disarmed hot path costs one relaxed load.
std::atomic<std::uint64_t> g_armed_generation{0};

// Per-thread call counters and one-shot fired flags, lazily reset when the
// armed generation changes. Per-thread counting is what makes SPMD rank
// threads fire symmetrically (every rank's k-th call trips the same entry),
// so a thrown fault unwinds all ranks at the same collective point instead
// of deadlocking the barrier.
struct ThreadState {
  std::uint64_t generation = 0;
  std::map<std::string, std::int64_t> counts;
  std::vector<bool> fired;
};

thread_local ThreadState t_state;

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

FaultKind parse_kind(const std::string& name, const std::string& entry) {
  if (name == "throw") return FaultKind::Throw;
  if (name == "short_write" || name == "shortwrite") {
    return FaultKind::ShortWrite;
  }
  if (name == "bit_flip" || name == "bitflip") return FaultKind::BitFlip;
  util::raise("unknown fault kind '" + name + "' in plan entry '" + entry +
              "' (expected throw, short_write, or bit_flip)");
}

bool is_known_site(const std::string& s) {
  for (const auto& k : known_sites()) {
    if (k == s) return true;
  }
  return false;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Throw:
      return "throw";
    case FaultKind::ShortWrite:
      return "short_write";
    case FaultKind::BitFlip:
      return "bit_flip";
  }
  return "?";
}

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      site::comm_alltoall, site::ckpt_write, site::ckpt_read,
      site::gpu_memcpy2d};
  return sites;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::string entry;
  // Accept both ';' and ',' as separators by normalising first.
  std::string normalised = text;
  for (auto& c : normalised) {
    if (c == ',') c = ';';
  }
  std::stringstream in(normalised);
  while (std::getline(in, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const auto at = entry.find('@');
    const auto eq = entry.find('=', at == std::string::npos ? 0 : at);
    PSDNS_REQUIRE(at != std::string::npos && eq != std::string::npos &&
                      at > 0 && eq > at + 1 && eq + 1 < entry.size(),
                  "malformed fault plan entry '" + entry +
                      "' (expected site@call=kind)");
    FaultSpec spec;
    spec.site = trim(entry.substr(0, at));
    PSDNS_REQUIRE(is_known_site(spec.site),
                  "unknown fault injection site '" + spec.site +
                      "' in plan entry '" + entry + "'");
    const std::string index = trim(entry.substr(at + 1, eq - at - 1));
    try {
      std::size_t used = 0;
      spec.call = std::stoll(index, &used);
      PSDNS_REQUIRE(used == index.size() && spec.call >= 0,
                    "bad call index in plan entry '" + entry + "'");
    } catch (const std::logic_error&) {
      util::raise("bad call index '" + index + "' in plan entry '" + entry +
                  "'");
    }
    spec.kind = parse_kind(trim(entry.substr(eq + 1)), entry);
    plan.faults.push_back(std::move(spec));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& f : faults) {
    if (!out.empty()) out += ";";
    out += f.site + "@" + std::to_string(f.call) + "=" +
           resilience::to_string(f.kind);
  }
  return out;
}

void arm(FaultPlan plan) {
  auto& g = global();
  std::lock_guard lock(g.mutex);
  g.plan = std::move(plan);
  ++g.generation;
  g_armed_generation.store(g.plan.empty() ? 0 : g.generation,
                           std::memory_order_release);
  if (!g.plan.empty()) {
    obs::log_event(obs::LogLevel::Info, "resilience", "fault plan armed",
                   {{"plan", g.plan.to_string()}});
  }
}

bool arm_from_env() {
  const char* text = std::getenv("PSDNS_FAULT_PLAN");
  if (text == nullptr || *text == '\0') return false;
  arm(FaultPlan::parse(text));
  return true;
}

void disarm() {
  auto& g = global();
  std::lock_guard lock(g.mutex);
  g.plan = FaultPlan{};
  ++g.generation;
  g_armed_generation.store(0, std::memory_order_release);
}

bool armed() {
  return g_armed_generation.load(std::memory_order_acquire) != 0;
}

std::optional<FaultKind> poll(const char* fault_site) {
  const std::uint64_t gen =
      g_armed_generation.load(std::memory_order_acquire);
  if (gen == 0) return std::nullopt;  // disarmed hot path

  auto& g = global();
  std::lock_guard lock(g.mutex);
  if (g.generation != gen || g.plan.empty()) return std::nullopt;
  if (t_state.generation != gen) {
    t_state.generation = gen;
    t_state.counts.clear();
    t_state.fired.assign(g.plan.faults.size(), false);
  }
  const std::int64_t index = t_state.counts[fault_site]++;
  for (std::size_t i = 0; i < g.plan.faults.size(); ++i) {
    const auto& spec = g.plan.faults[i];
    if (t_state.fired[i] || spec.site != fault_site || spec.call != index) {
      continue;
    }
    t_state.fired[i] = true;
    obs::registry().counter_add("fault.injected");
    obs::registry().counter_add(std::string("fault.injected.") + fault_site);
    obs::log_event(obs::LogLevel::Warn, "resilience", "fault injected",
                   {{"site", fault_site},
                    {"call", index},
                    {"kind", resilience::to_string(spec.kind)}});
    return spec.kind;
  }
  return std::nullopt;
}

void maybe_throw(const char* fault_site) {
  if (const auto kind = poll(fault_site)) {
    throw InjectedFault(fault_site, *kind);
  }
}

}  // namespace psdns::resilience
