#include "resilience/crc32c.hpp"

namespace psdns::resilience {

namespace {

struct Crc32cTable {
  std::uint32_t entry[256];
  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      entry[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t prior) {
  static const Crc32cTable table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~prior;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table.entry[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace psdns::resilience
