#pragma once
// Bounded retry with exponential backoff and deterministic jitter, applied
// to checkpoint IO (and any other transient-failure-prone operation). The
// jitter is drawn from a seeded counter-based stream so two runs of the same
// campaign sleep the same amount - reproducibility extends to the recovery
// path, which is what lets the fault drill assert bitwise-identical results.

#include <cstdint>
#include <string>

#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::resilience {

struct RetryPolicy {
  int max_attempts = 3;        // total tries, including the first
  double base_delay_s = 1e-3;  // delay before the first retry
  double backoff = 2.0;        // delay multiplier per further retry
  double jitter = 0.5;         // adds [0, jitter) * delay, deterministically
  std::uint64_t seed = 0xC0FFEEULL;
};

/// Delay before retry `attempt` (1-based: the sleep after the attempt-th
/// failure). Deterministic in (policy, attempt).
double backoff_delay_s(const RetryPolicy& policy, int attempt);

/// Sleeps the calling thread (split out for testability of the pure delay).
void sleep_s(double seconds);

/// Runs `fn`, retrying on any std::exception up to policy.max_attempts
/// total attempts; the last failure is rethrown. Each retry increments the
/// `resilience.retries` counter and logs a warn event naming `what`.
template <class Fn>
auto with_retry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  PSDNS_REQUIRE(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const std::exception& e) {
      if (attempt >= policy.max_attempts) throw;
      obs::registry().counter_add("resilience.retries");
      const double delay = backoff_delay_s(policy, attempt);
      obs::log_event(obs::LogLevel::Warn, "resilience", "retrying",
                     {{"what", what},
                      {"attempt", attempt},
                      {"max_attempts", policy.max_attempts},
                      {"delay_s", delay},
                      {"error", e.what()}});
      sleep_s(delay);
    }
  }
}

}  // namespace psdns::resilience
