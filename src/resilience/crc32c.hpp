#pragma once
// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum used for checkpoint section integrity. Chosen over CRC32 for its
// better error-detection properties on long burst patterns and because it is
// what production storage stacks (ext4 metadata, iSCSI, RocksDB) standardise
// on, so file dumps can be cross-checked with external tools.

#include <cstddef>
#include <cstdint>

namespace psdns::resilience {

/// One-shot or incremental CRC32C. Chain sections by feeding the previous
/// result back in: crc = crc32c(p2, n2, crc32c(p1, n1)).
std::uint32_t crc32c(const void* data, std::size_t bytes,
                     std::uint32_t prior = 0);

}  // namespace psdns::resilience
