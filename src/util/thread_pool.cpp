#include "util/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "util/arena.hpp"
#include "util/check.hpp"

namespace psdns::util {

thread_local int ThreadPool::t_depth = 0;

ThreadPool::ThreadPool(int threads) {
  PSDNS_REQUIRE(threads >= 1 && threads <= kMaxThreads,
                "thread pool width out of range");
  threads_ = threads;
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

ThreadPool& ThreadPool::global() {
  // Touch the arena first so its singleton outlives the pool: worker
  // threads hold thread_local arena Handles that release their blocks back
  // into the arena when the workers join during the pool's destruction.
  WorkspaceArena::global();
  static ThreadPool pool(env_threads());
  return pool;
}

int ThreadPool::env_threads() {
  const char* env = std::getenv("PSDNS_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  PSDNS_REQUIRE(end != env && *end == '\0' && v >= 1 && v <= kMaxThreads,
                "PSDNS_THREADS must be an integer in [1, 256]");
  return static_cast<int>(v);
}

void ThreadPool::start_workers() {
  next_.assign(static_cast<std::size_t>(threads_ - 1), seq_);
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
  next_.clear();
  stop_ = false;
}

void ThreadPool::set_threads(int threads) {
  PSDNS_REQUIRE(threads >= 1 && threads <= kMaxThreads,
                "thread pool width out of range");
  {
    // Drain: every submitted job has cleared its ring slot.
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [this] {
      for (const Job* j : ring_) {
        if (j != nullptr) return false;
      }
      return true;
    });
  }
  stop_workers();
  threads_ = threads;
  start_workers();
}

int ThreadPool::stage_index(const char* name) {
  // Called under mutex_. Fixed table of string-literal stage labels; linear
  // scan is fine at this granularity (one lookup per threaded job).
  const int n = nstages_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (stages_[i].name == name || std::strcmp(stages_[i].name, name) == 0) {
      return i;
    }
  }
  if (n >= kMaxStages) return -1;
  stages_[n].name = name;
  nstages_.store(n + 1, std::memory_order_release);
  return n;
}

void ThreadPool::run_job(const char* stage, std::size_t begin,
                         std::size_t end, TaskFn fn, void* ctx) {
  Job job;
  job.fn = fn;
  job.ctx = ctx;
  job.begin = begin;
  job.end = end;
  job.nstripes = threads_;
  job.remaining.store(threads_, std::memory_order_relaxed);
  {
    std::unique_lock lock(mutex_);
    job.stage = stage_index(stage);
    cv_done_.wait(lock, [this] { return ring_[seq_ % kRing] == nullptr; });
    job.slot = seq_ % kRing;
    ring_[job.slot] = &job;
    ++seq_;
  }
  cv_work_.notify_all();
  run_stripe(job, 0);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&job] {
      return job.remaining.load(std::memory_order_acquire) == 0;
    });
    if (job.error) std::rethrow_exception(job.error);
  }
  jobs_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::run_stripe(Job& job, int stripe) {
  const auto t0 = std::chrono::steady_clock::now();
  ++t_depth;
  try {
    for (std::size_t i = job.begin + static_cast<std::size_t>(stripe);
         i < job.end; i += static_cast<std::size_t>(job.nstripes)) {
      job.fn(job.ctx, i);
    }
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (stripe < job.error_stripe) {
      job.error_stripe = stripe;
      job.error = std::current_exception();
    }
  }
  --t_depth;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  busy_ns_.fetch_add(ns, std::memory_order_relaxed);
  if (job.stage >= 0) {
    stages_[job.stage].busy_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  stripes_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot the slot before the final decrement: once remaining hits 0 the
  // submitter may wake and destroy the (stack-allocated) Job.
  const std::size_t slot = job.slot;
  if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(mutex_);
      ring_[slot] = nullptr;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_main(int widx) {
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [this, widx] {
      return stop_ || next_[static_cast<std::size_t>(widx)] < seq_;
    });
    if (stop_) return;
    const std::uint64_t myseq = next_[static_cast<std::size_t>(widx)]++;
    // The slot cannot have been recycled: this worker's stripe is part of
    // the job's remaining count, so the job cannot complete (and the slot
    // cannot clear) before this stripe runs.
    Job* job = ring_[myseq % kRing];
    lock.unlock();
    run_stripe(*job, widx + 1);
    lock.lock();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats out;
  out.jobs = jobs_.load(std::memory_order_relaxed);
  out.stripes = stripes_.load(std::memory_order_relaxed);
  out.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  const int n = nstages_.load(std::memory_order_acquire);
  out.stages.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.stages.push_back(
        {stages_[i].name,
         static_cast<double>(
             stages_[i].busy_ns.load(std::memory_order_relaxed)) *
             1e-9});
  }
  return out;
}

}  // namespace psdns::util
