#include "util/arena.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace psdns::util {

std::size_t WorkspaceArena::bucket_bytes(std::size_t bytes) {
  return std::bit_ceil(std::max<std::size_t>(bytes, 256));
}

void* WorkspaceArena::acquire(std::size_t bytes, std::size_t* bucket_out) {
  const std::size_t bucket = bucket_bytes(bytes);
  *bucket_out = bucket;
  std::lock_guard lock(mutex_);
  auto it = free_.find(bucket);
  if (it != free_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    ++stats_.hits;
    stats_.outstanding_bytes += bucket;
    return p;
  }
  // Bucket sizes are powers of two >= 256, so the aligned_alloc size
  // requirement (a multiple of the alignment) holds by construction.
  void* p = std::aligned_alloc(kAlignment, bucket);
  PSDNS_REQUIRE(p != nullptr, "workspace arena allocation failed");
  ++stats_.misses;
  stats_.resident_bytes += bucket;
  stats_.outstanding_bytes += bucket;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.resident_bytes);
  return p;
}

void WorkspaceArena::release(void* ptr, std::size_t bucket) {
  std::lock_guard lock(mutex_);
  free_[bucket].push_back(ptr);
  stats_.outstanding_bytes -= bucket;
}

WorkspaceArena::Stats WorkspaceArena::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void WorkspaceArena::trim() {
  std::lock_guard lock(mutex_);
  for (auto& [bucket, blocks] : free_) {
    for (void* p : blocks) {
      std::free(p);
      stats_.resident_bytes -= bucket;
    }
    blocks.clear();
  }
}

WorkspaceArena::~WorkspaceArena() { trim(); }

WorkspaceArena& WorkspaceArena::global() {
  // Function-local static: constructed on first use and destroyed after
  // the main thread's thread_local handles (FFT scratch) have returned
  // their blocks ([basic.start.term]).
  static WorkspaceArena arena;
  return arena;
}

}  // namespace psdns::util
