#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace psdns::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PSDNS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PSDNS_REQUIRE(cells.size() == headers_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace psdns::util
