#pragma once
// Process-wide workspace arena: a size-bucketed pool of 64-byte aligned
// blocks with RAII checkout/return handles. Every steady-state scratch
// buffer in the hot path (RK substage fields, FFT plan scratch, transpose
// pack/unpack staging, async-pipeline host buffers) draws from this pool,
// so a warmed-up solver step performs zero heap allocations and the pool's
// high-water mark is the measured counterpart of the paper's Table 1
// memory-footprint model.
//
// Blocks are bucketed by rounding the request up to a power of two (floor
// 256 bytes), so a returned block satisfies any later request of a similar
// size regardless of which subsystem made it. checkout() takes a mutex;
// Handle::ensure() rechecks its cached capacity first, so the per-call cost
// in a warmed-up loop is a branch, not a lock.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

namespace psdns::util {

class WorkspaceArena {
 public:
  struct Stats {
    std::size_t peak_bytes = 0;      // high-water mark of bytes owned
    std::size_t resident_bytes = 0;  // bytes currently owned (free + out)
    std::size_t outstanding_bytes = 0;  // bytes currently checked out
    std::int64_t hits = 0;    // checkouts served from the free lists
    std::int64_t misses = 0;  // checkouts that had to allocate
  };

  /// RAII checkout. Returns its block to the owning arena on destruction.
  /// Default-constructed handles are empty and bind to the global arena on
  /// the first ensure().
  template <class T>
  class Handle {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena blocks hold raw trivially-copyable storage");

   public:
    Handle() = default;
    Handle(Handle&& o) noexcept { swap(o); }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        reset();
        swap(o);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    T* data() const { return ptr_; }
    /// Usable element count (the full bucket, >= the requested count).
    std::size_t size() const { return count_; }
    bool empty() const { return ptr_ == nullptr; }
    T& operator[](std::size_t i) const { return ptr_[i]; }
    std::span<T> span() const { return {ptr_, count_}; }

    /// Guarantees capacity for `count` elements, checking a larger block
    /// out of the arena (and returning the old one) when needed. Contents
    /// are NOT preserved or zeroed across a regrow.
    void ensure(std::size_t count) {
      if (count_ >= count) return;
      WorkspaceArena* a = arena_ ? arena_ : &global();
      reset();
      *this = a->checkout<T>(count);
    }

    /// Returns the block to the arena and empties the handle.
    void reset() {
      if (ptr_ != nullptr) {
        arena_->release(ptr_, bucket_);
        ptr_ = nullptr;
        count_ = 0;
        bucket_ = 0;
      }
    }

   private:
    friend class WorkspaceArena;
    Handle(WorkspaceArena* arena, T* ptr, std::size_t count,
           std::size_t bucket)
        : arena_(arena), ptr_(ptr), count_(count), bucket_(bucket) {}

    void swap(Handle& o) noexcept {
      std::swap(arena_, o.arena_);
      std::swap(ptr_, o.ptr_);
      std::swap(count_, o.count_);
      std::swap(bucket_, o.bucket_);
    }

    WorkspaceArena* arena_ = nullptr;
    T* ptr_ = nullptr;
    std::size_t count_ = 0;
    std::size_t bucket_ = 0;  // bucket size in bytes
  };

  WorkspaceArena() = default;
  ~WorkspaceArena();
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Checks out a block holding at least `count` elements of T
  /// (uninitialized storage, 64-byte aligned).
  template <class T>
  Handle<T> checkout(std::size_t count) {
    std::size_t bucket = 0;
    void* p = acquire(count * sizeof(T), &bucket);
    return Handle<T>(this, static_cast<T*>(p), bucket / sizeof(T), bucket);
  }

  Stats stats() const;

  /// Frees every block on the free lists (checked-out blocks are
  /// unaffected). Shrinks resident_bytes; peak_bytes keeps its high-water
  /// mark.
  void trim();

  /// The process-wide arena all library scratch draws from.
  static WorkspaceArena& global();

  /// Bucket a request of `bytes` lands in: the next power of two, floored
  /// at 256 bytes.
  static std::size_t bucket_bytes(std::size_t bytes);

 private:
  void* acquire(std::size_t bytes, std::size_t* bucket_out);
  void release(void* ptr, std::size_t bucket);

  mutable std::mutex mutex_;
  std::map<std::size_t, std::vector<void*>> free_;
  Stats stats_;
};

}  // namespace psdns::util
