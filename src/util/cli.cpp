#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "util/check.hpp"

namespace psdns::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.contains(name); }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace psdns::util
