#pragma once
// Portable SIMD wrapper for the batch-innermost FFT hot path.
//
// Two interchangeable "pack" types implement the same tiny complex-arithmetic
// vocabulary over interleaved std::complex<double> storage: ScalarPack (one
// complex per op, always available) and Avx2Pack (two complexes per __m256d,
// FMA). Kernels are written once as templates over the pack type; the AVX2
// instantiation lives in its own translation unit compiled with -mavx2 -mfma
// (see src/fft/stockham_avx2.cpp), so one binary carries both bodies and
// picks at runtime via CPUID. Backend selection order: set_backend() >
// PSDNS_SIMD env (auto|scalar|avx2) > CPUID autodetect.
//
// Avx2Pack is only *defined* in TUs compiled with AVX2+FMA enabled (the
// dedicated kernel TU, or everything under -march=native); the dispatch
// query below works everywhere.

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace psdns::util::simd {

enum class Backend { Scalar = 0, Avx2 = 1 };

inline const char* to_string(Backend b) {
  return b == Backend::Avx2 ? "avx2" : "scalar";
}

/// True when the build carries the AVX2 kernel translation unit at all
/// (x86-64 and the compiler accepted -mavx2 -mfma).
inline bool avx2_compiled() {
#if defined(PSDNS_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

/// True when both the binary and the running CPU can execute the AVX2+FMA
/// kernels.
inline bool avx2_supported() {
#if defined(PSDNS_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace detail {

inline std::atomic<int>& backend_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

inline Backend detect_backend() {
  const char* env = std::getenv("PSDNS_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (std::strcmp(env, "scalar") == 0) return Backend::Scalar;
    PSDNS_REQUIRE(std::strcmp(env, "avx2") == 0,
                  "PSDNS_SIMD must be auto, scalar or avx2");
    PSDNS_REQUIRE(avx2_supported(),
                  "PSDNS_SIMD=avx2 but this build/CPU has no AVX2+FMA path");
    return Backend::Avx2;
  }
  return avx2_supported() ? Backend::Avx2 : Backend::Scalar;
}

}  // namespace detail

/// The backend batched kernels dispatch to. Resolved once (env + CPUID) on
/// first use; set_backend() overrides it at any time.
inline Backend active_backend() {
  auto& slot = detail::backend_slot();
  int v = slot.load(std::memory_order_relaxed);
  if (v < 0) {
    int expected = -1;
    slot.compare_exchange_strong(expected,
                                 static_cast<int>(detail::detect_backend()),
                                 std::memory_order_relaxed);
    v = slot.load(std::memory_order_relaxed);
  }
  return static_cast<Backend>(v);
}

/// Forces the dispatched backend (tests compare the two kernels directly).
inline void set_backend(Backend b) {
  PSDNS_REQUIRE(b == Backend::Scalar || avx2_supported(),
                "cannot force the AVX2 backend: unsupported build or CPU");
  detail::backend_slot().store(static_cast<int>(b),
                               std::memory_order_relaxed);
}

/// One interleaved complex<double>. The reference semantics every other
/// backend must match (up to FMA rounding).
struct ScalarPack {
  static constexpr std::size_t width = 1;

  double re = 0.0;
  double im = 0.0;

  static ScalarPack zero() { return {}; }
  /// Both lanes = s. Used to hoist twiddle components out of batch sweeps.
  static ScalarPack broadcast(double s) { return {s, s}; }
  static ScalarPack load(const std::complex<double>* p) {
    return {p->real(), p->imag()};
  }
  void store(std::complex<double>* p) const { *p = {re, im}; }

  friend ScalarPack operator+(ScalarPack a, ScalarPack b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend ScalarPack operator-(ScalarPack a, ScalarPack b) {
    return {a.re - b.re, a.im - b.im};
  }

  /// this * (wr + i*wi)
  ScalarPack cmul(double wr, double wi) const {
    return {re * wr - im * wi, re * wi + im * wr};
  }
  /// cmul with pre-broadcast twiddle components (same arithmetic).
  ScalarPack cmul(ScalarPack wr, ScalarPack wi) const {
    return cmul(wr.re, wi.re);
  }
  /// this * (-i)
  ScalarPack mul_neg_i() const { return {im, -re}; }
  /// this + s*u  (real scale)
  ScalarPack add_scaled(ScalarPack u, double s) const {
    return {re + s * u.re, im + s * u.im};
  }
  ScalarPack add_scaled(ScalarPack u, ScalarPack s) const {
    return add_scaled(u, s.re);
  }
  /// this + x * (wr + i*wi)
  ScalarPack axpy(ScalarPack x, double wr, double wi) const {
    return {re + (x.re * wr - x.im * wi), im + (x.re * wi + x.im * wr)};
  }
  ScalarPack axpy(ScalarPack x, ScalarPack wr, ScalarPack wi) const {
    return axpy(x, wr.re, wi.re);
  }
};

#if defined(__AVX2__) && defined(__FMA__)

/// Two interleaved complex<double> in one __m256d: (re0, im0, re1, im1).
struct Avx2Pack {
  static constexpr std::size_t width = 2;

  __m256d v;

  static Avx2Pack zero() { return {_mm256_setzero_pd()}; }
  static Avx2Pack broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static Avx2Pack load(const std::complex<double>* p) {
    return {_mm256_loadu_pd(reinterpret_cast<const double*>(p))};
  }
  void store(std::complex<double>* p) const {
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
  }

  friend Avx2Pack operator+(Avx2Pack a, Avx2Pack b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2Pack operator-(Avx2Pack a, Avx2Pack b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }

  Avx2Pack cmul(double wr, double wi) const {
    return cmul(broadcast(wr), broadcast(wi));
  }

  /// cmul with pre-broadcast twiddle components: callers hoist the two
  /// broadcasts out of the batch sweep so the loop body is permute+mul+fma.
  Avx2Pack cmul(Avx2Pack wr, Avx2Pack wi) const {
    // (re*wr - im*wi, im*wr + re*wi): fmaddsub subtracts in the even
    // (real) lanes and adds in the odd (imag) lanes.
    const __m256d sw = _mm256_permute_pd(v, 0x5);  // (im0, re0, im1, re1)
    return {_mm256_fmaddsub_pd(v, wr.v, _mm256_mul_pd(sw, wi.v))};
  }

  Avx2Pack mul_neg_i() const {
    // (re, im) -> (im, -re): swap within each complex, flip the odd lanes.
    const __m256d sw = _mm256_permute_pd(v, 0x5);
    return {_mm256_xor_pd(sw, _mm256_set_pd(-0.0, 0.0, -0.0, 0.0))};
  }

  Avx2Pack add_scaled(Avx2Pack u, double s) const {
    return add_scaled(u, broadcast(s));
  }

  Avx2Pack add_scaled(Avx2Pack u, Avx2Pack s) const {
    return {_mm256_fmadd_pd(u.v, s.v, v)};
  }

  Avx2Pack axpy(Avx2Pack x, double wr, double wi) const {
    return axpy(x, broadcast(wr), broadcast(wi));
  }

  Avx2Pack axpy(Avx2Pack x, Avx2Pack wr, Avx2Pack wi) const {
    const __m256d sw = _mm256_permute_pd(x.v, 0x5);
    const __m256d xw = _mm256_fmaddsub_pd(x.v, wr.v, _mm256_mul_pd(sw, wi.v));
    return {_mm256_add_pd(v, xw)};
  }
};

#endif  // __AVX2__ && __FMA__

}  // namespace psdns::util::simd
