#pragma once
// Persistent worker pool for intra-rank loop parallelism (the OpenMP layer
// of the paper's hybrid MPI+OpenMP+CUDA stack, mapped onto our thread-rank
// comm layer). PSDNS_THREADS picks the width (default 1: every parallel_for
// runs inline on the caller, so single-thread behavior is bit-for-bit the
// pre-pool code path).
//
// Determinism and the arena contract shape the design:
//   * Static striping with a fixed stripe->thread binding: stripe 0 always
//     runs on the submitting thread, stripe t > 0 always on worker t-1.
//     Which thread computes which indices is therefore a pure function of
//     (loop bounds, thread count) — never of scheduling luck — so
//     thread_local arena scratch warms deterministically and a warmed hot
//     path stays allocation-free (proven by tests/alloc_test.cpp).
//   * Jobs are a function pointer + context pointer into the caller's
//     stack frame, queued in a fixed ring: submitting a job performs no
//     heap allocation.
//   * parallel_for nested inside a running parallel_for (any participant)
//     executes inline: the outermost loop owns the pool.
//
// Workers execute jobs strictly in submission order and never block inside
// a stripe, so concurrent submitters (the thread-per-rank communicator)
// cannot deadlock; they just interleave their jobs through the same pool.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace psdns::util {

class ThreadPool {
 public:
  using TaskFn = void (*)(void* ctx, std::size_t index);

  /// Width 1: everything inline, no worker threads.
  ThreadPool() : ThreadPool(1) {}
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, sized from PSDNS_THREADS on first use.
  static ThreadPool& global();

  /// PSDNS_THREADS (default 1, clamped to [1, kMaxThreads]).
  static int env_threads();

  int threads() const { return threads_; }

  /// Drains in-flight jobs, then resizes the pool (tests and benches; not
  /// meant for the hot path).
  void set_threads(int threads);

  /// Runs f(i) for every i in [begin, end), striped across the pool. The
  /// caller participates (stripe 0) and returns only when every index has
  /// run; the first exception (lowest stripe) is rethrown. `stage` labels
  /// the busy-time accounting (string literal; see stats()).
  template <class F>
  void parallel_for(const char* stage, std::size_t begin, std::size_t end,
                    F&& f) {
    if (end <= begin) return;
    if (threads_ <= 1 || t_depth > 0 || end - begin == 1) {
      ++t_depth;
      struct Depth {
        ~Depth() { --t_depth; }
      } depth_guard;
      for (std::size_t i = begin; i < end; ++i) f(i);
      return;
    }
    run_job(
        stage, begin, end,
        [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); }, &f);
  }

  /// Runs f(slot) exactly once on every pool thread: slot 0 on the caller,
  /// slot t > 0 on worker t-1. Used to prepare per-thread state (arena
  /// warm-up, allocation-tracking opt-in) on the exact threads the striped
  /// loops will use.
  template <class F>
  void for_each_thread(F&& f) {
    parallel_for("pool.for_each_thread", 0,
                 static_cast<std::size_t>(threads_), std::forward<F>(f));
  }

  struct StageBusy {
    const char* name = nullptr;
    double busy_seconds = 0.0;
  };
  struct Stats {
    std::int64_t jobs = 0;     // threaded parallel_for calls completed
    std::int64_t stripes = 0;  // stripe executions across all jobs
    double busy_seconds = 0.0;  // sum over stripes (caller + workers)
    std::vector<StageBusy> stages;
  };
  Stats stats() const;

  static constexpr int kMaxThreads = 256;

 private:
  struct Job {
    TaskFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    int nstripes = 0;
    int stage = -1;           // index into stage busy table
    std::size_t slot = 0;     // ring slot, cleared by the last stripe
    std::atomic<int> remaining{0};
    std::exception_ptr error;     // guarded by pool mutex
    int error_stripe = kMaxThreads + 1;  // lowest stripe's exception wins
  };

  void run_job(const char* stage, std::size_t begin, std::size_t end,
               TaskFn fn, void* ctx);
  void run_stripe(Job& job, int stripe);
  void worker_main(int widx);
  void start_workers();
  void stop_workers();
  int stage_index(const char* name);

  static thread_local int t_depth;  // >0 while inside any parallel_for

  static constexpr std::size_t kRing = 64;
  static constexpr int kMaxStages = 32;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  // workers: new job or stop
  std::condition_variable cv_done_;  // submitters: stripe done / slot free
  std::vector<std::thread> workers_;
  int threads_ = 1;
  bool stop_ = false;

  Job* ring_[kRing] = {};
  std::uint64_t seq_ = 0;            // jobs submitted so far
  std::vector<std::uint64_t> next_;  // per-worker next sequence to claim

  struct StageSlot {
    const char* name = nullptr;
    std::atomic<std::uint64_t> busy_ns{0};
  };
  StageSlot stages_[kMaxStages];
  std::atomic<int> nstages_{0};
  std::atomic<std::int64_t> jobs_{0};
  std::atomic<std::int64_t> stripes_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace psdns::util
