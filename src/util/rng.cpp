#include "util/rng.hpp"

#include <cmath>

namespace psdns::util {

double Rng::gaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_ = v * mul;
  have_cached_ = true;
  return u * mul;
}

}  // namespace psdns::util
