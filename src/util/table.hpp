#pragma once
// Fixed-width text table used by the bench harnesses to print rows in the
// same layout as the paper's tables.

#include <string>
#include <vector>

namespace psdns::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with column-aligned cells and a header separator.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psdns::util
