#include "util/format.hpp"

#include <cmath>
#include <cstdio>

namespace psdns::util {

namespace {
std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}
}  // namespace

std::string format_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= 1e9) return printf_str("%.2f GB", bytes / 1e9);
  if (abs >= 1e6) return printf_str("%.2f MB", bytes / 1e6);
  if (abs >= 1e3) return printf_str("%.1f KB", bytes / 1e3);
  return printf_str("%.0f B", bytes);
}

std::string format_fixed(double value, int decimals) {
  char fmt[16];
  std::snprintf(fmt, sizeof fmt, "%%.%df", decimals);
  return printf_str(fmt, value);
}

std::string format_problem(std::int64_t n) {
  return std::to_string(n) + "^3";
}

std::string format_time(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return printf_str("%.2f s", seconds);
  if (abs >= 1e-3) return printf_str("%.2f ms", seconds * 1e3);
  if (abs >= 1e-6) return printf_str("%.2f us", seconds * 1e6);
  return printf_str("%.1f ns", seconds * 1e9);
}

}  // namespace psdns::util
