#pragma once
// Minimal key = value configuration files for the production driver:
// comments with '#', blank lines ignored, values are raw strings with
// typed accessors. Unknown keys can be enumerated so drivers can reject
// typos instead of silently ignoring them.

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace psdns::util {

class Config {
 public:
  static Config from_string(const std::string& text);
  static Config from_file(const std::string& path);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the file but never read through any accessor; call
  /// after parsing a config to reject misspelled options.
  std::set<std::string> unused_keys() const;

  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> touched_;
};

}  // namespace psdns::util
