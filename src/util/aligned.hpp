#pragma once
// Cache-line / SIMD aligned storage. DNS fields and FFT work buffers use
// 64-byte alignment so that the innermost (unit-stride) dimension vectorizes.

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace psdns::util {

inline constexpr std::size_t kAlignment = 64;

/// Minimal standard allocator returning 64-byte aligned memory.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes =
        ((n * sizeof(T) + kAlignment - 1) / kAlignment) * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace psdns::util
