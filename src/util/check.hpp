#pragma once
// Error handling primitives used across psdns.
//
// PSDNS_REQUIRE  - precondition/argument validation; always on.
// PSDNS_CHECK    - internal invariant check; always on (the library is not
//                  performance-bound by these paths).
// psdns::util::Error - exception carrying a formatted message and location.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace psdns::util {

/// Exception thrown by all psdns validation failures.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what, std::source_location loc)
      : std::runtime_error(format(what, loc)) {}

 private:
  static std::string format(const std::string& what, std::source_location loc) {
    std::ostringstream os;
    os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name()
       << "): " << what;
    return os.str();
  }
};

[[noreturn]] inline void raise(const std::string& msg,
                               std::source_location loc =
                                   std::source_location::current()) {
  throw Error(msg, loc);
}

}  // namespace psdns::util

#define PSDNS_REQUIRE(cond, msg)                            \
  do {                                                      \
    if (!(cond)) {                                          \
      ::psdns::util::raise(std::string("requirement `" #cond \
                                       "` failed: ") +      \
                           (msg));                          \
    }                                                       \
  } while (false)

#define PSDNS_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::psdns::util::raise(std::string("invariant `" #cond "` violated: ") + \
                           (msg));                                          \
    }                                                                       \
  } while (false)
