#pragma once
// Deterministic, seedable random number generation.
//
// DNS initial conditions and synthetic workloads must be reproducible across
// runs and independent of the number of worker threads, so every consumer
// derives its own counter-based stream from a (seed, stream-id) pair instead
// of sharing a global engine.

#include <cstdint>

namespace psdns::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both directly and to
/// seed per-stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** with per-stream seeding; supports uniform and Gaussian draws.
class Rng {
 public:
  /// Streams derived from the same seed but different ids are independent.
  explicit Rng(std::uint64_t seed, std::uint64_t stream_id = 0) {
    SplitMix64 sm(seed ^ (0xA5A5A5A55A5A5A5AULL * (stream_id + 1)));
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace psdns::util
