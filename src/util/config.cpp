#include "util/config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace psdns::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Config Config::from_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const auto eq = stripped.find('=');
    PSDNS_REQUIRE(eq != std::string::npos,
                  "config line " + std::to_string(lineno) +
                      " is not 'key = value': " + stripped);
    const std::string key = trim(stripped.substr(0, eq));
    PSDNS_REQUIRE(!key.empty(), "config line " + std::to_string(lineno) +
                                    " has an empty key");
    cfg.values_[key] = trim(stripped.substr(eq + 1));
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  PSDNS_REQUIRE(in.good(), "cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(buf.str());
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Config::get(const std::string& key,
                        const std::string& fallback) const {
  touched_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  touched_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoll(it->second.c_str(), &end, 10);
  PSDNS_REQUIRE(end != it->second.c_str() && *end == '\0',
                "config key '" + key + "' is not an integer: " + it->second);
  return v;
}

double Config::get_double(const std::string& key, double fallback) const {
  touched_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PSDNS_REQUIRE(end != it->second.c_str() && *end == '\0',
                "config key '" + key + "' is not a number: " + it->second);
  return v;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  touched_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  PSDNS_REQUIRE(false, "config key '" + key + "' is not a boolean: " + v);
  return fallback;
}

std::set<std::string> Config::unused_keys() const {
  std::set<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (!touched_.contains(key)) unused.insert(key);
  }
  return unused;
}

}  // namespace psdns::util
