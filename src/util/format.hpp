#pragma once
// Human-readable formatting helpers for bench/report output.

#include <cstdint>
#include <string>

namespace psdns::util {

/// "12.0 MB", "1.90 GB", "53 KB" - binary prefixes are NOT used; the paper
/// reports sizes in decimal MB/GB, so we match that convention.
std::string format_bytes(double bytes);

/// "36.5" style fixed formatting with the given number of decimals.
std::string format_fixed(double value, int decimals);

/// "12288^3" style problem-size label.
std::string format_problem(std::int64_t n);

/// Seconds with adaptive precision: "14.24 s", "870 ms", "53 us".
std::string format_time(double seconds);

}  // namespace psdns::util
