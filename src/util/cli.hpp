#pragma once
// Minimal command-line flag parsing for examples: --name=value or --flag.

#include <cstdint>
#include <map>
#include <string>

namespace psdns::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace psdns::util
