#pragma once
// Fluid-flow bandwidth model with max-min fair sharing.
//
// Links represent shared bandwidth resources (a POWER9 socket's memory bus,
// an NVLink bundle, a NIC). A flow pushes a byte count along a path of links;
// its instantaneous rate is its max-min fair share, additionally capped by a
// per-flow rate limit. Rates are recomputed whenever a flow starts or ends,
// which is what lets the model reproduce the paper's observation that
// CPU<->GPU traffic and MPI traffic sharing the host memory bus slow each
// other down (Sec. 5.2).

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace psdns::sim {

using LinkId = std::size_t;
using FlowId = std::uint64_t;

class FlowNetwork {
 public:
  explicit FlowNetwork(Engine& engine) : engine_(engine) {}

  /// Adds a link with `capacity` bytes/second.
  LinkId add_link(std::string name, double capacity);

  double link_capacity(LinkId id) const { return links_.at(id).capacity; }
  const std::string& link_name(LinkId id) const { return links_.at(id).name; }

  /// Starts a flow of `bytes` along `path` (may be empty: then the flow is
  /// only bounded by `rate_cap`). `on_complete` fires on the engine when the
  /// last byte drains.
  ///
  /// `klass` groups flows for interference modeling; a flow with
  /// `interference_factor` < 1 has its rate cap multiplied by that factor
  /// whenever a flow of an aggressor class (see set_interference) is active
  /// on any of its links. This models DMA engines degrading each other
  /// beyond what fair bandwidth sharing captures (e.g. NIC injection
  /// suffering while NVLink transfers hammer the host memory controllers,
  /// paper Sec. 5.2).
  FlowId start_flow(const std::vector<LinkId>& path, double bytes,
                    double rate_cap, std::function<void()> on_complete,
                    int klass = 0, double interference_factor = 1.0);

  /// Declares that active flows of `aggressor_klass` degrade flows of
  /// `victim_klass` (by each victim's own interference_factor).
  void set_interference(int victim_klass, int aggressor_klass);

  /// Current fair-share rate of an active flow (0 if finished).
  double flow_rate(FlowId id) const;

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct Link {
    std::string name;
    double capacity;
  };
  struct Flow {
    std::vector<LinkId> path;
    double remaining;
    double cap;
    double rate = 0.0;
    std::function<void()> on_complete;
    int klass = 0;
    double interference_factor = 1.0;
  };

  double effective_cap(const Flow& flow) const;

  void advance_to_now();
  void reallocate();
  void schedule_next_completion();

  Engine& engine_;
  std::vector<Link> links_;
  std::unordered_map<FlowId, Flow> flows_;
  std::vector<std::pair<int, int>> interference_;  // (victim, aggressor)
  FlowId next_flow_ = 1;
  SimTime last_update_ = 0.0;
  std::uint64_t generation_ = 0;  // invalidates stale completion events
};

}  // namespace psdns::sim
