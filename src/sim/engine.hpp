#pragma once
// Discrete-event simulation engine: a simulated clock and an ordered event
// queue. Everything in the Summit performance model (GPU streams, NVLink
// transfers, MPI all-to-alls) executes on this clock, so runs are exactly
// reproducible and instantaneous in wall time regardless of simulated scale.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace psdns::sim {

using SimTime = double;  // seconds of simulated time

class Engine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute simulated time `t` (>= now). Events at equal
  /// times fire in scheduling order (stable).
  void schedule_at(SimTime t, Callback cb);

  void schedule_after(SimTime dt, Callback cb) {
    schedule_at(now_ + dt, std::move(cb));
  }

  /// Processes one event; returns false if the queue is empty.
  bool step();

  /// Runs until the event queue drains.
  void run();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace psdns::sim
