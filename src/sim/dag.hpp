#pragma once
// DAG runner: executes a graph of operations on the discrete-event engine.
//
// Lanes give CUDA-stream semantics: operations added to the same lane are
// implicitly ordered by insertion (issue) order, exactly like work queued to
// a CUDA stream or to a single CPU thread. Explicit dependencies model CUDA
// events / MPI_WAIT edges across lanes. Two op flavors exist:
//   - fixed ops: a precomputed duration (e.g. an FFT kernel),
//   - flow ops: a byte count moved through the FlowNetwork (e.g. an NVLink
//     copy or an all-to-all), whose duration emerges from bandwidth sharing.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/flow_network.hpp"
#include "sim/trace.hpp"

namespace psdns::sim {

struct OpId {
  std::size_t index = static_cast<std::size_t>(-1);
  bool valid() const { return index != static_cast<std::size_t>(-1); }
};

using LaneId = std::size_t;

class DagRunner {
 public:
  DagRunner(Engine& engine, FlowNetwork& network)
      : engine_(engine), network_(network) {}

  LaneId add_lane(std::string name);

  /// Fixed-duration op. `overhead` is serial launch overhead charged on the
  /// lane before the op body (models API call / kernel launch latency).
  OpId add_op(std::string label, LaneId lane, OpCategory category,
              double duration, const std::vector<OpId>& deps,
              double overhead = 0.0);

  /// Bandwidth-shaped op: moves `bytes` through `path` at a max-min fair
  /// rate capped at `rate_cap`. The lane is blocked for the flow duration.
  OpId add_flow_op(std::string label, LaneId lane, OpCategory category,
                   double bytes, const std::vector<LinkId>& path,
                   double rate_cap, const std::vector<OpId>& deps,
                   double overhead = 0.0, int flow_class = 0,
                   double interference_factor = 1.0);

  /// Runs the whole DAG to completion; returns the makespan (finish time of
  /// the last op). Can only be called once.
  SimTime run();

  SimTime start_time(OpId id) const { return ops_.at(id.index).record.start; }
  SimTime finish_time(OpId id) const {
    return ops_.at(id.index).record.finish;
  }

  /// Trace of all executed ops, in issue order.
  const std::vector<OpRecord> records() const;

 private:
  struct Op {
    OpRecord record;
    LaneId lane;
    double duration = 0.0;  // fixed ops
    double bytes = -1.0;    // >= 0 marks a flow op
    std::vector<LinkId> path;
    double rate_cap = 0.0;
    double overhead = 0.0;
    int flow_class = 0;
    double interference_factor = 1.0;
    std::vector<std::size_t> deps;
    std::vector<std::size_t> dependents;
    std::size_t unmet = 0;
    bool started = false;
    bool finished = false;
  };

  void try_start(std::size_t index);
  void on_finished(std::size_t index);

  Engine& engine_;
  FlowNetwork& network_;
  std::vector<Op> ops_;
  std::vector<std::string> lane_names_;
  std::vector<OpId> lane_tail_;  // last op issued to each lane
  std::size_t unfinished_ = 0;
  bool ran_ = false;
};

}  // namespace psdns::sim
