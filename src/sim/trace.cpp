#include "sim/trace.hpp"

#include <algorithm>

namespace psdns::sim {

const char* to_string(OpCategory c) {
  switch (c) {
    case OpCategory::H2D:
      return "H2D";
    case OpCategory::D2H:
      return "D2H";
    case OpCategory::Compute:
      return "Compute";
    case OpCategory::Unpack:
      return "Unpack";
    case OpCategory::Mpi:
      return "MPI";
    case OpCategory::Cpu:
      return "CPU";
    case OpCategory::Wait:
      return "Wait";
    case OpCategory::Other:
      return "Other";
  }
  return "?";
}

double total_time(const std::vector<OpRecord>& records, OpCategory category) {
  double sum = 0.0;
  for (const auto& r : records) {
    if (r.category == category) sum += r.duration();
  }
  return sum;
}

double busy_time(const std::vector<OpRecord>& records, OpCategory category) {
  // Zero-length ops contribute no busy time; dropping them here also keeps
  // them from seeding a bogus merge interval.
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const auto& r : records) {
    if (r.category == category && r.finish > r.start) {
      spans.emplace_back(r.start, r.finish);
    }
  }
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end());
  // Sweep the sorted spans, merging overlapping AND back-to-back touching
  // intervals (s == cur_end) so shared endpoints are not double-counted.
  // No sentinel start value: the first span seeds the merge interval, so
  // spans at negative times are handled like any other.
  double busy = 0.0;
  SimTime cur_start = spans.front().first;
  SimTime cur_end = spans.front().second;
  for (const auto& [s, e] : spans) {
    if (s > cur_end) {
      busy += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  busy += cur_end - cur_start;
  return busy;
}

}  // namespace psdns::sim
