#include "sim/trace.hpp"

#include <algorithm>

namespace psdns::sim {

const char* to_string(OpCategory c) {
  switch (c) {
    case OpCategory::H2D:
      return "H2D";
    case OpCategory::D2H:
      return "D2H";
    case OpCategory::Compute:
      return "Compute";
    case OpCategory::Unpack:
      return "Unpack";
    case OpCategory::Mpi:
      return "MPI";
    case OpCategory::Cpu:
      return "CPU";
    case OpCategory::Wait:
      return "Wait";
    case OpCategory::Other:
      return "Other";
  }
  return "?";
}

double total_time(const std::vector<OpRecord>& records, OpCategory category) {
  double sum = 0.0;
  for (const auto& r : records) {
    if (r.category == category) sum += r.duration();
  }
  return sum;
}

double busy_time(const std::vector<OpRecord>& records, OpCategory category) {
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const auto& r : records) {
    if (r.category == category && r.finish > r.start) {
      spans.emplace_back(r.start, r.finish);
    }
  }
  std::sort(spans.begin(), spans.end());
  double busy = 0.0;
  SimTime cur_start = 0.0, cur_end = -1.0;
  for (const auto& [s, e] : spans) {
    if (s > cur_end) {
      if (cur_end > cur_start) busy += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (cur_end > cur_start) busy += cur_end - cur_start;
  return busy;
}

}  // namespace psdns::sim
