#include "sim/flow_network.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace psdns::sim {

namespace {
constexpr double kEps = 1e-12;
}

LinkId FlowNetwork::add_link(std::string name, double capacity) {
  PSDNS_REQUIRE(capacity > 0.0, "link capacity must be positive");
  links_.push_back(Link{std::move(name), capacity});
  return links_.size() - 1;
}

void FlowNetwork::set_interference(int victim_klass, int aggressor_klass) {
  interference_.emplace_back(victim_klass, aggressor_klass);
}

double FlowNetwork::effective_cap(const Flow& flow) const {
  if (flow.interference_factor >= 1.0) return flow.cap;
  for (const auto& [victim, aggressor] : interference_) {
    if (flow.klass != victim) continue;
    for (const auto& [id, other] : flows_) {
      if (other.klass != aggressor || &other == &flow) continue;
      for (const LinkId mine : flow.path) {
        for (const LinkId theirs : other.path) {
          if (mine == theirs) return flow.cap * flow.interference_factor;
        }
      }
    }
  }
  return flow.cap;
}

FlowId FlowNetwork::start_flow(const std::vector<LinkId>& path, double bytes,
                               double rate_cap,
                               std::function<void()> on_complete, int klass,
                               double interference_factor) {
  PSDNS_REQUIRE(bytes >= 0.0, "flow size must be non-negative");
  PSDNS_REQUIRE(rate_cap > 0.0, "flow rate cap must be positive");
  for (const LinkId l : path) {
    PSDNS_REQUIRE(l < links_.size(), "unknown link in flow path");
  }

  advance_to_now();
  const FlowId id = next_flow_++;
  if (bytes <= kEps) {
    // Degenerate flow: completes immediately (still asynchronously, to keep
    // callback ordering uniform).
    engine_.schedule_after(0.0, std::move(on_complete));
    return id;
  }
  flows_.emplace(id, Flow{path, bytes, rate_cap, 0.0, std::move(on_complete),
                          klass, interference_factor});
  reallocate();
  schedule_next_completion();
  return id;
}

double FlowNetwork::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::advance_to_now() {
  const SimTime t = engine_.now();
  const double dt = t - last_update_;
  if (dt > 0.0) {
    for (auto& [id, f] : flows_) {
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  }
  last_update_ = t;
}

void FlowNetwork::reallocate() {
  // Progressive filling (water-filling) for max-min fairness with per-flow
  // caps: repeatedly freeze the most constrained flows at their bottleneck
  // rate and subtract their share from every link they traverse.
  std::vector<double> residual(links_.size());
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].capacity;
  }
  std::vector<int> load(links_.size(), 0);
  std::vector<FlowId> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    f.rate = 0.0;
    unfrozen.push_back(id);
    for (const LinkId l : f.path) ++load[l];
  }

  while (!unfrozen.empty()) {
    // Tentative rate for each unfrozen flow: min over its links of the
    // current equal share, also bounded by its cap.
    double min_rate = std::numeric_limits<double>::infinity();
    for (const FlowId id : unfrozen) {
      const Flow& f = flows_.at(id);
      double r = effective_cap(f);
      for (const LinkId l : f.path) {
        r = std::min(r, residual[l] / static_cast<double>(load[l]));
      }
      min_rate = std::min(min_rate, r);
    }
    PSDNS_CHECK(std::isfinite(min_rate) && min_rate > 0.0,
                "water-filling produced a non-positive rate");

    // Freeze every flow whose bottleneck equals the global minimum.
    std::vector<FlowId> still;
    still.reserve(unfrozen.size());
    for (const FlowId id : unfrozen) {
      Flow& f = flows_.at(id);
      double r = effective_cap(f);
      for (const LinkId l : f.path) {
        r = std::min(r, residual[l] / static_cast<double>(load[l]));
      }
      if (r <= min_rate * (1.0 + 1e-9)) {
        f.rate = min_rate;
        for (const LinkId l : f.path) {
          residual[l] -= min_rate;
          --load[l];
        }
      } else {
        still.push_back(id);
      }
    }
    PSDNS_CHECK(still.size() < unfrozen.size(),
                "water-filling failed to make progress");
    unfrozen.swap(still);
  }
}

void FlowNetwork::schedule_next_completion() {
  if (flows_.empty()) return;
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.rate > 0.0) dt = std::min(dt, f.remaining / f.rate);
  }
  PSDNS_CHECK(std::isfinite(dt), "active flows but no positive rates");

  const std::uint64_t gen = ++generation_;
  engine_.schedule_after(dt, [this, gen] {
    if (gen != generation_) return;  // superseded by a newer reallocation
    advance_to_now();
    std::vector<std::function<void()>> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining <= 1e-6 * it->second.rate + kEps) {
        done.push_back(std::move(it->second.on_complete));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    reallocate();
    schedule_next_completion();
    for (auto& cb : done) cb();
  });
}

}  // namespace psdns::sim
