#include "sim/engine.hpp"

#include "util/check.hpp"

namespace psdns::sim {

void Engine::schedule_at(SimTime t, Callback cb) {
  PSDNS_REQUIRE(t >= now_ - 1e-12, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires a const_cast on the top element;
  // copy the small struct instead (Callback copy is cheap relative to the
  // model work it triggers).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ev.cb();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace psdns::sim
