#include "sim/dag.hpp"

#include "util/check.hpp"

namespace psdns::sim {

LaneId DagRunner::add_lane(std::string name) {
  lane_names_.push_back(std::move(name));
  lane_tail_.push_back(OpId{});
  return lane_names_.size() - 1;
}

OpId DagRunner::add_op(std::string label, LaneId lane, OpCategory category,
                       double duration, const std::vector<OpId>& deps,
                       double overhead) {
  PSDNS_REQUIRE(!ran_, "cannot add ops after run()");
  PSDNS_REQUIRE(lane < lane_names_.size(), "unknown lane");
  PSDNS_REQUIRE(duration >= 0.0, "negative duration");

  Op op;
  op.record.label = std::move(label);
  op.record.lane = lane_names_[lane];
  op.record.category = category;
  op.lane = lane;
  op.duration = duration;
  op.overhead = overhead;

  // Implicit in-lane ordering (stream semantics) plus explicit deps.
  if (lane_tail_[lane].valid()) op.deps.push_back(lane_tail_[lane].index);
  for (const OpId d : deps) {
    PSDNS_REQUIRE(d.valid() && d.index < ops_.size(), "unknown dependency");
    op.deps.push_back(d.index);
  }

  const std::size_t index = ops_.size();
  ops_.push_back(std::move(op));
  lane_tail_[lane] = OpId{index};
  return OpId{index};
}

OpId DagRunner::add_flow_op(std::string label, LaneId lane,
                            OpCategory category, double bytes,
                            const std::vector<LinkId>& path, double rate_cap,
                            const std::vector<OpId>& deps, double overhead,
                            int flow_class, double interference_factor) {
  const OpId id = add_op(std::move(label), lane, category, 0.0, deps, overhead);
  Op& op = ops_[id.index];
  PSDNS_REQUIRE(bytes >= 0.0, "negative flow size");
  op.bytes = bytes;
  op.path = path;
  op.rate_cap = rate_cap;
  op.flow_class = flow_class;
  op.interference_factor = interference_factor;
  return id;
}

SimTime DagRunner::run() {
  PSDNS_REQUIRE(!ran_, "run() may only be called once");
  ran_ = true;
  unfinished_ = ops_.size();

  for (std::size_t i = 0; i < ops_.size(); ++i) {
    Op& op = ops_[i];
    op.unmet = op.deps.size();
    for (const std::size_t d : op.deps) ops_[d].dependents.push_back(i);
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].unmet == 0) try_start(i);
  }
  engine_.run();

  SimTime makespan = 0.0;
  for (const Op& op : ops_) {
    PSDNS_CHECK(op.finished, "DAG deadlock: op never ran: " + op.record.label);
    makespan = std::max(makespan, op.record.finish);
  }
  return makespan;
}

void DagRunner::try_start(std::size_t index) {
  Op& op = ops_[index];
  PSDNS_CHECK(!op.started, "op started twice");
  op.started = true;
  const SimTime issue = engine_.now();
  op.record.start = issue;

  if (op.bytes >= 0.0) {
    // Flow op: overhead elapses serially, then the flow drains.
    engine_.schedule_after(op.overhead, [this, index] {
      Op& o = ops_[index];
      network_.start_flow(
          o.path, o.bytes, o.rate_cap,
          [this, index] { on_finished(index); }, o.flow_class,
          o.interference_factor);
    });
  } else {
    engine_.schedule_after(op.overhead + op.duration,
                           [this, index] { on_finished(index); });
  }
}

void DagRunner::on_finished(std::size_t index) {
  Op& op = ops_[index];
  PSDNS_CHECK(!op.finished, "op finished twice");
  op.finished = true;
  op.record.finish = engine_.now();
  --unfinished_;
  for (const std::size_t dep : op.dependents) {
    Op& d = ops_[dep];
    PSDNS_CHECK(d.unmet > 0, "dependency count underflow");
    if (--d.unmet == 0) try_start(dep);
  }
}

const std::vector<OpRecord> DagRunner::records() const {
  std::vector<OpRecord> out;
  out.reserve(ops_.size());
  for (const Op& op : ops_) out.push_back(op.record);
  return out;
}

}  // namespace psdns::sim
