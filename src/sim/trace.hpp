#pragma once
// Trace records emitted by the DAG runner. The pipeline module renders these
// as the Fig.-10-style normalized timelines, and the benches aggregate them
// into per-category cost breakdowns.

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace psdns::sim {

/// Operation categories, matching the color coding of Fig. 4 in the paper:
/// transfer stream (blue), compute stream (green), network (red).
enum class OpCategory {
  H2D,      // host-to-device copy
  D2H,      // device-to-host copy (includes the pack-on-copy)
  Compute,  // FFT / nonlinear-term kernels
  Unpack,   // zero-copy unpack kernel
  Mpi,      // all-to-all communication
  Cpu,      // host-side work (CPU baseline compute, packing on host)
  Wait,     // explicit MPI_WAIT
  Other,
};

const char* to_string(OpCategory c);

struct OpRecord {
  std::string label;
  std::string lane;
  OpCategory category = OpCategory::Other;
  SimTime start = 0.0;
  SimTime finish = 0.0;

  SimTime duration() const { return finish - start; }
};

/// Sum of durations of all records in one category (wall-clock overlap is
/// NOT collapsed; use busy_time for that).
double total_time(const std::vector<OpRecord>& records, OpCategory category);

/// Length of the union of [start, finish) intervals in one category, i.e.
/// wall-clock time during which at least one such op was active.
double busy_time(const std::vector<OpRecord>& records, OpCategory category);

}  // namespace psdns::sim
