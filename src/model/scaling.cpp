#include "model/scaling.hpp"

#include "util/check.hpp"

namespace psdns::model {

double weak_scaling_percent(std::int64_t n1, int nodes1, double t1,
                            std::int64_t n2, int nodes2, double t2) {
  PSDNS_REQUIRE(n1 > 0 && n2 > 0 && nodes1 > 0 && nodes2 > 0 && t1 > 0.0 &&
                    t2 > 0.0,
                "scaling inputs must be positive");
  const double size_ratio = (static_cast<double>(n2) / n1) *
                            (static_cast<double>(n2) / n1) *
                            (static_cast<double>(n2) / n1);
  return 100.0 * size_ratio * (t1 / t2) *
         (static_cast<double>(nodes1) / nodes2);
}

double strong_scaling_percent(int nodes1, double t1, int nodes2, double t2) {
  PSDNS_REQUIRE(nodes1 > 0 && nodes2 > 0 && t1 > 0.0 && t2 > 0.0,
                "scaling inputs must be positive");
  return 100.0 * (t1 / t2) * (static_cast<double>(nodes1) / nodes2);
}

}  // namespace psdns::model
