#pragma once
// Scaling metrics from Sec. 5.3.

#include <cstdint>

namespace psdns::model {

/// Weak scaling percentage (paper Eq. 4) of run 2 relative to run 1:
/// WS = (N2^3 / N1^3) * (t1 / t2) * (M1 / M2), in percent.
double weak_scaling_percent(std::int64_t n1, int nodes1, double t1,
                            std::int64_t n2, int nodes2, double t2);

/// Strong scaling percentage of run 2 (more nodes) relative to run 1 at the
/// same problem size: SS = (t1 / t2) * (M1 / M2), in percent.
double strong_scaling_percent(int nodes1, double t1, int nodes2, double t2);

}  // namespace psdns::model
