#include "model/memory.hpp"

#include <cmath>

#include "model/geometry.hpp"
#include "util/check.hpp"

namespace psdns::model {

double MemoryModel::host_bytes_per_node(std::int64_t n, int nodes) const {
  PSDNS_REQUIRE(n > 0 && nodes > 0, "bad problem shape");
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  return kWordBytes * p_.variables_resident * n3 / nodes;
}

double MemoryModel::min_nodes_estimate(std::int64_t n) const {
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  return kWordBytes * p_.variables_estimate * n3 / p_.usable_host_mem;
}

int MemoryModel::min_nodes(std::int64_t n) const {
  const double estimate = min_nodes_estimate(n);
  for (std::int64_t m = 1; m <= n; ++m) {
    if (n % m == 0 && static_cast<double>(m) >= estimate) {
      return static_cast<int>(m);
    }
  }
  return static_cast<int>(n);  // one plane per node is the hard ceiling
}

double MemoryModel::pencils_needed_estimate(std::int64_t n, int nodes) const {
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  return kWordBytes * p_.gpu_buffers * n3 /
         (static_cast<double>(nodes) * p_.usable_gpu_mem_per_node);
}

int MemoryModel::pencils_needed(std::int64_t n, int nodes) const {
  // Headroom factor 1.5 covers the "further needs for memory from other
  // smaller arrays" (Sec. 3.5): reproduces np=3 where the estimate says 1.9
  // and np=4 where it says 2.13.
  const double with_headroom = 1.5 * pencils_needed_estimate(n, nodes);
  return std::max(1, static_cast<int>(std::ceil(with_headroom - 1e-9)));
}

double MemoryModel::pencil_bytes(std::int64_t n, int nodes,
                                 int pencils) const {
  const double n3 = static_cast<double>(n) * n * static_cast<double>(n);
  return kWordBytes * n3 / (static_cast<double>(nodes) * pencils);
}

std::vector<Table1Row> table1(const MemoryModel& model) {
  const struct {
    int nodes;
    std::int64_t n;
  } cases[] = {{16, 3072}, {128, 6144}, {1024, 12288}, {3072, 18432}};

  std::vector<Table1Row> rows;
  for (const auto& c : cases) {
    const int np = model.pencils_needed(c.n, c.nodes);
    rows.push_back(Table1Row{
        c.nodes, c.n, model.host_bytes_per_node(c.n, c.nodes) / kGiB, np,
        model.pencil_bytes(c.n, c.nodes, np) / kGiB});
  }
  return rows;
}

}  // namespace psdns::model
