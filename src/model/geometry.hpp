#pragma once
// Problem geometry shared by the performance models and the pipeline
// schedule builder: how an N^3 grid maps onto nodes, MPI ranks, slabs and
// pencils (Figs. 1 and 3 of the paper).

#include <cstdint>

namespace psdns::model {

/// Bytes per word of the production code (single precision, as on Summit).
inline constexpr double kWordBytes = 4.0;

struct ProblemConfig {
  std::int64_t n = 0;       // grid points per side (N)
  int nodes = 0;            // node count (M)
  int tasks_per_node = 0;   // MPI ranks per node (tpn)
  int pencils = 1;          // pencils per slab (np)
  int variables = 3;        // variables moved per all-to-all (nv)

  std::int64_t ranks() const {
    return static_cast<std::int64_t>(nodes) * tasks_per_node;
  }

  /// Slab thickness mz = N / P (planes per rank, 1-D decomposition).
  double slab_thickness() const {
    return static_cast<double>(n) / static_cast<double>(ranks());
  }

  /// Pencil width nyp = N / np.
  double pencil_width() const {
    return static_cast<double>(n) / static_cast<double>(pencils);
  }

  /// Grid points per rank (one variable).
  double points_per_rank() const {
    return static_cast<double>(n) * static_cast<double>(n) * slab_thickness();
  }

  double points_per_node() const {
    return points_per_rank() * tasks_per_node;
  }

  /// Bytes of one variable's slab on one rank.
  double slab_bytes() const { return points_per_rank() * kWordBytes; }

  /// Bytes of one variable's pencil on one rank.
  double pencil_bytes() const {
    return slab_bytes() / static_cast<double>(pencils);
  }

  /// P2P message size of an all-to-all over Q pencils of nv variables
  /// (Sec. 4.1): 4 * nv * Q * (N/np) * (N/P)^2 bytes.
  double p2p_bytes(int pencils_per_a2a) const {
    const double per_rank_line = static_cast<double>(n) /
                                 static_cast<double>(ranks());
    return kWordBytes * variables * pencils_per_a2a * pencil_width() *
           per_rank_line * per_rank_line;
  }
};

}  // namespace psdns::model
