#pragma once
// Memory-footprint model of Sec. 3.5: node counts needed to hold an N^3
// problem in host memory, and pencil counts needed to batch a slab through
// the 16 GB GPUs. Regenerates Table 1.

#include <cstdint>
#include <vector>

#include "hw/summit.hpp"

namespace psdns::model {

inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

struct MemoryModelParams {
  double variables_estimate = 25.0;  // D used for the min-node estimate
  double variables_resident = 30.0;  // variables actually resident per node
                                     //   (Table 1's "Mem. occ." column)
  double gpu_buffers = 27.0;         // 9 compute buffers, tripled for async
  double usable_gpu_mem_per_node = 96.0 * kGiB;  // all 6 GPUs, no system use
  double usable_host_mem = 448.0 * kGiB;         // 512 GB minus ~64 GB OS
};

class MemoryModel {
 public:
  explicit MemoryModel(MemoryModelParams params = {}) : p_(params) {}

  const MemoryModelParams& params() const { return p_; }

  /// Host bytes per node occupied by an N^3 problem on `nodes` nodes.
  double host_bytes_per_node(std::int64_t n, int nodes) const;

  /// Minimum node count whose host memory holds the problem (real-valued
  /// estimate, D = variables_estimate; Sec. 3.5 gives 1302 for 18432^3).
  double min_nodes_estimate(std::int64_t n) const;

  /// Smallest valid node count: at least min_nodes_estimate and a divisor
  /// of N (load balance requires nodes | N).
  int min_nodes(std::int64_t n) const;

  /// Fractional pencils-per-slab needed so that the 27 pencil buffers fit in
  /// GPU memory (Sec. 3.5 gives 2.13 for 18432^3 on 3072 nodes).
  double pencils_needed_estimate(std::int64_t n, int nodes) const;

  /// Integer pencil count used in practice. Smaller arrays push the real
  /// requirement above the estimate; the paper found np = 4 where the
  /// estimate said 2.13, i.e. the estimate times a ~1.5 headroom factor,
  /// rounded up, and never below 3 at production sizes.
  int pencils_needed(std::int64_t n, int nodes) const;

  /// Size of one pencil (one variable) in bytes.
  double pencil_bytes(std::int64_t n, int nodes, int pencils) const;

 private:
  MemoryModelParams p_;
};

/// One row of Table 1.
struct Table1Row {
  int nodes;
  std::int64_t n;
  double mem_per_node_gib;
  int pencils;
  double pencil_gib;
};

/// The four configurations the paper runs (Table 1).
std::vector<Table1Row> table1(const MemoryModel& model = MemoryModel{});

}  // namespace psdns::model
