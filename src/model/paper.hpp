#pragma once
// Reference values transcribed from the paper's tables, used by the benches
// to print "paper vs model" side by side and by the calibration tests to
// assert that the model preserves the paper's orderings and rough
// magnitudes. Nothing in the performance model reads these values.

#include <cstdint>
#include <vector>

namespace psdns::model::paper {

/// The four weak-scaled configurations (Table 1 / Sec. 3.5).
struct Case {
  int nodes;
  std::int64_t n;
  int pencils;  // pencils per slab
};
inline constexpr Case kCases[] = {
    {16, 3072, 3}, {128, 6144, 3}, {1024, 12288, 3}, {3072, 18432, 4}};

/// Table 2: effective all-to-all bandwidth per node (GB/s) and P2P message
/// size (MB, for 3 variables) for configurations A/B/C.
struct Table2Row {
  int nodes;
  double p2p_a_mb, bw_a;  // A: 6 tasks/node, 1 pencil/A2A
  double p2p_b_mb, bw_b;  // B: 2 tasks/node, 1 pencil/A2A
  double p2p_c_mb, bw_c;  // C: 2 tasks/node, 1 slab/A2A
};
inline constexpr Table2Row kTable2[] = {
    {16, 12.0, 36.5, 108.0, 43.1, 324.0, 43.6},
    {128, 1.5, 24.0, 13.5, 39.0, 40.5, 39.0},
    {1024, 0.19, 11.1, 1.69, 23.5, 5.06, 25.0},
    {3072, 0.053, 13.2, 0.47, 12.4, 1.90, 17.6},
};

/// Table 3: elapsed seconds per RK2 step. Speedups are vs the sync CPU code.
struct Table3Row {
  int nodes;
  std::int64_t n;
  double cpu_sync;       // pencil-decomposed synchronous CPU code
  double gpu_a;          // async GPU, 6 tasks/node, 1 pencil/A2A
  double gpu_b;          // async GPU, 2 tasks/node, 1 pencil/A2A
  double gpu_c;          // async GPU, 2 tasks/node, 1 slab/A2A
};
inline constexpr Table3Row kTable3[] = {
    {16, 3072, 34.38, 8.09, 6.70, 7.50},
    {128, 6144, 40.18, 12.17, 8.66, 8.07},
    {1024, 12288, 47.57, 13.63, 12.62, 10.14},
    {3072, 18432, 41.96, 25.44, 22.30, 14.24},
};

/// Table 4: weak scaling of the best configuration relative to 3072^3.
struct Table4Row {
  int nodes;
  int ntasks;
  std::int64_t n;
  int pencils_per_a2a;
  double time;
  double weak_scaling_pct;  // 0 marks the reference row
};
inline constexpr Table4Row kTable4[] = {
    {16, 32, 3072, 1, 6.70, 0.0},
    {128, 256, 6144, 3, 8.07, 83.0},
    {1024, 2048, 12288, 3, 10.14, 66.1},
    {3072, 6144, 18432, 4, 14.24, 52.9},
};

/// Sec. 5.3: strong scaling of the 18432^3 problem, 6 tasks/node config.
inline constexpr double kStrong18432Nodes1536Time = 48.7;
inline constexpr double kStrong18432Nodes3072Time = 25.4;
inline constexpr double kStrong18432Percent = 95.7;

/// Intro: the 8192^3 CPU production simulation on 262144 cores took a wall
/// time per step such that the 18432^3 GPU run is "only 50% longer".
inline constexpr double kWallclockGoalPerStep = 20.0;  // Sec. 3 goal, seconds

}  // namespace psdns::model::paper
