#pragma once
// Hardened checkpoint / restart for long-running simulations.
//
// The paper's production runs integrate "many thousands of time steps"
// across scheduler allocations; a DNS code without restart capability is
// not usable in production, and a restart layer that cannot survive a node
// failure mid-write (or silent corruption at rest) is not much better.
// Checkpoints store the *global* spectral field (gathered in Z-slab order,
// which concatenates contiguously across ranks), so a run can be restarted
// on a different rank count - exactly what happens when a job moves between
// node allocations.
//
// Hardening (format v3):
//   - every section (header, each field) carries a CRC32C; truncation and
//     bit rot are detected at load instead of silently corrupting physics;
//   - writes go to "<path>.tmp" and are renamed into place, so a crash
//     mid-write never destroys the previous checkpoint;
//   - keep-K rotation: the previous checkpoint survives as "<path>.1" (then
//     ".2", ...), giving rollback targets when the newest file is bad;
//   - all failures surface as typed CheckpointError values naming the file,
//     agreed collectively (rank 0 does the IO, every rank throws the same
//     error), so no rank is left waiting in a barrier;
//   - the write transaction is retried under resilience::RetryPolicy.
//
// File layout (little-endian, doubles):
//   magic "PSDNSCKP" | u32 version=3 | u64 N | f64 time | i64 step |
//   f64 viscosity | u32 extra-field count m | u32 header crc32c |
//   (3+m) x [ (nxh*N*N) complex<double> field | u32 field crc32c ]
// (fields in order u, v, w, then the equation system's extra fields -
// passive scalars for Navier-Stokes, buoyancy for Boussinesq, bx/by/bz for
// MHD; each CRC covers magic..count for the header, the raw field bytes
// for fields). The count slot was "scalar count" before pluggable systems;
// the encoding is unchanged, so NS checkpoints are byte-compatible.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"
#include "resilience/retry.hpp"
#include "util/check.hpp"

namespace psdns::io {

struct CheckpointInfo {
  std::uint64_t n = 0;
  double time = 0.0;
  std::int64_t step = 0;
  double viscosity = 0.0;
  std::uint32_t scalars = 0;  // extra prognostic fields beyond (u, v, w)
};

/// What went wrong with a checkpoint file. Ok is never thrown; it is the
/// zero value used on the collective agreement path.
enum class CheckpointErrc {
  Ok = 0,
  OpenFailed,      // fopen failed (missing file, permissions, bad dir)
  BadMagic,        // not a psdns checkpoint
  BadVersion,      // unsupported format version
  Truncated,       // file ends before a section does
  CrcMismatch,     // a section checksum does not match its payload
  GridMismatch,    // checkpoint N differs from the solver's N
  ScalarMismatch,  // checkpoint scalar count differs from the solver's
  IoFailed,        // write/flush/rename failed, or an injected IO fault
};

const char* to_string(CheckpointErrc code);

/// Typed checkpoint failure naming the offending file. Derives util::Error
/// so existing catch sites keep working.
class CheckpointError : public util::Error {
 public:
  CheckpointError(CheckpointErrc code, std::string file, std::string detail,
                  std::source_location loc = std::source_location::current())
      : util::Error(std::string("checkpoint ") + io::to_string(code) + ": " +
                        file + (detail.empty() ? "" : " (" + detail + ")"),
                    loc),
        code_(code),
        path_(std::move(file)) {}

  CheckpointErrc code() const { return code_; }
  const std::string& path() const { return path_; }

 private:
  CheckpointErrc code_;
  std::string path_;
};

struct CheckpointOptions {
  /// Total checkpoints retained: `path` plus keep-1 rotated predecessors
  /// ("<path>.1" newest-previous first). 1 = atomic replace, no rotation.
  int keep = 1;
  /// Applied to the rank-0 write transaction (tmp write + rename).
  resilience::RetryPolicy retry;
};

/// Writes the solver state. Collective; rank 0 writes the file (atomically,
/// with rotation and retry per `opts`). Throws CheckpointError on every
/// rank if the write ultimately fails.
void save_checkpoint(const std::string& path, dns::SlabSolver& solver,
                     const CheckpointOptions& opts = {});

/// Restores the solver state (grid size must match; the rank count need
/// not match the writing run's). Collective; returns the header. Throws
/// CheckpointError on every rank when the file is missing, truncated,
/// corrupt, or does not match the solver.
CheckpointInfo load_checkpoint(const std::string& path,
                               dns::SlabSolver& solver);

/// Reads only the header, verifying its CRC (any single process; not
/// collective).
CheckpointInfo peek_checkpoint(const std::string& path);

/// Full-file verification: header + every field section CRC. Single
/// process; returns the header or throws CheckpointError.
CheckpointInfo verify_checkpoint(const std::string& path);

/// The k-th rotation name: k=0 is `path` itself, k=1 is "<path>.1", ...
std::string rotated_checkpoint_name(const std::string& path, int k);

/// Existing files of the rotation chain, newest first, starting at `path`.
std::vector<std::string> checkpoint_chain(const std::string& path);

struct CheckpointRecovery {
  /// Header of the newest checkpoint that verified, if any.
  std::optional<CheckpointInfo> info;
  /// Corrupt/unreadable files that were discarded ahead of the survivor.
  int discarded = 0;
};

/// Rolls the rotation chain back to the newest checkpoint that passes
/// verify_checkpoint(): corrupt files ahead of it are deleted and the
/// survivor (and the rest of the chain) is renamed so it sits at `path`
/// again. Returns nullopt info when no file in the chain verifies (all
/// invalid files are removed). Single process - call on rank 0 and
/// broadcast the outcome.
CheckpointRecovery recover_checkpoint_chain(const std::string& path);

}  // namespace psdns::io
