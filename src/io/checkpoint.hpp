#pragma once
// Checkpoint / restart for long-running simulations.
//
// The paper's production runs integrate "many thousands of time steps"
// across scheduler allocations; a DNS code without restart capability is
// not usable in production. Checkpoints store the *global* spectral field
// (gathered in Z-slab order, which concatenates contiguously across ranks),
// so a run can be restarted on a different rank count - exactly what
// happens when a job moves between node allocations.
//
// File layout (little-endian, doubles):
//   magic "PSDNSCKP" | u32 version | u64 N | f64 time | i64 step |
//   f64 viscosity | u32 scalar count m |
//   (3+m) x (nxh*N*N) complex<double> fields (u, v, w, theta_0..m-1).

#include <cstdint>
#include <string>

#include "comm/communicator.hpp"
#include "dns/solver.hpp"

namespace psdns::io {

struct CheckpointInfo {
  std::uint64_t n = 0;
  double time = 0.0;
  std::int64_t step = 0;
  double viscosity = 0.0;
  std::uint32_t scalars = 0;
};

/// Writes the solver state. Collective; rank 0 writes the file.
void save_checkpoint(const std::string& path, dns::SlabSolver& solver);

/// Restores the solver state (grid size must match; the rank count need
/// not match the writing run's). Collective; returns the header.
CheckpointInfo load_checkpoint(const std::string& path,
                               dns::SlabSolver& solver);

/// Reads only the header (any single process; not collective).
CheckpointInfo peek_checkpoint(const std::string& path);

}  // namespace psdns::io
