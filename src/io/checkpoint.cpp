#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "fft/types.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "resilience/crc32c.hpp"
#include "resilience/fault.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace psdns::io {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'P', 'S', 'D', 'N', 'S', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 3;
// Longest rotation chain recover/chain scans consider. Far above any
// sensible CheckpointOptions::keep; bounds the directory probing.
constexpr int kMaxChain = 32;

using fft::Complex;
using resilience::FaultKind;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& file) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw CheckpointError(CheckpointErrc::IoFailed, file,
                          "write failed (disk full?)");
  }
  obs::registry().counter_add("io.checkpoint.write_bytes",
                              static_cast<std::int64_t>(bytes));
}

void read_exact(std::FILE* f, void* data, std::size_t bytes,
                const std::string& file) {
  if (std::fread(data, 1, bytes, f) != bytes) {
    throw CheckpointError(CheckpointErrc::Truncated, file,
                          "file ends inside a section");
  }
  obs::registry().counter_add("io.checkpoint.read_bytes",
                              static_cast<std::int64_t>(bytes));
}

void write_header(std::FILE* f, const CheckpointInfo& info,
                  const std::string& file) {
  std::uint32_t crc = 0;
  const auto put = [&](const void* p, std::size_t n) {
    write_exact(f, p, n, file);
    crc = resilience::crc32c(p, n, crc);
  };
  put(kMagic, sizeof kMagic);
  put(&kVersion, sizeof kVersion);
  put(&info.n, sizeof info.n);
  put(&info.time, sizeof info.time);
  put(&info.step, sizeof info.step);
  put(&info.viscosity, sizeof info.viscosity);
  put(&info.scalars, sizeof info.scalars);
  write_exact(f, &crc, sizeof crc, file);
}

CheckpointInfo read_header(std::FILE* f, const std::string& file) {
  std::uint32_t crc = 0;
  const auto get = [&](void* p, std::size_t n) {
    read_exact(f, p, n, file);
    crc = resilience::crc32c(p, n, crc);
  };
  char magic[8];
  get(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw CheckpointError(CheckpointErrc::BadMagic, file,
                          "not a psdns checkpoint");
  }
  std::uint32_t version = 0;
  get(&version, sizeof version);
  if (version != kVersion) {
    throw CheckpointError(CheckpointErrc::BadVersion, file,
                          "found version " + std::to_string(version) +
                              ", expected " + std::to_string(kVersion));
  }
  CheckpointInfo info;
  get(&info.n, sizeof info.n);
  get(&info.time, sizeof info.time);
  get(&info.step, sizeof info.step);
  get(&info.viscosity, sizeof info.viscosity);
  get(&info.scalars, sizeof info.scalars);
  std::uint32_t stored = 0;
  read_exact(f, &stored, sizeof stored, file);
  if (stored != crc) {
    obs::registry().counter_add("ckpt.crc_failures");
    throw CheckpointError(CheckpointErrc::CrcMismatch, file,
                          "header checksum");
  }
  return info;
}

/// Reads one field section (payload + trailing CRC) into `data`.
/// `fault` is the (already polled) io.ckpt.read fault for this operation;
/// short_write models a truncated file, bit_flip models bit rot (which the
/// CRC then catches).
void read_field(std::FILE* f, Complex* data, std::size_t bytes,
                const std::string& file, int field_index,
                std::optional<FaultKind> fault) {
  auto* raw = reinterpret_cast<unsigned char*>(data);
  if (fault == FaultKind::ShortWrite && field_index == 0) {
    read_exact(f, raw, bytes / 2, file);
    throw CheckpointError(CheckpointErrc::Truncated, file,
                          "injected truncated read");
  }
  read_exact(f, raw, bytes, file);
  std::uint32_t stored = 0;
  read_exact(f, &stored, sizeof stored, file);
  if (fault == FaultKind::BitFlip && field_index == 0 && bytes > 0) {
    raw[bytes / 2] ^= 0x01u;
  }
  if (resilience::crc32c(raw, bytes) != stored) {
    obs::registry().counter_add("ckpt.crc_failures");
    throw CheckpointError(
        CheckpointErrc::CrcMismatch, file,
        "field " + std::to_string(field_index) + " checksum");
  }
}

void rotate_chain(const std::string& path, int keep) {
  for (int k = keep - 1; k >= 1; --k) {
    const auto from = rotated_checkpoint_name(path, k - 1);
    std::error_code ec;
    if (!fs::exists(from, ec)) continue;
    fs::rename(from, rotated_checkpoint_name(path, k), ec);
    if (ec) {
      throw CheckpointError(CheckpointErrc::IoFailed, from,
                            "rotation failed: " + ec.message());
    }
    obs::registry().counter_add("ckpt.rotations");
  }
}

/// The rank-0 write transaction: tmp file with per-section CRCs, rotation,
/// atomic rename. Retryable as a unit (it never touches `path` until the
/// final rename).
void write_transaction(const std::string& path, const CheckpointOptions& opts,
                       const CheckpointInfo& info,
                       std::vector<std::vector<Complex>>& fields) {
  // One fault poll per transaction attempt: a retried write is the next
  // call index at this site.
  const auto fault = resilience::poll(resilience::site::ckpt_write);
  if (fault == FaultKind::Throw) {
    throw resilience::InjectedFault(resilience::site::ckpt_write, *fault);
  }
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (f == nullptr) {
      throw CheckpointError(CheckpointErrc::OpenFailed, tmp,
                            "cannot open for writing");
    }
    write_header(f.get(), info, tmp);
    for (std::size_t i = 0; i < fields.size(); ++i) {
      auto* raw = reinterpret_cast<unsigned char*>(fields[i].data());
      const std::size_t bytes = fields[i].size() * sizeof(Complex);
      const std::uint32_t crc = resilience::crc32c(raw, bytes);
      if (fault == FaultKind::ShortWrite && i == 0) {
        write_exact(f.get(), raw, bytes / 2, tmp);
        throw CheckpointError(CheckpointErrc::IoFailed, tmp,
                              "injected short write");
      }
      // bit_flip: corrupt the bytes that hit the disk but store the CRC of
      // the clean payload - silent corruption that only the load-time
      // verification can catch.
      if (fault == FaultKind::BitFlip && i == 0 && bytes > 0) {
        raw[bytes / 2] ^= 0x01u;
      }
      write_exact(f.get(), raw, bytes, tmp);
      if (fault == FaultKind::BitFlip && i == 0 && bytes > 0) {
        raw[bytes / 2] ^= 0x01u;  // restore the in-memory copy
      }
      write_exact(f.get(), &crc, sizeof crc, tmp);
    }
    if (std::fflush(f.get()) != 0 || std::ferror(f.get()) != 0) {
      throw CheckpointError(CheckpointErrc::IoFailed, tmp, "flush failed");
    }
  }
  rotate_chain(path, opts.keep);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw CheckpointError(CheckpointErrc::IoFailed, path,
                          "rename into place failed: " + ec.message());
  }
}

/// Rank-0 error capture for the collective agreement protocol.
struct Captured {
  CheckpointErrc code = CheckpointErrc::Ok;
  std::exception_ptr ex;
};

template <class Fn>
void capture(Captured& cap, Fn&& fn) {
  try {
    fn();
  } catch (const CheckpointError& e) {
    cap.code = e.code();
    cap.ex = std::current_exception();
  } catch (const std::exception&) {
    cap.code = CheckpointErrc::IoFailed;
    cap.ex = std::current_exception();
  }
}

/// Broadcasts rank 0's error state; when set, every rank throws (rank 0
/// rethrows the original exception, others a CheckpointError naming the
/// file). Keeps all ranks in agreement so nobody is left in a barrier.
void agree_or_throw(comm::Communicator& comm, const Captured& cap,
                    const std::string& path) {
  int code = static_cast<int>(cap.code);
  comm.broadcast(&code, 1, 0);
  if (code == static_cast<int>(CheckpointErrc::Ok)) return;
  if (comm.rank() == 0 && cap.ex != nullptr) {
    std::rethrow_exception(cap.ex);
  }
  throw CheckpointError(static_cast<CheckpointErrc>(code), path,
                        "detected on rank 0");
}

}  // namespace

const char* to_string(CheckpointErrc code) {
  switch (code) {
    case CheckpointErrc::Ok:
      return "ok";
    case CheckpointErrc::OpenFailed:
      return "open_failed";
    case CheckpointErrc::BadMagic:
      return "bad_magic";
    case CheckpointErrc::BadVersion:
      return "bad_version";
    case CheckpointErrc::Truncated:
      return "truncated";
    case CheckpointErrc::CrcMismatch:
      return "crc_mismatch";
    case CheckpointErrc::GridMismatch:
      return "grid_mismatch";
    case CheckpointErrc::ScalarMismatch:
      return "scalar_mismatch";
    case CheckpointErrc::IoFailed:
      return "io_failed";
  }
  return "?";
}

std::string rotated_checkpoint_name(const std::string& path, int k) {
  PSDNS_REQUIRE(k >= 0, "rotation index is non-negative");
  return k == 0 ? path : path + "." + std::to_string(k);
}

std::vector<std::string> checkpoint_chain(const std::string& path) {
  std::vector<std::string> chain;
  for (int k = 0; k < kMaxChain; ++k) {
    const auto name = rotated_checkpoint_name(path, k);
    std::error_code ec;
    // A crash between rotation and rename can leave a hole at position 0,
    // so keep scanning instead of stopping at the first missing file.
    if (fs::exists(name, ec)) chain.push_back(name);
  }
  return chain;
}

void save_checkpoint(const std::string& path, dns::SlabSolver& solver,
                     const CheckpointOptions& opts) {
  PSDNS_REQUIRE(opts.keep >= 1 && opts.keep <= kMaxChain,
                "checkpoint keep out of range");
  auto& comm = solver.communicator();
  obs::TraceSpan span("io.checkpoint.save", obs::SpanKind::Io);
  const util::Stopwatch watch;
  const std::size_t n = solver.n();
  const std::size_t nxh = n / 2 + 1;
  const std::size_t slab = solver.modes().local_modes();
  const std::size_t nfields = solver.field_count();

  CheckpointInfo info;
  info.n = n;
  info.time = solver.time();
  info.step = solver.step_count();
  info.viscosity = solver.config().viscosity;
  info.scalars = static_cast<std::uint32_t>(solver.extra_field_count());

  // Z-slabs concatenate to the global (i, j, k) order, so a rank-ordered
  // gather is exactly the file layout. Every field is gathered up front so
  // the rank-0 write transaction can be retried without re-entering any
  // collective (the other ranks are already past their part).
  std::vector<std::vector<Complex>> fields;
  if (comm.rank() == 0) {
    fields.assign(nfields, std::vector<Complex>(nxh * n * n));
  }
  for (std::size_t c = 0; c < nfields; ++c) {
    Complex* dst = comm.rank() == 0 ? fields[c].data() : nullptr;
    comm.gather(solver.field(c), dst, slab, 0);
  }

  Captured cap;
  if (comm.rank() == 0) {
    capture(cap, [&] {
      resilience::with_retry(opts.retry, "checkpoint write " + path, [&] {
        write_transaction(path, opts, info, fields);
      });
    });
  }
  agree_or_throw(comm, cap, path);

  if (comm.rank() == 0) {
    const double seconds = watch.seconds();
    obs::registry().counter_add("io.checkpoint.writes");
    obs::registry().observe("io.checkpoint.write_seconds", seconds);
    obs::log_event(obs::LogLevel::Info, "io", "checkpoint written",
                   {{"path", path},
                    {"step", solver.step_count()},
                    {"keep", opts.keep},
                    {"seconds", seconds}});
  }
}

CheckpointInfo load_checkpoint(const std::string& path,
                               dns::SlabSolver& solver) {
  auto& comm = solver.communicator();
  obs::TraceSpan span("io.checkpoint.load", obs::SpanKind::Io);
  const util::Stopwatch watch;
  const std::size_t n = solver.n();
  const std::size_t nxh = n / 2 + 1;
  const std::size_t slab = solver.modes().local_modes();

  CheckpointInfo info;
  std::vector<Complex> global;
  File f;
  std::optional<FaultKind> fault;
  Captured cap;
  if (comm.rank() == 0) {
    capture(cap, [&] {
      f.reset(std::fopen(path.c_str(), "rb"));
      if (f == nullptr) {
        throw CheckpointError(CheckpointErrc::OpenFailed, path,
                              "cannot open for reading");
      }
      fault = resilience::poll(resilience::site::ckpt_read);
      if (fault == FaultKind::Throw) {
        throw resilience::InjectedFault(resilience::site::ckpt_read, *fault);
      }
      info = read_header(f.get(), path);
      if (info.n != n) {
        throw CheckpointError(CheckpointErrc::GridMismatch, path,
                              "checkpoint N=" + std::to_string(info.n) +
                                  ", solver N=" + std::to_string(n));
      }
      if (info.scalars !=
          static_cast<std::uint32_t>(solver.extra_field_count())) {
        throw CheckpointError(
            CheckpointErrc::ScalarMismatch, path,
            "checkpoint has " + std::to_string(info.scalars) +
                " extra fields, solver has " +
                std::to_string(solver.extra_field_count()));
      }
      global.resize(nxh * n * n);
    });
  }
  agree_or_throw(comm, cap, path);
  comm.broadcast(&info, 1, 0);

  const std::size_t nfields = 3 + static_cast<std::size_t>(info.scalars);
  std::vector<std::vector<Complex>> local(nfields);
  std::vector<const Complex*> ptrs(nfields);
  for (std::size_t c = 0; c < nfields; ++c) {
    auto& mine = local[c];
    mine.resize(slab);
    if (comm.rank() == 0) {
      capture(cap, [&] {
        read_field(f.get(), global.data(), global.size() * sizeof(Complex),
                   path, static_cast<int>(c), fault);
      });
    }
    agree_or_throw(comm, cap, path);
    comm.scatter(global.data(), mine.data(), slab, 0);
    ptrs[c] = mine.data();
  }

  solver.restore(std::span<const Complex* const>(ptrs.data(), nfields),
                 info.time, info.step);
  if (comm.rank() == 0) {
    const double seconds = watch.seconds();
    obs::registry().counter_add("io.checkpoint.reads");
    obs::registry().observe("io.checkpoint.read_seconds", seconds);
    obs::log_event(obs::LogLevel::Info, "io", "checkpoint restored",
                   {{"path", path},
                    {"step", info.step},
                    {"seconds", seconds}});
  }
  return info;
}

CheckpointInfo peek_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    throw CheckpointError(CheckpointErrc::OpenFailed, path,
                          "cannot open for reading");
  }
  return read_header(f.get(), path);
}

CheckpointInfo verify_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    throw CheckpointError(CheckpointErrc::OpenFailed, path,
                          "cannot open for reading");
  }
  const auto fault = resilience::poll(resilience::site::ckpt_read);
  if (fault == FaultKind::Throw) {
    throw resilience::InjectedFault(resilience::site::ckpt_read, *fault);
  }
  const auto info = read_header(f.get(), path);
  const std::size_t nxh = info.n / 2 + 1;
  std::vector<Complex> buffer(nxh * info.n * info.n);
  const std::size_t nfields = 3 + static_cast<std::size_t>(info.scalars);
  for (std::size_t c = 0; c < nfields; ++c) {
    read_field(f.get(), buffer.data(), buffer.size() * sizeof(Complex), path,
               static_cast<int>(c), fault);
  }
  return info;
}

CheckpointRecovery recover_checkpoint_chain(const std::string& path) {
  CheckpointRecovery out;
  const auto chain = checkpoint_chain(path);
  int survivor = -1;
  CheckpointInfo info;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    try {
      info = verify_checkpoint(chain[i]);
      survivor = static_cast<int>(i);
      break;
    } catch (const std::exception& e) {
      obs::registry().counter_add("ckpt.discarded");
      obs::log_event(obs::LogLevel::Warn, "io", "discarding bad checkpoint",
                     {{"path", chain[i]}, {"error", e.what()}});
      std::error_code ec;
      fs::remove(chain[i], ec);
      ++out.discarded;
    }
  }
  if (survivor < 0) return out;
  // Shift the surviving suffix down so the newest valid checkpoint sits at
  // `path` again and the chain stays contiguous.
  for (std::size_t j = static_cast<std::size_t>(survivor); j < chain.size();
       ++j) {
    const auto target =
        rotated_checkpoint_name(path, static_cast<int>(j) - survivor);
    if (chain[j] == target) continue;
    std::error_code ec;
    fs::rename(chain[j], target, ec);
    if (ec) {
      throw CheckpointError(CheckpointErrc::IoFailed, chain[j],
                            "chain compaction failed: " + ec.message());
    }
  }
  out.info = info;
  return out;
}

}  // namespace psdns::io
