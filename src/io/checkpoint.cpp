#include "io/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "fft/types.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace psdns::io {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'D', 'N', 'S', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 2;

using fft::Complex;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_exact(std::FILE* f, const void* data, std::size_t bytes) {
  PSDNS_REQUIRE(std::fwrite(data, 1, bytes, f) == bytes,
                "checkpoint write failed (disk full?)");
  obs::registry().counter_add("io.checkpoint.write_bytes",
                              static_cast<std::int64_t>(bytes));
}

void read_exact(std::FILE* f, void* data, std::size_t bytes) {
  PSDNS_REQUIRE(std::fread(data, 1, bytes, f) == bytes,
                "checkpoint truncated or unreadable");
  obs::registry().counter_add("io.checkpoint.read_bytes",
                              static_cast<std::int64_t>(bytes));
}

CheckpointInfo read_header(std::FILE* f, const std::string& path) {
  char magic[8];
  read_exact(f, magic, sizeof magic);
  PSDNS_REQUIRE(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                "not a psdns checkpoint: " + path);
  std::uint32_t version = 0;
  read_exact(f, &version, sizeof version);
  PSDNS_REQUIRE(version == kVersion, "unsupported checkpoint version");
  CheckpointInfo info;
  read_exact(f, &info.n, sizeof info.n);
  read_exact(f, &info.time, sizeof info.time);
  read_exact(f, &info.step, sizeof info.step);
  read_exact(f, &info.viscosity, sizeof info.viscosity);
  read_exact(f, &info.scalars, sizeof info.scalars);
  return info;
}

}  // namespace

void save_checkpoint(const std::string& path, dns::SlabSolver& solver) {
  auto& comm = solver.communicator();
  const util::Stopwatch watch;
  const std::size_t n = solver.n();
  const std::size_t nxh = n / 2 + 1;
  const std::size_t slab = solver.modes().local_modes();

  // Z-slabs concatenate to the global (i, j, k) order, so a rank-ordered
  // gather is exactly the file layout.
  std::vector<Complex> global;
  if (comm.rank() == 0) {
    global.resize(nxh * n * n);
  }

  File f;
  if (comm.rank() == 0) {
    f.reset(std::fopen(path.c_str(), "wb"));
    PSDNS_REQUIRE(f != nullptr, "cannot open checkpoint for writing: " + path);
    write_exact(f.get(), kMagic, sizeof kMagic);
    write_exact(f.get(), &kVersion, sizeof kVersion);
    const std::uint64_t n64 = n;
    const double t = solver.time();
    const std::int64_t step = solver.step_count();
    const double nu = solver.config().viscosity;
    write_exact(f.get(), &n64, sizeof n64);
    write_exact(f.get(), &t, sizeof t);
    write_exact(f.get(), &step, sizeof step);
    write_exact(f.get(), &nu, sizeof nu);
    const std::uint32_t nscalars =
        static_cast<std::uint32_t>(solver.scalar_count());
    write_exact(f.get(), &nscalars, sizeof nscalars);
  }

  for (int c = 0; c < 3; ++c) {
    comm.gather(solver.uhat(c), global.data(), slab, 0);
    if (comm.rank() == 0) {
      write_exact(f.get(), global.data(), global.size() * sizeof(Complex));
    }
  }
  for (int sidx = 0; sidx < solver.scalar_count(); ++sidx) {
    comm.gather(solver.that(sidx), global.data(), slab, 0);
    if (comm.rank() == 0) {
      write_exact(f.get(), global.data(), global.size() * sizeof(Complex));
    }
  }
  comm.barrier();  // nobody returns before the file is complete
  if (comm.rank() == 0) {
    const double seconds = watch.seconds();
    obs::registry().counter_add("io.checkpoint.writes");
    obs::registry().observe("io.checkpoint.write_seconds", seconds);
    obs::log_event(obs::LogLevel::Info, "io", "checkpoint written",
                   {{"path", path},
                    {"step", solver.step_count()},
                    {"seconds", seconds}});
  }
}

CheckpointInfo load_checkpoint(const std::string& path,
                               dns::SlabSolver& solver) {
  auto& comm = solver.communicator();
  const util::Stopwatch watch;
  const std::size_t n = solver.n();
  const std::size_t nxh = n / 2 + 1;
  const std::size_t slab = solver.modes().local_modes();

  CheckpointInfo info;
  std::vector<Complex> global;
  File f;
  if (comm.rank() == 0) {
    f.reset(std::fopen(path.c_str(), "rb"));
    PSDNS_REQUIRE(f != nullptr, "cannot open checkpoint: " + path);
    info = read_header(f.get(), path);
    PSDNS_REQUIRE(info.n == n,
                  "checkpoint grid size does not match the solver");
    PSDNS_REQUIRE(info.scalars ==
                      static_cast<std::uint32_t>(solver.scalar_count()),
                  "checkpoint scalar count does not match the solver");
    global.resize(nxh * n * n);
  }
  comm.broadcast(&info, 1, 0);

  const std::size_t nfields = 3 + static_cast<std::size_t>(info.scalars);
  std::vector<std::vector<Complex>> local(nfields);
  std::vector<const Complex*> ptrs(nfields);
  for (std::size_t c = 0; c < nfields; ++c) {
    auto& mine = local[c];
    mine.resize(slab);
    if (comm.rank() == 0) {
      read_exact(f.get(), global.data(), global.size() * sizeof(Complex));
    }
    comm.scatter(global.data(), mine.data(), slab, 0);
    ptrs[c] = mine.data();
  }

  solver.restore(std::span<const Complex* const>(ptrs.data(), nfields),
                 info.time, info.step);
  if (comm.rank() == 0) {
    const double seconds = watch.seconds();
    obs::registry().counter_add("io.checkpoint.reads");
    obs::registry().observe("io.checkpoint.read_seconds", seconds);
    obs::log_event(obs::LogLevel::Info, "io", "checkpoint restored",
                   {{"path", path},
                    {"step", info.step},
                    {"seconds", seconds}});
  }
  return info;
}

CheckpointInfo peek_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  PSDNS_REQUIRE(f != nullptr, "cannot open checkpoint: " + path);
  return read_header(f.get(), path);
}

}  // namespace psdns::io
