#include "io/series.hpp"

#include "obs/log.hpp"
#include "util/check.hpp"

namespace psdns::io {

SeriesWriter::SeriesWriter(const std::string& path, Mode mode)
    : file_(std::fopen(path.c_str(), mode == Mode::Append ? "a" : "w")),
      path_(path) {
  if (file_ == nullptr) {
    obs::log_event(obs::LogLevel::Error, "io", "cannot open series file",
                   {{"path", path}});
    util::raise("cannot open series file: " + path);
  }
  // In append mode an interrupted run's rows are preserved; only a fresh
  // (empty) file gets the header.
  const bool need_header = mode == Mode::Truncate || std::ftell(file_) == 0;
  if (need_header) {
    std::fprintf(file_,
                 "step,time,energy,dissipation,u_max,taylor_scale,"
                 "reynolds_lambda,kolmogorov_eta,dt,wall_ms\n");
    std::fflush(file_);
  }
}

SeriesWriter::~SeriesWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SeriesWriter::append(std::int64_t step, double time,
                          const dns::Diagnostics& d, double dt,
                          double wall_ms) {
  const int written = std::fprintf(
      file_, "%lld,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
      static_cast<long long>(step), time, d.energy, d.dissipation, d.u_max,
      d.taylor_scale, d.reynolds_lambda, d.kolmogorov_eta, dt, wall_ms);
  // Flush every row: a killed run keeps its series up to the last step.
  if (written < 0 || std::fflush(file_) != 0 || std::ferror(file_) != 0) {
    obs::log_event(obs::LogLevel::Error, "io", "series append failed",
                   {{"path", path_}, {"step", step}});
    util::raise("series append failed: " + path_);
  }
}

void write_spectrum_csv(const std::string& path,
                        const std::vector<double>& spectrum) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PSDNS_REQUIRE(f != nullptr, "cannot open spectrum file: " + path);
  std::fprintf(f, "k,E\n");
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    std::fprintf(f, "%zu,%.17g\n", k, spectrum[k]);
  }
  const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
  std::fclose(f);
  PSDNS_REQUIRE(ok, "spectrum write failed: " + path);
}

std::vector<double> read_spectrum_csv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  PSDNS_REQUIRE(f != nullptr, "cannot open spectrum file: " + path);
  char header[64];
  PSDNS_REQUIRE(std::fgets(header, sizeof header, f) != nullptr,
                "empty spectrum file");
  std::vector<double> out;
  std::size_t k = 0;
  double e = 0.0;
  while (std::fscanf(f, "%zu,%lf\n", &k, &e) == 2) {
    if (out.size() <= k) out.resize(k + 1, 0.0);
    out[k] = e;
  }
  std::fclose(f);
  return out;
}

}  // namespace psdns::io
