#include "io/series.hpp"

#include "util/check.hpp"

namespace psdns::io {

SeriesWriter::SeriesWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  PSDNS_REQUIRE(file_ != nullptr, "cannot open series file: " + path);
  std::fprintf(file_,
               "step,time,energy,dissipation,u_max,taylor_scale,"
               "reynolds_lambda,kolmogorov_eta,dt,wall_ms\n");
}

SeriesWriter::~SeriesWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SeriesWriter::append(std::int64_t step, double time,
                          const dns::Diagnostics& d, double dt,
                          double wall_ms) {
  std::fprintf(file_,
               "%lld,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
               static_cast<long long>(step), time, d.energy, d.dissipation,
               d.u_max, d.taylor_scale, d.reynolds_lambda, d.kolmogorov_eta,
               dt, wall_ms);
  std::fflush(file_);
}

void write_spectrum_csv(const std::string& path,
                        const std::vector<double>& spectrum) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PSDNS_REQUIRE(f != nullptr, "cannot open spectrum file: " + path);
  std::fprintf(f, "k,E\n");
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    std::fprintf(f, "%zu,%.17g\n", k, spectrum[k]);
  }
  std::fclose(f);
}

std::vector<double> read_spectrum_csv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  PSDNS_REQUIRE(f != nullptr, "cannot open spectrum file: " + path);
  char header[64];
  PSDNS_REQUIRE(std::fgets(header, sizeof header, f) != nullptr,
                "empty spectrum file");
  std::vector<double> out;
  std::size_t k = 0;
  double e = 0.0;
  while (std::fscanf(f, "%zu,%lf\n", &k, &e) == 2) {
    if (out.size() <= k) out.resize(k + 1, 0.0);
    out[k] = e;
  }
  std::fclose(f);
  return out;
}

}  // namespace psdns::io
