#pragma once
// Plain-text outputs for post-processing: a CSV time series of flow
// statistics (the quantity-of-interest log every production DNS keeps) and
// spectrum snapshots. Rows are flushed as they are appended, so a killed
// run keeps everything it logged; IO failures throw (naming the file)
// instead of silently dropping data.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dns/solver.hpp"

namespace psdns::io {

/// Appends one CSV row per call: step,time,energy,dissipation,u_max,
/// taylor_scale,reynolds_lambda,kolmogorov_eta,dt,wall_ms. Call from
/// rank 0 only. dt/wall_ms are the per-step driver stats; callers without
/// stepping context may leave them 0.
///
/// The constructor throws util::Error (naming the path) when the file
/// cannot be opened; append() throws when the underlying stream errors.
/// Every row is flushed immediately.
class SeriesWriter {
 public:
  enum class Mode {
    Truncate,  // fresh file, header written
    Append,    // continue an interrupted run; header only if file is empty
  };

  explicit SeriesWriter(const std::string& path, Mode mode = Mode::Truncate);
  ~SeriesWriter();
  SeriesWriter(const SeriesWriter&) = delete;
  SeriesWriter& operator=(const SeriesWriter&) = delete;

  void append(std::int64_t step, double time, const dns::Diagnostics& d,
              double dt = 0.0, double wall_ms = 0.0);

 private:
  std::FILE* file_;
  std::string path_;
};

/// Writes "k,E(k)" rows. Call from rank 0 only. Throws util::Error naming
/// the path on open or write failure.
void write_spectrum_csv(const std::string& path,
                        const std::vector<double>& spectrum);

/// Reads back a spectrum CSV (for tests and plotting tools).
std::vector<double> read_spectrum_csv(const std::string& path);

}  // namespace psdns::io
