#pragma once
// Performance model of MPI_ALLTOALL on Summit's dual-rail EDR InfiniBand
// fat-tree, calibrated against Table 2 of the paper.
//
// The model composes four effects, each visible in the paper's data:
//   1. A saturating message-size curve g(s) = s / (s + s_half): small P2P
//      messages waste injection bandwidth on per-packet overheads.
//   2. A scale congestion factor C(M) = 1 / (1 + (M/M0)^gamma): at large
//      node counts, adaptive routing and endpoint contention reduce the
//      achievable fraction of injection bandwidth (Table 2 rows 1024, 3072).
//   3. A rank-density penalty rho(tpn): more MPI ranks per node means more
//      peers and more software latency per exchanged byte (case A vs B).
//   4. An eager-protocol floor for messages below the eager threshold:
//      at 3072 nodes case A (53 KB messages) beats case B (470 KB), which
//      the paper attributes to eager limits and hardware acceleration.
//
// Absolute numbers land within ~25% of Table 2; all of the paper's
// orderings (B > A up to 1024 nodes, A > B at 3072, C best at scale) are
// reproduced. bench/table2_a2a_bandwidth prints model vs paper side by side.

#include <cstdint>

namespace psdns::net {

struct AlltoallParams {
  double peak_injection_bw = 21.5e9;  // B/s per node, achievable unidirectional
  double msg_half_saturation = 0.35e6;  // s_half in g(s)
  double congestion_m0 = 3200.0;        // M0 in C(M)
  double congestion_gamma = 1.35;        // gamma in C(M)
  double rank_density_penalty = 0.04;   // rho = 1/(1 + c*min(tpn-2, cap))
  double rank_density_cap = 4.0;        // penalty saturates beyond 6 ranks
  double eager_threshold = 128e3;       // bytes (between Table 2's 53 KB
                                        //   case-A point and the 190 KB one)
  // Degradation of an in-flight all-to-all while GPU transfers are active
  // on the same socket (Sec. 5.2): its rate cap is multiplied by
  // max(floor, p2p / (p2p + half)). Large rendezvous messages pipeline
  // through the contention; small ones suffer badly.
  double interference_floor = 0.02;
  double interference_half = 200e6;
  // MPI_IALLTOALL posted between GPU operations progresses only when the
  // host re-enters the MPI library (no async progress thread), so an
  // overlapped collective sustains a fraction of the blocking rate. This is
  // why "performing MPI asynchronously becomes more expensive than simply
  // waiting for the entire slab" beyond 16 nodes (paper Sec. 6).
  // Effective factor: p + (1-p) * s/(s + half): very large rendezvous
  // messages stream via RDMA with little host involvement once started.
  double nonblocking_progression = 0.8;
  double progression_half = 50e6;
  // GPUDirect RDMA sustains slightly lower all-to-all bandwidth than
  // host-staged injection (address-translation and root-complex path);
  // combined with the D2H already doubling as the pack, this is why the
  // paper measured "no noticeable benefit" from CUDA-aware MPI (Sec. 3.3).
  double gpu_direct_rate_factor = 0.88;
  double eager_floor_bw = 15e9;         // B/s, scaled by C(M)
  double base_latency = 20e-6;          // s per collective
  double per_peer_latency = 1.0e-6;     // s per remote peer per rank
};

class AlltoallModel {
 public:
  explicit AlltoallModel(AlltoallParams params = {}) : p_(params) {}

  const AlltoallParams& params() const { return p_; }

  /// Unidirectional off-node bytes one node must inject during the
  /// all-to-all: each of its tpn ranks sends p2p_bytes to every off-node
  /// rank.
  double offnode_bytes_per_node(int nodes, int tasks_per_node,
                                double p2p_bytes) const;

  /// Effective per-node injection bandwidth (B/s) for P2P messages of the
  /// given size at the given scale.
  double effective_injection_bw(int nodes, int tasks_per_node,
                                double p2p_bytes) const;

  /// Elapsed time of one blocking MPI_ALLTOALL over nodes*tasks_per_node
  /// ranks exchanging p2p_bytes per ordered rank pair.
  double time(int nodes, int tasks_per_node, double p2p_bytes) const;

  /// Paper Eq. 3: BW = 2 * P2P * P * tpn / time (includes on-node messages
  /// in the byte count, matching the paper's convention).
  double reported_bw_per_node(int nodes, int tasks_per_node,
                              double p2p_bytes) const;

 private:
  double size_curve(double bytes) const;
  double congestion(int nodes) const;
  double rank_density(int tasks_per_node) const;

  AlltoallParams p_;
};

}  // namespace psdns::net
