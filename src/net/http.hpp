#pragma once
// Minimal HTTP/1.1 plumbing shared by every control-plane endpoint in the
// repo: the rank-0 metrics peephole (obs::MetricsServer) and the campaign
// service front end (svc::Service). Extracted from obs/metrics_server so
// one socket loop, one request parser and one client exist instead of a
// copy per subsystem.
//
// Server: a background accept thread dispatches each request to one
// user-supplied handler. One request per connection (Connection: close),
// loopback bind by default - these are control planes, not web servers.
// The handler runs on the server thread and must therefore not block on
// work that itself waits for an HTTP response from this server.
//
// Client: blocking GET/POST with a wall-clock timeout covering connect,
// request write and response read (the seed implementation blocked forever
// on a stalled peer). timeout_s <= 0 restores the unbounded behaviour.
//
// Headers: request headers are parsed into HttpRequest::headers (folded
// obs-fold continuations joined with one space), and responses may carry
// custom headers - the trace-id propagation path (X-Psdns-Trace) rides on
// both. The whole request head is bounded (8 KiB, 100 headers); an
// oversized or malformed head is answered with 400, never a hang.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace psdns::net {

/// Ordered header name/value pairs, as received/emitted. Lookups are
/// case-insensitive (RFC 9110); duplicate names keep every occurrence.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive lookup in `headers`; "" when absent (first match wins).
std::string header_get(const HttpHeaders& headers, std::string_view name);

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase as received)
  std::string path;     // request target, e.g. "/jobs/3/result"
  std::string body;     // present on POST/PUT when Content-Length says so
  HttpHeaders headers;  // parsed request headers (folded lines joined)

  /// Case-insensitive header lookup; "" when absent.
  std::string header(std::string_view name) const {
    return header_get(headers, name);
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  HttpHeaders headers;  // extra response headers, emitted verbatim

  static HttpResponse json(std::string body, int status = 200) {
    return HttpResponse{status, "application/json", std::move(body), {}};
  }
  static HttpResponse text(std::string body, int status = 200) {
    return HttpResponse{status, "text/plain", std::move(body), {}};
  }
  static HttpResponse not_found() {
    return HttpResponse{404, "text/plain", "not found\n", {}};
  }
};

/// Serializes one response head + body ("HTTP/1.1 <status> ...").
std::string render_response(const HttpResponse& response);

class HttpServer {
 public:
  struct Options {
    int port = 0;  // 0 = ephemeral; port() reports the bound one
    std::string bind = "127.0.0.1";
  };

  /// Request handler; exceptions escaping it become a 500 response.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, listens and starts the serving thread; throws util::Error
  /// (naming the port) when the socket cannot be bound.
  HttpServer(Options options, Handler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (resolves ephemeral binds).
  int port() const { return port_; }

  /// Requests served so far (all routes, including 404s).
  std::int64_t requests() const { return requests_.load(); }

 private:
  void serve();
  void handle(int client_fd);

  Handler handler_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<std::int64_t> requests_{0};
  std::thread thread_;
};

/// Blocking HTTP GET: returns the response body; `status` (optional)
/// receives the HTTP status code. `timeout_s` bounds the whole exchange
/// (connect + write + read); <= 0 waits forever. `headers` are emitted
/// verbatim after Host; `response_headers` (optional) receives the parsed
/// response headers. Throws util::Error on connect/IO failure or timeout
/// (naming host:port).
std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status = nullptr,
                     double timeout_s = 30.0, const HttpHeaders& headers = {},
                     HttpHeaders* response_headers = nullptr);

/// Blocking HTTP POST of `body` (Content-Type: application/json). Same
/// timeout, header and error contract as http_get.
std::string http_post(const std::string& host, int port,
                      const std::string& path, const std::string& body,
                      int* status = nullptr, double timeout_s = 30.0,
                      const HttpHeaders& headers = {},
                      HttpHeaders* response_headers = nullptr);

}  // namespace psdns::net
