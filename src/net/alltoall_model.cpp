#include "net/alltoall_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace psdns::net {

double AlltoallModel::offnode_bytes_per_node(int nodes, int tasks_per_node,
                                             double p2p_bytes) const {
  const double P = static_cast<double>(nodes) * tasks_per_node;
  return p2p_bytes * tasks_per_node * (P - tasks_per_node);
}

double AlltoallModel::size_curve(double bytes) const {
  return bytes / (bytes + p_.msg_half_saturation);
}

double AlltoallModel::congestion(int nodes) const {
  return 1.0 /
         (1.0 + std::pow(static_cast<double>(nodes) / p_.congestion_m0,
                         p_.congestion_gamma));
}

double AlltoallModel::rank_density(int tasks_per_node) const {
  const double excess =
      std::min(static_cast<double>(std::max(0, tasks_per_node - 2)),
               p_.rank_density_cap);
  return 1.0 / (1.0 + p_.rank_density_penalty * excess);
}

double AlltoallModel::effective_injection_bw(int nodes, int tasks_per_node,
                                             double p2p_bytes) const {
  PSDNS_REQUIRE(nodes >= 1 && tasks_per_node >= 1, "bad communicator shape");
  PSDNS_REQUIRE(p2p_bytes > 0.0, "P2P message size must be positive");
  const double c = congestion(nodes);
  double bw = p_.peak_injection_bw * c * size_curve(p2p_bytes);
  if (p2p_bytes <= p_.eager_threshold) {
    // Eager / hardware-accelerated small-message path (paper Sec. 4.1).
    bw = std::max(bw, p_.eager_floor_bw * c);
  }
  return bw * rank_density(tasks_per_node);
}

double AlltoallModel::time(int nodes, int tasks_per_node,
                           double p2p_bytes) const {
  const double P = static_cast<double>(nodes) * tasks_per_node;
  if (nodes == 1) {
    // Purely on-node exchange; modeled as memory-bandwidth bound elsewhere.
    return p_.base_latency + P * p_.per_peer_latency;
  }
  const double bytes = offnode_bytes_per_node(nodes, tasks_per_node, p2p_bytes);
  const double bw = effective_injection_bw(nodes, tasks_per_node, p2p_bytes);
  const double latency =
      p_.base_latency + (P - tasks_per_node) * p_.per_peer_latency;
  return latency + bytes / bw;
}

double AlltoallModel::reported_bw_per_node(int nodes, int tasks_per_node,
                                           double p2p_bytes) const {
  const double P = static_cast<double>(nodes) * tasks_per_node;
  const double t = time(nodes, tasks_per_node, p2p_bytes);
  return 2.0 * p2p_bytes * P * tasks_per_node / t;
}

}  // namespace psdns::net
