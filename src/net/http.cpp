#include "net/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace psdns::net {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writes the whole buffer, retrying on short writes; false on error.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

const char* reason_of(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Status";
  }
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string trimmed(const std::string& text, std::size_t b, std::size_t e) {
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

constexpr std::size_t kMaxHeadBytes = 8192;
constexpr std::size_t kMaxHeaderCount = 100;

/// Parses the "Name: value" lines of `head` between `pos` and `end`
/// (exclusive; lines are \r\n-terminated, the terminator of the last line
/// may be absent). Folded continuations (lines starting with SP/HT, the
/// deprecated RFC 9112 obs-fold) are joined onto the previous header's
/// value with a single space. Returns false (naming the problem in
/// *error) on a line without a colon, an empty or whitespace-carrying
/// name, a continuation with no header to continue, or too many headers.
bool parse_header_lines(const std::string& head, std::size_t pos,
                        std::size_t end, HttpHeaders* out,
                        std::string* error) {
  while (pos < end) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos || eol > end) eol = end;
    if (eol == pos) {  // blank line inside the head
      pos = eol + 2;
      continue;
    }
    if (head[pos] == ' ' || head[pos] == '\t') {
      if (out->empty()) {
        *error = "folded header line with nothing to continue";
        return false;
      }
      const std::string continuation = trimmed(head, pos, eol);
      if (!continuation.empty()) {
        std::string& value = out->back().second;
        if (!value.empty()) value += ' ';
        value += continuation;
      }
      pos = eol + 2;
      continue;
    }
    const std::size_t colon = head.find(':', pos);
    if (colon == std::string::npos || colon >= eol) {
      *error = "malformed header line (no colon)";
      return false;
    }
    const std::string name = head.substr(pos, colon - pos);
    if (name.empty() ||
        name.find_first_of(" \t") != std::string::npos) {
      *error = "malformed header name";
      return false;
    }
    if (out->size() >= kMaxHeaderCount) {
      *error = "too many headers";
      return false;
    }
    out->emplace_back(name, trimmed(head, colon + 1, eol));
    pos = eol + 2;
  }
  return true;
}

/// Remaining budget in milliseconds for poll(); -1 when unbounded.
int remaining_ms(const util::Stopwatch& watch, double timeout_s) {
  if (timeout_s <= 0.0) return -1;
  const double left = timeout_s - watch.seconds();
  if (left <= 0.0) return 0;
  return static_cast<int>(left * 1e3) + 1;
}

/// Connects to host:port within the timeout budget; returns the fd.
int connect_with_timeout(const std::string& host, int port, double timeout_s,
                         const util::Stopwatch& watch) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) util::raise("http client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    util::raise("http client: bad host " + host);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(watch, timeout_s));
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (ready <= 0 || err != 0) {
      ::close(fd);
      util::raise("http client: cannot connect to " + host + ":" +
                  std::to_string(port) +
                  (ready <= 0 ? " (timeout)" : " (refused)"));
    }
  } else if (rc != 0) {
    ::close(fd);
    util::raise("http client: cannot connect to " + host + ":" +
                std::to_string(port));
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; IO is poll-gated below
  return fd;
}

std::string exchange(const std::string& host, int port,
                     const std::string& request, int* status,
                     double timeout_s,
                     HttpHeaders* response_headers = nullptr) {
  const util::Stopwatch watch;
  const int fd = connect_with_timeout(host, port, timeout_s, watch);
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    util::raise("http client: request write failed to " + host + ":" +
                std::to_string(port));
  }
  std::string response;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int budget = remaining_ms(watch, timeout_s);
    const int ready = ::poll(&pfd, 1, budget);
    if (ready == 0) {
      ::close(fd);
      util::raise("http client: response timed out after " +
                  std::to_string(timeout_s) + "s from " + host + ":" +
                  std::to_string(port));
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      util::raise("http client: poll() failed reading from " + host);
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      util::raise("http client: read failed from " + host + ":" +
                  std::to_string(port));
    }
    if (n == 0) break;  // peer closed: response complete
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    util::raise("http client: malformed response from " + host + ":" +
                std::to_string(port));
  }
  if (status != nullptr) {
    *status = 0;
    const std::size_t sp = response.find(' ');
    if (sp != std::string::npos) {
      *status = std::atoi(response.c_str() + sp + 1);
    }
  }
  if (response_headers != nullptr) {
    response_headers->clear();
    const std::size_t line_end = response.find("\r\n");
    if (line_end != std::string::npos && line_end < head_end) {
      std::string error;
      if (!parse_header_lines(response, line_end + 2, head_end,
                              response_headers, &error)) {
        util::raise("http client: " + error + " in response from " + host +
                    ":" + std::to_string(port));
      }
    }
  }
  return response.substr(head_end + 4);
}

std::string render_request(const std::string& method, const std::string& host,
                           const std::string& path, const HttpHeaders& headers,
                           const std::string* body) {
  std::ostringstream os;
  os << method << " " << path << " HTTP/1.1\r\nHost: " << host << "\r\n";
  for (const auto& [name, value] : headers) {
    os << name << ": " << value << "\r\n";
  }
  if (body != nullptr) {
    os << "Content-Type: application/json\r\nContent-Length: " << body->size()
       << "\r\n";
  }
  os << "Connection: close\r\n\r\n";
  if (body != nullptr) os << *body;
  return os.str();
}

}  // namespace

std::string header_get(const HttpHeaders& headers, std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return "";
}

std::string render_response(const HttpResponse& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << " " << reason_of(response.status)
     << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n";
  for (const auto& [name, value] : response.headers) {
    os << name << ": " << value << "\r\n";
  }
  os << "Connection: close\r\n\r\n" << response.body;
  return os.str();
}

HttpServer::HttpServer(Options options, Handler handler)
    : handler_(std::move(handler)) {
  PSDNS_REQUIRE(options.port >= 0 && options.port <= 65535,
                "http port out of range");
  PSDNS_REQUIRE(handler_ != nullptr, "http server needs a handler");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) util::raise("http server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    util::raise("http server: bad bind address " + options.bind);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    close_fd(listen_fd_);
    util::raise("http server: cannot bind port " +
                std::to_string(options.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  // Self-pipe so the destructor can wake the poll() loop without closing
  // a descriptor another thread is blocked on.
  if (::pipe(stop_pipe_) != 0) {
    close_fd(listen_fd_);
    util::raise("http server: pipe() failed");
  }
  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() {
  const char wake = 'x';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void HttpServer::serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // destructor woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void HttpServer::handle(int client_fd) {
  // Read the request head; cap the read so a garbage peer cannot grow the
  // buffer without bound. POST bodies are read up to Content-Length.
  std::string raw;
  char buf[1024];
  std::size_t head_end = std::string::npos;
  while (raw.size() < kMaxHeadBytes) {
    head_end = raw.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1);
  const auto refuse = [&](const std::string& why) {
    const HttpResponse bad{400, "text/plain", why + "\n", {}};
    const std::string wire = render_response(bad);
    write_all(client_fd, wire.data(), wire.size());
  };
  if (head_end == std::string::npos) {
    // A head that filled the whole budget without terminating is a peer
    // problem worth a diagnosis; a short read is just a dead connection.
    if (raw.size() >= kMaxHeadBytes) refuse("request head too large");
    return;
  }

  HttpRequest request;
  const std::string head = raw.substr(0, head_end);
  const std::size_t sp1 = head.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : head.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    refuse("malformed request line");
    return;
  }
  request.method = head.substr(0, sp1);
  request.path = head.substr(sp1 + 1, sp2 - sp1 - 1);

  std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.size();
  std::string header_error;
  if (!parse_header_lines(head, std::min(line_end + 2, head.size()),
                          head.size(), &request.headers, &header_error)) {
    refuse(header_error);
    return;
  }

  const std::string length_text = request.header("Content-Length");
  std::size_t body_size = 0;
  if (!length_text.empty()) {
    body_size = static_cast<std::size_t>(std::atoll(length_text.c_str()));
    if (body_size > (1u << 20)) {
      refuse("body too large");
      return;
    }
  }
  request.body = raw.substr(head_end + 4);
  while (request.body.size() < body_size) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.body.append(buf, static_cast<std::size_t>(n));
  }
  request.body.resize(std::min(request.body.size(), body_size));

  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response = HttpResponse{500, "text/plain",
                            std::string("internal error: ") + e.what() + "\n"};
  }
  const std::string wire = render_response(response);
  write_all(client_fd, wire.data(), wire.size());
}

std::string http_get(const std::string& host, int port,
                     const std::string& path, int* status, double timeout_s,
                     const HttpHeaders& headers,
                     HttpHeaders* response_headers) {
  const std::string request =
      render_request("GET", host, path, headers, nullptr);
  return exchange(host, port, request, status, timeout_s, response_headers);
}

std::string http_post(const std::string& host, int port,
                      const std::string& path, const std::string& body,
                      int* status, double timeout_s,
                      const HttpHeaders& headers,
                      HttpHeaders* response_headers) {
  const std::string request =
      render_request("POST", host, path, headers, &body);
  return exchange(host, port, request, status, timeout_s, response_headers);
}

}  // namespace psdns::net
