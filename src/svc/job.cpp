#include "svc/job.hpp"

#include <sstream>

#include "dns/solver_config.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::svc {

const char* to_string(Decomposition d) {
  return d == Decomposition::Slab ? "slab" : "pencil";
}

const char* to_string(DealiasMode m) {
  return m == DealiasMode::Truncation ? "truncation" : "phase_shift";
}

Decomposition parse_decomposition(const std::string& name) {
  if (name == "slab") return Decomposition::Slab;
  if (name == "pencil") return Decomposition::Pencil;
  util::raise("unknown decomposition \"" + name + "\" (slab|pencil)");
}

DealiasMode parse_dealias_mode(const std::string& name) {
  if (name == "truncation") return DealiasMode::Truncation;
  if (name == "phase_shift") return DealiasMode::PhaseShift;
  util::raise("unknown dealias mode \"" + name +
              "\" (truncation|phase_shift)");
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued:    return "queued";
    case JobState::Running:   return "running";
    case JobState::Done:      return "done";
    case JobState::Failed:    return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void JobRequest::validate() const {
  PSDNS_REQUIRE(!tenant.empty(), "job tenant must be non-empty");
  PSDNS_REQUIRE(tenant.size() <= 64, "job tenant name too long");
  for (const char c : tenant) {
    PSDNS_REQUIRE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_',
                  "job tenant must be [A-Za-z0-9_-]");
  }
  PSDNS_REQUIRE(n >= 8 && n <= 1024, "job n must be in [8, 1024]");
  PSDNS_REQUIRE(ranks >= 1 && ranks <= 64, "job ranks must be in [1, 64]");
  PSDNS_REQUIRE(scheme == "rk2" || scheme == "rk4",
                "job scheme must be rk2 or rk4");
  PSDNS_REQUIRE(viscosity > 0.0, "job viscosity must be positive");
  PSDNS_REQUIRE(steps >= 1 && steps <= 100000,
                "job steps must be in [1, 100000]");
  PSDNS_REQUIRE(!forcing || forcing_power > 0.0,
                "job forcing_power must be positive when forcing is on");
  PSDNS_REQUIRE(scalars >= 0 && scalars <= 4,
                "job scalars must be in [0, 4]");
  PSDNS_REQUIRE(cfl > 0.0 && max_dt > 0.0,
                "job cfl and max_dt must be positive");
  // Rejects unknown system names with the full expected list.
  const dns::SystemType sys = dns::parse_system_type(system);
  switch (sys) {
    case dns::SystemType::NavierStokes:
      break;
    case dns::SystemType::RotatingNS:
      PSDNS_REQUIRE(rotation_omega > 0.0,
                    "rotating job needs rotation_omega > 0");
      break;
    case dns::SystemType::Boussinesq:
      PSDNS_REQUIRE(brunt_vaisala > 0.0,
                    "boussinesq job needs brunt_vaisala > 0");
      break;
    case dns::SystemType::Mhd:
      PSDNS_REQUIRE(scalars == 0, "mhd job cannot carry passive scalars");
      PSDNS_REQUIRE(resistivity >= 0.0,
                    "mhd job resistivity must be >= 0 (0 means eta = nu)");
      break;
  }
  if (decomposition == Decomposition::Slab) {
    PSDNS_REQUIRE(n % static_cast<std::size_t>(ranks) == 0,
                  "slab job needs ranks dividing n");
  } else {
    // The pencil runner factors ranks into the most square pr x pc grid;
    // both factors must divide the grid.
    int pr = 1;
    for (int r = 1; r * r <= ranks; ++r) {
      if (ranks % r == 0) pr = r;
    }
    const int pc = ranks / pr;
    PSDNS_REQUIRE(n % static_cast<std::size_t>(pr) == 0 &&
                      n % static_cast<std::size_t>(pc) == 0,
                  "pencil job needs the process-grid factors dividing n");
  }
}

std::string JobRequest::canonical() const {
  std::ostringstream os;
  os << "jobv1"
     << "|n=" << n
     << "|decomposition=" << to_string(decomposition)
     << "|ranks=" << ranks
     << "|scheme=" << scheme
     << "|viscosity=" << obs::json_number(viscosity)
     << "|seed=" << seed
     << "|steps=" << steps
     << "|dealias=" << to_string(dealias)
     << "|forcing=" << (forcing ? 1 : 0)
     << "|forcing_power=" << obs::json_number(forcing_power)
     << "|scalars=" << scalars
     << "|cfl=" << obs::json_number(cfl)
     << "|max_dt=" << obs::json_number(max_dt);
  // Appended only for non-default systems, with only the parameter that
  // system reads: every navier_stokes hash (and cached result) predating
  // pluggable systems stays valid, and irrelevant parameters cannot
  // fragment the cache.
  if (system != "navier_stokes") {
    os << "|system=" << system;
    if (system == "rotating") {
      os << "|rotation_omega=" << obs::json_number(rotation_omega);
    } else if (system == "boussinesq") {
      os << "|brunt_vaisala=" << obs::json_number(brunt_vaisala);
    } else if (system == "mhd") {
      os << "|resistivity=" << obs::json_number(resistivity);
    }
  }
  return os.str();
}

std::string JobRequest::hash() const {
  const std::uint64_t h = fnv1a64(canonical());
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(h >> (4 * i)) & 0xF];
  }
  return out;
}

std::string JobRequest::to_json() const {
  std::ostringstream os;
  os << "{\"tenant\":" << obs::json_quote(tenant)
     << ",\"n\":" << n
     << ",\"decomposition\":\"" << to_string(decomposition) << "\""
     << ",\"ranks\":" << ranks
     << ",\"scheme\":\"" << scheme << "\""
     << ",\"viscosity\":" << obs::json_number(viscosity)
     << ",\"seed\":" << seed
     << ",\"steps\":" << steps
     << ",\"dealias\":\"" << to_string(dealias) << "\""
     << ",\"forcing\":" << (forcing ? "true" : "false")
     << ",\"forcing_power\":" << obs::json_number(forcing_power)
     << ",\"scalars\":" << scalars
     << ",\"cfl\":" << obs::json_number(cfl)
     << ",\"max_dt\":" << obs::json_number(max_dt)
     << ",\"system\":" << obs::json_quote(system)
     << ",\"rotation_omega\":" << obs::json_number(rotation_omega)
     << ",\"brunt_vaisala\":" << obs::json_number(brunt_vaisala)
     << ",\"resistivity\":" << obs::json_number(resistivity) << "}";
  return os.str();
}

namespace {

double number_field(const obs::JsonValue& v, const std::string& key) {
  PSDNS_REQUIRE(v.is_number(), "job field \"" + key + "\" must be a number");
  return v.number;
}

std::string string_field(const obs::JsonValue& v, const std::string& key) {
  PSDNS_REQUIRE(v.is_string(), "job field \"" + key + "\" must be a string");
  return v.string;
}

}  // namespace

JobRequest JobRequest::from_json(const std::string& text) {
  const obs::JsonValue doc = obs::json_parse(text);
  PSDNS_REQUIRE(doc.is_object(), "job request must be a JSON object");
  JobRequest req;
  for (const auto& [key, value] : doc.object) {
    if (key == "tenant") {
      req.tenant = string_field(value, key);
    } else if (key == "n") {
      req.n = static_cast<std::size_t>(number_field(value, key));
    } else if (key == "decomposition") {
      req.decomposition = parse_decomposition(string_field(value, key));
    } else if (key == "ranks") {
      req.ranks = static_cast<int>(number_field(value, key));
    } else if (key == "scheme") {
      req.scheme = string_field(value, key);
    } else if (key == "viscosity") {
      req.viscosity = number_field(value, key);
    } else if (key == "seed") {
      req.seed = static_cast<std::uint64_t>(number_field(value, key));
    } else if (key == "steps") {
      req.steps = static_cast<std::int64_t>(number_field(value, key));
    } else if (key == "dealias") {
      req.dealias = parse_dealias_mode(string_field(value, key));
    } else if (key == "forcing") {
      PSDNS_REQUIRE(value.is_bool(), "job field \"forcing\" must be a bool");
      req.forcing = value.boolean;
    } else if (key == "forcing_power") {
      req.forcing_power = number_field(value, key);
    } else if (key == "scalars") {
      req.scalars = static_cast<int>(number_field(value, key));
    } else if (key == "cfl") {
      req.cfl = number_field(value, key);
    } else if (key == "max_dt") {
      req.max_dt = number_field(value, key);
    } else if (key == "system") {
      req.system = string_field(value, key);
    } else if (key == "rotation_omega") {
      req.rotation_omega = number_field(value, key);
    } else if (key == "brunt_vaisala") {
      req.brunt_vaisala = number_field(value, key);
    } else if (key == "resistivity") {
      req.resistivity = number_field(value, key);
    } else {
      util::raise("unknown job request field \"" + key + "\"");
    }
  }
  return req;
}

JobRequest JobRequest::from_config(const util::Config& file) {
  JobRequest req;
  req.tenant = file.get("tenant", req.tenant);
  req.n = static_cast<std::size_t>(
      file.get_int("n", static_cast<std::int64_t>(req.n)));
  req.decomposition =
      parse_decomposition(file.get("decomposition", to_string(req.decomposition)));
  req.ranks = static_cast<int>(file.get_int("ranks", req.ranks));
  req.scheme = file.get("scheme", req.scheme);
  req.viscosity = file.get_double("viscosity", req.viscosity);
  req.seed = static_cast<std::uint64_t>(
      file.get_int("seed", static_cast<std::int64_t>(req.seed)));
  req.steps = file.get_int("steps", req.steps);
  req.dealias = parse_dealias_mode(file.get("dealias", to_string(req.dealias)));
  req.forcing = file.get_bool("forcing", req.forcing);
  req.forcing_power = file.get_double("forcing_power", req.forcing_power);
  req.scalars = static_cast<int>(file.get_int("scalars", req.scalars));
  req.cfl = file.get_double("cfl", req.cfl);
  req.max_dt = file.get_double("max_dt", req.max_dt);
  req.system = file.get("system", req.system);
  req.rotation_omega = file.get_double("rotation_omega", req.rotation_omega);
  req.brunt_vaisala = file.get_double("brunt_vaisala", req.brunt_vaisala);
  req.resistivity = file.get_double("resistivity", req.resistivity);
  const auto unused = file.unused_keys();
  if (!unused.empty()) {
    std::string msg = "unknown job config keys:";
    for (const auto& k : unused) msg += " " + k;
    util::raise(msg);
  }
  return req;
}

std::string JobRecord::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id
     << ",\"hash\":" << obs::json_quote(hash)
     << ",\"trace\":" << obs::json_quote(trace)
     << ",\"state\":\"" << svc::to_string(state) << "\""
     << ",\"tenant\":" << obs::json_quote(request.tenant)
     << ",\"cached\":" << (cached ? "true" : "false")
     << ",\"dispatch_index\":" << dispatch_index
     << ",\"recoveries\":" << recoveries
     << ",\"checkpoints_discarded\":" << checkpoints_discarded
     << ",\"queued_s\":" << obs::json_number(queued_s)
     << ",\"started_s\":" << obs::json_number(started_s)
     << ",\"finished_s\":" << obs::json_number(finished_s)
     << ",\"error\":" << obs::json_quote(error)
     << ",\"request\":" << request.to_json() << "}";
  return os.str();
}

}  // namespace psdns::svc
