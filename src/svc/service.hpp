#pragma once
// The campaign service's HTTP front end: one net::HttpServer routing onto
// a Scheduler + ResultStore pair. This is what `psdns_serve` runs and what
// `psdns_submit` talks to.
//
// Routes:
//   POST /jobs              submit (body: JobRequest JSON) ->
//                           202 {"id":n,"hash":h,"trace":t,"cached":b},
//                           400 invalid request, 503 queue full/draining.
//                           An X-Psdns-Trace request header names the
//                           job's journey trace; the response echoes the
//                           effective (possibly minted) id in the same
//                           header.
//   GET  /jobs/<id>         the JobRecord document (404 unknown id)
//   GET  /jobs/<id>/result  the stored result JSON (404 until Done)
//   GET  /jobs/<id>/trace   the job's merged journey as Chrome trace JSON
//                           (svc.admit -> svc.queue -> svc.schedule ->
//                           svc.run -> svc.store with the solver's
//                           driver.step spans flow-linked below); 404
//                           while tracing is off
//   GET  /queue             depths, tenants, cache counters, live jobs
//   GET  /metrics           Prometheus exposition of the process registry
//                           (svc.* counters, gauges and per-tenant SLO
//                           summary quantiles included)
//   GET  /json              the same reduced snapshot + health as JSON
//                           (what psdns_top --service reads)
//   GET  /health            200 {"status":"ok",...} while accepting,
//                           503 once draining
//   POST /shutdown          starts a graceful drain; wait_shutdown()
//                           unblocks
//   anything else           404

#include <condition_variable>
#include <memory>
#include <mutex>

#include "net/http.hpp"
#include "svc/result_store.hpp"
#include "svc/scheduler.hpp"

namespace psdns::svc {

class Service {
 public:
  /// Opens the store, starts the worker pool and binds the HTTP server.
  /// Throws util::Error when the port cannot be bound.
  explicit Service(ServiceConfig config);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// The bound TCP port (resolves port 0).
  int port() const { return server_->port(); }

  Scheduler& scheduler() { return scheduler_; }
  ResultStore& store() { return store_; }

  /// Marks the service as shutting down (POST /shutdown and the serve
  /// daemon's signal handler both land here). Safe from any thread.
  void request_shutdown();

  /// Blocks until request_shutdown(), then drains the scheduler: every
  /// admitted job finishes, new submissions are refused. The HTTP server
  /// stays up through the drain so in-flight jobs remain observable.
  void wait_shutdown();

  /// True once request_shutdown() has been called (the serve daemon polls
  /// this alongside its signal flag - signal handlers cannot touch the
  /// condition variable).
  bool shutdown_requested() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_requested_;
  }

 private:
  net::HttpResponse handle(const net::HttpRequest& request);
  net::HttpResponse handle_jobs_route(const net::HttpRequest& request);
  std::string metrics_text() const;

  ServiceConfig config_;
  ResultStore store_;
  Scheduler scheduler_;
  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::unique_ptr<net::HttpServer> server_;  // last: handler uses the above
};

}  // namespace psdns::svc
