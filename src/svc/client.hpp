#pragma once
// Retrying HTTP client for the campaign service. net::http_get/http_post
// already bound each exchange with a timeout (the seed client blocked
// forever on a stalled peer); this layer adds the resilience::RetryPolicy
// on top - bounded attempts with deterministic backoff - which the layering
// keeps out of net itself (resilience sits above obs, obs links net).
// psdns_submit talks to the service exclusively through these calls.

#include <string>

#include "net/http.hpp"
#include "resilience/retry.hpp"

namespace psdns::svc {

struct FetchOptions {
  double timeout_s = 10.0;            // per-attempt exchange budget
  resilience::RetryPolicy retry{};    // attempts across timeouts/refusals
  net::HttpHeaders headers{};         // extra request headers (every attempt)
  // When non-null, receives the response headers of the successful
  // attempt (e.g. the X-Psdns-Trace echo). Cleared per attempt.
  net::HttpHeaders* response_headers = nullptr;
};

/// GET http://host:port/path with per-attempt timeout and bounded retry.
/// Returns the body; `status` (optional) receives the HTTP status code.
/// Throws util::Error once the retry budget is exhausted.
std::string fetch(const std::string& host, int port, const std::string& path,
                  int* status = nullptr, const FetchOptions& options = {});

/// POST with the same timeout + retry envelope. Retries re-send the body;
/// service submissions are idempotent by construction (content-addressed),
/// so a duplicate delivery costs a cache hit, not a duplicate run.
std::string post(const std::string& host, int port, const std::string& path,
                 const std::string& body, int* status = nullptr,
                 const FetchOptions& options = {});

}  // namespace psdns::svc
