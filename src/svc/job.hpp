#pragma once
// The campaign service's job model: one JobRequest describes everything
// that determines a simulation's physics and its deterministic outcome -
// grid size, decomposition, rank count, time scheme, physics flags, seed,
// step budget, dealiasing mode. Two requests with equal canonical forms
// produce bitwise-identical results (the solver is deterministic in all of
// these), so the canonical form's hash is a *content address* for the
// result: the result store keys on it and identical re-submissions are
// cache hits instead of recomputations.
//
// The tenant is deliberately NOT part of the canonical form: it names who
// asked (fair-share scheduling, per-tenant accounting), not what was
// asked, and two tenants submitting the same physics should share one
// cached result.

#include <cstdint>
#include <string>

#include "obs/span.hpp"
#include "util/config.hpp"

namespace psdns::svc {

enum class Decomposition { Slab, Pencil };
enum class DealiasMode { Truncation, PhaseShift };

const char* to_string(Decomposition d);
const char* to_string(DealiasMode m);
Decomposition parse_decomposition(const std::string& name);
DealiasMode parse_dealias_mode(const std::string& name);

struct JobRequest {
  std::string tenant = "default";  // accounting identity (not hashed)
  std::size_t n = 32;              // grid size per dimension
  Decomposition decomposition = Decomposition::Slab;
  int ranks = 1;                   // SPMD width the job runs at
  std::string scheme = "rk2";      // rk2 | rk4
  double viscosity = 0.01;
  std::uint64_t seed = 1;          // initial-condition seed
  std::int64_t steps = 8;          // step budget
  DealiasMode dealias = DealiasMode::Truncation;
  bool forcing = false;            // band forcing on/off
  double forcing_power = 0.1;      // energy injection rate when forcing
  int scalars = 0;                 // passive scalar count (Sc = 1)
  double cfl = 0.5;                // stepping limits (affect dt, so hashed)
  double max_dt = 0.01;
  // Equation system (see dns/systems/): navier_stokes | rotating |
  // boussinesq | mhd, plus the per-system physical parameters. The
  // canonical form appends these only for non-default systems, so every
  // pre-existing navier_stokes hash (and its cached result) is preserved.
  std::string system = "navier_stokes";
  double rotation_omega = 1.0;     // rotating: frame rate about z
  double brunt_vaisala = 1.0;      // boussinesq: buoyancy frequency N
  double resistivity = 0.0;        // mhd: eta (0 = magnetic Prandtl 1)

  /// Throws util::Error naming the offending field on any out-of-range or
  /// unserviceable value (n < 8, ranks that do not divide the grid, an
  /// unknown scheme, a non-positive step budget, ...).
  void validate() const;

  /// The canonical serialization the request hash is computed over: a
  /// fixed field order, doubles rendered shortest-round-trip, tenant
  /// excluded. Equal canonical forms imply bitwise-equal results.
  std::string canonical() const;

  /// 16-hex-digit FNV-1a64 of canonical(): the content address of the
  /// result in the store and on disk.
  std::string hash() const;

  std::string to_json() const;

  /// Inverse of to_json(); unknown fields are rejected, absent fields keep
  /// their defaults. Throws util::Error on malformed input. Does not
  /// validate() - callers decide when to.
  static JobRequest from_json(const std::string& text);

  /// Builds a request from "key = value" config text (psdns_submit job
  /// files): tenant, n, decomposition, ranks, scheme, viscosity, seed,
  /// steps, dealias, forcing, forcing_power, scalars, cfl, max_dt, system,
  /// rotation_omega, brunt_vaisala, resistivity. Unknown keys are
  /// rejected.
  static JobRequest from_config(const util::Config& file);
};

/// The job's lifecycle in the scheduler. Cache hits are born Done.
enum class JobState { Queued, Running, Done, Failed, Cancelled };

const char* to_string(JobState state);

/// One submitted job as the service tracks (and serves) it.
struct JobRecord {
  std::int64_t id = -1;       // service-local, monotonically increasing
  JobRequest request;
  std::string hash;           // request.hash(), stamped at submission
  JobState state = JobState::Queued;
  bool cached = false;        // satisfied from the result store
  int dispatch_index = -1;    // position in the global dispatch order
  int recoveries = 0;         // supervisor rollbacks while running
  int checkpoints_discarded = 0;
  std::string error;          // Failed: what the run threw
  double queued_s = 0.0;      // seconds since service start, per phase
  double started_s = 0.0;
  double finished_s = 0.0;
  // Job-journey tracing (empty/zero when tracing is off). The trace id is
  // client-supplied via X-Psdns-Trace or minted deterministically from
  // (hash, id); it is NOT part of the canonical form - identity of a
  // result never depends on how it was observed.
  std::string trace;             // journey trace id
  obs::SpanId root_span = 0;     // the job's svc.admit span
  double trace_queued_s = 0.0;   // trace-clock time of admission

  /// The GET /jobs/<id> document.
  std::string to_json() const;
};

/// FNV-1a 64-bit over `text` (the deterministic request hash primitive).
std::uint64_t fnv1a64(const std::string& text);

}  // namespace psdns::svc
