#pragma once
// The campaign service's job scheduler: a bounded admission queue drained
// by a fixed pool of worker threads, with deterministic per-tenant
// fair-share ordering (stride scheduling). Submissions first consult the
// content-addressed ResultStore - a hit is answered instantly (the record
// is born Done with cached=true) and never occupies a worker.
//
// Fair share: each tenant carries a `pass` value advanced by
// 1/weight on every dispatch. The next job always comes from the queued
// tenant with the minimum pass (ties broken by tenant name, then FIFO by
// job id within the tenant), so a weight-2 tenant is dispatched twice as
// often as a weight-1 tenant under contention, and the whole order is a
// pure function of the submission sequence - the acceptance tests assert
// the exact interleaving. A tenant first seen mid-run starts at the
// current minimum pass so it cannot monopolize the queue with backlog
// credit.
//
// Lifecycle: queued -> running -> done | failed; cancel() takes a still-
// queued job to cancelled. drain() stops admission and waits until the
// queue and all workers are idle - the graceful-shutdown path the serve
// daemon runs on SIGTERM.
//
// Observability: with tracing on, every job gets a journey of causally
// linked spans - svc.admit (handler thread) -> svc.queue (the cross-
// thread wait interval) -> svc.schedule -> svc.run (worker thread, with
// the solver's driver.step spans nested below via a flow edge) ->
// svc.store - keyed by a trace id that is client-supplied or minted
// deterministically from (hash, job id). Per-tenant SLO histograms
// (queue_wait/run/e2e seconds) and fair-share gauges are published into
// the metrics registry; cache hits bump hit counters but never the
// latency histograms, so one tenant's hit-heavy traffic cannot distort
// another's distributions. Every lifecycle transition is appended to the
// JSONL audit log when configured (svc/audit.hpp).

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/audit.hpp"
#include "svc/job.hpp"
#include "svc/result_store.hpp"
#include "util/config.hpp"
#include "util/stopwatch.hpp"

namespace psdns::svc {

struct ServiceConfig {
  int port = 0;                 // HTTP port (0 = ephemeral)
  int max_concurrent = 1;       // worker threads
  int queue_capacity = 64;      // queued (not running) jobs admitted
  std::string cache_dir = "psdns_svc_cache";
  int cache_keep = 32;          // ResultStore keep-K
  std::string workdir = "psdns_svc_work";
  bool trace = false;           // job-journey span tracing (obs/span)
  std::string audit_file;       // JSONL lifecycle audit log ("" = off)
  // Fair-share weights; tenants absent here weigh 1.0.
  std::map<std::string, double> tenant_weights;

  /// Parses the service.* schema: service.port, service.max_concurrent,
  /// service.queue_capacity, service.cache_dir, service.cache_keep,
  /// service.workdir, service.trace, service.audit_file and
  /// service.tenant.<name>.weight. Unknown keys and out-of-range values
  /// are rejected.
  static ServiceConfig from(const util::Config& file);

  /// PSDNS_SVC_{PORT,MAX_CONCURRENT,QUEUE_CAPACITY,CACHE_DIR,CACHE_KEEP,
  /// WORKDIR,TRACE,AUDIT_FILE} override the corresponding fields of
  /// `base`.
  static ServiceConfig with_env(ServiceConfig base);

  void validate() const;
};

class Scheduler {
 public:
  /// The store must outlive the scheduler. `autostart=false` defers the
  /// worker pool until start() - tests submit a whole batch first so the
  /// fair-share dispatch order is independent of worker timing.
  Scheduler(ServiceConfig config, ResultStore& store, bool autostart = true);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void start();

  struct Submission {
    bool accepted = false;
    std::int64_t id = -1;
    bool cached = false;   // answered from the result store
    std::string trace;     // journey trace id of the accepted job
    std::string error;     // why a rejected submission was refused
  };

  /// Validates, consults the cache, then either answers instantly
  /// (cached), enqueues, or rejects (queue full / draining). Throws
  /// util::Error only on an invalid request. `trace_id` (the POST's
  /// X-Psdns-Trace) names the job's journey; when empty a deterministic
  /// id is minted from (hash, job id). Every outcome is audited.
  Submission submit(const JobRequest& request,
                    const std::string& trace_id = "");

  /// Snapshot of one job's record; nullopt for unknown ids.
  std::optional<JobRecord> job(std::int64_t id) const;

  /// The stored result document for a Done job (cache lookup by the job's
  /// hash); nullopt while queued/running/failed or for unknown ids.
  std::optional<std::string> result(std::int64_t id);

  /// Takes a still-queued job to Cancelled; false once it is running or
  /// finished (running jobs are not interrupted - determinism over haste).
  bool cancel(std::int64_t id);

  /// The GET /queue document: depths, per-tenant accounting, cache
  /// counters, and every non-terminal job.
  std::string queue_json() const;

  std::size_t queue_depth() const;
  std::size_t running() const;

  /// Stops admission and blocks until queue and workers are idle.
  /// Submissions after drain() are rejected.
  void drain();

  /// drain() + worker-pool teardown; idempotent (the destructor calls it).
  void shutdown();

 private:
  struct TenantState {
    double weight = 1.0;
    double pass = 0.0;
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t dispatched = 0;
    // Dispatches picked while >= 2 distinct tenants were queued: the only
    // moments fair share had a choice to make, so achieved-vs-target
    // share is measured over these (an uncontended queue trivially gets
    // 100% regardless of weights).
    std::int64_t contended_dispatched = 0;
    std::int64_t cache_hits = 0;
  };

  void worker_loop();
  /// Picks the next job id per fair share; -1 when the queue is empty.
  /// Caller holds mutex_.
  std::int64_t pick_next_locked();
  TenantState& tenant_locked(const std::string& name);
  void publish_gauges_locked();
  /// Appends one lifecycle event to the audit log (no-op when off).
  /// Caller holds mutex_ so seq numbers follow dispatch order.
  void audit_locked(const std::string& event, std::int64_t job,
                    const std::string& trace, const std::string& tenant,
                    const std::string& hash, bool cached,
                    const std::string& detail);
  double now() const { return uptime_.seconds(); }

  ServiceConfig config_;
  ResultStore& store_;
  util::Stopwatch uptime_;
  std::unique_ptr<AuditLog> audit_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: queue non-empty / stopping
  std::condition_variable idle_cv_;   // drain(): queue empty and none running
  std::map<std::int64_t, JobRecord> jobs_;
  std::vector<std::int64_t> queue_;   // queued ids, submission order
  std::map<std::string, TenantState> tenants_;
  std::vector<std::thread> workers_;
  std::int64_t next_id_ = 1;
  std::int64_t audit_seq_ = 0;
  std::int64_t contended_total_ = 0;
  int dispatch_counter_ = 0;
  int running_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t rejected_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace psdns::svc
