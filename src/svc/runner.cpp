#include "svc/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <vector>

#include "comm/communicator.hpp"
#include "dns/pencil_solver.hpp"
#include "driver/campaign.hpp"
#include "io/checkpoint.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace fs = std::filesystem;

namespace {

std::string diagnostics_json(const dns::Diagnostics& d) {
  std::ostringstream os;
  os << "{\"energy\":" << obs::json_number(d.energy)
     << ",\"dissipation\":" << obs::json_number(d.dissipation)
     << ",\"u_max\":" << obs::json_number(d.u_max)
     << ",\"max_divergence\":" << obs::json_number(d.max_divergence)
     << ",\"taylor_scale\":" << obs::json_number(d.taylor_scale)
     << ",\"reynolds_lambda\":" << obs::json_number(d.reynolds_lambda)
     << ",\"kolmogorov_eta\":" << obs::json_number(d.kolmogorov_eta) << "}";
  return os.str();
}

std::string spectrum_json(const std::vector<double>& spectrum) {
  std::ostringstream os;
  os << "[";
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    if (k != 0) os << ",";
    os << obs::json_number(spectrum[k]);
  }
  os << "]";
  return os.str();
}

std::string result_json(const JobRequest& request, std::int64_t steps_run,
                        double final_time, const dns::Diagnostics& d,
                        const std::vector<double>& spectrum,
                        const std::string& checkpoint_name) {
  std::ostringstream os;
  os << "{\"schema\":\"psdns.svc.result.v1\""
     << ",\"hash\":\"" << request.hash() << "\""
     << ",\"system\":" << obs::json_quote(request.system)
     << ",\"request\":" << request.to_json()
     << ",\"steps_run\":" << steps_run
     << ",\"final_time\":" << obs::json_number(final_time)
     << ",\"diagnostics\":" << diagnostics_json(d)
     << ",\"spectrum\":" << spectrum_json(spectrum)
     << ",\"checkpoint\":" << obs::json_quote(checkpoint_name) << "}";
  return os.str();
}

dns::SolverConfig solver_config(const JobRequest& request) {
  dns::SolverConfig sc;
  sc.n = request.n;
  sc.viscosity = request.viscosity;
  sc.scheme = request.scheme == "rk4" ? dns::TimeScheme::RK4
                                      : dns::TimeScheme::RK2;
  sc.phase_shift_dealias = request.dealias == DealiasMode::PhaseShift;
  sc.forcing.enabled = request.forcing;
  sc.forcing.power = request.forcing_power;
  sc.scalars.assign(static_cast<std::size_t>(request.scalars),
                    dns::ScalarConfig{});
  sc.system = dns::parse_system_type(request.system);
  sc.rotation_omega = request.rotation_omega;
  sc.brunt_vaisala = request.brunt_vaisala;
  sc.resistivity = request.resistivity;
  return sc;
}

JobOutcome run_slab_job(const JobRequest& request, const std::string& workdir,
                        const std::string& checkpoint_path,
                        obs::FlowId flow) {
  driver::CampaignConfig cfg;
  cfg.solver = solver_config(request);
  cfg.seed = request.seed;
  cfg.max_steps = request.steps;
  cfg.cfl = request.cfl;
  cfg.max_dt = request.max_dt;
  cfg.diagnostics_every = 0;   // the result document is the diagnostic
  cfg.checkpoint_every = 2;    // fault-recovery granularity
  cfg.checkpoint_path = checkpoint_path;
  cfg.metrics_port = -1;       // jobs share the service's endpoint
  cfg.write_trace_at_end = false;  // the service owns the trace lifetime
  (void)workdir;

  JobOutcome outcome;
  comm::run_ranks(request.ranks, [&](comm::Communicator& comm) {
    // Each rank thread roots its solver spans under the job journey.
    obs::TraceSpan rank_span("svc.run", obs::SpanKind::Compute);
    obs::flow_consume(flow);
    const driver::CampaignResult r =
        driver::run_campaign_supervised(comm, cfg);
    if (comm.rank() == 0) {
      outcome.recoveries = r.recoveries;
      outcome.checkpoints_discarded = r.checkpoints_discarded;
      outcome.result_json = result_json(
          request, r.steps_run, r.final_time, r.final_diagnostics,
          r.final_spectrum, fs::path(checkpoint_path).filename().string());
    }
  });
  return outcome;
}

JobOutcome run_pencil_job(const JobRequest& request, obs::FlowId flow) {
  // Most square process grid with pr <= pc.
  int pr = 1;
  for (int r = 1; r * r <= request.ranks; ++r) {
    if (request.ranks % r == 0) pr = r;
  }
  const int pc = request.ranks / pr;

  dns::PencilSolverConfig pcfg;
  const dns::SolverConfig sc = solver_config(request);
  pcfg.n = sc.n;
  pcfg.viscosity = sc.viscosity;
  pcfg.scheme = sc.scheme;
  pcfg.phase_shift_dealias = sc.phase_shift_dealias;
  pcfg.forcing = sc.forcing;
  pcfg.scalars = sc.scalars;
  pcfg.system = sc.system;
  pcfg.rotation_omega = sc.rotation_omega;
  pcfg.brunt_vaisala = sc.brunt_vaisala;
  pcfg.resistivity = sc.resistivity;
  pcfg.pr = pr;
  pcfg.pc = pc;

  JobOutcome outcome;
  comm::run_ranks(request.ranks, [&](comm::Communicator& comm) {
    obs::TraceSpan rank_span("svc.run", obs::SpanKind::Compute);
    obs::flow_consume(flow);
    dns::PencilSolver solver(comm, pcfg);
    solver.init_isotropic(request.seed, 3.0, 0.5);
    for (int s = 0; s < solver.scalar_count(); ++s) {
      solver.init_scalar_isotropic(s, request.seed + 1000 +
                                          static_cast<std::uint64_t>(s),
                                   3.0, 0.25);
    }
    if (solver.magnetic_base() >= 0) {
      solver.init_magnetic_isotropic(request.seed + 2000, 3.0, 0.25);
    }
    for (std::int64_t step = 0; step < request.steps; ++step) {
      const double dt =
          std::min(solver.cfl_dt(request.cfl), request.max_dt);
      solver.step(dt);
    }
    const dns::Diagnostics d = solver.diagnostics();
    const std::vector<double> spectrum = solver.spectrum();
    if (comm.rank() == 0) {
      outcome.result_json = result_json(request, request.steps,
                                        solver.time(), d, spectrum, "");
    }
  });
  return outcome;
}

}  // namespace

JobOutcome run_job(const JobRequest& request, const std::string& workdir,
                   obs::FlowId flow) {
  request.validate();
  std::error_code ec;
  fs::create_directories(workdir, ec);
  PSDNS_REQUIRE(!ec, "cannot create service workdir " + workdir);

  if (request.decomposition == Decomposition::Pencil) {
    return run_pencil_job(request, flow);
  }

  const std::string checkpoint_path =
      (fs::path(workdir) / (request.hash() + ".ckpt")).string();
  // A finished run of this hash leaves its chain behind; run_campaign
  // treats an existing checkpoint as a restart and would overshoot the
  // absolute step budget, so a cold run always starts from a clean slate.
  for (const std::string& link : io::checkpoint_chain(checkpoint_path)) {
    fs::remove(link, ec);
  }
  return run_slab_job(request, workdir, checkpoint_path, flow);
}

}  // namespace psdns::svc
