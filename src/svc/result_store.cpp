#include "svc/result_store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/registry.hpp"
#include "resilience/crc32c.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'P', 'S', 'D', 'N', 'S', 'R', 'E', 'S'};
constexpr std::uint32_t kVersion = 1;

bool looks_like_hash(const std::string& stem) {
  if (stem.size() != 16) return false;
  for (const char c : stem) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

}  // namespace

ResultStore::ResultStore(Options options) : options_(std::move(options)) {
  PSDNS_REQUIRE(!options_.dir.empty(), "result store dir must be non-empty");
  PSDNS_REQUIRE(options_.keep >= 1, "result store keep must be >= 1");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  PSDNS_REQUIRE(!ec, "cannot create result store dir " + options_.dir);

  // Index surviving entries, oldest write first, so results from earlier
  // service runs are the first to go once this run fills the store.
  std::vector<std::pair<fs::file_time_type, std::string>> found;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".res" || !looks_like_hash(p.stem().string())) {
      continue;
    }
    found.emplace_back(entry.last_write_time(ec), p.stem().string());
  }
  std::sort(found.begin(), found.end());
  for (auto& [when, hash] : found) order_.push_back(std::move(hash));
  evict_excess();
}

std::string ResultStore::path_for(const std::string& hash) const {
  return (fs::path(options_.dir) / (hash + ".res")).string();
}

bool ResultStore::read_entry(const std::string& hash, std::string* payload) {
  std::ifstream in(path_for(hash), std::ios::binary);
  if (!in) return false;
  char magic[8];
  std::uint32_t version = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&bytes), sizeof(bytes));
  in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
      version != kVersion || bytes > (64ULL << 20)) {
    return false;
  }
  std::string body(static_cast<std::size_t>(bytes), '\0');
  in.read(body.data(), static_cast<std::streamsize>(bytes));
  if (!in || resilience::crc32c(body.data(), body.size()) != crc) {
    return false;
  }
  *payload = std::move(body);
  return true;
}

std::optional<std::string> ResultStore::lookup(const std::string& hash) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(order_.begin(), order_.end(), hash);
  if (it == order_.end()) {
    ++misses_;
    obs::registry().counter_add("svc.cache.misses");
    return std::nullopt;
  }
  std::string payload;
  if (!read_entry(hash, &payload)) {
    // Truncated or CRC-mismatching entry: drop it and report a miss so the
    // job re-runs instead of serving damaged bytes.
    order_.erase(it);
    std::error_code ec;
    fs::remove(path_for(hash), ec);
    ++misses_;
    obs::registry().counter_add("svc.cache.misses");
    obs::registry().counter_add("svc.cache.corrupt");
    return std::nullopt;
  }
  touch(hash);
  ++hits_;
  obs::registry().counter_add("svc.cache.hits");
  return payload;
}

void ResultStore::insert(const std::string& hash,
                         const std::string& result_json) {
  PSDNS_REQUIRE(looks_like_hash(hash),
                "result store hash must be 16 lowercase hex digits");
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string path = path_for(hash);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PSDNS_REQUIRE(out.good(), "cannot open " + tmp + " for writing");
    const std::uint64_t bytes = result_json.size();
    const std::uint32_t crc =
        resilience::crc32c(result_json.data(), result_json.size());
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    out.write(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(result_json.data(),
              static_cast<std::streamsize>(result_json.size()));
    out.flush();
    PSDNS_REQUIRE(out.good(), "short write to " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  PSDNS_REQUIRE(!ec, "cannot rename " + tmp + " into place");
  touch(hash);
  evict_excess();
}

std::optional<std::string> ResultStore::read(const std::string& hash) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(order_.begin(), order_.end(), hash);
  if (it == order_.end()) return std::nullopt;
  std::string payload;
  if (!read_entry(hash, &payload)) {
    order_.erase(it);
    std::error_code ec;
    fs::remove(path_for(hash), ec);
    return std::nullopt;
  }
  return payload;
}

bool ResultStore::contains(const std::string& hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::find(order_.begin(), order_.end(), hash) != order_.end();
}

void ResultStore::touch(const std::string& hash) {
  const auto it = std::find(order_.begin(), order_.end(), hash);
  if (it != order_.end()) order_.erase(it);
  order_.push_back(hash);
}

void ResultStore::evict_excess() {
  while (order_.size() > static_cast<std::size_t>(options_.keep)) {
    const std::string stale = order_.front();
    order_.erase(order_.begin());
    std::error_code ec;
    fs::remove(path_for(stale), ec);
    ++evictions_;
    obs::registry().counter_add("svc.cache.evictions");
  }
}

std::int64_t ResultStore::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::int64_t ResultStore::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::int64_t ResultStore::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_.size();
}

}  // namespace psdns::svc
