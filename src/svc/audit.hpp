#pragma once
// Structured job-lifecycle audit log for the campaign service: one JSONL
// line per lifecycle transition (submitted, admitted, rejected,
// cache_hit, scheduled, started, completed, failed, cancelled), keyed by
// the job's trace id so a journey can be joined against the span trace
// and the per-tenant SLO metrics. Modeled on obs::SeriesJsonlWriter:
// append-flushed, so a killed daemon keeps every event it logged, and
// replayable - read_audit_jsonl(write(...)) round-trips exactly.
//
// Replay determinism: replay_json() is the event minus its wall-clock
// timestamp. Trace ids are minted deterministically from (content hash,
// job id), and the scheduler emits events under its mutex in dispatch
// order, so two identical submission sequences against fresh services
// produce bitwise-identical replay documents - cache hits marked. That
// makes the audit log evidence (diffable across runs), not just a log.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace psdns::svc {

struct AuditEvent {
  std::int64_t seq = 0;   // per-log monotonic sequence number
  double t_s = 0.0;       // seconds since service start (wall clock)
  std::string event;      // lifecycle transition name (see header comment)
  std::int64_t job = -1;  // service job id; -1 when no record was created
  std::string trace;      // trace id (joins the span journey)
  std::string tenant;
  std::string hash;       // request content address
  bool cached = false;    // answered from the result store
  std::string detail;     // error text for rejected/failed, else ""

  /// One JSON object (single line, JSONL-ready).
  std::string to_json() const;

  /// Inverse of to_json(); throws util::Error on malformed input.
  static AuditEvent parse(const std::string& json);

  /// The deterministic replay form: to_json() without the "t_s" field.
  std::string replay_json() const;
};

/// Append-flushed JSONL audit writer; construction truncates. Throws
/// util::Error (naming the path) on open/write failure.
class AuditLog {
 public:
  explicit AuditLog(const std::string& path);
  ~AuditLog();
  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  void append(const AuditEvent& event);

  const std::string& path() const { return path_; }

 private:
  std::FILE* file_;
  std::string path_;
};

/// Reads every row of an audit JSONL file (blank lines skipped). Throws
/// util::Error on open failure or a malformed row (naming the line).
std::vector<AuditEvent> read_audit_jsonl(const std::string& path);

/// The canonical replay document: one replay_json() line per event.
/// Bitwise-identical across identical submission sequences.
std::string audit_replay(const std::vector<AuditEvent>& events);

}  // namespace psdns::svc
