#include "svc/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "svc/runner.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace {

/// Deterministic journey id for submissions that did not bring their own:
/// "t" + 16-hex FNV-1a64 of "<hash>:<job id>", a pure function of the
/// submission sequence.
std::string mint_trace(const std::string& hash, std::int64_t id) {
  const std::uint64_t h = fnv1a64(hash + ":" + std::to_string(id));
  static const char* digits = "0123456789abcdef";
  std::string out = "t";
  for (int i = 15; i >= 0; --i) {
    out.push_back(digits[(h >> (4 * i)) & 0xF]);
  }
  return out;
}

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  PSDNS_REQUIRE(end != value && *end == '\0',
                std::string(name) + " must be an integer");
  return static_cast<int>(parsed);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : value;
}

bool env_bool(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const std::string s(value);
  if (s == "1" || s == "true" || s == "on") return true;
  if (s == "0" || s == "false" || s == "off") return false;
  util::raise(std::string(name) + " must be 1|true|on|0|false|off");
}

}  // namespace

ServiceConfig ServiceConfig::from(const util::Config& file) {
  ServiceConfig cfg;
  cfg.port = static_cast<int>(file.get_int("service.port", cfg.port));
  cfg.max_concurrent = static_cast<int>(
      file.get_int("service.max_concurrent", cfg.max_concurrent));
  cfg.queue_capacity = static_cast<int>(
      file.get_int("service.queue_capacity", cfg.queue_capacity));
  cfg.cache_dir = file.get("service.cache_dir", cfg.cache_dir);
  cfg.cache_keep =
      static_cast<int>(file.get_int("service.cache_keep", cfg.cache_keep));
  cfg.workdir = file.get("service.workdir", cfg.workdir);
  cfg.trace = file.get_bool("service.trace", cfg.trace);
  cfg.audit_file = file.get("service.audit_file", cfg.audit_file);

  // Everything left must be a tenant weight: service.tenant.<name>.weight.
  const std::string prefix = "service.tenant.";
  const std::string suffix = ".weight";
  for (const std::string& key : file.unused_keys()) {
    PSDNS_REQUIRE(key.size() > prefix.size() + suffix.size() &&
                      key.compare(0, prefix.size(), prefix) == 0 &&
                      key.compare(key.size() - suffix.size(), suffix.size(),
                                  suffix) == 0,
                  "unknown service config key \"" + key + "\"");
    const std::string name = key.substr(
        prefix.size(), key.size() - prefix.size() - suffix.size());
    PSDNS_REQUIRE(!name.empty(), "empty tenant name in \"" + key + "\"");
    const double weight = file.get_double(key, 1.0);
    PSDNS_REQUIRE(weight > 0.0,
                  "tenant weight must be positive in \"" + key + "\"");
    cfg.tenant_weights[name] = weight;
  }
  cfg.validate();
  return cfg;
}

ServiceConfig ServiceConfig::with_env(ServiceConfig base) {
  base.port = env_int("PSDNS_SVC_PORT", base.port);
  base.max_concurrent =
      env_int("PSDNS_SVC_MAX_CONCURRENT", base.max_concurrent);
  base.queue_capacity =
      env_int("PSDNS_SVC_QUEUE_CAPACITY", base.queue_capacity);
  base.cache_dir = env_str("PSDNS_SVC_CACHE_DIR", base.cache_dir);
  base.cache_keep = env_int("PSDNS_SVC_CACHE_KEEP", base.cache_keep);
  base.workdir = env_str("PSDNS_SVC_WORKDIR", base.workdir);
  base.trace = env_bool("PSDNS_SVC_TRACE", base.trace);
  base.audit_file = env_str("PSDNS_SVC_AUDIT_FILE", base.audit_file);
  base.validate();
  return base;
}

void ServiceConfig::validate() const {
  PSDNS_REQUIRE(port >= 0 && port <= 65535,
                "service.port must be in [0, 65535]");
  PSDNS_REQUIRE(max_concurrent >= 1 && max_concurrent <= 64,
                "service.max_concurrent must be in [1, 64]");
  PSDNS_REQUIRE(queue_capacity >= 1,
                "service.queue_capacity must be >= 1");
  PSDNS_REQUIRE(!cache_dir.empty(), "service.cache_dir must be non-empty");
  PSDNS_REQUIRE(cache_keep >= 1, "service.cache_keep must be >= 1");
  PSDNS_REQUIRE(!workdir.empty(), "service.workdir must be non-empty");
  for (const auto& [name, weight] : tenant_weights) {
    PSDNS_REQUIRE(weight > 0.0,
                  "tenant weight must be positive for \"" + name + "\"");
  }
}

Scheduler::Scheduler(ServiceConfig config, ResultStore& store, bool autostart)
    : config_(std::move(config)), store_(store) {
  config_.validate();
  // Enable-without-restart: set_tracing(true) wipes rings and resets the
  // clock origin, which would destroy spans an embedding process (or an
  // earlier PSDNS_TRACE=1) already captured.
  if (config_.trace && !obs::tracing()) obs::set_tracing(true);
  if (!config_.audit_file.empty()) {
    audit_ = std::make_unique<AuditLog>(config_.audit_file);
  }
  if (autostart) start();
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(config_.max_concurrent));
  for (int w = 0; w < config_.max_concurrent; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::TenantState& Scheduler::tenant_locked(const std::string& name) {
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  TenantState fresh;
  const auto weight = config_.tenant_weights.find(name);
  if (weight != config_.tenant_weights.end()) fresh.weight = weight->second;
  // Join at the current minimum pass: a newcomer competes from "now", it
  // does not cash in credit for the time it was absent.
  double min_pass = std::numeric_limits<double>::max();
  for (const auto& [other, state] : tenants_) {
    min_pass = std::min(min_pass, state.pass);
  }
  if (!tenants_.empty()) fresh.pass = min_pass;
  return tenants_.emplace(name, fresh).first->second;
}

void Scheduler::publish_gauges_locked() {
  auto& reg = obs::registry();
  reg.gauge_set("svc.queue.depth", static_cast<double>(queue_.size()));
  reg.gauge_set("svc.jobs.running", static_cast<double>(running_));
  double weight_total = 0.0;
  for (const auto& [name, state] : tenants_) weight_total += state.weight;
  for (const auto& [name, state] : tenants_) {
    const std::string prefix = "svc.tenant." + name + ".";
    reg.gauge_set(prefix + "completed", static_cast<double>(state.completed));
    reg.gauge_set(prefix + "weight", state.weight);
    // Target share is the tenant's weight fraction among tenants seen so
    // far; achieved share is its fraction of contended dispatches (see
    // TenantState::contended_dispatched). Under sustained contention the
    // two converge - the fairness tests assert exact equality on a
    // pinned interleaving.
    reg.gauge_set(prefix + "target_share",
                  weight_total > 0.0 ? state.weight / weight_total : 0.0);
    const double achieved =
        contended_total_ > 0
            ? static_cast<double>(state.contended_dispatched) /
                  static_cast<double>(contended_total_)
            : (dispatch_counter_ > 0
                   ? static_cast<double>(state.dispatched) /
                         static_cast<double>(dispatch_counter_)
                   : 0.0);
    reg.gauge_set(prefix + "achieved_share", achieved);
    reg.gauge_set(prefix + "cache_hit_rate",
                  state.submitted > 0
                      ? static_cast<double>(state.cache_hits) /
                            static_cast<double>(state.submitted)
                      : 0.0);
  }
}

void Scheduler::audit_locked(const std::string& event, std::int64_t job,
                             const std::string& trace,
                             const std::string& tenant,
                             const std::string& hash, bool cached,
                             const std::string& detail) {
  if (audit_ == nullptr) return;
  AuditEvent e;
  e.seq = audit_seq_++;
  e.t_s = now();
  e.event = event;
  e.job = job;
  e.trace = trace;
  e.tenant = tenant;
  e.hash = hash;
  e.cached = cached;
  e.detail = detail;
  audit_->append(e);
}

Scheduler::Submission Scheduler::submit(const JobRequest& request,
                                        const std::string& trace_id) {
  request.validate();
  const std::string hash = request.hash();
  // The admission leg of the journey runs on the submitting (HTTP
  // handler) thread; the worker side links back to this span's id.
  obs::TraceSpan admit_span("svc.admit", obs::SpanKind::Other);

  const std::lock_guard<std::mutex> lock(mutex_);
  Submission out;
  if (!accepting_) {
    ++rejected_;
    obs::registry().counter_add("svc.jobs.rejected");
    out.error = "service is draining";
    audit_locked("submitted", -1, trace_id, request.tenant, hash, false, "");
    audit_locked("rejected", -1, trace_id, request.tenant, hash, false,
                 out.error);
    return out;
  }

  TenantState& tenant = tenant_locked(request.tenant);
  std::optional<std::string> cached;
  {
    obs::TraceSpan store_span("svc.store", obs::SpanKind::Io);
    cached = store_.lookup(hash);
  }
  if (cached) {
    // Born Done: the stored bytes are exactly what a fresh run would
    // produce, so there is nothing to schedule.
    JobRecord rec;
    rec.id = next_id_++;
    rec.request = request;
    rec.hash = hash;
    rec.state = JobState::Done;
    rec.cached = true;
    rec.queued_s = rec.started_s = rec.finished_s = now();
    rec.trace = trace_id.empty() ? mint_trace(hash, rec.id) : trace_id;
    rec.root_span = admit_span.id();
    ++tenant.submitted;
    ++tenant.cache_hits;
    jobs_.emplace(rec.id, rec);
    audit_locked("submitted", rec.id, rec.trace, request.tenant, hash, true,
                 "");
    audit_locked("cache_hit", rec.id, rec.trace, request.tenant, hash, true,
                 "");
    publish_gauges_locked();
    out.accepted = true;
    out.id = rec.id;
    out.cached = true;
    out.trace = rec.trace;
    return out;
  }

  if (queue_.size() >= static_cast<std::size_t>(config_.queue_capacity)) {
    ++rejected_;
    obs::registry().counter_add("svc.jobs.rejected");
    out.error = "admission queue full";
    audit_locked("submitted", -1, trace_id, request.tenant, hash, false, "");
    audit_locked("rejected", -1, trace_id, request.tenant, hash, false,
                 out.error);
    return out;
  }

  JobRecord rec;
  rec.id = next_id_++;
  rec.request = request;
  rec.hash = hash;
  rec.queued_s = now();
  rec.trace = trace_id.empty() ? mint_trace(hash, rec.id) : trace_id;
  rec.root_span = admit_span.id();
  rec.trace_queued_s = obs::trace_clock();
  ++tenant.submitted;
  jobs_.emplace(rec.id, rec);
  queue_.push_back(rec.id);
  audit_locked("submitted", rec.id, rec.trace, request.tenant, hash, false,
               "");
  audit_locked("admitted", rec.id, rec.trace, request.tenant, hash, false,
               "");
  publish_gauges_locked();
  work_cv_.notify_one();
  out.accepted = true;
  out.id = rec.id;
  out.trace = rec.trace;
  return out;
}

std::int64_t Scheduler::pick_next_locked() {
  if (queue_.empty()) return -1;
  // Tenants with at least one queued job, then the minimum-pass tenant
  // (name breaks ties so the order is total).
  const TenantState* best_state = nullptr;
  std::string best_name;
  for (const std::int64_t id : queue_) {
    const std::string& name = jobs_.at(id).request.tenant;
    const TenantState& state = tenants_.at(name);
    if (best_state == nullptr || state.pass < best_state->pass ||
        (state.pass == best_state->pass && name < best_name)) {
      best_state = &state;
      best_name = name;
    }
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (jobs_.at(*it).request.tenant == best_name) {
      const std::int64_t id = *it;
      queue_.erase(it);
      return id;
    }
  }
  return -1;  // unreachable
}

void Scheduler::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // A dispatch is "contended" when fair share actually had a choice:
    // at least two distinct tenants queued at pick time.
    std::vector<std::string> seen;
    for (const std::int64_t queued : queue_) {
      const std::string& name = jobs_.at(queued).request.tenant;
      if (std::find(seen.begin(), seen.end(), name) == seen.end()) {
        seen.push_back(name);
      }
      if (seen.size() >= 2) break;
    }
    const bool contended = seen.size() >= 2;
    obs::TraceSpan schedule_span("svc.schedule", obs::SpanKind::Other);
    const std::int64_t id = pick_next_locked();
    JobRecord& rec = jobs_.at(id);
    rec.state = JobState::Running;
    rec.started_s = now();
    rec.dispatch_index = dispatch_counter_++;
    TenantState& tenant = tenant_locked(rec.request.tenant);
    tenant.pass += 1.0 / tenant.weight;
    ++tenant.dispatched;
    if (contended) {
      ++tenant.contended_dispatched;
      ++contended_total_;
    }
    // SLO: queue wait is observed at dispatch (cache hits never reach
    // here, so they cannot distort the latency distributions).
    obs::registry().observe(
        "svc.tenant." + rec.request.tenant + ".queue_wait_seconds",
        rec.started_s - rec.queued_s);
    // Journey: materialize the cross-thread wait as a svc.queue span
    // (admitted on the handler thread, dispatched here) and link
    // admit -> queue -> schedule.
    if (rec.root_span != 0) {
      const obs::SpanId queue_span =
          obs::record_span("svc.queue", obs::SpanKind::Other,
                           rec.trace_queued_s, obs::trace_clock());
      obs::link_spans(rec.root_span, queue_span);
      obs::link_spans(queue_span, schedule_span.id());
    }
    audit_locked("scheduled", id, rec.trace, rec.request.tenant, rec.hash,
                 false, "");
    ++running_;
    publish_gauges_locked();
    const JobRequest request = rec.request;
    const std::string hash = rec.hash;
    const std::string trace = rec.trace;
    audit_locked("started", id, trace, request.tenant, hash, false, "");
    lock.unlock();

    const obs::SpanId sched_id = schedule_span.id();
    schedule_span.end();
    JobOutcome outcome;
    std::string error;
    {
      obs::TraceSpan run_span("svc.run", obs::SpanKind::Compute);
      obs::link_spans(sched_id, run_span.id());
      // The rank threads the runner spawns consume this flow, nesting the
      // solver's driver.step spans under the job's journey.
      const obs::FlowId run_flow = obs::new_flow();
      obs::flow_emit(run_flow);
      try {
        outcome = run_job(request, config_.workdir, run_flow);
        obs::TraceSpan store_span("svc.store", obs::SpanKind::Io);
        store_.insert(hash, outcome.result_json);
      } catch (const std::exception& e) {
        error = e.what();
      }
    }

    lock.lock();
    JobRecord& done = jobs_.at(id);
    done.finished_s = now();
    done.recoveries = outcome.recoveries;
    done.checkpoints_discarded = outcome.checkpoints_discarded;
    if (error.empty()) {
      done.state = JobState::Done;
      ++completed_;
      ++tenant_locked(request.tenant).completed;
      obs::registry().counter_add("svc.jobs.completed");
      const std::string prefix = "svc.tenant." + request.tenant + ".";
      obs::registry().observe(prefix + "run_seconds",
                              done.finished_s - done.started_s);
      obs::registry().observe(prefix + "e2e_seconds",
                              done.finished_s - done.queued_s);
      audit_locked("completed", id, trace, request.tenant, hash, false, "");
    } else {
      done.state = JobState::Failed;
      done.error = error;
      ++failed_;
      obs::registry().counter_add("svc.jobs.failed");
      audit_locked("failed", id, trace, request.tenant, hash, false, error);
    }
    --running_;
    publish_gauges_locked();
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

std::optional<JobRecord> Scheduler::job(std::int64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Scheduler::result(std::int64_t id) {
  std::string hash;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Done) {
      return std::nullopt;
    }
    hash = it->second.hash;
  }
  return store_.read(hash);
}

bool Scheduler::cancel(std::int64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto queued = std::find(queue_.begin(), queue_.end(), id);
  if (queued == queue_.end()) return false;
  queue_.erase(queued);
  JobRecord& rec = jobs_.at(id);
  rec.state = JobState::Cancelled;
  rec.finished_s = now();
  audit_locked("cancelled", id, rec.trace, rec.request.tenant, rec.hash,
               false, "");
  publish_gauges_locked();
  if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  return true;
}

std::string Scheduler::queue_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"queued\":" << queue_.size()
     << ",\"running\":" << running_
     << ",\"completed\":" << completed_
     << ",\"failed\":" << failed_
     << ",\"rejected\":" << rejected_
     << ",\"accepting\":" << (accepting_ ? "true" : "false")
     << ",\"cache\":{\"hits\":" << store_.hits()
     << ",\"misses\":" << store_.misses()
     << ",\"evictions\":" << store_.evictions()
     << ",\"entries\":" << store_.size() << "}";
  double weight_total = 0.0;
  for (const auto& [name, state] : tenants_) weight_total += state.weight;
  os << ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, state] : tenants_) {
    if (!first) os << ",";
    first = false;
    os << obs::json_quote(name) << ":{\"weight\":"
       << obs::json_number(state.weight)
       << ",\"submitted\":" << state.submitted
       << ",\"completed\":" << state.completed
       << ",\"dispatched\":" << state.dispatched
       << ",\"cache_hits\":" << state.cache_hits
       << ",\"target_share\":"
       << obs::json_number(weight_total > 0.0 ? state.weight / weight_total
                                              : 0.0)
       << ",\"achieved_share\":"
       << obs::json_number(
              contended_total_ > 0
                  ? static_cast<double>(state.contended_dispatched) /
                        static_cast<double>(contended_total_)
                  : (dispatch_counter_ > 0
                         ? static_cast<double>(state.dispatched) /
                               static_cast<double>(dispatch_counter_)
                         : 0.0))
       << "}";
  }
  // Per-job rows for the psdns_top --service jobs table: equation system
  // and grid size come from the request so mixed-physics campaigns are
  // distinguishable at a glance. Finished jobs stay visible (the table
  // would otherwise be empty the moment a queue drains), bounded to the
  // most recent kQueueJobsMax by id to keep the payload small on
  // long-lived services; jobs_ is id-ordered so the tail is the newest.
  constexpr std::size_t kQueueJobsMax = 32;
  os << "},\"jobs\":[";
  first = true;
  auto it = jobs_.begin();
  if (jobs_.size() > kQueueJobsMax) {
    std::advance(it, jobs_.size() - kQueueJobsMax);
  }
  for (; it != jobs_.end(); ++it) {
    const JobRecord& rec = it->second;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << it->first << ",\"tenant\":"
       << obs::json_quote(rec.request.tenant)
       << ",\"state\":\"" << to_string(rec.state)
       << "\",\"cached\":" << (rec.cached ? "true" : "false")
       << ",\"request\":{\"system\":" << obs::json_quote(rec.request.system)
       << ",\"n\":" << rec.request.n << "}}";
  }
  os << "]}";
  return os.str();
}

std::size_t Scheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t Scheduler::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(running_);
}

void Scheduler::drain() {
  start();  // a never-started scheduler must still be able to drain
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Scheduler::shutdown() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace psdns::svc
