#include "svc/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "svc/runner.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  PSDNS_REQUIRE(end != value && *end == '\0',
                std::string(name) + " must be an integer");
  return static_cast<int>(parsed);
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : value;
}

}  // namespace

ServiceConfig ServiceConfig::from(const util::Config& file) {
  ServiceConfig cfg;
  cfg.port = static_cast<int>(file.get_int("service.port", cfg.port));
  cfg.max_concurrent = static_cast<int>(
      file.get_int("service.max_concurrent", cfg.max_concurrent));
  cfg.queue_capacity = static_cast<int>(
      file.get_int("service.queue_capacity", cfg.queue_capacity));
  cfg.cache_dir = file.get("service.cache_dir", cfg.cache_dir);
  cfg.cache_keep =
      static_cast<int>(file.get_int("service.cache_keep", cfg.cache_keep));
  cfg.workdir = file.get("service.workdir", cfg.workdir);

  // Everything left must be a tenant weight: service.tenant.<name>.weight.
  const std::string prefix = "service.tenant.";
  const std::string suffix = ".weight";
  for (const std::string& key : file.unused_keys()) {
    PSDNS_REQUIRE(key.size() > prefix.size() + suffix.size() &&
                      key.compare(0, prefix.size(), prefix) == 0 &&
                      key.compare(key.size() - suffix.size(), suffix.size(),
                                  suffix) == 0,
                  "unknown service config key \"" + key + "\"");
    const std::string name = key.substr(
        prefix.size(), key.size() - prefix.size() - suffix.size());
    PSDNS_REQUIRE(!name.empty(), "empty tenant name in \"" + key + "\"");
    const double weight = file.get_double(key, 1.0);
    PSDNS_REQUIRE(weight > 0.0,
                  "tenant weight must be positive in \"" + key + "\"");
    cfg.tenant_weights[name] = weight;
  }
  cfg.validate();
  return cfg;
}

ServiceConfig ServiceConfig::with_env(ServiceConfig base) {
  base.port = env_int("PSDNS_SVC_PORT", base.port);
  base.max_concurrent =
      env_int("PSDNS_SVC_MAX_CONCURRENT", base.max_concurrent);
  base.queue_capacity =
      env_int("PSDNS_SVC_QUEUE_CAPACITY", base.queue_capacity);
  base.cache_dir = env_str("PSDNS_SVC_CACHE_DIR", base.cache_dir);
  base.cache_keep = env_int("PSDNS_SVC_CACHE_KEEP", base.cache_keep);
  base.workdir = env_str("PSDNS_SVC_WORKDIR", base.workdir);
  base.validate();
  return base;
}

void ServiceConfig::validate() const {
  PSDNS_REQUIRE(port >= 0 && port <= 65535,
                "service.port must be in [0, 65535]");
  PSDNS_REQUIRE(max_concurrent >= 1 && max_concurrent <= 64,
                "service.max_concurrent must be in [1, 64]");
  PSDNS_REQUIRE(queue_capacity >= 1,
                "service.queue_capacity must be >= 1");
  PSDNS_REQUIRE(!cache_dir.empty(), "service.cache_dir must be non-empty");
  PSDNS_REQUIRE(cache_keep >= 1, "service.cache_keep must be >= 1");
  PSDNS_REQUIRE(!workdir.empty(), "service.workdir must be non-empty");
  for (const auto& [name, weight] : tenant_weights) {
    PSDNS_REQUIRE(weight > 0.0,
                  "tenant weight must be positive for \"" + name + "\"");
  }
}

Scheduler::Scheduler(ServiceConfig config, ResultStore& store, bool autostart)
    : config_(std::move(config)), store_(store) {
  config_.validate();
  if (autostart) start();
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(config_.max_concurrent));
  for (int w = 0; w < config_.max_concurrent; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::TenantState& Scheduler::tenant_locked(const std::string& name) {
  const auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  TenantState fresh;
  const auto weight = config_.tenant_weights.find(name);
  if (weight != config_.tenant_weights.end()) fresh.weight = weight->second;
  // Join at the current minimum pass: a newcomer competes from "now", it
  // does not cash in credit for the time it was absent.
  double min_pass = std::numeric_limits<double>::max();
  for (const auto& [other, state] : tenants_) {
    min_pass = std::min(min_pass, state.pass);
  }
  if (!tenants_.empty()) fresh.pass = min_pass;
  return tenants_.emplace(name, fresh).first->second;
}

void Scheduler::publish_gauges_locked() {
  auto& reg = obs::registry();
  reg.gauge_set("svc.queue.depth", static_cast<double>(queue_.size()));
  reg.gauge_set("svc.jobs.running", static_cast<double>(running_));
  for (const auto& [name, state] : tenants_) {
    reg.gauge_set("svc.tenant." + name + ".completed",
                  static_cast<double>(state.completed));
  }
}

Scheduler::Submission Scheduler::submit(const JobRequest& request) {
  request.validate();
  const std::string hash = request.hash();

  const std::lock_guard<std::mutex> lock(mutex_);
  Submission out;
  if (!accepting_) {
    ++rejected_;
    obs::registry().counter_add("svc.jobs.rejected");
    out.error = "service is draining";
    return out;
  }

  TenantState& tenant = tenant_locked(request.tenant);
  if (const auto cached = store_.lookup(hash)) {
    // Born Done: the stored bytes are exactly what a fresh run would
    // produce, so there is nothing to schedule.
    JobRecord rec;
    rec.id = next_id_++;
    rec.request = request;
    rec.hash = hash;
    rec.state = JobState::Done;
    rec.cached = true;
    rec.queued_s = rec.started_s = rec.finished_s = now();
    ++tenant.submitted;
    jobs_.emplace(rec.id, rec);
    out.accepted = true;
    out.id = rec.id;
    out.cached = true;
    return out;
  }

  if (queue_.size() >= static_cast<std::size_t>(config_.queue_capacity)) {
    ++rejected_;
    obs::registry().counter_add("svc.jobs.rejected");
    out.error = "admission queue full";
    return out;
  }

  JobRecord rec;
  rec.id = next_id_++;
  rec.request = request;
  rec.hash = hash;
  rec.queued_s = now();
  ++tenant.submitted;
  jobs_.emplace(rec.id, rec);
  queue_.push_back(rec.id);
  publish_gauges_locked();
  work_cv_.notify_one();
  out.accepted = true;
  out.id = rec.id;
  return out;
}

std::int64_t Scheduler::pick_next_locked() {
  if (queue_.empty()) return -1;
  // Tenants with at least one queued job, then the minimum-pass tenant
  // (name breaks ties so the order is total).
  const TenantState* best_state = nullptr;
  std::string best_name;
  for (const std::int64_t id : queue_) {
    const std::string& name = jobs_.at(id).request.tenant;
    const TenantState& state = tenants_.at(name);
    if (best_state == nullptr || state.pass < best_state->pass ||
        (state.pass == best_state->pass && name < best_name)) {
      best_state = &state;
      best_name = name;
    }
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (jobs_.at(*it).request.tenant == best_name) {
      const std::int64_t id = *it;
      queue_.erase(it);
      return id;
    }
  }
  return -1;  // unreachable
}

void Scheduler::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::int64_t id = pick_next_locked();
    JobRecord& rec = jobs_.at(id);
    rec.state = JobState::Running;
    rec.started_s = now();
    rec.dispatch_index = dispatch_counter_++;
    TenantState& tenant = tenant_locked(rec.request.tenant);
    tenant.pass += 1.0 / tenant.weight;
    ++running_;
    publish_gauges_locked();
    const JobRequest request = rec.request;
    const std::string hash = rec.hash;
    lock.unlock();

    JobOutcome outcome;
    std::string error;
    try {
      outcome = run_job(request, config_.workdir);
      store_.insert(hash, outcome.result_json);
    } catch (const std::exception& e) {
      error = e.what();
    }

    lock.lock();
    JobRecord& done = jobs_.at(id);
    done.finished_s = now();
    done.recoveries = outcome.recoveries;
    done.checkpoints_discarded = outcome.checkpoints_discarded;
    if (error.empty()) {
      done.state = JobState::Done;
      ++completed_;
      ++tenant_locked(request.tenant).completed;
      obs::registry().counter_add("svc.jobs.completed");
    } else {
      done.state = JobState::Failed;
      done.error = error;
      ++failed_;
      obs::registry().counter_add("svc.jobs.failed");
    }
    --running_;
    publish_gauges_locked();
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

std::optional<JobRecord> Scheduler::job(std::int64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Scheduler::result(std::int64_t id) {
  std::string hash;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::Done) {
      return std::nullopt;
    }
    hash = it->second.hash;
  }
  return store_.read(hash);
}

bool Scheduler::cancel(std::int64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto queued = std::find(queue_.begin(), queue_.end(), id);
  if (queued == queue_.end()) return false;
  queue_.erase(queued);
  JobRecord& rec = jobs_.at(id);
  rec.state = JobState::Cancelled;
  rec.finished_s = now();
  publish_gauges_locked();
  if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  return true;
}

std::string Scheduler::queue_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"queued\":" << queue_.size()
     << ",\"running\":" << running_
     << ",\"completed\":" << completed_
     << ",\"failed\":" << failed_
     << ",\"rejected\":" << rejected_
     << ",\"accepting\":" << (accepting_ ? "true" : "false")
     << ",\"cache\":{\"hits\":" << store_.hits()
     << ",\"misses\":" << store_.misses()
     << ",\"evictions\":" << store_.evictions()
     << ",\"entries\":" << store_.size() << "}";
  os << ",\"tenants\":{";
  bool first = true;
  for (const auto& [name, state] : tenants_) {
    if (!first) os << ",";
    first = false;
    os << obs::json_quote(name) << ":{\"weight\":"
       << obs::json_number(state.weight)
       << ",\"submitted\":" << state.submitted
       << ",\"completed\":" << state.completed << "}";
  }
  os << "},\"jobs\":[";
  first = true;
  for (const auto& [id, rec] : jobs_) {
    if (rec.state != JobState::Queued && rec.state != JobState::Running) {
      continue;
    }
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << id << ",\"tenant\":" << obs::json_quote(
           rec.request.tenant)
       << ",\"state\":\"" << to_string(rec.state) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::size_t Scheduler::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t Scheduler::running() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(running_);
}

void Scheduler::drain() {
  start();  // a never-started scheduler must still be able to drain
  std::unique_lock<std::mutex> lock(mutex_);
  accepting_ = false;
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void Scheduler::shutdown() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace psdns::svc
