#pragma once
// Executes one JobRequest to completion inside the service process. A job
// is a self-contained supervised campaign: the runner spins up the job's
// rank group with comm::run_ranks, advances the requested step budget, and
// renders the outcome as the canonical result JSON the content-addressed
// store persists.
//
// Determinism contract: the result document is a pure function of the
// request's canonical form. It carries no wall-clock values, no service
// identifiers and no recovery counts, so a run that survived injected
// faults (the supervisor rolls back and replays deterministically) stores
// byte-identical results to a fault-free run of the same request.
//
// Slab jobs run under run_campaign_supervised with a per-hash checkpoint
// chain in the service work directory (checkpointing every 2 steps, so a
// mid-job fault replays from the newest checkpoint instead of step 0).
// Any stale chain for the hash is removed first - run_campaign would
// otherwise resume from a finished run's checkpoint and overshoot the step
// budget. Pencil jobs run the same CFL-adaptive loop over PencilSolver
// (ranks factored into the most square pr x pc grid), unsupervised: the
// checkpoint format is slab-specific today.

#include <string>

#include "obs/span.hpp"
#include "svc/job.hpp"

namespace psdns::svc {

struct JobOutcome {
  std::string result_json;       // the stored/served result document
  int recoveries = 0;            // supervisor rollbacks (slab jobs)
  int checkpoints_discarded = 0;
};

/// Runs `request` (validated by the caller) with scratch space under
/// `workdir` (created if missing). Throws on unrecoverable failure - an
/// exhausted recovery budget, an unserviceable request - and the scheduler
/// marks the job Failed with the message. When `flow` is non-zero each
/// rank thread opens an svc.run span consuming it, so with tracing on the
/// solver's driver.step spans hang off the scheduler's job journey (the
/// trace is unaffected when tracing is off - spans and flows are no-ops).
JobOutcome run_job(const JobRequest& request, const std::string& workdir,
                   obs::FlowId flow = 0);

}  // namespace psdns::svc
