#pragma once
// Content-addressed result cache for the campaign service. Results are
// keyed on JobRequest::hash() (the canonical request serialization's
// FNV-1a64), so a re-submitted request is answered from disk instead of
// re-running the solver - the solver is deterministic in everything the
// canonical form captures, which makes the cached bytes bitwise-identical
// to what a fresh run would produce.
//
// Each entry is one file `<dir>/<hash>.res`:
//
//   "PSDNSRES" magic (8 bytes) | u32 version | u64 payload bytes |
//   u32 payload crc32c | payload (the result JSON document)
//
// A short, truncated or CRC-mismatching file is treated as absent and
// removed (the job simply re-runs), mirroring the checkpoint chain's
// fail-safe posture. Capacity is bounded by keep-K LRU eviction: lookup
// and insert both refresh recency, and insert evicts the stalest entries
// beyond `keep`. The store is thread-safe; the scheduler's workers and
// the HTTP front end share one instance.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace psdns::svc {

class ResultStore {
 public:
  struct Options {
    std::string dir;   // created if missing
    int keep = 32;     // max entries retained (>= 1)
  };

  /// Opens (creating the directory if needed) and indexes existing
  /// entries, oldest-first by file write time so pre-existing results
  /// evict before anything touched this run. Throws util::Error when the
  /// directory cannot be created or `keep` < 1.
  explicit ResultStore(Options options);

  /// The result JSON for `hash`, or nullopt on miss. A present-but-corrupt
  /// file counts as a miss and is removed. Refreshes LRU recency and the
  /// hit/miss counters.
  std::optional<std::string> lookup(const std::string& hash);

  /// Persists `result_json` under `hash` (atomically: temp file + rename)
  /// and evicts least-recently-used entries beyond keep-K. Overwriting an
  /// existing hash refreshes its recency.
  void insert(const std::string& hash, const std::string& result_json);

  /// Like lookup() but touching neither recency nor the hit/miss
  /// counters - the service's GET result route reads through this so the
  /// cache statistics reflect scheduling decisions only.
  std::optional<std::string> read(const std::string& hash);

  /// True when `hash` is indexed (no recency refresh, no counter bump).
  bool contains(const std::string& hash) const;

  std::int64_t hits() const;
  std::int64_t misses() const;
  std::int64_t evictions() const;
  std::size_t size() const;

  /// Where `hash` lives (whether or not it exists yet).
  std::string path_for(const std::string& hash) const;

 private:
  bool read_entry(const std::string& hash, std::string* payload);
  void touch(const std::string& hash);  // callers hold mutex_
  void evict_excess();                  // callers hold mutex_

  Options options_;
  mutable std::mutex mutex_;
  // LRU order: front = stalest, back = most recently used.
  std::vector<std::string> order_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace psdns::svc
