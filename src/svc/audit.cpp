#include "svc/audit.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace {

/// Shared body of to_json/replay_json; the wall-clock timestamp is the
/// only field the replay form omits.
std::string event_json(const AuditEvent& e, bool with_time) {
  std::ostringstream os;
  os << "{\"seq\":" << e.seq;
  if (with_time) os << ",\"t_s\":" << obs::json_number(e.t_s);
  os << ",\"event\":" << obs::json_quote(e.event);
  os << ",\"job\":" << e.job;
  os << ",\"trace\":" << obs::json_quote(e.trace);
  os << ",\"tenant\":" << obs::json_quote(e.tenant);
  os << ",\"hash\":" << obs::json_quote(e.hash);
  os << ",\"cached\":" << (e.cached ? "true" : "false");
  os << ",\"detail\":" << obs::json_quote(e.detail);
  os << "}";
  return os.str();
}

}  // namespace

std::string AuditEvent::to_json() const { return event_json(*this, true); }

std::string AuditEvent::replay_json() const {
  return event_json(*this, false);
}

AuditEvent AuditEvent::parse(const std::string& json) {
  const obs::JsonValue doc = obs::json_parse(json);
  PSDNS_REQUIRE(doc.is_object(), "audit event must be a JSON object");
  AuditEvent e;
  e.seq = static_cast<std::int64_t>(doc.at("seq").number);
  e.t_s = doc.at("t_s").number;
  e.event = doc.at("event").string;
  e.job = static_cast<std::int64_t>(doc.at("job").number);
  e.trace = doc.at("trace").string;
  e.tenant = doc.at("tenant").string;
  e.hash = doc.at("hash").string;
  e.cached = doc.at("cached").boolean;
  e.detail = doc.at("detail").string;
  return e;
}

AuditLog::AuditLog(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    util::raise("cannot open audit log for writing: " + path);
  }
}

AuditLog::~AuditLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void AuditLog::append(const AuditEvent& event) {
  const std::string row = event.to_json();
  if (std::fwrite(row.data(), 1, row.size(), file_) != row.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    util::raise("audit log write failed: " + path_);
  }
}

std::vector<AuditEvent> read_audit_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) util::raise("cannot open audit log for reading: " + path);
  std::vector<AuditEvent> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      out.push_back(AuditEvent::parse(line));
    } catch (const std::exception& e) {
      util::raise(path + ":" + std::to_string(lineno) +
                  ": malformed audit row: " + e.what());
    }
  }
  return out;
}

std::string audit_replay(const std::vector<AuditEvent>& events) {
  std::string out;
  for (const auto& e : events) {
    out += e.replay_json();
    out += '\n';
  }
  return out;
}

}  // namespace psdns::svc
