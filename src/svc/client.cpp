#include "svc/client.hpp"

#include "net/http.hpp"

namespace psdns::svc {

std::string fetch(const std::string& host, int port, const std::string& path,
                  int* status, const FetchOptions& options) {
  return resilience::with_retry(
      options.retry, "svc.fetch " + path, [&] {
        if (options.response_headers != nullptr) {
          options.response_headers->clear();
        }
        return net::http_get(host, port, path, status, options.timeout_s,
                             options.headers, options.response_headers);
      });
}

std::string post(const std::string& host, int port, const std::string& path,
                 const std::string& body, int* status,
                 const FetchOptions& options) {
  return resilience::with_retry(
      options.retry, "svc.post " + path, [&] {
        if (options.response_headers != nullptr) {
          options.response_headers->clear();
        }
        return net::http_post(host, port, path, body, status,
                              options.timeout_s, options.headers,
                              options.response_headers);
      });
}

}  // namespace psdns::svc
