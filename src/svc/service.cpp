#include "svc/service.hpp"

#include <cstdlib>
#include <sstream>
#include <string>
#include <unordered_set>

#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/reduce.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace {

std::string error_json(const std::string& message) {
  return "{\"error\":" + obs::json_quote(message) + "}";
}

/// "/jobs/17/result" -> id 17, rest "/result"; false when <id> is not a
/// plain decimal number.
bool parse_job_path(const std::string& path, std::int64_t* id,
                    std::string* rest) {
  const std::string prefix = "/jobs/";
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  std::size_t end = prefix.size();
  while (end < path.size() && path[end] >= '0' && path[end] <= '9') ++end;
  if (end == prefix.size()) return false;
  *id = std::strtoll(path.substr(prefix.size(), end - prefix.size()).c_str(),
                     nullptr, 10);
  *rest = path.substr(end);
  return true;
}

/// The subgraph of the process trace reachable from the job's svc.admit
/// span - over parent -> child nesting and flow edges - rendered as
/// Chrome trace JSON. This is the merged submit-to-result journey: the
/// admit/store spans on the handler thread, the queue/schedule/run spans
/// on the worker, and the solver's driver.step spans the run flow fans
/// out to.
std::string job_trace_json(obs::SpanId root) {
  const obs::SpanTrace full = obs::collect_trace();
  std::unordered_set<obs::SpanId> reachable{root};
  // Fixpoint over the two edge kinds; the graph is acyclic in time but
  // the span list is unordered, so iterate until no growth.
  for (bool grew = true; grew;) {
    grew = false;
    for (const auto& span : full.spans) {
      if (span.parent != 0 && reachable.count(span.parent) != 0 &&
          reachable.insert(span.id).second) {
        grew = true;
      }
    }
    for (const auto& edge : full.edges) {
      if (reachable.count(edge.src) != 0 &&
          reachable.insert(edge.dst).second) {
        grew = true;
      }
    }
  }
  obs::SpanTrace job;
  for (const auto& span : full.spans) {
    if (reachable.count(span.id) != 0) job.spans.push_back(span);
  }
  for (const auto& edge : full.edges) {
    if (reachable.count(edge.src) != 0 && reachable.count(edge.dst) != 0) {
      job.edges.push_back(edge);
    }
  }
  return obs::to_chrome_trace(job);
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      store_(ResultStore::Options{config.cache_dir, config.cache_keep}),
      scheduler_(config, store_) {
  net::HttpServer::Options opts;
  opts.port = config_.port;
  server_ = std::make_unique<net::HttpServer>(
      opts,
      [this](const net::HttpRequest& request) { return handle(request); });
}

Service::~Service() {
  // Stop answering before tearing down the scheduler the handler routes
  // into.
  server_.reset();
  scheduler_.shutdown();
}

void Service::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Service::wait_shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  scheduler_.drain();
}

std::string Service::metrics_text() const {
  // The service is one process, so the cross-rank reducer runs over a
  // single snapshot: same exposition pipeline, count == 1 everywhere.
  const obs::MetricsSnapshot local = obs::registry().snapshot();
  const obs::ReducedSnapshot reduced =
      obs::merge_snapshots({obs::serialize_snapshot(local)});
  return obs::to_prometheus(reduced, obs::HealthReport{});
}

net::HttpResponse Service::handle(const net::HttpRequest& request) {
  obs::registry().counter_add("svc.http.requests");
  if (request.path == "/jobs" && request.method == "POST") {
    JobRequest job;
    try {
      job = JobRequest::from_json(request.body);
      job.validate();
    } catch (const std::exception& e) {
      return net::HttpResponse::json(error_json(e.what()), 400);
    }
    const Scheduler::Submission sub =
        scheduler_.submit(job, request.header("X-Psdns-Trace"));
    if (!sub.accepted) {
      return net::HttpResponse::json(error_json(sub.error), 503);
    }
    std::ostringstream os;
    os << "{\"id\":" << sub.id << ",\"hash\":\"" << job.hash() << "\""
       << ",\"trace\":" << obs::json_quote(sub.trace)
       << ",\"cached\":" << (sub.cached ? "true" : "false") << "}";
    net::HttpResponse response = net::HttpResponse::json(os.str(), 202);
    if (!sub.trace.empty()) {
      response.headers.emplace_back("X-Psdns-Trace", sub.trace);
    }
    return response;
  }
  if (request.path.rfind("/jobs/", 0) == 0 && request.method == "GET") {
    return handle_jobs_route(request);
  }
  if (request.path == "/queue" && request.method == "GET") {
    return net::HttpResponse::json(scheduler_.queue_json());
  }
  if (request.path == "/metrics" && request.method == "GET") {
    return net::HttpResponse{200,
                             "text/plain; version=0.0.4; charset=utf-8",
                             metrics_text(),
                             {}};
  }
  if (request.path == "/json" && request.method == "GET") {
    const obs::MetricsSnapshot local = obs::registry().snapshot();
    const obs::ReducedSnapshot reduced =
        obs::merge_snapshots({obs::serialize_snapshot(local)});
    return net::HttpResponse::json(
        obs::to_exposition_json(reduced, obs::HealthReport{}));
  }
  if (request.path == "/health" && request.method == "GET") {
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool draining = shutdown_requested_;
    const std::string body =
        std::string("{\"status\":\"") + (draining ? "draining" : "ok") +
        "\",\"queued\":" + std::to_string(scheduler_.queue_depth()) +
        ",\"running\":" + std::to_string(scheduler_.running()) + "}";
    return net::HttpResponse::json(body, draining ? 503 : 200);
  }
  if (request.path == "/shutdown" && request.method == "POST") {
    request_shutdown();
    return net::HttpResponse::json("{\"status\":\"draining\"}", 202);
  }
  return net::HttpResponse::not_found();
}

net::HttpResponse Service::handle_jobs_route(const net::HttpRequest& request) {
  std::int64_t id = -1;
  std::string rest;
  if (!parse_job_path(request.path, &id, &rest)) {
    return net::HttpResponse::not_found();
  }
  if (rest.empty()) {
    const auto record = scheduler_.job(id);
    if (!record) {
      return net::HttpResponse::json(error_json("unknown job id"), 404);
    }
    return net::HttpResponse::json(record->to_json());
  }
  if (rest == "/result") {
    const auto record = scheduler_.job(id);
    if (!record) {
      return net::HttpResponse::json(error_json("unknown job id"), 404);
    }
    const auto result = scheduler_.result(id);
    if (!result) {
      return net::HttpResponse::json(
          error_json("no result (job is " +
                     std::string(to_string(record->state)) + ")"),
          404);
    }
    return net::HttpResponse::json(*result);
  }
  if (rest == "/trace") {
    const auto record = scheduler_.job(id);
    if (!record) {
      return net::HttpResponse::json(error_json("unknown job id"), 404);
    }
    if (record->root_span == 0 || !obs::tracing()) {
      return net::HttpResponse::json(
          error_json("no trace for this job (enable service.trace or "
                     "PSDNS_SVC_TRACE=1 before submitting)"),
          404);
    }
    return net::HttpResponse::json(job_trace_json(record->root_span));
  }
  return net::HttpResponse::not_found();
}

}  // namespace psdns::svc
