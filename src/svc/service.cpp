#include "svc/service.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/reduce.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace psdns::svc {

namespace {

std::string error_json(const std::string& message) {
  return "{\"error\":" + obs::json_quote(message) + "}";
}

/// "/jobs/17/result" -> id 17, rest "/result"; false when <id> is not a
/// plain decimal number.
bool parse_job_path(const std::string& path, std::int64_t* id,
                    std::string* rest) {
  const std::string prefix = "/jobs/";
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  std::size_t end = prefix.size();
  while (end < path.size() && path[end] >= '0' && path[end] <= '9') ++end;
  if (end == prefix.size()) return false;
  *id = std::strtoll(path.substr(prefix.size(), end - prefix.size()).c_str(),
                     nullptr, 10);
  *rest = path.substr(end);
  return true;
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(config),
      store_(ResultStore::Options{config.cache_dir, config.cache_keep}),
      scheduler_(config, store_) {
  net::HttpServer::Options opts;
  opts.port = config_.port;
  server_ = std::make_unique<net::HttpServer>(
      opts,
      [this](const net::HttpRequest& request) { return handle(request); });
}

Service::~Service() {
  // Stop answering before tearing down the scheduler the handler routes
  // into.
  server_.reset();
  scheduler_.shutdown();
}

void Service::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Service::wait_shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  scheduler_.drain();
}

std::string Service::metrics_text() const {
  // The service is one process, so the cross-rank reducer runs over a
  // single snapshot: same exposition pipeline, count == 1 everywhere.
  const obs::MetricsSnapshot local = obs::registry().snapshot();
  const obs::ReducedSnapshot reduced =
      obs::merge_snapshots({obs::serialize_snapshot(local)});
  return obs::to_prometheus(reduced, obs::HealthReport{});
}

net::HttpResponse Service::handle(const net::HttpRequest& request) {
  obs::registry().counter_add("svc.http.requests");
  if (request.path == "/jobs" && request.method == "POST") {
    JobRequest job;
    try {
      job = JobRequest::from_json(request.body);
      job.validate();
    } catch (const std::exception& e) {
      return net::HttpResponse::json(error_json(e.what()), 400);
    }
    const Scheduler::Submission sub = scheduler_.submit(job);
    if (!sub.accepted) {
      return net::HttpResponse::json(error_json(sub.error), 503);
    }
    std::ostringstream os;
    os << "{\"id\":" << sub.id << ",\"hash\":\"" << job.hash() << "\""
       << ",\"cached\":" << (sub.cached ? "true" : "false") << "}";
    return net::HttpResponse::json(os.str(), 202);
  }
  if (request.path.rfind("/jobs/", 0) == 0 && request.method == "GET") {
    return handle_jobs_route(request);
  }
  if (request.path == "/queue" && request.method == "GET") {
    return net::HttpResponse::json(scheduler_.queue_json());
  }
  if (request.path == "/metrics" && request.method == "GET") {
    return net::HttpResponse{200,
                             "text/plain; version=0.0.4; charset=utf-8",
                             metrics_text()};
  }
  if (request.path == "/health" && request.method == "GET") {
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool draining = shutdown_requested_;
    const std::string body =
        std::string("{\"status\":\"") + (draining ? "draining" : "ok") +
        "\",\"queued\":" + std::to_string(scheduler_.queue_depth()) +
        ",\"running\":" + std::to_string(scheduler_.running()) + "}";
    return net::HttpResponse::json(body, draining ? 503 : 200);
  }
  if (request.path == "/shutdown" && request.method == "POST") {
    request_shutdown();
    return net::HttpResponse::json("{\"status\":\"draining\"}", 202);
  }
  return net::HttpResponse::not_found();
}

net::HttpResponse Service::handle_jobs_route(const net::HttpRequest& request) {
  std::int64_t id = -1;
  std::string rest;
  if (!parse_job_path(request.path, &id, &rest)) {
    return net::HttpResponse::not_found();
  }
  if (rest.empty()) {
    const auto record = scheduler_.job(id);
    if (!record) {
      return net::HttpResponse::json(error_json("unknown job id"), 404);
    }
    return net::HttpResponse::json(record->to_json());
  }
  if (rest == "/result") {
    const auto record = scheduler_.job(id);
    if (!record) {
      return net::HttpResponse::json(error_json("unknown job id"), 404);
    }
    const auto result = scheduler_.result(id);
    if (!result) {
      return net::HttpResponse::json(
          error_json("no result (job is " +
                     std::string(to_string(record->state)) + ")"),
          404);
    }
    return net::HttpResponse::json(*result);
  }
  return net::HttpResponse::not_found();
}

}  // namespace psdns::svc
