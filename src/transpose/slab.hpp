#pragma once
// Slab (1-D) decomposition and its global transpose (Fig. 1 left, Fig. 2).
//
// Two distributed layouts of a complex field with a reduced x dimension
// (nxh = N/2+1 after the real-to-complex transform):
//
//   Z-slabs ("spectral side"): rank p holds z-planes k in [p*mz, (p+1)*mz);
//     element (i, j, k) lives at a[i + nxh*(j + ny*(k - p*mz))].
//     Full y lines are local -> y transforms possible.
//
//   Y-slabs ("physical side"): rank p holds y-planes j in [p*my, (p+1)*my);
//     element (i, j, k) lives at b[i + nxh*(k + nz*(j - p*my))].
//     Full z and x lines are local -> z and x transforms possible.
//
// The transpose between them is the all-to-all of the paper. It can move an
// x-chunk (pencil) at a time: the slab is split along x into np pencils
// (Fig. 6) so that GPU-sized pieces can be processed and communicated
// independently; Q pencils can be aggregated per all-to-all (Sec. 4.1).

#include <cstddef>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/types.hpp"
#include "util/arena.hpp"

namespace psdns::transpose {

using fft::Complex;

/// Geometry of one slab-decomposed field.
struct SlabGrid {
  std::size_t nxh = 0;  // local (non-decomposed) line dimension
  std::size_t ny = 0;   // second dimension (decomposed in Y-slabs)
  std::size_t nz = 0;   // third dimension (decomposed in Z-slabs)
  int ranks = 1;

  std::size_t my() const { return ny / static_cast<std::size_t>(ranks); }
  std::size_t mz() const { return nz / static_cast<std::size_t>(ranks); }
  std::size_t zslab_elems() const { return nxh * ny * mz(); }
  std::size_t yslab_elems() const { return nxh * nz * my(); }

  void validate() const;
};

/// The x-chunk [x0, x1) covered by pencil `ip` of `np` when splitting a
/// dimension of extent nxh (last pencil absorbs the remainder).
struct PencilRange {
  std::size_t x0 = 0, x1 = 0;
  std::size_t width() const { return x1 - x0; }
};
PencilRange pencil_range(std::size_t nxh, int np, int ip);

/// Distributed transpose between Z-slabs and Y-slabs over a communicator.
/// Multi-variable: `nvars` fields are exchanged in one message (larger P2P
/// messages, as the production code does with the 3 velocity components).
class SlabTranspose {
 public:
  SlabTranspose(comm::Communicator& comm, SlabGrid grid);

  const SlabGrid& grid() const { return grid_; }

  /// Z-slabs -> Y-slabs for the x-chunk [x0, x1). vars_a[v] points at the
  /// v-th variable's Z-slab, vars_b[v] at its Y-slab (written only in the
  /// chunk). Collective.
  void z_to_y_chunk(std::span<const Complex* const> vars_a,
                    std::span<Complex* const> vars_b, std::size_t x0,
                    std::size_t x1);

  /// Y-slabs -> Z-slabs for the x-chunk [x0, x1). Collective.
  void y_to_z_chunk(std::span<const Complex* const> vars_b,
                    std::span<Complex* const> vars_a, std::size_t x0,
                    std::size_t x1);

  /// Whole-field transposes, optionally batched as `np` pencils with Q
  /// pencils aggregated per all-to-all (np % q == 0 not required; the last
  /// group may be smaller).
  void z_to_y(std::span<const Complex* const> vars_a,
              std::span<Complex* const> vars_b, int np = 1, int q = 1);
  void y_to_z(std::span<const Complex* const> vars_b,
              std::span<Complex* const> vars_a, int np = 1, int q = 1);

  // -- pack/unpack primitives, exposed for the asynchronous pipeline (these
  //    are exactly the strided-copy patterns of Sec. 4.2) --

  /// Bytes-free element count of one rank-pair block for a chunk of width w.
  std::size_t block_elems(std::size_t w, std::size_t nvars) const {
    return w * grid_.my() * grid_.mz() * nvars;
  }

  /// Packs the chunk of a Z-slab into the send buffer (destination-major:
  /// send[q] holds the block for rank q; within a block: v, kk, jj, x).
  void pack_z(std::span<const Complex* const> vars_a, std::size_t x0,
              std::size_t x1, std::span<Complex> send) const;

  /// Unpacks a received buffer (source-major) into Y-slabs.
  void unpack_y(std::span<const Complex> recv, std::size_t x0, std::size_t x1,
                std::span<Complex* const> vars_b) const;

  /// Packs the chunk of a Y-slab (destination-major; within a block: v, jj,
  /// kk, x).
  void pack_y(std::span<const Complex* const> vars_b, std::size_t x0,
              std::size_t x1, std::span<Complex> send) const;

  /// Unpacks a received buffer into Z-slabs.
  void unpack_z(std::span<const Complex> recv, std::size_t x0, std::size_t x1,
                std::span<Complex* const> vars_a) const;

 private:
  comm::Communicator& comm_;
  SlabGrid grid_;
  // Message staging checked out of the workspace arena: grown on demand,
  // returned to the pool (not the heap) when the transpose is destroyed.
  mutable util::WorkspaceArena::Handle<Complex> send_, recv_;
};

}  // namespace psdns::transpose
