#pragma once
// Distributed 3-D real<->complex FFTs on top of the slab and pencil
// transposes. These are the "standalone 3D FFT" building blocks the paper's
// DNS is structured around (Sec. 2: the DNS shares its structure and
// performance with 3D FFTs). Transform order follows the paper: x, z, y
// going physical->spectral; y, z, x coming back (Sec. 3.3) for the slab
// backend, x, y, z for the pencil baseline.
//
// DistFft3d is the decomposition-agnostic face of both backends: a solver
// written against it (dns::SpectralNSCore) sees only
//   - batched multi-variable forward/inverse transforms,
//   - the local physical and spectral extents,
//   - a ModeView/PhysView describing how local storage maps to global
//     (kx,ky,kz) / (x,y,z) indices,
//   - the pencil/aggregation batching knobs of Sec. 4.1 (set_batching),
// and runs unchanged on either decomposition.
//
// Both backends are unnormalized: inverse(forward(u)) == N^3 * u.

#include <cstddef>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "fft/types.hpp"
#include "transpose/pencil.hpp"
#include "transpose/slab.hpp"
#include "transpose/views.hpp"
#include "util/arena.hpp"

namespace psdns::transpose {

using fft::Complex;
using fft::Real;

/// Decomposition-agnostic distributed 3-D FFT backend.
class DistFft3d {
 public:
  virtual ~DistFft3d() = default;

  virtual std::size_t n() const = 0;
  /// Local element counts of one variable in each space.
  virtual std::size_t physical_elems() const = 0;
  virtual std::size_t spectral_elems() const = 0;

  /// How this backend's local spectral / physical storage maps to global
  /// wavenumbers / grid indices.
  virtual ModeView mode_view() const = 0;
  virtual PhysView phys_view() const = 0;

  /// Pencil batching of the transposes (Sec. 4.1): np pencils, q pencils
  /// aggregated per all-to-all. Backends without pencil batching accept
  /// and ignore the knobs.
  virtual void set_batching(int np, int q) = 0;
  virtual int pencils() const = 0;
  virtual int pencils_per_alltoall() const = 0;

  /// Physical -> spectral, one or more variables at once (phys[v] and
  /// spec[v] are the v-th variable's local blocks).
  virtual void forward(std::span<const Real* const> phys,
                       std::span<Complex* const> spec) = 0;
  virtual void inverse(std::span<const Complex* const> spec,
                       std::span<Real* const> phys) = 0;

  /// Single-variable convenience (non-virtual, forwards to the batched
  /// entry points).
  void forward(std::span<const Real> phys, std::span<Complex> spec);
  void inverse(std::span<const Complex> spec, std::span<Real> phys);
};

/// Slab-decomposed transform (the new GPU code's layout).
///
/// Physical layout (Y-slabs): r[x + n*(k + n*jj)], y = rank*my + jj.
/// Spectral layout (Z-slabs): a[i + nxh*(j + n*kk)], k = rank*mz + kk.
class SlabFft3d final : public DistFft3d {
 public:
  SlabFft3d(comm::Communicator& comm, std::size_t n);

  std::size_t n() const override { return n_; }
  std::size_t nxh() const { return n_ / 2 + 1; }
  std::size_t my() const { return grid().my(); }
  std::size_t mz() const { return grid().mz(); }
  const SlabGrid& grid() const { return transpose_.grid(); }

  std::size_t physical_elems() const override { return n_ * n_ * my(); }
  std::size_t spectral_elems() const override { return nxh() * n_ * mz(); }

  ModeView mode_view() const override {
    return ModeView::zslab(n_, mz(),
                           static_cast<std::size_t>(comm_.rank()) * mz());
  }
  PhysView phys_view() const override {
    return PhysView::yslab(n_, my(),
                           static_cast<std::size_t>(comm_.rank()) * my());
  }

  void set_batching(int np, int q) override {
    PSDNS_REQUIRE(np >= 1 && q >= 1, "bad pencil grouping");
    np_ = np;
    q_ = q;
  }
  int pencils() const override { return np_; }
  int pencils_per_alltoall() const override { return q_; }

  /// Batched entry points using the configured np/q.
  void forward(std::span<const Real* const> phys,
               std::span<Complex* const> spec) override;
  void inverse(std::span<const Complex* const> spec,
               std::span<Real* const> phys) override;

  /// Explicit-batching variants (np pencils, q per all-to-all).
  void forward(std::span<const Real* const> phys,
               std::span<Complex* const> spec, int np, int q);
  void inverse(std::span<const Complex* const> spec,
               std::span<Real* const> phys, int np, int q);

  /// Single-variable convenience overloads.
  void forward(std::span<const Real> phys, std::span<Complex> spec,
               int np = 1, int q = 1);
  void inverse(std::span<const Complex> spec, std::span<Real> phys,
               int np = 1, int q = 1);

 private:
  comm::Communicator& comm_;
  std::size_t n_;
  SlabTranspose transpose_;
  std::shared_ptr<const fft::PlanR2C> plan_x_;
  std::shared_ptr<const fft::PlanC2C> plan_yz_;
  int np_ = 1, q_ = 1;
  // Per-variable Y-slab scratch, checked out of the workspace arena.
  std::vector<util::WorkspaceArena::Handle<Complex>> work_;
  // Reused per-call pointer arrays (forward/inverse are hot-loop calls).
  std::vector<Complex*> yslab_ptrs_, zslab_ptrs_;
};

/// Pencil-decomposed transform (the CPU baseline's layout).
///
/// Physical layout (X-pencils): r[x + n*(jj + yl*kk)],
///   y = row_rank*yl + jj, z = col_rank*zl + kk.
/// Spectral layout (Z-pencils): pz[k + n*(ii + w*jj)],
///   kx = x_range().x0 + ii, ky = col_rank*yl2 + jj.
class PencilFft3d final : public DistFft3d {
 public:
  PencilFft3d(comm::Communicator& comm, std::size_t n, int pr, int pc);

  std::size_t n() const override { return n_; }
  std::size_t nxh() const { return n_ / 2 + 1; }
  const PencilGrid& grid() const { return transpose_.grid(); }
  PencilRange x_range() const { return transpose_.x_range(); }

  std::size_t physical_elems() const override {
    return n_ * grid().yl() * grid().zl();
  }
  std::size_t spectral_elems() const override {
    return n_ * x_range().width() * grid().yl2();
  }

  ModeView mode_view() const override {
    return ModeView::zpencil(
        n_, x_range().width(), x_range().x0, grid().yl2(),
        static_cast<std::size_t>(transpose_.col_rank()) * grid().yl2());
  }
  PhysView phys_view() const override {
    return PhysView::xpencil(
        n_, grid().yl(),
        static_cast<std::size_t>(transpose_.row_rank()) * grid().yl(),
        grid().zl(),
        static_cast<std::size_t>(transpose_.col_rank()) * grid().zl());
  }

  /// The pencil path always moves whole fields; the knobs are accepted so
  /// solver code can set them uniformly, and reported back as configured.
  void set_batching(int np, int q) override {
    PSDNS_REQUIRE(np >= 1 && q >= 1, "bad pencil grouping");
    np_ = np;
    q_ = q;
  }
  int pencils() const override { return np_; }
  int pencils_per_alltoall() const override { return q_; }

  /// Batched multi-variable entry points (variables transform one after
  /// the other; the pencil transposes are single-field).
  void forward(std::span<const Real* const> phys,
               std::span<Complex* const> spec) override;
  void inverse(std::span<const Complex* const> spec,
               std::span<Real* const> phys) override;

  void forward(std::span<const Real> phys, std::span<Complex> spec);
  void inverse(std::span<const Complex> spec, std::span<Real> phys);

 private:
  std::size_t n_;
  PencilTranspose transpose_;
  std::shared_ptr<const fft::PlanR2C> plan_x_;
  std::shared_ptr<const fft::PlanC2C> plan_yz_;
  int np_ = 1, q_ = 1;
  // Intermediate layouts (X- and Y-pencils) and the inverse() Z-pencil
  // scratch, all checked out of the workspace arena.
  util::WorkspaceArena::Handle<Complex> px_, py_, pz_;
};

}  // namespace psdns::transpose
