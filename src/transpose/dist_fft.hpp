#pragma once
// Distributed 3-D real<->complex FFTs on top of the slab and pencil
// transposes. These are the "standalone 3D FFT" building blocks the paper's
// DNS is structured around (Sec. 2: the DNS shares its structure and
// performance with 3D FFTs). Transform order follows the paper: x, z, y
// going physical->spectral; y, z, x coming back (Sec. 3.3).
//
// Both classes are unnormalized: inverse(forward(u)) == N^3 * u.

#include <cstddef>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "fft/types.hpp"
#include "transpose/pencil.hpp"
#include "transpose/slab.hpp"

namespace psdns::transpose {

using fft::Complex;
using fft::Real;

/// Slab-decomposed transform (the new GPU code's layout).
///
/// Physical layout (Y-slabs): r[x + n*(k + n*jj)], y = rank*my + jj.
/// Spectral layout (Z-slabs): a[i + nxh*(j + n*kk)], k = rank*mz + kk.
class SlabFft3d {
 public:
  SlabFft3d(comm::Communicator& comm, std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t nxh() const { return n_ / 2 + 1; }
  std::size_t my() const { return grid().my(); }
  std::size_t mz() const { return grid().mz(); }
  const SlabGrid& grid() const { return transpose_.grid(); }

  std::size_t physical_elems() const { return n_ * n_ * my(); }
  std::size_t spectral_elems() const { return nxh() * n_ * mz(); }

  /// Physical -> spectral, one or more variables at once. np/q control the
  /// pencil batching of the transpose (np pencils, q per all-to-all).
  void forward(std::span<const Real* const> phys,
               std::span<Complex* const> spec, int np = 1, int q = 1);
  void inverse(std::span<const Complex* const> spec,
               std::span<Real* const> phys, int np = 1, int q = 1);

  /// Single-variable convenience overloads.
  void forward(std::span<const Real> phys, std::span<Complex> spec,
               int np = 1, int q = 1);
  void inverse(std::span<const Complex> spec, std::span<Real> phys,
               int np = 1, int q = 1);

 private:
  comm::Communicator& comm_;
  std::size_t n_;
  SlabTranspose transpose_;
  std::shared_ptr<const fft::PlanR2C> plan_x_;
  std::shared_ptr<const fft::PlanC2C> plan_yz_;
  std::vector<std::vector<Complex>> work_;  // per-variable Y-slab scratch
  // Reused per-call pointer arrays (forward/inverse are hot-loop calls).
  std::vector<Complex*> yslab_ptrs_, zslab_ptrs_;
};

/// Pencil-decomposed transform (the CPU baseline's layout).
///
/// Physical layout (X-pencils): r[x + n*(jj + yl*kk)],
///   y = row_rank*yl + jj, z = col_rank*zl + kk.
/// Spectral layout (Z-pencils): pz[k + n*(ii + w*jj)],
///   kx = x_range().x0 + ii, ky = col_rank*yl2 + jj.
class PencilFft3d {
 public:
  PencilFft3d(comm::Communicator& comm, std::size_t n, int pr, int pc);

  std::size_t n() const { return n_; }
  std::size_t nxh() const { return n_ / 2 + 1; }
  const PencilGrid& grid() const { return transpose_.grid(); }
  PencilRange x_range() const { return transpose_.x_range(); }

  std::size_t physical_elems() const {
    return n_ * grid().yl() * grid().zl();
  }
  std::size_t spectral_elems() const {
    return n_ * x_range().width() * grid().yl2();
  }

  void forward(std::span<const Real> phys, std::span<Complex> spec);
  void inverse(std::span<const Complex> spec, std::span<Real> phys);

 private:
  std::size_t n_;
  PencilTranspose transpose_;
  std::shared_ptr<const fft::PlanR2C> plan_x_;
  std::shared_ptr<const fft::PlanC2C> plan_yz_;
  std::vector<Complex> px_, py_;  // intermediate layouts
  std::vector<Complex> pz_;       // inverse() Z-pencil scratch
};

}  // namespace psdns::transpose
