#pragma once
// Layout-generic views of the data a rank owns, in both spaces:
//
//   ModeView - the local block of Fourier modes. The slab backend stores
//   spectra as Z-slabs (a[i + nxh*(j + N*kk)]) and the pencil baseline as
//   Z-pencils (pz[k + N*(ii + w*jj)]); all spectral physics (projection,
//   dealiasing, integrating factor, RHS assembly, spectra) is written once
//   against this view and shared by both solvers.
//
//   PhysView - the local block of physical grid points. The slab backend
//   holds Y-slabs (r[x + N*(z + N*jj)]) and the pencil baseline X-pencils
//   (r[x + N*(jj + yl*kk)]); initial conditions keyed on *global* grid
//   indices enumerate either layout through this view and therefore
//   produce bit-identical fields on every decomposition and rank count.
//
// Both views live in the transpose layer (which defines the layouts); the
// dns layer re-exports them for its spectral operators.

#include <cstddef>
#include <cstdint>

namespace psdns::transpose {

/// Signed wavenumber of grid index j on an N-point axis: 0..N/2, then
/// negative frequencies N/2+1..N-1 map to j-N.
inline int wrap_wavenumber(std::size_t j, std::size_t n) {
  return j <= n / 2 ? static_cast<int>(j)
                    : static_cast<int>(j) - static_cast<int>(n);
}

/// A rank's local block of modes: three loop dimensions with strides into
/// the storage array and global offsets along the (kx, ky, kz) axes.
/// Loop dimension d runs over axis `axis[d]` with extent `extent[d]`,
/// storage stride `stride[d]`, and global start `offset[d]`.
struct ModeView {
  std::size_t n = 0;  // global N (cubic grid)
  std::size_t extent[3] = {0, 0, 0};
  std::size_t stride[3] = {0, 0, 0};
  std::size_t offset[3] = {0, 0, 0};
  int axis[3] = {0, 1, 2};  // 0 = kx, 1 = ky, 2 = kz

  std::size_t local_modes() const { return extent[0] * extent[1] * extent[2]; }

  /// Z-slab view: index i + nxh*(j + n*kk); kz offset = rank*mz.
  static ModeView zslab(std::size_t n, std::size_t mz, std::size_t z0) {
    const std::size_t nxh = n / 2 + 1;
    ModeView v;
    v.n = n;
    v.extent[0] = nxh;
    v.stride[0] = 1;
    v.offset[0] = 0;
    v.axis[0] = 0;
    v.extent[1] = n;
    v.stride[1] = nxh;
    v.offset[1] = 0;
    v.axis[1] = 1;
    v.extent[2] = mz;
    v.stride[2] = nxh * n;
    v.offset[2] = z0;
    v.axis[2] = 2;
    return v;
  }

  /// Z-pencil view: index k + n*(ii + w*jj); kx offset = x0, ky offset = y0.
  static ModeView zpencil(std::size_t n, std::size_t w, std::size_t x0,
                          std::size_t yl2, std::size_t y0) {
    ModeView v;
    v.n = n;
    v.extent[0] = n;
    v.stride[0] = 1;
    v.offset[0] = 0;
    v.axis[0] = 2;  // fastest dim is kz
    v.extent[1] = w;
    v.stride[1] = n;
    v.offset[1] = x0;
    v.axis[1] = 0;
    v.extent[2] = yl2;
    v.stride[2] = n * w;
    v.offset[2] = y0;
    v.axis[2] = 1;
    return v;
  }
};

/// Calls f(index, kx, ky, kz) for every locally owned mode. kx is in
/// [0, N/2] (reduced axis); ky, kz are signed.
template <class F>
void for_each_mode(const ModeView& v, F&& f) {
  int k[3];  // by axis: k[0]=kx, k[1]=ky, k[2]=kz
  for (std::size_t c2 = 0; c2 < v.extent[2]; ++c2) {
    k[v.axis[2]] = wrap_wavenumber(v.offset[2] + c2, v.n);
    for (std::size_t c1 = 0; c1 < v.extent[1]; ++c1) {
      k[v.axis[1]] = wrap_wavenumber(v.offset[1] + c1, v.n);
      const std::size_t base = v.stride[2] * c2 + v.stride[1] * c1;
      for (std::size_t c0 = 0; c0 < v.extent[0]; ++c0) {
        k[v.axis[0]] = wrap_wavenumber(v.offset[0] + c0, v.n);
        f(base + v.stride[0] * c0, k[0], k[1], k[2]);
      }
    }
  }
}

/// Conjugate-symmetry weight of a mode on the reduced-x grid: interior
/// kx planes represent two modes (+kx and -kx), the kx = 0 and kx = N/2
/// planes represent one.
inline double mode_weight(int kx, std::size_t n) {
  return (kx == 0 || (n % 2 == 0 && kx == static_cast<int>(n / 2))) ? 1.0
                                                                    : 2.0;
}

/// A rank's local block of physical grid points: loop dimension d runs
/// over spatial axis `axis[d]` (0 = x, 1 = y, 2 = z) with storage stride
/// `stride[d]`, extent `extent[d]` and global start `offset[d]`.
struct PhysView {
  std::size_t n = 0;  // global N (cubic grid)
  std::size_t extent[3] = {0, 0, 0};
  std::size_t stride[3] = {0, 0, 0};
  std::size_t offset[3] = {0, 0, 0};
  int axis[3] = {0, 1, 2};

  std::size_t local_points() const {
    return extent[0] * extent[1] * extent[2];
  }

  /// Y-slab layout: index x + n*(z + n*jj); y offset = rank*my.
  static PhysView yslab(std::size_t n, std::size_t my, std::size_t y0) {
    PhysView v;
    v.n = n;
    v.extent[0] = n;
    v.stride[0] = 1;
    v.offset[0] = 0;
    v.axis[0] = 0;
    v.extent[1] = n;
    v.stride[1] = n;
    v.offset[1] = 0;
    v.axis[1] = 2;
    v.extent[2] = my;
    v.stride[2] = n * n;
    v.offset[2] = y0;
    v.axis[2] = 1;
    return v;
  }

  /// X-pencil layout: index x + n*(jj + yl*kk); y offset = row_rank*yl,
  /// z offset = col_rank*zl.
  static PhysView xpencil(std::size_t n, std::size_t yl, std::size_t y0,
                          std::size_t zl, std::size_t z0) {
    PhysView v;
    v.n = n;
    v.extent[0] = n;
    v.stride[0] = 1;
    v.offset[0] = 0;
    v.axis[0] = 0;
    v.extent[1] = yl;
    v.stride[1] = n;
    v.offset[1] = y0;
    v.axis[1] = 1;
    v.extent[2] = zl;
    v.stride[2] = n * yl;
    v.offset[2] = z0;
    v.axis[2] = 2;
    return v;
  }
};

/// Calls f(index, xi, yi, zi) for every locally owned grid point, with
/// (xi, yi, zi) the *global* integer grid indices in [0, N).
template <class F>
void for_each_point(const PhysView& v, F&& f) {
  std::size_t g[3];  // by axis: g[0]=xi, g[1]=yi, g[2]=zi
  for (std::size_t c2 = 0; c2 < v.extent[2]; ++c2) {
    g[v.axis[2]] = v.offset[2] + c2;
    for (std::size_t c1 = 0; c1 < v.extent[1]; ++c1) {
      g[v.axis[1]] = v.offset[1] + c1;
      const std::size_t base = v.stride[2] * c2 + v.stride[1] * c1;
      for (std::size_t c0 = 0; c0 < v.extent[0]; ++c0) {
        g[v.axis[0]] = v.offset[0] + c0;
        f(base + v.stride[0] * c0, g[0], g[1], g[2]);
      }
    }
  }
}

}  // namespace psdns::transpose
