#include "transpose/slab.hpp"

#include "gpu/copy.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::transpose {

void SlabGrid::validate() const {
  PSDNS_REQUIRE(nxh >= 1 && ny >= 1 && nz >= 1, "empty grid");
  PSDNS_REQUIRE(ranks >= 1, "need at least one rank");
  PSDNS_REQUIRE(ny % static_cast<std::size_t>(ranks) == 0,
                "ny must be divisible by the rank count (load balance)");
  PSDNS_REQUIRE(nz % static_cast<std::size_t>(ranks) == 0,
                "nz must be divisible by the rank count (load balance)");
}

PencilRange pencil_range(std::size_t nxh, int np, int ip) {
  PSDNS_REQUIRE(np >= 1 && ip >= 0 && ip < np, "bad pencil index");
  const std::size_t base = nxh / static_cast<std::size_t>(np);
  const std::size_t x0 = base * static_cast<std::size_t>(ip);
  const std::size_t x1 =
      ip == np - 1 ? nxh : base * static_cast<std::size_t>(ip + 1);
  return PencilRange{x0, x1};
}

SlabTranspose::SlabTranspose(comm::Communicator& comm, SlabGrid grid)
    : comm_(comm), grid_(grid) {
  grid_.validate();
  PSDNS_REQUIRE(grid_.ranks == comm.size(),
                "grid rank count must match the communicator");
}

void SlabTranspose::pack_z(std::span<const Complex* const> vars_a,
                           std::size_t x0, std::size_t x1,
                           std::span<Complex> send) const {
  obs::TraceSpan span("transpose.pack_z", obs::SpanKind::Transfer);
  const std::size_t w = x1 - x0;
  const std::size_t my = grid_.my(), mz = grid_.mz();
  const std::size_t block = block_elems(w, vars_a.size());
  PSDNS_REQUIRE(send.size() >= block * static_cast<std::size_t>(comm_.size()),
                "send buffer too small");

  // Every (q, v, kk) copy touches a disjoint destination, so the flattened
  // loop stripes across the worker pool.
  const std::size_t nvars = vars_a.size();
  util::ThreadPool::global().parallel_for(
      "transpose.slab.pack", 0,
      static_cast<std::size_t>(comm_.size()) * nvars * mz,
      [&](std::size_t idx) {
        const std::size_t kk = idx % mz;
        const std::size_t v = (idx / mz) % nvars;
        const std::size_t q = idx / (mz * nvars);
        Complex* out = send.data() + q * block;
        // my rows of w contiguous elements: jj-th row starts at y index
        // q*my + jj within this local z-plane.
        const Complex* src =
            vars_a[v] + x0 + grid_.nxh * (q * my + grid_.ny * kk);
        Complex* dst = out + w * my * (kk + mz * v);
        gpu::memcpy2d(dst, w, src, grid_.nxh, w, my);
      });
}

void SlabTranspose::unpack_y(std::span<const Complex> recv, std::size_t x0,
                             std::size_t x1,
                             std::span<Complex* const> vars_b) const {
  obs::TraceSpan span("transpose.unpack_y", obs::SpanKind::Transfer);
  const std::size_t w = x1 - x0;
  const std::size_t my = grid_.my(), mz = grid_.mz();
  const std::size_t block = block_elems(w, vars_b.size());

  const std::size_t nvars = vars_b.size();
  util::ThreadPool::global().parallel_for(
      "transpose.slab.unpack", 0,
      static_cast<std::size_t>(comm_.size()) * nvars * my,
      [&](std::size_t idx) {
        const std::size_t jj = idx % my;
        const std::size_t v = (idx / my) % nvars;
        const std::size_t p = idx / (my * nvars);
        const Complex* in = recv.data() + p * block;
        // mz rows: the kk-th row lands at z index p*mz + kk of local y jj.
        const Complex* src = in + w * (jj + my * mz * v);
        Complex* dst =
            vars_b[v] + x0 + grid_.nxh * (p * mz + grid_.nz * jj);
        // Source rows are strided by w*my (kk-major within the block).
        gpu::memcpy2d(dst, grid_.nxh, src, w * my, w, mz);
      });
}

void SlabTranspose::pack_y(std::span<const Complex* const> vars_b,
                           std::size_t x0, std::size_t x1,
                           std::span<Complex> send) const {
  obs::TraceSpan span("transpose.pack_y", obs::SpanKind::Transfer);
  const std::size_t w = x1 - x0;
  const std::size_t my = grid_.my(), mz = grid_.mz();
  const std::size_t block = block_elems(w, vars_b.size());
  PSDNS_REQUIRE(send.size() >= block * static_cast<std::size_t>(comm_.size()),
                "send buffer too small");

  const std::size_t nvars = vars_b.size();
  util::ThreadPool::global().parallel_for(
      "transpose.slab.pack", 0,
      static_cast<std::size_t>(comm_.size()) * nvars * my,
      [&](std::size_t idx) {
        const std::size_t jj = idx % my;
        const std::size_t v = (idx / my) % nvars;
        const std::size_t q = idx / (my * nvars);
        Complex* out = send.data() + q * block;
        const Complex* src =
            vars_b[v] + x0 + grid_.nxh * (q * mz + grid_.nz * jj);
        Complex* dst = out + w * mz * (jj + my * v);
        gpu::memcpy2d(dst, w, src, grid_.nxh, w, mz);
      });
}

void SlabTranspose::unpack_z(std::span<const Complex> recv, std::size_t x0,
                             std::size_t x1,
                             std::span<Complex* const> vars_a) const {
  obs::TraceSpan span("transpose.unpack_z", obs::SpanKind::Transfer);
  const std::size_t w = x1 - x0;
  const std::size_t my = grid_.my(), mz = grid_.mz();
  const std::size_t block = block_elems(w, vars_a.size());

  const std::size_t nvars = vars_a.size();
  util::ThreadPool::global().parallel_for(
      "transpose.slab.unpack", 0,
      static_cast<std::size_t>(comm_.size()) * nvars * mz,
      [&](std::size_t idx) {
        const std::size_t kk = idx % mz;
        const std::size_t v = (idx / mz) % nvars;
        const std::size_t p = idx / (mz * nvars);
        const Complex* in = recv.data() + p * block;
        const Complex* src = in + w * (kk + mz * my * v);
        Complex* dst =
            vars_a[v] + x0 + grid_.nxh * (p * my + grid_.ny * kk);
        // jj-major: source rows strided by w*mz; destination rows strided by
        // nxh (consecutive y).
        gpu::memcpy2d(dst, grid_.nxh, src, w * mz, w, my);
      });
}

void SlabTranspose::z_to_y_chunk(std::span<const Complex* const> vars_a,
                                 std::span<Complex* const> vars_b,
                                 std::size_t x0, std::size_t x1) {
  PSDNS_REQUIRE(x1 > x0 && x1 <= grid_.nxh, "bad x-chunk");
  PSDNS_REQUIRE(vars_a.size() == vars_b.size(), "variable count mismatch");
  const std::size_t block = block_elems(x1 - x0, vars_a.size());
  const std::size_t total = block * static_cast<std::size_t>(comm_.size());
  send_.ensure(total);
  recv_.ensure(total);
  pack_z(vars_a, x0, x1, std::span<Complex>(send_.data(), total));
  comm_.alltoall(send_.data(), recv_.data(), block);
  unpack_y(std::span<const Complex>(recv_.data(), total), x0, x1, vars_b);
}

void SlabTranspose::y_to_z_chunk(std::span<const Complex* const> vars_b,
                                 std::span<Complex* const> vars_a,
                                 std::size_t x0, std::size_t x1) {
  PSDNS_REQUIRE(x1 > x0 && x1 <= grid_.nxh, "bad x-chunk");
  PSDNS_REQUIRE(vars_a.size() == vars_b.size(), "variable count mismatch");
  const std::size_t block = block_elems(x1 - x0, vars_b.size());
  const std::size_t total = block * static_cast<std::size_t>(comm_.size());
  send_.ensure(total);
  recv_.ensure(total);
  pack_y(vars_b, x0, x1, std::span<Complex>(send_.data(), total));
  comm_.alltoall(send_.data(), recv_.data(), block);
  unpack_z(std::span<const Complex>(recv_.data(), total), x0, x1, vars_a);
}

void SlabTranspose::z_to_y(std::span<const Complex* const> vars_a,
                           std::span<Complex* const> vars_b, int np, int q) {
  PSDNS_REQUIRE(np >= 1 && q >= 1, "bad pencil grouping");
  for (int ip = 0; ip < np; ip += q) {
    const auto lo = pencil_range(grid_.nxh, np, ip);
    const auto hi = pencil_range(grid_.nxh, np, std::min(ip + q, np) - 1);
    z_to_y_chunk(vars_a, vars_b, lo.x0, hi.x1);
  }
}

void SlabTranspose::y_to_z(std::span<const Complex* const> vars_b,
                           std::span<Complex* const> vars_a, int np, int q) {
  PSDNS_REQUIRE(np >= 1 && q >= 1, "bad pencil grouping");
  for (int ip = 0; ip < np; ip += q) {
    const auto lo = pencil_range(grid_.nxh, np, ip);
    const auto hi = pencil_range(grid_.nxh, np, std::min(ip + q, np) - 1);
    y_to_z_chunk(vars_b, vars_a, lo.x0, hi.x1);
  }
}

}  // namespace psdns::transpose
