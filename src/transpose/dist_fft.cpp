#include "transpose/dist_fft.hpp"

#include "util/check.hpp"

namespace psdns::transpose {

// ---------------------------------------------------------------- SlabFft3d

SlabFft3d::SlabFft3d(comm::Communicator& comm, std::size_t n)
    : comm_(comm),
      n_(n),
      transpose_(comm, SlabGrid{n / 2 + 1, n, n, comm.size()}),
      plan_x_(fft::get_plan_r2c(n)),
      plan_yz_(fft::get_plan(n)) {
  PSDNS_REQUIRE(n >= 2, "grid too small");
}

void SlabFft3d::forward(std::span<const Real* const> phys,
                        std::span<Complex* const> spec, int np, int q) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  const std::size_t nv = phys.size();
  const std::size_t h = nxh();
  if (work_.size() < nv) work_.resize(nv);

  std::vector<Complex*> yslabs(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    auto& w = work_[v];
    if (w.size() < h * n_ * my()) w.resize(h * n_ * my());
    yslabs[v] = w.data();

    // x: real-to-complex on unit-stride lines.
    for (std::size_t jj = 0; jj < my(); ++jj) {
      for (std::size_t k = 0; k < n_; ++k) {
        plan_x_->forward(phys[v] + n_ * (k + n_ * jj),
                         w.data() + h * (k + n_ * jj));
      }
    }
    // z: strided lines (stride nxh) inside the Y-slab.
    for (std::size_t jj = 0; jj < my(); ++jj) {
      for (std::size_t i = 0; i < h; ++i) {
        Complex* line = w.data() + i + h * n_ * jj;
        plan_yz_->transform_strided(fft::Direction::Forward, line,
                                    static_cast<std::ptrdiff_t>(h), line,
                                    static_cast<std::ptrdiff_t>(h));
      }
    }
  }

  // Global transpose to Z-slabs, batched as np pencils / q per all-to-all.
  transpose_.y_to_z(
      std::span<const Complex* const>(
          const_cast<const Complex* const*>(yslabs.data()), nv),
      spec, np, q);

  // y: strided lines (stride nxh) inside the Z-slab.
  for (std::size_t v = 0; v < nv; ++v) {
    for (std::size_t kk = 0; kk < mz(); ++kk) {
      for (std::size_t i = 0; i < h; ++i) {
        Complex* line = spec[v] + i + h * n_ * kk;
        plan_yz_->transform_strided(fft::Direction::Forward, line,
                                    static_cast<std::ptrdiff_t>(h), line,
                                    static_cast<std::ptrdiff_t>(h));
      }
    }
  }
}

void SlabFft3d::inverse(std::span<const Complex* const> spec,
                        std::span<Real* const> phys, int np, int q) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  const std::size_t nv = phys.size();
  const std::size_t h = nxh();
  if (work_.size() < 2 * nv) work_.resize(2 * nv);

  // y-inverse into scratch Z-slabs (the input stays const).
  std::vector<Complex*> zslabs(nv), yslabs(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    auto& wz = work_[v];
    if (wz.size() < h * n_ * mz()) wz.resize(h * n_ * mz());
    zslabs[v] = wz.data();
    std::copy(spec[v], spec[v] + spectral_elems(), wz.data());
    for (std::size_t kk = 0; kk < mz(); ++kk) {
      for (std::size_t i = 0; i < h; ++i) {
        Complex* line = wz.data() + i + h * n_ * kk;
        plan_yz_->transform_strided(fft::Direction::Inverse, line,
                                    static_cast<std::ptrdiff_t>(h), line,
                                    static_cast<std::ptrdiff_t>(h));
      }
    }
    auto& wy = work_[nv + v];
    if (wy.size() < h * n_ * my()) wy.resize(h * n_ * my());
    yslabs[v] = wy.data();
  }

  transpose_.z_to_y(
      std::span<const Complex* const>(
          const_cast<const Complex* const*>(zslabs.data()), nv),
      yslabs, np, q);

  for (std::size_t v = 0; v < nv; ++v) {
    Complex* w = yslabs[v];
    // z-inverse.
    for (std::size_t jj = 0; jj < my(); ++jj) {
      for (std::size_t i = 0; i < h; ++i) {
        Complex* line = w + i + h * n_ * jj;
        plan_yz_->transform_strided(fft::Direction::Inverse, line,
                                    static_cast<std::ptrdiff_t>(h), line,
                                    static_cast<std::ptrdiff_t>(h));
      }
    }
    // x: complex-to-real.
    for (std::size_t jj = 0; jj < my(); ++jj) {
      for (std::size_t k = 0; k < n_; ++k) {
        plan_x_->inverse(w + h * (k + n_ * jj),
                         phys[v] + n_ * (k + n_ * jj));
      }
    }
  }
}

void SlabFft3d::forward(std::span<const Real> phys, std::span<Complex> spec,
                        int np, int q) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Real* p = phys.data();
  Complex* s = spec.data();
  forward(std::span<const Real* const>(&p, 1),
          std::span<Complex* const>(&s, 1), np, q);
}

void SlabFft3d::inverse(std::span<const Complex> spec, std::span<Real> phys,
                        int np, int q) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Complex* s = spec.data();
  Real* p = phys.data();
  inverse(std::span<const Complex* const>(&s, 1),
          std::span<Real* const>(&p, 1), np, q);
}

// -------------------------------------------------------------- PencilFft3d

PencilFft3d::PencilFft3d(comm::Communicator& comm, std::size_t n, int pr,
                         int pc)
    : n_(n),
      transpose_(comm, PencilGrid{n / 2 + 1, n, n, pr, pc}),
      plan_x_(fft::get_plan_r2c(n)),
      plan_yz_(fft::get_plan(n)) {
  PSDNS_REQUIRE(n >= 2, "grid too small");
}

void PencilFft3d::forward(std::span<const Real> phys,
                          std::span<Complex> spec) {
  const auto& g = grid();
  const std::size_t h = nxh(), yl = g.yl(), zl = g.zl();
  const std::size_t w = x_range().width();
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");

  if (px_.size() < h * yl * zl) px_.resize(h * yl * zl);
  if (py_.size() < n_ * w * zl) py_.resize(n_ * w * zl);

  // x: real-to-complex on unit-stride lines of the X-pencil.
  for (std::size_t kk = 0; kk < zl; ++kk) {
    for (std::size_t jj = 0; jj < yl; ++jj) {
      plan_x_->forward(phys.data() + n_ * (jj + yl * kk),
                       px_.data() + h * (jj + yl * kk));
    }
  }

  // Row transpose, then y on contiguous lines of the Y-pencil.
  transpose_.x_to_y(px_, py_);
  for (std::size_t kk = 0; kk < zl; ++kk) {
    for (std::size_t ii = 0; ii < w; ++ii) {
      Complex* line = py_.data() + n_ * (ii + w * kk);
      plan_yz_->transform(fft::Direction::Forward, line, line);
    }
  }

  // Column transpose, then z on contiguous lines of the Z-pencil.
  transpose_.y_to_z(py_, spec);
  for (std::size_t jj = 0; jj < g.yl2(); ++jj) {
    for (std::size_t ii = 0; ii < w; ++ii) {
      Complex* line = spec.data() + n_ * (ii + w * jj);
      plan_yz_->transform(fft::Direction::Forward, line, line);
    }
  }
}

void PencilFft3d::inverse(std::span<const Complex> spec,
                          std::span<Real> phys) {
  const auto& g = grid();
  const std::size_t h = nxh(), yl = g.yl(), zl = g.zl();
  const std::size_t w = x_range().width();
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");

  if (px_.size() < h * yl * zl) px_.resize(h * yl * zl);
  if (py_.size() < n_ * w * zl) py_.resize(n_ * w * zl);

  // z-inverse on a scratch copy of the Z-pencil.
  std::vector<Complex> pz(spec.begin(), spec.begin() + spectral_elems());
  for (std::size_t jj = 0; jj < g.yl2(); ++jj) {
    for (std::size_t ii = 0; ii < w; ++ii) {
      Complex* line = pz.data() + n_ * (ii + w * jj);
      plan_yz_->transform(fft::Direction::Inverse, line, line);
    }
  }

  transpose_.z_to_y(pz, py_);
  for (std::size_t kk = 0; kk < zl; ++kk) {
    for (std::size_t ii = 0; ii < w; ++ii) {
      Complex* line = py_.data() + n_ * (ii + w * kk);
      plan_yz_->transform(fft::Direction::Inverse, line, line);
    }
  }

  transpose_.y_to_x(py_, px_);
  for (std::size_t kk = 0; kk < zl; ++kk) {
    for (std::size_t jj = 0; jj < yl; ++jj) {
      plan_x_->inverse(px_.data() + h * (jj + yl * kk),
                       phys.data() + n_ * (jj + yl * kk));
    }
  }
}

}  // namespace psdns::transpose
