#include "transpose/dist_fft.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::transpose {

using fft::BatchLayout;

// ---------------------------------------------------------------- DistFft3d

void DistFft3d::forward(std::span<const Real> phys, std::span<Complex> spec) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Real* p = phys.data();
  Complex* s = spec.data();
  forward(std::span<const Real* const>(&p, 1),
          std::span<Complex* const>(&s, 1));
}

void DistFft3d::inverse(std::span<const Complex> spec, std::span<Real> phys) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Complex* s = spec.data();
  Real* p = phys.data();
  inverse(std::span<const Complex* const>(&s, 1),
          std::span<Real* const>(&p, 1));
}

// ---------------------------------------------------------------- SlabFft3d

SlabFft3d::SlabFft3d(comm::Communicator& comm, std::size_t n)
    : comm_(comm),
      n_(n),
      transpose_(comm, SlabGrid{n / 2 + 1, n, n, comm.size()}),
      plan_x_(fft::get_plan_r2c(n)),
      plan_yz_(fft::get_plan(n)) {
  PSDNS_REQUIRE(n >= 2, "grid too small");
}

void SlabFft3d::forward(std::span<const Real* const> phys,
                        std::span<Complex* const> spec) {
  forward(phys, spec, np_, q_);
}

void SlabFft3d::inverse(std::span<const Complex* const> spec,
                        std::span<Real* const> phys) {
  inverse(spec, phys, np_, q_);
}

void SlabFft3d::forward(std::span<const Real* const> phys,
                        std::span<Complex* const> spec, int np, int q) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  const std::size_t nv = phys.size();
  const std::size_t h = nxh();
  if (work_.size() < nv) work_.resize(nv);

  if (yslab_ptrs_.size() < nv) yslab_ptrs_.resize(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    auto& w = work_[v];
    w.ensure(h * n_ * my());
    yslab_ptrs_[v] = w.data();

    // x: real-to-complex, all my()*n_ unit-stride lines as one batch.
    {
      obs::ScopedTimer timer("slab_fft.forward.x");
      obs::TraceSpan span("slab_fft.forward.x", obs::SpanKind::Compute);
      plan_x_->forward_batch(phys[v], n_, w.data(), h, n_ * my());
    }
    // z: strided lines (stride nxh) inside the Y-slab, one batch per plane.
    {
      obs::ScopedTimer timer("slab_fft.forward.z");
      obs::TraceSpan span("slab_fft.forward.z", obs::SpanKind::Compute);
      // Planes are disjoint: stripe them across the worker pool (the
      // per-plane transform_batch then runs inline inside its stripe).
      util::ThreadPool::global().parallel_for(
          "fft.slab.z", 0, my(), [&](std::size_t jj) {
            Complex* base = w.data() + h * n_ * jj;
            plan_yz_->transform_batch(fft::Direction::Forward, base, base,
                                      BatchLayout{.count = h, .stride = h,
                                                  .dist = 1});
          });
    }
  }

  // Global transpose to Z-slabs, batched as np pencils / q per all-to-all.
  transpose_.y_to_z(
      std::span<const Complex* const>(
          const_cast<const Complex* const*>(yslab_ptrs_.data()), nv),
      spec, np, q);

  // y: strided lines (stride nxh) inside the Z-slab.
  obs::ScopedTimer timer("slab_fft.forward.y");
  obs::TraceSpan span("slab_fft.forward.y", obs::SpanKind::Compute);
  util::ThreadPool::global().parallel_for(
      "fft.slab.y", 0, nv * mz(), [&](std::size_t idx) {
        const std::size_t v = idx / mz();
        const std::size_t kk = idx % mz();
        Complex* base = spec[v] + h * n_ * kk;
        plan_yz_->transform_batch(fft::Direction::Forward, base, base,
                                  BatchLayout{.count = h, .stride = h,
                                              .dist = 1});
      });
}

void SlabFft3d::inverse(std::span<const Complex* const> spec,
                        std::span<Real* const> phys, int np, int q) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  const std::size_t nv = phys.size();
  const std::size_t h = nxh();
  if (work_.size() < 2 * nv) work_.resize(2 * nv);

  // y-inverse into scratch Z-slabs (the input stays const).
  if (zslab_ptrs_.size() < nv) zslab_ptrs_.resize(nv);
  if (yslab_ptrs_.size() < nv) yslab_ptrs_.resize(nv);
  {
    obs::ScopedTimer timer("slab_fft.inverse.y");
    obs::TraceSpan span("slab_fft.inverse.y", obs::SpanKind::Compute);
    for (std::size_t v = 0; v < nv; ++v) {
      auto& wz = work_[v];
      wz.ensure(h * n_ * mz());
      zslab_ptrs_[v] = wz.data();
      std::copy(spec[v], spec[v] + spectral_elems(), wz.data());
      util::ThreadPool::global().parallel_for(
          "fft.slab.y", 0, mz(), [&](std::size_t kk) {
            Complex* base = wz.data() + h * n_ * kk;
            plan_yz_->transform_batch(fft::Direction::Inverse, base, base,
                                      BatchLayout{.count = h, .stride = h,
                                                  .dist = 1});
          });
      auto& wy = work_[nv + v];
      wy.ensure(h * n_ * my());
      yslab_ptrs_[v] = wy.data();
    }
  }

  transpose_.z_to_y(
      std::span<const Complex* const>(
          const_cast<const Complex* const*>(zslab_ptrs_.data()), nv),
      std::span<Complex* const>(yslab_ptrs_.data(), nv), np, q);

  for (std::size_t v = 0; v < nv; ++v) {
    Complex* w = yslab_ptrs_[v];
    // z-inverse.
    {
      obs::ScopedTimer timer("slab_fft.inverse.z");
      obs::TraceSpan span("slab_fft.inverse.z", obs::SpanKind::Compute);
      util::ThreadPool::global().parallel_for(
          "fft.slab.z", 0, my(), [&](std::size_t jj) {
            Complex* base = w + h * n_ * jj;
            plan_yz_->transform_batch(fft::Direction::Inverse, base, base,
                                      BatchLayout{.count = h, .stride = h,
                                                  .dist = 1});
          });
    }
    // x: complex-to-real, batched over all lines of the Y-slab.
    {
      obs::ScopedTimer timer("slab_fft.inverse.x");
      obs::TraceSpan span("slab_fft.inverse.x", obs::SpanKind::Compute);
      plan_x_->inverse_batch(w, h, phys[v], n_, n_ * my());
    }
  }
}

void SlabFft3d::forward(std::span<const Real> phys, std::span<Complex> spec,
                        int np, int q) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Real* p = phys.data();
  Complex* s = spec.data();
  forward(std::span<const Real* const>(&p, 1),
          std::span<Complex* const>(&s, 1), np, q);
}

void SlabFft3d::inverse(std::span<const Complex> spec, std::span<Real> phys,
                        int np, int q) {
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");
  const Complex* s = spec.data();
  Real* p = phys.data();
  inverse(std::span<const Complex* const>(&s, 1),
          std::span<Real* const>(&p, 1), np, q);
}

// -------------------------------------------------------------- PencilFft3d

PencilFft3d::PencilFft3d(comm::Communicator& comm, std::size_t n, int pr,
                         int pc)
    : n_(n),
      transpose_(comm, PencilGrid{n / 2 + 1, n, n, pr, pc}),
      plan_x_(fft::get_plan_r2c(n)),
      plan_yz_(fft::get_plan(n)) {
  PSDNS_REQUIRE(n >= 2, "grid too small");
}

void PencilFft3d::forward(std::span<const Real* const> phys,
                          std::span<Complex* const> spec) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  for (std::size_t v = 0; v < phys.size(); ++v) {
    forward(std::span<const Real>(phys[v], physical_elems()),
            std::span<Complex>(spec[v], spectral_elems()));
  }
}

void PencilFft3d::inverse(std::span<const Complex* const> spec,
                          std::span<Real* const> phys) {
  PSDNS_REQUIRE(phys.size() == spec.size(), "variable count mismatch");
  for (std::size_t v = 0; v < phys.size(); ++v) {
    inverse(std::span<const Complex>(spec[v], spectral_elems()),
            std::span<Real>(phys[v], physical_elems()));
  }
}

void PencilFft3d::forward(std::span<const Real> phys,
                          std::span<Complex> spec) {
  const auto& g = grid();
  const std::size_t h = nxh(), yl = g.yl(), zl = g.zl();
  const std::size_t w = x_range().width();
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");

  px_.ensure(h * yl * zl);
  py_.ensure(n_ * w * zl);

  // x: real-to-complex, all yl*zl unit-stride lines of the X-pencil at once.
  {
    obs::ScopedTimer timer("pencil_fft.forward.x");
    obs::TraceSpan span("pencil_fft.forward.x", obs::SpanKind::Compute);
    plan_x_->forward_batch(phys.data(), n_, px_.data(), h, yl * zl);
  }

  // Row transpose, then y on the contiguous lines of the Y-pencil (one
  // arithmetic progression: dist n_, stride 1).
  transpose_.x_to_y(std::span<const Complex>(px_.data(), h * yl * zl),
                    std::span<Complex>(py_.data(), n_ * w * zl));
  {
    obs::ScopedTimer timer("pencil_fft.forward.y");
    obs::TraceSpan span("pencil_fft.forward.y", obs::SpanKind::Compute);
    plan_yz_->transform_batch(fft::Direction::Forward, py_.data(), py_.data(),
                              BatchLayout{.count = w * zl, .stride = 1,
                                          .dist = n_});
  }

  // Column transpose, then z on contiguous lines of the Z-pencil.
  transpose_.y_to_z(std::span<const Complex>(py_.data(), n_ * w * zl), spec);
  {
    obs::ScopedTimer timer("pencil_fft.forward.z");
    obs::TraceSpan span("pencil_fft.forward.z", obs::SpanKind::Compute);
    plan_yz_->transform_batch(fft::Direction::Forward, spec.data(),
                              spec.data(),
                              BatchLayout{.count = w * g.yl2(), .stride = 1,
                                          .dist = n_});
  }
}

void PencilFft3d::inverse(std::span<const Complex> spec,
                          std::span<Real> phys) {
  const auto& g = grid();
  const std::size_t h = nxh(), yl = g.yl(), zl = g.zl();
  const std::size_t w = x_range().width();
  PSDNS_REQUIRE(phys.size() >= physical_elems(), "phys too small");
  PSDNS_REQUIRE(spec.size() >= spectral_elems(), "spec too small");

  px_.ensure(h * yl * zl);
  py_.ensure(n_ * w * zl);
  pz_.ensure(spectral_elems());

  // z-inverse on a reusable scratch copy of the Z-pencil.
  std::copy(spec.data(), spec.data() + spectral_elems(), pz_.data());
  {
    obs::ScopedTimer timer("pencil_fft.inverse.z");
    obs::TraceSpan span("pencil_fft.inverse.z", obs::SpanKind::Compute);
    plan_yz_->transform_batch(fft::Direction::Inverse, pz_.data(), pz_.data(),
                              BatchLayout{.count = w * g.yl2(), .stride = 1,
                                          .dist = n_});
  }

  transpose_.z_to_y(std::span<const Complex>(pz_.data(), spectral_elems()),
                    std::span<Complex>(py_.data(), n_ * w * zl));
  {
    obs::ScopedTimer timer("pencil_fft.inverse.y");
    obs::TraceSpan span("pencil_fft.inverse.y", obs::SpanKind::Compute);
    plan_yz_->transform_batch(fft::Direction::Inverse, py_.data(), py_.data(),
                              BatchLayout{.count = w * zl, .stride = 1,
                                          .dist = n_});
  }

  transpose_.y_to_x(std::span<const Complex>(py_.data(), n_ * w * zl),
                    std::span<Complex>(px_.data(), h * yl * zl));
  {
    obs::ScopedTimer timer("pencil_fft.inverse.x");
    obs::TraceSpan span("pencil_fft.inverse.x", obs::SpanKind::Compute);
    plan_x_->inverse_batch(px_.data(), h, phys.data(), n_, yl * zl);
  }
}

}  // namespace psdns::transpose
