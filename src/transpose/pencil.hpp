#pragma once
// Pencil (2-D) decomposition and its row/column transposes (Fig. 1 right).
// This is the decomposition used by the synchronous CPU baseline code
// (Yeung et al. 2015) that the paper measures its speedups against.
//
// A Pr x Pc process grid (rank = row + Pr*col; the row communicator should
// map onto one node, as Sec. 3.1 recommends). Three layouts of one complex
// field with reduced x dimension nxh:
//
//   X-pencils: full x;      y split by Pr (yl);  z split by Pc (zl).
//       px[i + nxh*(jj + yl*kk)]
//   Y-pencils: full y;      x split by Pr (w);   z split by Pc (zl).
//       py[j + ny*(ii + w*kk)]
//   Z-pencils: full z;      x split by Pr (w);   y split by Pc (yl2).
//       pz[k + nz*(ii + w*jj)]
//
// x is split with pencil_range (nxh = N/2+1 is rarely divisible by Pr), so
// the row transpose uses alltoallv; the column transpose has equal blocks.

#include <cstddef>
#include <span>
#include <vector>

#include "comm/communicator.hpp"
#include "fft/types.hpp"
#include "transpose/slab.hpp"

namespace psdns::transpose {

struct PencilGrid {
  std::size_t nxh = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;
  int pr = 1;  // row size (splits y in X-pencils, x in Y/Z-pencils)
  int pc = 1;  // column size (splits z in X/Y-pencils, y in Z-pencils)

  std::size_t yl() const { return ny / static_cast<std::size_t>(pr); }
  std::size_t zl() const { return nz / static_cast<std::size_t>(pc); }
  std::size_t yl2() const { return ny / static_cast<std::size_t>(pc); }

  void validate() const;
};

class PencilTranspose {
 public:
  /// Splits `world` into row/column communicators. All ranks collective.
  PencilTranspose(comm::Communicator& world, PencilGrid grid);

  const PencilGrid& grid() const { return grid_; }
  int row_rank() const { return row_.rank(); }
  int col_rank() const { return col_.rank(); }

  /// This rank's x-chunk in Y/Z-pencil layouts.
  PencilRange x_range() const {
    return pencil_range(grid_.nxh, grid_.pr, row_.rank());
  }

  /// X-pencils -> Y-pencils (row communicator). Collective over the row.
  void x_to_y(std::span<const Complex> px, std::span<Complex> py);
  /// Y-pencils -> X-pencils.
  void y_to_x(std::span<const Complex> py, std::span<Complex> px);
  /// Y-pencils -> Z-pencils (column communicator).
  void y_to_z(std::span<const Complex> py, std::span<Complex> pz);
  /// Z-pencils -> Y-pencils.
  void z_to_y(std::span<const Complex> pz, std::span<Complex> py);

 private:
  PencilGrid grid_;
  comm::Communicator row_;
  comm::Communicator col_;
  // Message staging from the workspace arena; count/displacement scratch
  // for the unequal-block row exchange is sized once in the constructor so
  // steady-state transposes allocate nothing.
  mutable util::WorkspaceArena::Handle<Complex> send_, recv_;
  std::vector<std::size_t> row_counts_, row_displs_;
  std::vector<std::size_t> peer_counts_, peer_displs_;
};

}  // namespace psdns::transpose
