#include "transpose/pencil.hpp"

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace psdns::transpose {

void PencilGrid::validate() const {
  PSDNS_REQUIRE(nxh >= 1 && ny >= 1 && nz >= 1, "empty grid");
  PSDNS_REQUIRE(pr >= 1 && pc >= 1, "bad process grid");
  PSDNS_REQUIRE(ny % static_cast<std::size_t>(pr) == 0,
                "ny must be divisible by Pr");
  PSDNS_REQUIRE(nz % static_cast<std::size_t>(pc) == 0,
                "nz must be divisible by Pc");
  PSDNS_REQUIRE(ny % static_cast<std::size_t>(pc) == 0,
                "ny must be divisible by Pc");
  PSDNS_REQUIRE(nxh >= static_cast<std::size_t>(pr),
                "x extent smaller than the row size");
}

PencilTranspose::PencilTranspose(comm::Communicator& world, PencilGrid grid)
    : grid_(grid),
      // Row communicator: ranks with the same column index (rank / pr).
      row_(world.split(world.rank() / grid.pr, world.rank() % grid.pr)),
      // Column communicator: ranks with the same row index (rank % pr).
      col_(world.split(world.rank() % grid.pr, world.rank() / grid.pr)) {
  grid_.validate();
  PSDNS_REQUIRE(world.size() == grid_.pr * grid_.pc,
                "world size must equal Pr * Pc");
  row_counts_.resize(static_cast<std::size_t>(grid_.pr));
  row_displs_.resize(static_cast<std::size_t>(grid_.pr));
  peer_counts_.resize(static_cast<std::size_t>(grid_.pr));
  peer_displs_.resize(static_cast<std::size_t>(grid_.pr));
}

void PencilTranspose::x_to_y(std::span<const Complex> px,
                             std::span<Complex> py) {
  const std::size_t yl = grid_.yl(), zl = grid_.zl();
  PSDNS_REQUIRE(px.size() >= grid_.nxh * yl * zl, "px too small");
  PSDNS_REQUIRE(py.size() >= grid_.ny * x_range().width() * zl,
                "py too small");

  // Pack: block for row-rank d covers its x-chunk; layout jj + yl*(ii+w_d*kk).
  std::size_t total = 0;
  for (int d = 0; d < grid_.pr; ++d) {
    const auto r = pencil_range(grid_.nxh, grid_.pr, d);
    row_counts_[static_cast<std::size_t>(d)] = yl * r.width() * zl;
    row_displs_[static_cast<std::size_t>(d)] = total;
    total += row_counts_[static_cast<std::size_t>(d)];
  }
  send_.ensure(total);
  // Receive side: every source sends a w_me-wide block, which can exceed the
  // send total when this rank owns the widest x-chunk.
  const std::size_t rtotal = static_cast<std::size_t>(grid_.pr) * yl *
                             x_range().width() * zl;
  recv_.ensure(rtotal);

  // (d, kk) pairs write disjoint send-block slices; stripe them across the
  // worker pool.
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.pack", 0,
      static_cast<std::size_t>(grid_.pr) * zl, [&](std::size_t idx) {
        const int d = static_cast<int>(idx / zl);
        const std::size_t kk = idx % zl;
        const auto r = pencil_range(grid_.nxh, grid_.pr, d);
        Complex* out =
            send_.data() + row_displs_[static_cast<std::size_t>(d)];
        for (std::size_t ii = 0; ii < r.width(); ++ii) {
          const Complex* src =
              px.data() + (r.x0 + ii) + grid_.nxh * (yl * kk);
          Complex* dst = out + yl * (ii + r.width() * kk);
          for (std::size_t jj = 0; jj < yl; ++jj) {
            dst[jj] = src[grid_.nxh * jj];
          }
        }
      });

  // Receive layout is symmetric: every source sends me w_me-wide blocks.
  const std::size_t w = x_range().width();
  for (int s = 0; s < grid_.pr; ++s) {
    peer_counts_[static_cast<std::size_t>(s)] = yl * w * zl;
    peer_displs_[static_cast<std::size_t>(s)] =
        static_cast<std::size_t>(s) * yl * w * zl;
  }
  row_.alltoallv(send_.data(), row_counts_.data(), row_displs_.data(),
                 recv_.data(), peer_counts_.data(), peer_displs_.data());

  // Unpack: source s contributed y range [s*yl, (s+1)*yl).
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.unpack", 0,
      static_cast<std::size_t>(grid_.pr) * zl, [&](std::size_t idx) {
        const std::size_t sidx = idx / zl;
        const std::size_t kk = idx % zl;
        const Complex* in = recv_.data() + peer_displs_[sidx];
        for (std::size_t ii = 0; ii < w; ++ii) {
          const Complex* src = in + yl * (ii + w * kk);
          Complex* dst =
              py.data() + sidx * yl + grid_.ny * (ii + w * kk);
          for (std::size_t jj = 0; jj < yl; ++jj) dst[jj] = src[jj];
        }
      });
}

void PencilTranspose::y_to_x(std::span<const Complex> py,
                             std::span<Complex> px) {
  const std::size_t yl = grid_.yl(), zl = grid_.zl();
  const std::size_t w = x_range().width();

  // Pack: block for row-rank d holds its y range of my x-chunk.
  std::size_t total = static_cast<std::size_t>(grid_.pr) * yl * w * zl;
  send_.ensure(total);
  for (int d = 0; d < grid_.pr; ++d) {
    peer_counts_[static_cast<std::size_t>(d)] = yl * w * zl;
    peer_displs_[static_cast<std::size_t>(d)] =
        static_cast<std::size_t>(d) * yl * w * zl;
  }
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.pack", 0,
      static_cast<std::size_t>(grid_.pr) * zl, [&](std::size_t idx) {
        const std::size_t didx = idx / zl;
        const std::size_t kk = idx % zl;
        Complex* out = send_.data() + peer_displs_[didx];
        for (std::size_t ii = 0; ii < w; ++ii) {
          const Complex* src =
              py.data() + didx * yl + grid_.ny * (ii + w * kk);
          Complex* dst = out + yl * (ii + w * kk);
          for (std::size_t jj = 0; jj < yl; ++jj) dst[jj] = src[jj];
        }
      });

  // Receive: source s owns x-chunk w_s.
  std::size_t rtotal = 0;
  for (int s = 0; s < grid_.pr; ++s) {
    const auto r = pencil_range(grid_.nxh, grid_.pr, s);
    row_counts_[static_cast<std::size_t>(s)] = yl * r.width() * zl;
    row_displs_[static_cast<std::size_t>(s)] = rtotal;
    rtotal += row_counts_[static_cast<std::size_t>(s)];
  }
  recv_.ensure(rtotal);
  row_.alltoallv(send_.data(), peer_counts_.data(), peer_displs_.data(),
                 recv_.data(), row_counts_.data(), row_displs_.data());

  util::ThreadPool::global().parallel_for(
      "transpose.pencil.unpack", 0,
      static_cast<std::size_t>(grid_.pr) * zl, [&](std::size_t idx) {
        const int sr = static_cast<int>(idx / zl);
        const std::size_t kk = idx % zl;
        const auto r = pencil_range(grid_.nxh, grid_.pr, sr);
        const Complex* in =
            recv_.data() + row_displs_[static_cast<std::size_t>(sr)];
        for (std::size_t ii = 0; ii < r.width(); ++ii) {
          const Complex* src = in + yl * (ii + r.width() * kk);
          Complex* dst = px.data() + (r.x0 + ii) + grid_.nxh * (yl * kk);
          for (std::size_t jj = 0; jj < yl; ++jj) {
            dst[grid_.nxh * jj] = src[jj];
          }
        }
      });
}

void PencilTranspose::y_to_z(std::span<const Complex> py,
                             std::span<Complex> pz) {
  const std::size_t zl = grid_.zl(), yl2 = grid_.yl2();
  const std::size_t w = x_range().width();
  const std::size_t block = yl2 * w * zl;
  const std::size_t total = block * static_cast<std::size_t>(grid_.pc);
  send_.ensure(total);
  recv_.ensure(total);

  // Pack for column-rank d: its y range, all local z; layout kk+zl*(ii+w*jj).
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.pack", 0,
      static_cast<std::size_t>(grid_.pc) * yl2, [&](std::size_t idx) {
        const std::size_t didx = idx / yl2;
        const std::size_t jj = idx % yl2;
        Complex* out = send_.data() + didx * block;
        for (std::size_t ii = 0; ii < w; ++ii) {
          Complex* dst = out + zl * (ii + w * jj);
          const Complex* src =
              py.data() + (didx * yl2 + jj) + grid_.ny * ii;
          for (std::size_t kk = 0; kk < zl; ++kk) {
            dst[kk] = src[grid_.ny * w * kk];
          }
        }
      });

  col_.alltoall(send_.data(), recv_.data(), block);

  // Unpack: source s contributed z range [s*zl, (s+1)*zl).
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.unpack", 0,
      static_cast<std::size_t>(grid_.pc) * yl2, [&](std::size_t idx) {
        const std::size_t sidx = idx / yl2;
        const std::size_t jj = idx % yl2;
        const Complex* in = recv_.data() + sidx * block;
        for (std::size_t ii = 0; ii < w; ++ii) {
          const Complex* src = in + zl * (ii + w * jj);
          Complex* dst =
              pz.data() + sidx * zl + grid_.nz * (ii + w * jj);
          for (std::size_t kk = 0; kk < zl; ++kk) dst[kk] = src[kk];
        }
      });
}

void PencilTranspose::z_to_y(std::span<const Complex> pz,
                             std::span<Complex> py) {
  const std::size_t zl = grid_.zl(), yl2 = grid_.yl2();
  const std::size_t w = x_range().width();
  const std::size_t block = yl2 * w * zl;
  const std::size_t total = block * static_cast<std::size_t>(grid_.pc);
  send_.ensure(total);
  recv_.ensure(total);

  // Pack for column-rank d: its z range of my full-z pencils.
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.pack", 0,
      static_cast<std::size_t>(grid_.pc) * yl2, [&](std::size_t idx) {
        const std::size_t didx = idx / yl2;
        const std::size_t jj = idx % yl2;
        Complex* out = send_.data() + didx * block;
        for (std::size_t ii = 0; ii < w; ++ii) {
          Complex* dst = out + zl * (ii + w * jj);
          const Complex* src =
              pz.data() + didx * zl + grid_.nz * (ii + w * jj);
          for (std::size_t kk = 0; kk < zl; ++kk) dst[kk] = src[kk];
        }
      });

  col_.alltoall(send_.data(), recv_.data(), block);

  // Unpack: source s contributed y range [s*yl2, (s+1)*yl2).
  util::ThreadPool::global().parallel_for(
      "transpose.pencil.unpack", 0,
      static_cast<std::size_t>(grid_.pc) * yl2, [&](std::size_t idx) {
        const std::size_t sidx = idx / yl2;
        const std::size_t jj = idx % yl2;
        const Complex* in = recv_.data() + sidx * block;
        for (std::size_t ii = 0; ii < w; ++ii) {
          const Complex* src = in + zl * (ii + w * jj);
          Complex* dst =
              py.data() + (sidx * yl2 + jj) + grid_.ny * ii;
          for (std::size_t kk = 0; kk < zl; ++kk) {
            dst[grid_.ny * w * kk] = src[kk];
          }
        }
      });
}

}  // namespace psdns::transpose
