// psdns_submit: command-line client for the campaign service.
//
//   psdns_submit --port N [--host H] [job fields...] [--wait] [--json]
//       submit a job; prints the submission response ("job 3 queued ...").
//       --wait polls GET /jobs/<id> until the job finishes, then fetches
//       and prints the result document.
//   psdns_submit --port N --fetch PATH
//       GET an arbitrary route (/metrics, /queue, ...) and print the body
//       (CI greps cache counters through this - no curl dependency).
//   psdns_submit --port N --shutdown
//       POST /shutdown (graceful drain).
//
// Job fields: --job FILE (key = value, see JobRequest::from_config) gives
// the base; --tenant --n --ranks --steps --seed --scheme --decomposition
// --dealias --viscosity --scalars --forcing 0|1 --system NAME
// --rotation-omega W --brunt-vaisala N --resistivity ETA override the
// file. --system selects the equation set (navier_stokes | rotating |
// boussinesq | mhd); the three parameter flags feed the matching system.
//
// Journey tracing: --trace ID names the job's journey (sent as the
// X-Psdns-Trace request header; without it the service mints a
// deterministic id, echoed in the response). --save-trace FILE fetches
// GET /jobs/<id>/trace once the job is done and writes the merged Chrome
// trace JSON (implies --wait; needs the service started with tracing on).
//
// Transport: every request runs through svc::fetch/post - per-attempt
// timeout (--timeout SECS, default 10) plus bounded retry (--retries N,
// default 3 attempts total).
//
// Exit codes: 0 success (job done / fetch ok), 3 the job finished Failed
// or Cancelled, 1 usage, transport or service errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/job.hpp"
#include "util/config.hpp"

namespace {

using psdns::obs::JsonValue;
using psdns::svc::FetchOptions;
using psdns::svc::JobRequest;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port N [--host H] [--job FILE] [--tenant T] [--n N]\n"
      "          [--ranks R] [--steps S] [--seed K] [--scheme rk2|rk4]\n"
      "          [--decomposition slab|pencil]\n"
      "          [--dealias truncation|phase_shift] [--viscosity V]\n"
      "          [--scalars M] [--forcing 0|1] [--wait] [--json]\n"
      "          [--system navier_stokes|rotating|boussinesq|mhd]\n"
      "          [--rotation-omega W] [--brunt-vaisala N]\n"
      "          [--resistivity ETA]\n"
      "          [--trace ID] [--save-trace FILE]\n"
      "          [--timeout SECS] [--retries N]\n"
      "       %s --port N --fetch PATH\n"
      "       %s --port N --shutdown\n",
      argv0, argv0, argv0);
  return 1;
}

bool apply_field(JobRequest& request, const std::string& flag,
                 const std::string& value) {
  if (flag == "--tenant") {
    request.tenant = value;
  } else if (flag == "--n") {
    request.n = static_cast<std::size_t>(std::atoll(value.c_str()));
  } else if (flag == "--ranks") {
    request.ranks = std::atoi(value.c_str());
  } else if (flag == "--steps") {
    request.steps = std::atoll(value.c_str());
  } else if (flag == "--seed") {
    request.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
  } else if (flag == "--scheme") {
    request.scheme = value;
  } else if (flag == "--decomposition") {
    request.decomposition = psdns::svc::parse_decomposition(value);
  } else if (flag == "--dealias") {
    request.dealias = psdns::svc::parse_dealias_mode(value);
  } else if (flag == "--viscosity") {
    request.viscosity = std::atof(value.c_str());
  } else if (flag == "--scalars") {
    request.scalars = std::atoi(value.c_str());
  } else if (flag == "--forcing") {
    request.forcing = std::atoi(value.c_str()) != 0;
  } else if (flag == "--system") {
    request.system = value;
  } else if (flag == "--rotation-omega") {
    request.rotation_omega = std::atof(value.c_str());
  } else if (flag == "--brunt-vaisala") {
    request.brunt_vaisala = std::atof(value.c_str());
  } else if (flag == "--resistivity") {
    request.resistivity = std::atof(value.c_str());
  } else {
    return false;
  }
  return true;
}

std::string state_of(const std::string& record_json) {
  const JsonValue doc = psdns::obs::json_parse(record_json);
  return doc.has("state") ? doc.at("state").string : "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string job_file;
  std::string fetch_path;
  bool do_shutdown = false;
  bool wait = false;
  bool json_output = false;
  std::string trace_id;
  std::string save_trace_path;
  FetchOptions net;
  // Field flags are collected and applied after the --job file loads, so
  // command-line values override the file regardless of flag order.
  std::vector<std::pair<std::string, std::string>> fields;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--wait") {
      wait = true;
      continue;
    }
    if (arg == "--json") {
      json_output = true;
      continue;
    }
    if (arg == "--shutdown") {
      do_shutdown = true;
      continue;
    }
    if (i + 1 >= argc) return usage(argv[0]);
    const std::string value = argv[++i];
    if (arg == "--port") {
      port = std::atoi(value.c_str());
    } else if (arg == "--host") {
      host = value;
    } else if (arg == "--fetch") {
      fetch_path = value;
    } else if (arg == "--job") {
      job_file = value;
    } else if (arg == "--trace") {
      trace_id = value;
    } else if (arg == "--save-trace") {
      save_trace_path = value;
      wait = true;  // the trace is only complete once the job is
    } else if (arg == "--timeout") {
      net.timeout_s = std::atof(value.c_str());
    } else if (arg == "--retries") {
      net.retry.max_attempts = std::atoi(value.c_str());
    } else if (arg.rfind("--", 0) == 0) {
      fields.emplace_back(arg, value);
    } else {
      return usage(argv[0]);
    }
  }
  if (port < 0) return usage(argv[0]);

  try {
    if (!fetch_path.empty()) {
      int status = 0;
      const std::string body =
          psdns::svc::fetch(host, port, fetch_path, &status, net);
      std::printf("%s", body.c_str());
      if (!body.empty() && body.back() != '\n') std::printf("\n");
      return status == 200 ? 0 : 1;
    }
    if (do_shutdown) {
      int status = 0;
      const std::string body =
          psdns::svc::post(host, port, "/shutdown", "", &status, net);
      std::printf("%s\n", body.c_str());
      return status < 400 ? 0 : 1;
    }

    JobRequest request;
    if (!job_file.empty()) {
      request =
          JobRequest::from_config(psdns::util::Config::from_file(job_file));
    }
    for (const auto& [flag, value] : fields) {
      if (!apply_field(request, flag, value)) return usage(argv[0]);
    }
    request.validate();

    if (!trace_id.empty()) {
      net.headers.emplace_back("X-Psdns-Trace", trace_id);
    }
    int status = 0;
    const std::string submit_body = psdns::svc::post(
        host, port, "/jobs", request.to_json(), &status, net);
    net.headers.clear();  // only the submission carries the trace header
    if (status >= 400) {
      std::fprintf(stderr, "psdns_submit: HTTP %d: %s\n", status,
                   submit_body.c_str());
      return 1;
    }
    const JsonValue submitted = psdns::obs::json_parse(submit_body);
    const std::int64_t id =
        static_cast<std::int64_t>(submitted.at("id").number);
    const bool cached =
        submitted.has("cached") && submitted.at("cached").boolean;
    const std::string trace =
        submitted.has("trace") ? submitted.at("trace").string : "";
    if (json_output) {
      std::printf("%s\n", submit_body.c_str());
    } else if (trace.empty()) {
      std::printf("job %lld %s (hash %s)\n", static_cast<long long>(id),
                  cached ? "served from cache" : "queued",
                  submitted.at("hash").string.c_str());
    } else {
      std::printf("job %lld %s (hash %s, trace %s)\n",
                  static_cast<long long>(id),
                  cached ? "served from cache" : "queued",
                  submitted.at("hash").string.c_str(), trace.c_str());
    }
    if (!wait && !cached) return 0;

    // Poll the record until it leaves the queue, then fetch the result.
    std::string state;
    std::string record_json;
    for (;;) {
      record_json = psdns::svc::fetch(
          host, port, "/jobs/" + std::to_string(id), &status, net);
      state = state_of(record_json);
      if (state != "queued" && state != "running") break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (json_output) {
      std::printf("%s\n", record_json.c_str());
    } else {
      std::printf("job %lld %s\n", static_cast<long long>(id),
                  state.c_str());
    }
    if (state != "done") return 3;
    const std::string result = psdns::svc::fetch(
        host, port, "/jobs/" + std::to_string(id) + "/result", &status, net);
    std::printf("%s\n", result.c_str());
    if (status != 200) return 1;
    if (!save_trace_path.empty()) {
      int trace_status = 0;
      const std::string trace_json = psdns::svc::fetch(
          host, port, "/jobs/" + std::to_string(id) + "/trace",
          &trace_status, net);
      if (trace_status != 200) {
        std::fprintf(stderr, "psdns_submit: no trace for job %lld: %s\n",
                     static_cast<long long>(id), trace_json.c_str());
        return 1;
      }
      std::FILE* f = std::fopen(save_trace_path.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(trace_json.data(), 1, trace_json.size(), f) !=
              trace_json.size() ||
          std::fclose(f) != 0) {
        std::fprintf(stderr, "psdns_submit: cannot write %s\n",
                     save_trace_path.c_str());
        return 1;
      }
      std::printf("trace written to %s\n", save_trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdns_submit: %s\n", e.what());
    return 1;
  }
}
