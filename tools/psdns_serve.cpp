// psdns_serve: the campaign-service daemon. Binds the HTTP front end,
// prints the bound port (parseable by scripts: "listening on port N"),
// then serves until SIGINT/SIGTERM or POST /shutdown, at which point it
// drains - every admitted job finishes, new submissions are refused -
// and exits 0.
//
//   psdns_serve [--config FILE] [--port N] [--max-concurrent N]
//               [--queue-capacity N] [--cache-dir DIR] [--cache-keep K]
//               [--workdir DIR] [--trace 0|1] [--audit-file PATH]
//
// Precedence: built-in defaults < --config file (service.* keys) <
// PSDNS_SVC_* environment < command-line flags. --port 0 binds an
// ephemeral port (CI runs several services in parallel). --trace 1 turns
// on job-journey span tracing (GET /jobs/<id>/trace); --audit-file
// appends one JSONL lifecycle event per job transition.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "svc/service.hpp"
#include "util/config.hpp"

namespace {

volatile std::sig_atomic_t g_signalled = 0;

void on_signal(int) { g_signalled = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config FILE] [--port N] [--max-concurrent N]\n"
               "          [--queue-capacity N] [--cache-dir DIR]\n"
               "          [--cache-keep K] [--workdir DIR] [--trace 0|1]\n"
               "          [--audit-file PATH]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using psdns::svc::ServiceConfig;
  std::string config_path;
  // Flags are applied after the config file and environment, so collect
  // them first.
  struct {
    const char* name;
    std::string value;
    bool set = false;
  } flags[] = {{"--port", "", false},       {"--max-concurrent", "", false},
               {"--queue-capacity", "", false}, {"--cache-dir", "", false},
               {"--cache-keep", "", false}, {"--workdir", "", false},
               {"--trace", "", false},      {"--audit-file", "", false}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) return usage(argv[0]);
    const std::string value = argv[++i];
    if (arg == "--config") {
      config_path = value;
      continue;
    }
    bool known = false;
    for (auto& flag : flags) {
      if (arg == flag.name) {
        flag.value = value;
        flag.set = true;
        known = true;
        break;
      }
    }
    if (!known) return usage(argv[0]);
  }

  try {
    ServiceConfig cfg;
    if (!config_path.empty()) {
      cfg = ServiceConfig::from(psdns::util::Config::from_file(config_path));
    }
    cfg = ServiceConfig::with_env(cfg);
    if (flags[0].set) cfg.port = std::atoi(flags[0].value.c_str());
    if (flags[1].set) cfg.max_concurrent = std::atoi(flags[1].value.c_str());
    if (flags[2].set) cfg.queue_capacity = std::atoi(flags[2].value.c_str());
    if (flags[3].set) cfg.cache_dir = flags[3].value;
    if (flags[4].set) cfg.cache_keep = std::atoi(flags[4].value.c_str());
    if (flags[5].set) cfg.workdir = flags[5].value;
    if (flags[6].set) cfg.trace = std::atoi(flags[6].value.c_str()) != 0;
    if (flags[7].set) cfg.audit_file = flags[7].value;
    cfg.validate();

    psdns::svc::Service service(cfg);
    std::printf("psdns_serve: listening on port %d\n", service.port());
    std::printf("psdns_serve: cache %s (keep %d), workdir %s, %d worker%s\n",
                cfg.cache_dir.c_str(), cfg.cache_keep, cfg.workdir.c_str(),
                cfg.max_concurrent, cfg.max_concurrent == 1 ? "" : "s");
    std::printf("psdns_serve: trace %s, audit %s\n",
                cfg.trace ? "on" : "off",
                cfg.audit_file.empty() ? "off" : cfg.audit_file.c_str());
    std::fflush(stdout);

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_signalled == 0 && !service.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("psdns_serve: draining...\n");
    std::fflush(stdout);
    service.scheduler().drain();
    std::printf("psdns_serve: drained, shutting down\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdns_serve: %s\n", e.what());
    return 1;
  }
}
