// CI perf-regression gate: compares current BENCH_*.json reports against
// committed baselines with noise-aware thresholds.
//
//   psdns_perfdiff --baseline=BENCH_x.json --current=BENCH_x.json
//   psdns_perfdiff --baseline=baselines/ --current=build/bench/ [--verbose]
//
// Directory mode pairs files by name: every BENCH_*.json in the baseline
// directory must have a counterpart in the current directory. Exits 0 when
// no metric regresses, 1 on regression (or missing metric/report), 2 on
// usage/parse errors. --warn-only reports but always exits 0, for noisy
// wall-clock benches where the gate should annotate rather than block.
// --json replaces the text report with one JSON array of per-pair results
// (obs::to_json) on stdout, for tooling that consumes the gate's verdict.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perfdiff.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace fs = std::filesystem;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) psdns::util::raise("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> bench_files(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        e.path().extension() == ".json") {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: psdns_perfdiff --baseline=<file|dir> --current=<file|dir>\n"
      "       [--threshold=0.05] [--abs-floor=1e-6] [--warn-only]\n"
      "       [--allow-missing] [--verbose] [--json]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psdns;
  const util::Cli cli(argc, argv);
  const std::string baseline = cli.get("baseline", "");
  const std::string current = cli.get("current", "");
  if (baseline.empty() || current.empty()) return usage();

  obs::PerfDiffOptions opts;
  opts.rel_tolerance = cli.get_double("threshold", opts.rel_tolerance);
  opts.abs_floor = cli.get_double("abs-floor", opts.abs_floor);
  opts.fail_on_missing = !cli.get_bool("allow-missing", false);
  const bool warn_only = cli.get_bool("warn-only", false);
  const bool verbose = cli.get_bool("verbose", false);
  const bool json = cli.get_bool("json", false);

  // Pair up (baseline, current) file paths.
  std::vector<std::pair<std::string, std::string>> pairs;
  try {
    if (fs::is_directory(baseline)) {
      PSDNS_REQUIRE(fs::is_directory(current),
                    "--baseline is a directory but --current is not");
      for (const auto& name : bench_files(baseline)) {
        pairs.emplace_back(baseline + "/" + name, current + "/" + name);
      }
      PSDNS_REQUIRE(!pairs.empty(),
                    "no BENCH_*.json files in " + baseline);
    } else {
      pairs.emplace_back(baseline, current);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdns_perfdiff: %s\n", e.what());
    return 2;
  }

  bool any_regression = false;
  std::vector<std::string> json_rows;
  for (const auto& [bpath, cpath] : pairs) {
    if (!fs::exists(cpath)) {
      if (json) {
        json_rows.push_back("{\"baseline\": \"" + bpath +
                            "\", \"ok\": false, \"error\": "
                            "\"missing current report\"}");
      } else {
        std::printf("%s: MISSING current report %s\n", bpath.c_str(),
                    cpath.c_str());
      }
      any_regression = true;
      continue;
    }
    try {
      const auto result = obs::perf_diff(slurp(bpath), slurp(cpath), opts);
      if (json) {
        json_rows.push_back(obs::to_json(result, opts));
      } else {
        std::printf("%s", obs::format_report(result, opts, verbose).c_str());
      }
      if (!result.ok(opts)) any_regression = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psdns_perfdiff: %s vs %s: %s\n", bpath.c_str(),
                   cpath.c_str(), e.what());
      return 2;
    }
  }

  if (json) {
    std::printf("[");
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : ", ", json_rows[i].c_str());
    }
    std::printf("]\n");
  }
  if (any_regression && warn_only) {
    if (!json) {
      std::printf("perfdiff: regressions found (warn-only, not failing)\n");
    }
    return 0;
  }
  return any_regression ? 1 : 0;
}
