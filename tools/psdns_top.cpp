// psdns_top: terminal dashboard for the live telemetry plane.
//
//   psdns_top --port 9188 [--host 127.0.0.1] [--watch SECS]
//       scrape a running campaign's metrics endpoint (/json) and render
//       the latest reduced snapshot + health verdict; --watch polls until
//       the endpoint goes away (campaign finished).
//
//   psdns_top --series telemetry.jsonl
//       replay a recorded step series offline: one summary line per row,
//       then the full table for the final row. The same rendering path as
//       live mode - the series is the endpoint's flight recorder.
//
//   psdns_top --service --port N [--host H] [--watch SECS]
//       the campaign-service view: scrapes GET /queue and GET /json and
//       renders a per-tenant table - weight, target vs achieved fair
//       share, submissions, completions, cache-hit rate, and the SLO
//       latency quantiles (queue-wait / run / end-to-end p50 and p95)
//       from the per-tenant summary histograms - followed by a per-job
//       table (id, tenant, equation system, state, grid size, cache hit).
//
// --json switches both modes to machine-readable output: live mode prints
// the endpoint's /json document verbatim (one line per poll), series mode
// one ReducedSnapshot JSON object per row. Exit codes are unchanged.
//
// Exit codes: 0 healthy/degraded, 2 when the latest verdict is abort,
// 1 on usage or fetch errors (lets CI scripts gate on campaign health).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metric_series.hpp"
#include "obs/metrics_server.hpp"
#include "obs/reduce.hpp"
#include "util/check.hpp"

namespace {

using psdns::obs::JsonValue;

struct Options {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string series;
  double watch_seconds = 0.0;  // 0 = single shot
  bool json = false;           // raw JSON instead of the rendered table
  bool service = false;        // campaign-service tenant/SLO view
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--watch SECS] [--json]\n"
               "       %s --service --port N [--host H] [--watch SECS]"
               " [--json]\n"
               "       %s --series FILE.jsonl [--json]\n",
               argv0, argv0, argv0);
  return 1;
}

const JsonValue* find(const JsonValue& object, const std::string& key) {
  if (!object.has(key)) return nullptr;
  return &object.at(key);
}

double number_or(const JsonValue& object, const std::string& key,
                 double fallback) {
  const JsonValue* v = find(object, key);
  return v != nullptr ? v->number : fallback;
}

std::string verdict_of(const JsonValue& doc) {
  if (const JsonValue* health = find(doc, "health")) {
    if (const JsonValue* v = find(*health, "verdict")) return v->string;
  }
  if (const JsonValue* v = find(doc, "verdict")) return v->string;
  return "";
}

/// Renders one reduced snapshot (the "snapshot" object of the endpoint's
/// /json document, or one series row) as a metric table.
void render_snapshot(const JsonValue& snap, const std::string& verdict) {
  std::printf("step %-8.0f time %-12.6g ranks %-4.0f health %s\n",
              number_or(snap, "step", -1), number_or(snap, "time", 0.0),
              number_or(snap, "ranks", 0),
              verdict.empty() ? "(off)" : verdict.c_str());
  std::printf("%-36s %14s %14s %14s %6s\n", "metric", "mean", "min[rank]",
              "max[rank]", "n");
  const auto render_family = [](const JsonValue& family, const char* tag) {
    for (const auto& [name, value] : family.object) {
      char min_buf[32], max_buf[32];
      std::snprintf(min_buf, sizeof(min_buf), "%.4g[%d]",
                    number_or(value, "min", 0.0),
                    static_cast<int>(number_or(value, "min_rank", -1)));
      std::snprintf(max_buf, sizeof(max_buf), "%.4g[%d]",
                    number_or(value, "max", 0.0),
                    static_cast<int>(number_or(value, "max_rank", -1)));
      std::printf("%c %-34s %14.6g %14s %14s %6d\n", tag[0], name.c_str(),
                  number_or(value, "mean", 0.0), min_buf, max_buf,
                  static_cast<int>(number_or(value, "count", 0)));
    }
  };
  if (const JsonValue* gauges = find(snap, "gauges")) {
    render_family(*gauges, "g");
  }
  if (const JsonValue* counters = find(snap, "counters")) {
    render_family(*counters, "c");
  }
}

void render_health_events(const JsonValue& health) {
  const JsonValue* events = find(health, "events");
  if (events == nullptr || events->array.empty()) return;
  std::printf("health events:\n");
  for (const auto& e : events->array) {
    std::printf("  [%s] %s @ step %.0f: %s\n",
                find(e, "severity") ? e.at("severity").string.c_str() : "?",
                find(e, "code") ? e.at("code").string.c_str() : "?",
                number_or(e, "step", -1),
                find(e, "message") ? e.at("message").string.c_str() : "");
  }
}

/// p50/p95 of one per-tenant SLO histogram from the /json snapshot,
/// rendered "p50/p95" in seconds ("-" while the histogram is empty).
std::string slo_cell(const JsonValue* snap, const std::string& tenant,
                     const char* metric) {
  if (snap == nullptr) return "-";
  const JsonValue* hists = find(*snap, "histograms");
  if (hists == nullptr) return "-";
  const std::string key = "svc.tenant." + tenant + "." + metric;
  if (!hists->has(key)) return "-";
  const JsonValue& h = hists->at(key);
  if (number_or(h, "count", 0.0) <= 0.0) return "-";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3g/%.3g", number_or(h, "p50", 0.0),
                number_or(h, "p95", 0.0));
  return buf;
}

int run_service(const Options& opt) {
  for (;;) {
    std::string queue_body;
    std::string metrics_body;
    try {
      int status = 0;
      queue_body = psdns::obs::http_get(opt.host, opt.port, "/queue",
                                        &status);
      if (status != 200) {
        std::fprintf(stderr, "GET /queue returned HTTP %d\n", status);
        return 1;
      }
      metrics_body = psdns::obs::http_get(opt.host, opt.port, "/json",
                                          &status);
      if (status != 200) {
        std::fprintf(stderr, "GET /json returned HTTP %d\n", status);
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot reach %s:%d: %s\n", opt.host.c_str(),
                   opt.port, e.what());
      return 1;
    }
    if (opt.json) {
      std::printf("{\"queue\":%s,\"metrics\":%s}\n", queue_body.c_str(),
                  metrics_body.c_str());
    } else {
      if (opt.watch_seconds > 0.0) std::printf("\x1b[2J\x1b[H");
      const JsonValue queue = psdns::obs::json_parse(queue_body);
      const JsonValue metrics = psdns::obs::json_parse(metrics_body);
      const JsonValue* snap = find(metrics, "snapshot");
      std::printf(
          "service %s:%d  queued %.0f running %.0f completed %.0f "
          "failed %.0f rejected %.0f  %s\n",
          opt.host.c_str(), opt.port, number_or(queue, "queued", 0.0),
          number_or(queue, "running", 0.0),
          number_or(queue, "completed", 0.0),
          number_or(queue, "failed", 0.0),
          number_or(queue, "rejected", 0.0),
          find(queue, "accepting") != nullptr &&
                  queue.at("accepting").boolean
              ? "accepting"
              : "draining");
      if (const JsonValue* cache = find(queue, "cache")) {
        std::printf("cache: hits %.0f misses %.0f entries %.0f "
                    "evictions %.0f\n",
                    number_or(*cache, "hits", 0.0),
                    number_or(*cache, "misses", 0.0),
                    number_or(*cache, "entries", 0.0),
                    number_or(*cache, "evictions", 0.0));
      }
      std::printf("%-14s %6s %7s %7s %5s %5s %5s %12s %12s %12s\n",
                  "tenant", "weight", "target", "achiev", "sub", "done",
                  "hits", "wait p50/95", "run p50/95", "e2e p50/95");
      if (const JsonValue* tenants = find(queue, "tenants")) {
        for (const auto& [name, t] : tenants->object) {
          std::printf(
              "%-14s %6.3g %7.3f %7.3f %5.0f %5.0f %5.0f %12s %12s %12s\n",
              name.c_str(), number_or(t, "weight", 1.0),
              number_or(t, "target_share", 0.0),
              number_or(t, "achieved_share", 0.0),
              number_or(t, "submitted", 0.0),
              number_or(t, "completed", 0.0),
              number_or(t, "cache_hits", 0.0),
              slo_cell(snap, name, "queue_wait_seconds").c_str(),
              slo_cell(snap, name, "run_seconds").c_str(),
              slo_cell(snap, name, "e2e_seconds").c_str());
        }
      }
      // Per-job rows: which equation system each submission runs, along
      // with its lifecycle state and whether the result came from cache.
      if (const JsonValue* jobs = find(queue, "jobs");
          jobs != nullptr && jobs->is_array() && !jobs->array.empty()) {
        std::printf("%-5s %-14s %-13s %-10s %6s %6s\n", "job", "tenant",
                    "system", "state", "n", "cached");
        for (const auto& job : jobs->array) {
          const JsonValue* req = find(job, "request");
          const char* system = "?";
          double n = 0.0;
          if (req != nullptr) {
            if (const JsonValue* s = find(*req, "system")) {
              system = s->string.c_str();
            }
            n = number_or(*req, "n", 0.0);
          }
          const JsonValue* state = find(job, "state");
          const JsonValue* tenant = find(job, "tenant");
          const JsonValue* cached = find(job, "cached");
          std::printf("%-5.0f %-14s %-13s %-10s %6.0f %6s\n",
                      number_or(job, "id", -1.0),
                      tenant != nullptr ? tenant->string.c_str() : "?",
                      system,
                      state != nullptr ? state->string.c_str() : "?", n,
                      cached != nullptr && cached->boolean ? "yes" : "no");
        }
      }
    }
    if (opt.watch_seconds <= 0.0) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opt.watch_seconds));
  }
  return 0;
}

int run_live(const Options& opt) {
  bool fetched_any = false;
  std::string last_verdict;
  for (;;) {
    std::string body;
    try {
      int status = 0;
      body = psdns::obs::http_get(opt.host, opt.port, "/json", &status);
      if (status != 200) {
        std::fprintf(stderr, "endpoint returned HTTP %d\n", status);
        return 1;
      }
    } catch (const std::exception& e) {
      if (fetched_any) break;  // campaign finished and took the endpoint down
      std::fprintf(stderr, "cannot reach %s:%d: %s\n", opt.host.c_str(),
                   opt.port, e.what());
      return 1;
    }
    const JsonValue doc = psdns::obs::json_parse(body);
    fetched_any = true;
    last_verdict = verdict_of(doc);
    if (opt.json) {
      std::printf("%s\n", body.c_str());
    } else {
      if (opt.watch_seconds > 0.0) std::printf("\x1b[2J\x1b[H");
      if (const JsonValue* snap = find(doc, "snapshot")) {
        render_snapshot(*snap, last_verdict);
      }
      if (const JsonValue* health = find(doc, "health")) {
        render_health_events(*health);
      }
    }
    if (opt.watch_seconds <= 0.0) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        opt.watch_seconds));
  }
  return last_verdict == "abort" ? 2 : 0;
}

int run_series(const Options& opt) {
  const auto rows = psdns::obs::read_series_jsonl(opt.series);
  if (rows.empty()) {
    std::fprintf(stderr, "%s: empty series\n", opt.series.c_str());
    return 1;
  }
  if (opt.json) {
    for (const auto& row : rows) {
      std::printf("%s\n", row.to_json().c_str());
    }
    return rows.back().health_verdict == "abort" ? 2 : 0;
  }
  std::printf("%s: %zu rows\n", opt.series.c_str(), rows.size());
  for (const auto& row : rows) {
    const psdns::obs::ReducedValue* wall =
        row.gauge("rank.step.wall_seconds");
    std::printf("  step %-6lld t=%-12.6g health=%-9s wall(max)=%s\n",
                static_cast<long long>(row.step), row.time,
                row.health_verdict.empty() ? "(off)"
                                           : row.health_verdict.c_str(),
                wall != nullptr
                    ? (std::to_string(wall->max) + "[" +
                       std::to_string(wall->max_rank) + "]")
                          .c_str()
                    : "-");
  }
  const auto& last = rows.back();
  std::printf("\nfinal row:\n");
  render_snapshot(psdns::obs::json_parse(last.to_json()),
                  last.health_verdict);
  return last.health_verdict == "abort" ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--service") {
      opt.service = true;
    } else if (arg == "--port") {
      opt.port = std::atoi(value());
    } else if (arg == "--host") {
      opt.host = value();
    } else if (arg == "--series") {
      opt.series = value();
    } else if (arg == "--watch") {
      opt.watch_seconds = std::atof(value());
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.series.empty() == (opt.port < 0)) return usage(argv[0]);
  if (opt.service && opt.port < 0) return usage(argv[0]);
  try {
    if (opt.service) return run_service(opt);
    return opt.series.empty() ? run_live(opt) : run_series(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdns_top: %s\n", e.what());
    return 1;
  }
}
