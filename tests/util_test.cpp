#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace psdns::util {
namespace {

TEST(Check, RequireThrowsWithMessage) {
  try {
    PSDNS_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, CheckPassesSilently) {
  EXPECT_NO_THROW(PSDNS_CHECK(2 + 2 == 4, "unused"));
}

TEST(Aligned, VectorDataIsAligned) {
  AlignedVector<double> v(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u);
  AlignedVector<char> c(3);  // size not a multiple of alignment
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % kAlignment, 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsApproximate) {
  Rng r(7);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.seconds(), t0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(12e6), "12.00 MB");
  EXPECT_EQ(format_bytes(1.9e9), "1.90 GB");
  EXPECT_EQ(format_bytes(53e3), "53.0 KB");
  EXPECT_EQ(format_bytes(12), "12 B");
}

TEST(Format, Time) {
  EXPECT_EQ(format_time(14.24), "14.24 s");
  EXPECT_EQ(format_time(0.87), "870.00 ms");
  EXPECT_EQ(format_time(53e-6), "53.00 us");
}

TEST(Format, Problem) { EXPECT_EQ(format_problem(18432), "18432^3"); }

TEST(Table, RendersAlignedColumns) {
  Table t({"Nodes", "Time (s)"});
  t.add_row({"16", "6.70"});
  t.add_row({"3072", "14.24"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Nodes | Time (s) |"), std::string::npos);
  EXPECT_NE(s.find("| 3072  | 14.24    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--n=128", "--viscosity=0.01", "--verbose",
                        "--name=run1"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("viscosity", 0.0), 0.01);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get("name", ""), "run1");
  EXPECT_EQ(cli.get_int("missing", 77), 77);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Simd, BackendNamesAndDispatchAreConsistent) {
  EXPECT_STREQ(simd::to_string(simd::Backend::Scalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Backend::Avx2), "avx2");
  // The dispatched backend is always runnable on this machine.
  const simd::Backend b = simd::active_backend();
  EXPECT_TRUE(b == simd::Backend::Scalar || simd::avx2_supported());
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for("test.count", 0, kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, StripeToThreadBindingIsDeterministic) {
  // Which thread slot computes which index must be a pure function of the
  // loop bounds and thread count — run the same loop twice and compare.
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;  // not a multiple of the width
  std::vector<int> first(kN, -1), second(kN, -1);
  for (auto* out : {&first, &second}) {
    // Tag each pool thread with its slot, then record who ran each index.
    thread_local int t_slot = -1;
    pool.for_each_thread([&](std::size_t slot) {
      t_slot = static_cast<int>(slot);
    });
    pool.parallel_for("test.bind", 0, kN,
                      [&](std::size_t i) { (*out)[i] = t_slot; });
  }
  EXPECT_EQ(first, second);
  // Caller participates as slot 0 and the loop uses the full width.
  std::set<int> used(first.begin(), first.end());
  EXPECT_EQ(used.size(), 4u);
  EXPECT_TRUE(used.contains(0));
}

TEST(ThreadPool, ForEachThreadHitsEverySlotOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  pool.for_each_thread([&](std::size_t slot) {
    hits[slot].fetch_add(1, std::memory_order_relaxed);
  });
  for (int s = 0; s < 3; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for("test.outer", 0, 8, [&](std::size_t) {
    pool.parallel_for("test.inner", 0, 8,
                      [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  try {
    pool.parallel_for("test.throw", 0, 100, [&](std::size_t i) {
      if (i == 42) throw std::runtime_error("boom 42");
    });
    FAIL() << "expected the loop to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 42");
  }
  // The pool survives an exception and keeps running loops.
  std::atomic<int> n{0};
  pool.parallel_for("test.after", 0, 10, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SetThreadsResizes) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  pool.set_threads(4);
  EXPECT_EQ(pool.threads(), 4);
  std::atomic<int> n{0};
  pool.parallel_for("test.resized", 0, 16, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16);
  pool.set_threads(1);
  EXPECT_EQ(pool.threads(), 1);
}

TEST(ThreadPool, StatsAccumulateStageBusyTime) {
  ThreadPool pool(2);
  pool.parallel_for("test.stage_a", 0, 64, [](std::size_t) {});
  pool.parallel_for("test.stage_a", 0, 64, [](std::size_t) {});
  const auto stats = pool.stats();
  EXPECT_EQ(stats.jobs, 2);
  EXPECT_GE(stats.stripes, 2);
  bool found = false;
  for (const auto& st : stats.stages) {
    if (std::string_view(st.name) == "test.stage_a") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace psdns::util
