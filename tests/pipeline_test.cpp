#include <gtest/gtest.h>

#include <cmath>

#include "comm/communicator.hpp"
#include "model/paper.hpp"
#include "model/scaling.hpp"
#include "pipeline/async_fft.hpp"
#include "pipeline/dns_step_model.hpp"
#include "pipeline/timeline.hpp"
#include "transpose/dist_fft.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace psdns::pipeline {
namespace {

using model::paper::kCases;
using model::paper::kTable3;

PipelineConfig make_config(std::size_t case_index, MpiConfig mpi) {
  const auto& c = kCases[case_index];
  PipelineConfig cfg;
  cfg.n = c.n;
  cfg.nodes = c.nodes;
  cfg.pencils = c.pencils;
  cfg.mpi = mpi;
  return cfg;
}

// --- timed co-simulation: Table 3 shapes ---

TEST(StepModel, DeterministicAcrossRuns) {
  DnsStepModel m;
  const auto cfg = make_config(2, MpiConfig::C);
  EXPECT_DOUBLE_EQ(m.simulate_gpu_step(cfg).seconds,
                   m.simulate_gpu_step(cfg).seconds);
}

TEST(StepModel, Table3TimesWithinBand) {
  // Absolute times within +-45% of the paper for every cell except the
  // paper-internally-anomalous A@1024 (see EXPERIMENTS.md): Table 2's own
  // standalone bandwidth for that cell implies a slower DNS than Table 3
  // reports.
  DnsStepModel m;
  for (std::size_t i = 0; i < std::size(kTable3); ++i) {
    const auto& row = kTable3[i];
    const double cpu = m.cpu_step_seconds(row.n, row.nodes);
    EXPECT_GT(cpu, 0.55 * row.cpu_sync) << "row " << i;
    EXPECT_LT(cpu, 1.45 * row.cpu_sync) << "row " << i;

    const struct {
      MpiConfig mc;
      double want;
    } cells[] = {{MpiConfig::A, row.gpu_a},
                 {MpiConfig::B, row.gpu_b},
                 {MpiConfig::C, row.gpu_c}};
    for (const auto& cell : cells) {
      if (cell.mc == MpiConfig::A && row.nodes == 1024) continue;
      const double got = m.simulate_gpu_step(make_config(i, cell.mc)).seconds;
      EXPECT_GT(got, 0.55 * cell.want)
          << "row " << i << " config " << to_string(cell.mc);
      EXPECT_LT(got, 1.45 * cell.want)
          << "row " << i << " config " << to_string(cell.mc);
    }
  }
}

TEST(StepModel, OverlappedPencilsWinAt16Nodes) {
  // Paper: at 16 nodes, B (1 pencil/A2A, overlapped) is the fastest GPU
  // configuration.
  DnsStepModel m;
  const double a = m.simulate_gpu_step(make_config(0, MpiConfig::A)).seconds;
  const double b = m.simulate_gpu_step(make_config(0, MpiConfig::B)).seconds;
  const double c = m.simulate_gpu_step(make_config(0, MpiConfig::C)).seconds;
  EXPECT_LT(b, c);
  EXPECT_LT(b, a);
}

TEST(StepModel, WholeSlabWinsBeyond16Nodes) {
  // Paper Sec. 5.2: "Beyond 16 nodes, waiting to send the entire slab at
  // once is faster than overlapping communications of a pencil at a time."
  DnsStepModel m;
  for (std::size_t i = 1; i < std::size(kCases); ++i) {
    const double b =
        m.simulate_gpu_step(make_config(i, MpiConfig::B)).seconds;
    const double c =
        m.simulate_gpu_step(make_config(i, MpiConfig::C)).seconds;
    EXPECT_LT(c, b) << "nodes=" << kCases[i].nodes;
  }
}

TEST(StepModel, TwoTasksPerNodeBeatSix) {
  DnsStepModel m;
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    const double a =
        m.simulate_gpu_step(make_config(i, MpiConfig::A)).seconds;
    const double best = std::min(
        m.simulate_gpu_step(make_config(i, MpiConfig::B)).seconds,
        m.simulate_gpu_step(make_config(i, MpiConfig::C)).seconds);
    EXPECT_LT(best, a) << "nodes=" << kCases[i].nodes;
  }
}

TEST(StepModel, GpuSpeedupSubstantialAndShrinkingAtScale) {
  DnsStepModel m;
  std::vector<double> speedup;
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    const double cpu = m.cpu_step_seconds(kCases[i].n, kCases[i].nodes);
    double best = 1e300;
    for (const auto mc : {MpiConfig::A, MpiConfig::B, MpiConfig::C}) {
      best = std::min(best, m.simulate_gpu_step(make_config(i, mc)).seconds);
    }
    speedup.push_back(cpu / best);
  }
  // Speedup of order 3 or higher at the weak-scaled sizes (paper: 4.2-5.1),
  // dropping at the 18432^3 stretch size (paper: 2.9).
  for (std::size_t i = 0; i + 1 < speedup.size(); ++i) {
    EXPECT_GT(speedup[i], 3.0) << "case " << i;
  }
  EXPECT_GT(speedup.back(), 2.0);
  EXPECT_LT(speedup.back(), speedup[2]);
}

TEST(StepModel, HeadlineNumbers) {
  // The paper's two headline results: ~4.7x at 12288^3 (largest size in the
  // literature) and < 20 s/step at 18432^3 (the wallclock goal of Sec. 3,
  // "approximately 20s per RK2 timestep").
  DnsStepModel m;
  const double cpu12k = m.cpu_step_seconds(12288, 1024);
  const double gpu12k =
      m.simulate_gpu_step(make_config(2, MpiConfig::C)).seconds;
  EXPECT_GT(cpu12k / gpu12k, 4.0);
  EXPECT_LT(cpu12k / gpu12k, 5.5);

  const double gpu18k =
      m.simulate_gpu_step(make_config(3, MpiConfig::C)).seconds;
  EXPECT_LT(gpu18k, model::paper::kWallclockGoalPerStep);
}

TEST(StepModel, MpiOnlyIsALowerBound) {
  // Fig. 9: the standalone-MPI line bounds every DNS configuration from
  // below.
  DnsStepModel m;
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    for (const auto mc : {MpiConfig::B, MpiConfig::C}) {
      const auto cfg = make_config(i, mc);
      EXPECT_LT(m.mpi_only_step_seconds(cfg),
                m.simulate_gpu_step(cfg).seconds)
          << "nodes=" << kCases[i].nodes;
    }
  }
}

TEST(StepModel, MpiDominatesRuntimeInBestConfig) {
  // Sec. 6: FFT compute plus CPU<->GPU movement is less than ~1/7 of the
  // runtime; the bulk is the all-to-all.
  DnsStepModel m;
  const auto r = m.simulate_gpu_step(make_config(3, MpiConfig::C));
  EXPECT_GT(r.mpi_busy / r.seconds, 0.6);
}

TEST(StepModel, AsyncBeatsSerializedAblation) {
  DnsStepModel m;
  auto cfg = make_config(2, MpiConfig::C);
  const double async_t = m.simulate_gpu_step(cfg).seconds;
  cfg.async = false;
  const double sync_t = m.simulate_gpu_step(cfg).seconds;
  EXPECT_LT(async_t, sync_t);
}

TEST(StepModel, ManyMemcpyCopyMethodIsSlower) {
  // Fig. 7 consequence at DNS scale: per-chunk cudaMemcpyAsync copies make
  // the step slower than pitched copies.
  DnsStepModel m;
  auto cfg = make_config(3, MpiConfig::C);
  const double pitched = m.simulate_gpu_step(cfg).seconds;
  cfg.copy_method = gpu::CopyMethod::ManyMemcpyAsync;
  const double many = m.simulate_gpu_step(cfg).seconds;
  EXPECT_GT(many, pitched);
}

TEST(StepModel, StrongScalingOf18432CaseA) {
  // Sec. 5.3: 18432^3 with 6 tasks/node: 1536 -> 3072 nodes at 95.7%
  // strong-scaling efficiency. The model should show near-ideal strong
  // scaling too (communication volume per node halves).
  DnsStepModel m;
  PipelineConfig c3072 = make_config(3, MpiConfig::A);
  PipelineConfig c1536 = c3072;
  c1536.nodes = 1536;
  c1536.pencils = 7;  // memory model: twice the per-node footprint
  const double t3072 = m.simulate_gpu_step(c3072).seconds;
  const double t1536 = m.simulate_gpu_step(c1536).seconds;
  const double ss = model::strong_scaling_percent(1536, t1536, 3072, t3072);
  EXPECT_GT(ss, 80.0);
  EXPECT_LT(ss, 115.0);
}

TEST(StepModel, WeakScalingMatchesTable4Shape) {
  // Weak scaling of the best configuration relative to 3072^3 (Eq. 4)
  // decays with scale and stays within +-15 points of Table 4.
  DnsStepModel m;
  std::vector<double> best(std::size(kCases));
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    best[i] = 1e300;
    for (const auto mc : {MpiConfig::A, MpiConfig::B, MpiConfig::C}) {
      best[i] =
          std::min(best[i], m.simulate_gpu_step(make_config(i, mc)).seconds);
    }
  }
  double prev = 101.0;
  for (std::size_t i = 1; i < std::size(kCases); ++i) {
    const double ws = model::weak_scaling_percent(
        kCases[0].n, kCases[0].nodes, best[0], kCases[i].n, kCases[i].nodes,
        best[i]);
    EXPECT_LT(ws, prev) << "weak scaling must decay";
    EXPECT_NEAR(ws, model::paper::kTable4[i].weak_scaling_pct, 15.0);
    prev = ws;
  }
}

TEST(StepModel, CpuCoresPerNodeRule) {
  EXPECT_EQ(DnsStepModel::cpu_cores_per_node(3072), 32);
  EXPECT_EQ(DnsStepModel::cpu_cores_per_node(6144), 32);
  EXPECT_EQ(DnsStepModel::cpu_cores_per_node(12288), 32);
  EXPECT_EQ(DnsStepModel::cpu_cores_per_node(18432), 36);
}

TEST(StepModel, GpuDirectGivesNoNoticeableBenefit) {
  // Sec. 3.3: "after implementing CUDA-aware MPI and GPU-direct we did not
  // see any noticeable benefit to our runtime" - the pipeline is NIC-bound
  // and the D2H already doubles as the pack.
  DnsStepModel m;
  auto cfg = make_config(3, MpiConfig::C);
  const double staged = m.simulate_gpu_step(cfg).seconds;
  cfg.gpu_direct = true;
  const double direct = m.simulate_gpu_step(cfg).seconds;
  EXPECT_LT(std::abs(direct - staged) / staged, 0.10);
}

TEST(StepModel, RK4CostsAboutTwiceRK2) {
  // Sec. 2: "The cost of RK4 per time step is approximately doubled."
  DnsStepModel m;
  auto cfg = make_config(2, MpiConfig::C);
  const double rk2 = m.simulate_gpu_step(cfg).seconds;
  cfg.rk_substeps = 4;
  const double rk4 = m.simulate_gpu_step(cfg).seconds;
  EXPECT_NEAR(rk4 / rk2, 2.0, 0.15);
}

TEST(StepModel, ZeroCopyUnpackBeatsStagedUnpackInTransferStream) {
  // Sec. 4.2/5.2: the zero-copy unpack frees the transfer stream (and the
  // copy engines) at the cost of a few SMs; at the production operating
  // point it should not be slower than pushing unpacks through the
  // transfer stream.
  DnsStepModel m;
  auto cfg = make_config(3, MpiConfig::C);
  cfg.unpack_method = gpu::CopyMethod::ZeroCopy;
  const double zc = m.simulate_gpu_step(cfg).seconds;
  cfg.unpack_method = gpu::CopyMethod::Memcpy2DAsync;
  const double staged = m.simulate_gpu_step(cfg).seconds;
  EXPECT_LT(zc, staged * 1.02);
}

TEST(StepModel, ScalarCostScalesWithTransposedVariables) {
  // Each scalar adds 4 of the 9 variable-transposes a velocity-only substep
  // performs, so the communication-bound step time grows roughly as
  // (9 + 4m) / 9.
  DnsStepModel m;
  auto cfg = make_config(2, MpiConfig::C);
  const double base = m.simulate_gpu_step(cfg).seconds;
  cfg.scalars = 1;
  const double one = m.simulate_gpu_step(cfg).seconds;
  cfg.scalars = 2;
  const double two = m.simulate_gpu_step(cfg).seconds;
  EXPECT_NEAR(one / base, 13.0 / 9.0, 0.12);
  EXPECT_NEAR(two / base, 17.0 / 9.0, 0.15);
}

TEST(StepModel, RejectsInfeasibleConfigurations) {
  DnsStepModel m;
  // 18432^3 on 1024 nodes: below the 1302-node memory estimate.
  PipelineConfig too_few = make_config(3, MpiConfig::C);
  too_few.nodes = 1024;
  EXPECT_THROW(m.simulate_gpu_step(too_few), util::Error);

  // Too few pencils: the 27 GPU buffers would not fit in 96 GB.
  PipelineConfig too_big_pencils = make_config(3, MpiConfig::C);
  too_big_pencils.pencils = 1;
  EXPECT_THROW(m.simulate_gpu_step(too_big_pencils), util::Error);

  // The paper's production point is feasible.
  EXPECT_NO_THROW(m.simulate_gpu_step(make_config(3, MpiConfig::C)));
}

TEST(Timeline, LanePerStreamViewShowsStreams) {
  DnsStepModel m;
  const auto r = m.simulate_gpu_step(make_config(0, MpiConfig::B));
  const std::string t = render_timeline(
      r.records, r.seconds, {.columns = 60, .show_lane_per_stream = true});
  EXPECT_NE(t.find(".compute"), std::string::npos);
  EXPECT_NE(t.find(".transfer"), std::string::npos);
  EXPECT_NE(t.find(".mpi"), std::string::npos);
}

// --- timeline rendering (Fig. 10 machinery) ---

TEST(Timeline, RendersCategoriesAndDuration) {
  DnsStepModel m;
  const auto r = m.simulate_gpu_step(make_config(2, MpiConfig::C));
  const std::string t = render_timeline(r.records, r.seconds);
  EXPECT_NE(t.find("MPI"), std::string::npos);
  EXPECT_NE(t.find("compute"), std::string::npos);
  EXPECT_NE(t.find('#'), std::string::npos);
  const std::string busy = summarize_busy(r.records, r.seconds);
  EXPECT_NE(busy.find("MPI:"), std::string::npos);
}

TEST(Timeline, EmptyTraceHandled) {
  EXPECT_EQ(render_timeline({}), "(empty timeline)\n");
}

TEST(Timeline, LanePerStreamPaintsOneRowPerLane) {
  // Two lanes, synthetic ops: each lane gets its own labeled row whose '#'
  // extent matches the op placement.
  std::vector<sim::OpRecord> recs(2);
  recs[0] = {"a", "laneA", sim::OpCategory::Compute, 0.0, 5.0};
  recs[1] = {"b", "laneB", sim::OpCategory::Mpi, 5.0, 10.0};
  const std::string t = render_timeline(
      recs, 10.0, {.columns = 10, .show_lane_per_stream = true});
  EXPECT_NE(t.find("laneA |#####"), std::string::npos);
  EXPECT_NE(t.find("laneB |"), std::string::npos);
  // laneB's row is idle in the first half.
  const auto pos = t.find("laneB |");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(t.substr(pos + 7, 4), "....");
}

TEST(Timeline, ClipsOpsBeyondTEnd) {
  // With t_end before the second op even starts, the later op must not
  // smear into the last column of the render.
  std::vector<sim::OpRecord> recs(2);
  recs[0] = {"a", "l", sim::OpCategory::Mpi, 0.0, 2.0};
  recs[1] = {"b", "l", sim::OpCategory::Mpi, 8.0, 10.0};
  const std::string full = render_timeline(recs, 10.0, {.columns = 10});
  const std::string clipped = render_timeline(recs, 4.0, {.columns = 10});
  // Full window: MPI row shows both ops (last column painted).
  const auto row_of = [](const std::string& s) {
    const auto p = s.find("MPI");
    const auto bar = s.find('|', p);
    return s.substr(bar + 1, 10);
  };
  EXPECT_EQ(row_of(full).back(), '#');
  // Clipped window: only the first op, scaled to the shorter axis; the
  // trailing columns stay idle. (Columns are inclusive of the op's end.)
  EXPECT_EQ(row_of(clipped), "######....");
}

TEST(Timeline, ClipsOpsStraddlingTEnd) {
  // An op that starts inside the window but finishes after t_end paints up
  // to the last column without reading past it.
  std::vector<sim::OpRecord> recs(1);
  recs[0] = {"a", "l", sim::OpCategory::Mpi, 3.0, 100.0};
  const std::string t = render_timeline(recs, 4.0, {.columns = 8});
  const auto p = t.find("MPI");
  const auto bar = t.find('|', p);
  EXPECT_EQ(t.substr(bar + 1, 8), "......##");
}

// --- functional Fig.-4 executor ---

class AsyncFftP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AsyncFftP, MatchesMonolithicTransform) {
  const auto [np, q] = GetParam();
  const std::size_t n = 16;
  const int P = 4;
  comm::run_ranks(P, [&](comm::Communicator& comm) {
    transpose::SlabFft3d reference(comm, n);
    AsyncFft3d pipelined(comm, n, np, q);

    util::Rng rng(42, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Real> phys(reference.physical_elems());
    for (auto& v : phys) v = rng.gaussian();

    std::vector<Complex> want(reference.spectral_elems());
    reference.forward(phys, want);

    std::vector<Complex> got(pipelined.spectral_elems());
    const Real* pp = phys.data();
    Complex* gp = got.data();
    pipelined.forward(std::span<const Real* const>(&pp, 1),
                      std::span<Complex* const>(&gp, 1));
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_LT(std::abs(got[i] - want[i]), 1e-9) << "i=" << i;
    }

    // Inverse round trip through the pipelined path.
    std::vector<Real> back(pipelined.physical_elems());
    const Complex* gcp = got.data();
    Real* bp = back.data();
    pipelined.inverse(std::span<const Complex* const>(&gcp, 1),
                      std::span<Real* const>(&bp, 1));
    const double scale = static_cast<double>(n) * n * n;
    for (std::size_t i = 0; i < phys.size(); ++i) {
      EXPECT_NEAR(back[i] / scale, phys[i], 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Batching, AsyncFftP,
    ::testing::Values(std::pair{1, 1}, std::pair{3, 1}, std::pair{4, 2},
                      std::pair{4, 4}, std::pair{5, 2}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& pinfo) {
      return "np" + std::to_string(pinfo.param.first) + "q" +
             std::to_string(pinfo.param.second);
    });

TEST(AsyncFft, MultipleVariablesShareTheExchange) {
  const std::size_t n = 8;
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    transpose::SlabFft3d reference(comm, n);
    AsyncFft3d pipelined(comm, n, 2, 1);

    util::Rng rng(1, static_cast<std::uint64_t>(comm.rank()));
    std::vector<std::vector<Real>> phys(3);
    std::vector<const Real*> pp(3);
    for (int v = 0; v < 3; ++v) {
      phys[static_cast<std::size_t>(v)].resize(reference.physical_elems());
      for (auto& x : phys[static_cast<std::size_t>(v)]) x = rng.gaussian();
      pp[static_cast<std::size_t>(v)] = phys[static_cast<std::size_t>(v)].data();
    }
    std::vector<std::vector<Complex>> got(3), want(3);
    std::vector<Complex*> gp(3), wp(3);
    for (int v = 0; v < 3; ++v) {
      got[static_cast<std::size_t>(v)].resize(reference.spectral_elems());
      want[static_cast<std::size_t>(v)].resize(reference.spectral_elems());
      gp[static_cast<std::size_t>(v)] = got[static_cast<std::size_t>(v)].data();
      wp[static_cast<std::size_t>(v)] = want[static_cast<std::size_t>(v)].data();
    }
    reference.forward(std::span<const Real* const>(pp.data(), 3),
                      std::span<Complex* const>(wp.data(), 3));
    pipelined.forward(std::span<const Real* const>(pp.data(), 3),
                      std::span<Complex* const>(gp.data(), 3));
    for (int v = 0; v < 3; ++v) {
      for (std::size_t i = 0; i < want[0].size(); ++i) {
        EXPECT_LT(std::abs(got[static_cast<std::size_t>(v)][i] -
                           want[static_cast<std::size_t>(v)][i]),
                  1e-9);
      }
    }
  });
}

}  // namespace
}  // namespace psdns::pipeline
