// Heap-allocation regression tests for the zero-allocation steady state:
// after a warm-up step has grown every workspace-arena handle, registry
// key and thread-local scratch buffer, SpectralNSCore::step() must not
// touch the heap at all - no operator new/delete on any rank thread, and
// no workspace-arena misses (the arena allocates through aligned_alloc,
// which the new/delete overrides below cannot see, so the miss counter is
// asserted separately).
//
// The overrides count only while a thread opts in via t_track, so gtest
// bookkeeping and warm-up allocations stay invisible. This file must not
// be built under ASan/LSan (replacing global new/delete defeats the
// interceptors); the sanitizer CI job excludes it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "comm/communicator.hpp"
#include "dns/pencil_solver.hpp"
#include "dns/solver.hpp"
#include "obs/arena_metrics.hpp"
#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace {

std::atomic<long> g_news{0};
std::atomic<long> g_deletes{0};
thread_local bool t_track = false;

void* tracked_alloc(std::size_t size, std::size_t align) {
  if (t_track) g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = nullptr;
  if (align > alignof(std::max_align_t)) {
    const std::size_t rounded = (size + align - 1) / align * align;
    p = std::aligned_alloc(align, rounded);
  } else {
    p = std::malloc(size);
  }
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  if (t_track) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return tracked_alloc(size, 0); }
void* operator new[](std::size_t size) { return tracked_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return tracked_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tracked_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}

namespace psdns::dns {
namespace {

struct StepDeltas {
  long news = 0;
  long deletes = 0;
  std::int64_t arena_misses = 0;
};

/// Warms the solver up with two untracked steps, then runs `steps` tracked
/// steps and reports the allocation/miss deltas. Collective: every rank
/// must call it in lockstep.
template <class Solver>
StepDeltas tracked_steps(Solver& solver, comm::Communicator& comm, int steps,
                         double dt) {
  solver.step(dt);
  solver.step(dt);
  comm.barrier();
  const auto arena_before = util::WorkspaceArena::global().stats();
  const long n0 = g_news.load();
  const long d0 = g_deletes.load();
  t_track = true;
  for (int i = 0; i < steps; ++i) solver.step(dt);
  t_track = false;
  comm.barrier();
  const auto arena_after = util::WorkspaceArena::global().stats();
  return {g_news.load() - n0, g_deletes.load() - d0,
          static_cast<std::int64_t>(arena_after.misses -
                                    arena_before.misses)};
}

TEST(AllocFree, SlabRk2SingleRank) {
  comm::run_ranks(1, [](comm::Communicator& comm) {
    SolverConfig config;
    config.n = 16;
    config.viscosity = 0.02;
    SlabSolver solver(comm, config);
    solver.init_taylor_green();
    const StepDeltas d = tracked_steps(solver, comm, 4, 1e-3);
    EXPECT_EQ(d.news, 0);
    EXPECT_EQ(d.deletes, 0);
    EXPECT_EQ(d.arena_misses, 0);
  });
}

TEST(AllocFree, SlabRk4ForcedScalarPhaseShiftTwoRanks) {
  comm::run_ranks(2, [](comm::Communicator& comm) {
    SolverConfig config;
    config.n = 16;
    config.viscosity = 0.02;
    config.scheme = TimeScheme::RK4;
    config.phase_shift_dealias = true;
    config.forcing.enabled = true;
    config.forcing.power = 0.05;
    config.scalars.push_back(ScalarConfig{.schmidt = 0.7,
                                          .mean_gradient = 1.0});
    SlabSolver solver(comm, config);
    solver.init_isotropic(7, 3.0, 0.5);
    solver.init_scalar_isotropic(0, 11, 3.0, 0.25);
    const StepDeltas d = tracked_steps(solver, comm, 3, 1e-3);
    EXPECT_EQ(d.news, 0);
    EXPECT_EQ(d.deletes, 0);
    EXPECT_EQ(d.arena_misses, 0);
  });
}

TEST(AllocFree, SlabMhdRk4TwoRanks) {
  // MHD doubles the field set (3 induction components) and forms 9
  // Elsasser products per substage; all of it must come out of the arena
  // blocks checked out at construction.
  comm::run_ranks(2, [](comm::Communicator& comm) {
    SolverConfig config;
    config.n = 16;
    config.viscosity = 0.02;
    config.scheme = TimeScheme::RK4;
    config.system = SystemType::Mhd;
    SlabSolver solver(comm, config);
    solver.init_isotropic(7, 3.0, 0.5);
    solver.init_magnetic_isotropic(9, 3.0, 0.25);
    solver.set_uniform_magnetic_field({0.0, 0.0, 0.5});
    const StepDeltas d = tracked_steps(solver, comm, 3, 1e-3);
    EXPECT_EQ(d.news, 0);
    EXPECT_EQ(d.deletes, 0);
    EXPECT_EQ(d.arena_misses, 0);
  });
}

TEST(AllocFree, PencilRk4ForcedFourRanks) {
  comm::run_ranks(4, [](comm::Communicator& comm) {
    PencilSolverConfig config;
    config.n = 16;
    config.viscosity = 0.02;
    config.pr = 2;
    config.pc = 2;
    config.scheme = TimeScheme::RK4;
    config.forcing.enabled = true;
    config.forcing.power = 0.05;
    PencilSolver solver(comm, config);
    solver.init_isotropic(7, 3.0, 0.5);
    const StepDeltas d = tracked_steps(solver, comm, 3, 1e-3);
    EXPECT_EQ(d.news, 0);
    EXPECT_EQ(d.deletes, 0);
    EXPECT_EQ(d.arena_misses, 0);
  });
}

TEST(AllocFree, SlabRk2PooledFourThreads) {
  // The worker pool's static striping warms each pool thread's arena
  // scratch during the untracked steps; the tracked steps then opt every
  // pool thread into the new/delete counters, so a single stray allocation
  // on any worker fails the test. Job submission itself must also be
  // allocation-free (fixed ring, function pointer + context).
  auto& pool = util::ThreadPool::global();
  const int prev = pool.threads();
  pool.set_threads(4);
  comm::run_ranks(1, [&](comm::Communicator& comm) {
    SolverConfig config;
    config.n = 32;  // big enough for several blocks per batched loop
    config.viscosity = 0.02;
    SlabSolver solver(comm, config);
    solver.init_taylor_green();
    solver.step(1e-3);
    solver.step(1e-3);
    comm.barrier();
    const auto arena_before = util::WorkspaceArena::global().stats();
    const long n0 = g_news.load();
    const long d0 = g_deletes.load();
    pool.for_each_thread([](std::size_t) { t_track = true; });
    for (int i = 0; i < 3; ++i) solver.step(1e-3);
    pool.for_each_thread([](std::size_t) { t_track = false; });
    comm.barrier();
    const auto arena_after = util::WorkspaceArena::global().stats();
    EXPECT_EQ(g_news.load() - n0, 0);
    EXPECT_EQ(g_deletes.load() - d0, 0);
    EXPECT_EQ(arena_after.misses - arena_before.misses, 0u);
  });
  pool.set_threads(prev);
}

TEST(ArenaMetrics, PublishesGaugesNextToUsage) {
  // Two rounds: the second solver checks out the buckets the first one
  // released, so the process shows recycling even when this test runs in
  // isolation (ctest executes each case in its own process).
  for (int round = 0; round < 2; ++round) {
    comm::run_ranks(1, [](comm::Communicator& comm) {
      SolverConfig config;
      config.n = 16;
      SlabSolver solver(comm, config);
      solver.init_taylor_green();
      solver.step(1e-3);
    });
  }
  obs::publish_arena_metrics();
  const auto snap = obs::registry().snapshot();
  ASSERT_TRUE(snap.gauges.contains("alloc.arena.peak_bytes"));
  ASSERT_TRUE(snap.gauges.contains("alloc.arena.resident_bytes"));
  ASSERT_TRUE(snap.gauges.contains("alloc.arena.misses"));
  ASSERT_TRUE(snap.gauges.contains("alloc.arena.hit_rate"));
  EXPECT_GT(snap.gauges.at("alloc.arena.peak_bytes"), 0.0);
  EXPECT_GE(snap.gauges.at("alloc.arena.peak_bytes"),
            snap.gauges.at("alloc.arena.resident_bytes"));
  // Blocks released by earlier solver/thread teardowns get reused, so a
  // process that has run a solver must show some recycling (the exact rate
  // depends on how many distinct bucket sizes were requested first).
  EXPECT_GT(snap.gauges.at("alloc.arena.hit_rate"), 0.0);
}

}  // namespace
}  // namespace psdns::dns
