#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu/copy.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/virtual_gpu.hpp"
#include "sim/engine.hpp"

namespace psdns::gpu {
namespace {

// --- functional copy primitives ---

TEST(Copy, Memcpy2dMovesPitchedRows) {
  // 3 rows of 4 elements out of a source with pitch 6 into dest pitch 5.
  std::vector<int> src(18);
  std::iota(src.begin(), src.end(), 0);
  std::vector<int> dst(15, -1);
  memcpy2d(dst.data(), 5, src.data(), 6, 4, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(dst[r * 5 + c], static_cast<int>(r * 6 + c));
    }
    EXPECT_EQ(dst[r * 5 + 4], -1);  // pitch padding untouched
  }
}

TEST(Copy, Memcpy2dRejectsShortPitch) {
  std::vector<int> a(10), b(10);
  EXPECT_THROW(memcpy2d(a.data(), 2, b.data(), 5, 3, 2), util::Error);
}

TEST(Copy, GatherScatterRoundTrip) {
  std::vector<double> src{10, 11, 12, 13, 14, 15};
  const std::vector<std::size_t> index{4, 2, 0, 5};
  std::vector<double> packed(index.size());
  gather(packed.data(), src.data(), index);
  EXPECT_EQ(packed, (std::vector<double>{14, 12, 10, 15}));

  std::vector<double> back(src.size(), 0.0);
  scatter(back.data(), packed.data(), index);
  EXPECT_EQ(back[4], 14.0);
  EXPECT_EQ(back[2], 12.0);
  EXPECT_EQ(back[0], 10.0);
  EXPECT_EQ(back[5], 15.0);
  EXPECT_EQ(back[1], 0.0);
}

// --- cost model (Fig. 7 / Fig. 8 shapes) ---

TEST(CostModel, NvlinkShareIs50GBs) {
  CostModel m;
  EXPECT_NEAR(m.nvlink_bw_per_gpu(), 50e9, 1e6);
}

TEST(CostModel, ManyMemcpyBlowsUpForSmallChunks) {
  // Fig. 7: at small contiguous chunks, per-call overhead dominates and the
  // many-memcpyAsync approach is orders of magnitude slower.
  CostModel m;
  const double total = 216e6;
  const double small_chunk = 8.8e3;
  const double t_many =
      m.strided_copy_time(CopyMethod::ManyMemcpyAsync, total, small_chunk);
  const double t_2d =
      m.strided_copy_time(CopyMethod::Memcpy2DAsync, total, small_chunk);
  const double t_zc =
      m.strided_copy_time(CopyMethod::ZeroCopy, total, small_chunk);
  EXPECT_GT(t_many, 10.0 * t_2d);
  EXPECT_GT(t_many, 10.0 * t_zc);
  // Zero-copy and memcpy2D are comparable (paper: "similar timings").
  EXPECT_LT(t_zc, 2.0 * t_2d);
  EXPECT_LT(t_2d, 2.0 * t_zc);
}

TEST(CostModel, AllMethodsConvergeForHugeChunks) {
  CostModel m;
  const double total = 216e6;
  const double big_chunk = 27e6;
  const double wire = total / m.nvlink_bw_per_gpu();
  for (const auto method :
       {CopyMethod::ManyMemcpyAsync, CopyMethod::Memcpy2DAsync}) {
    EXPECT_LT(m.strided_copy_time(method, total, big_chunk), 1.2 * wire);
  }
}

TEST(CostModel, FinerGranularityNeverFaster) {
  // Fig. 7's second conclusion: more, smaller chunks cannot speed up moving
  // a fixed total.
  CostModel m;
  const double total = 216e6;
  for (const auto method : {CopyMethod::ManyMemcpyAsync,
                            CopyMethod::Memcpy2DAsync, CopyMethod::ZeroCopy}) {
    double prev = 1e300;
    for (double chunk = 2.2e3; chunk < 30e6; chunk *= 2.0) {
      const double t = m.strided_copy_time(method, total, chunk);
      EXPECT_LE(t, prev * 1.0001) << to_string(method) << " chunk=" << chunk;
      prev = t;
    }
  }
}

TEST(CostModel, ZeroCopyBandwidthRampsWithBlocks) {
  // Fig. 8: bandwidth grows with block count, then saturates near the
  // copy-engine (NVLink) line; ~16 blocks already reach it.
  CostModel m;
  const double chunk = 18e3;
  EXPECT_LT(m.zero_copy_bw(1, chunk), m.zero_copy_bw(4, chunk));
  EXPECT_LT(m.zero_copy_bw(4, chunk), m.zero_copy_bw(16, chunk));
  EXPECT_NEAR(m.zero_copy_bw(16, chunk), m.zero_copy_bw(160, chunk),
              0.05 * m.zero_copy_bw(160, chunk));
  EXPECT_GT(m.zero_copy_bw(16, chunk), 0.8 * m.nvlink_bw_per_gpu() *
                                            (chunk / (chunk + 512.0)));
}

TEST(CostModel, FftTimeScalesNLogN) {
  CostModel m;
  const double t1 = m.fft_time(1e6, 1024);
  const double t2 = m.fft_time(1e6, 2048);
  EXPECT_NEAR(t2 / t1, 2.0 * 11.0 / 10.0, 0.01);  // 2x points, log 10->11
  EXPECT_DOUBLE_EQ(m.fft_time(0, 1024), 0.0);
}

TEST(CostModel, SmStealFactorGrowsWithBlocks) {
  CostModel m;
  EXPECT_NEAR(m.sm_steal_factor(0), 1.0, 1e-12);
  EXPECT_GT(m.sm_steal_factor(16), 1.0);
  EXPECT_GT(m.sm_steal_factor(80), m.sm_steal_factor(16));
}

// --- virtual GPU on the DES ---

struct Rig {
  sim::Engine engine;
  sim::FlowNetwork net{engine};
  sim::LinkId nvlink;
  sim::LinkId bus;
  sim::DagRunner dag{engine, net};

  Rig() {
    CostModel costs;
    nvlink = net.add_link("nvlink0", costs.nvlink_bw_per_gpu());
    bus = net.add_link("socket_bus",
                       costs.spec().node.host_mem_bw_per_socket);
  }
};

TEST(VirtualGpu, LoneCopyMatchesCostModel) {
  Rig rig;
  CostModel costs;
  VirtualGpu g(rig.dag, {rig.nvlink, rig.bus}, costs, "gpu0");
  const double total = 216e6, chunk = 18e3;
  g.copy_h2d(g.transfer_stream(), "h2d", total, chunk,
             CopyMethod::Memcpy2DAsync);
  const double makespan = rig.dag.run();
  EXPECT_NEAR(makespan,
              costs.strided_copy_time(CopyMethod::Memcpy2DAsync, total, chunk),
              1e-9);
}

TEST(VirtualGpu, TransferStreamSerializesCopies) {
  Rig rig;
  VirtualGpu g(rig.dag, {rig.nvlink, rig.bus}, CostModel{}, "gpu0");
  g.copy_h2d(g.transfer_stream(), "a", 100e6, 1e6,
             CopyMethod::Memcpy2DAsync);
  g.copy_d2h(g.transfer_stream(), "b", 100e6, 1e6,
             CopyMethod::Memcpy2DAsync);
  const double makespan = rig.dag.run();
  // Serial: ~2 * (100 MB / 50 GB/s) = ~4 ms.
  EXPECT_GT(makespan, 3.9e-3);
}

TEST(VirtualGpu, ComputeOverlapsTransfer) {
  Rig rig;
  VirtualGpu g(rig.dag, {rig.nvlink, rig.bus}, CostModel{}, "gpu0");
  g.copy_h2d(g.transfer_stream(), "h2d", 100e6, 1e6,
             CopyMethod::Memcpy2DAsync);
  g.kernel(g.compute_stream(), "fft", 2e-3);
  const double makespan = rig.dag.run();
  EXPECT_LT(makespan, 2.3e-3);  // overlapped, not 2 ms + 2 ms
}

TEST(VirtualGpu, EventDependencyOrdersAcrossStreams) {
  Rig rig;
  VirtualGpu g(rig.dag, {rig.nvlink, rig.bus}, CostModel{}, "gpu0");
  const auto h2d = g.copy_h2d(g.transfer_stream(), "h2d", 100e6, 1e6,
                              CopyMethod::Memcpy2DAsync);
  const auto fft = g.kernel(g.compute_stream(), "fft", 1e-3, {h2d});
  const double makespan = rig.dag.run();
  EXPECT_GT(rig.dag.start_time(fft), 1.9e-3);
  EXPECT_NEAR(makespan, rig.dag.finish_time(fft), 1e-12);
}

TEST(VirtualGpu, ThreeGpusContendOnSocketBus) {
  // 3 GPUs pull H2D simultaneously: each NVLink is 50 GB/s but the socket
  // bus is 135 GB/s, so each effectively gets 45 GB/s.
  sim::Engine engine;
  sim::FlowNetwork net(engine);
  CostModel costs;
  const auto bus =
      net.add_link("bus", costs.spec().node.host_mem_bw_per_socket);
  sim::DagRunner dag(engine, net);
  std::vector<VirtualGpu> gpus;
  gpus.reserve(3);
  for (int i = 0; i < 3; ++i) {
    const auto nvl = net.add_link("nvl" + std::to_string(i),
                                  costs.nvlink_bw_per_gpu());
    gpus.emplace_back(dag, GpuLinks{nvl, bus}, costs, "g" + std::to_string(i));
  }
  for (auto& g : gpus) {
    g.copy_h2d(g.transfer_stream(), "h2d", 90e6, 90e6,
               CopyMethod::Memcpy2DAsync);
  }
  const double makespan = dag.run();
  EXPECT_NEAR(makespan, 90e6 / 45e9, 0.1e-3);
}

}  // namespace
}  // namespace psdns::gpu
