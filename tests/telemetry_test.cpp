// Tests for the live telemetry plane: cross-rank metric reduction, the
// step-series ring/JSONL, the health monitor's invariants, the Prometheus/
// JSON exposition, the rank-0 HTTP endpoint, and the full campaign
// integration - including the acceptance drill where a silent bit flip is
// caught by the NaN guard within one step and no corrupt checkpoint is
// written.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "driver/campaign.hpp"
#include "obs/exposition.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metric_series.hpp"
#include "obs/metrics_server.hpp"
#include "obs/reduce.hpp"
#include "obs/registry.hpp"
#include "resilience/fault.hpp"
#include "util/check.hpp"

namespace psdns::obs {
namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_all_variants(const std::string& path) {
  std::filesystem::remove(path);
  for (int i = 1; i <= 4; ++i) {
    std::filesystem::remove(path + "." + std::to_string(i));
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --- merge_snapshots / ReducedSnapshot ---

TEST(ReduceTest, MergesCountersAndGaugesAcrossRanks) {
  MetricsSnapshot r0;
  r0.counters["steps"] = 10;
  r0.gauges["wall"] = 2.0;
  r0.gauges["only_rank0"] = 7.0;
  MetricsSnapshot r1;
  r1.counters["steps"] = 14;
  r1.gauges["wall"] = 6.0;

  const ReducedSnapshot merged =
      merge_snapshots({serialize_snapshot(r0), serialize_snapshot(r1)});
  ASSERT_EQ(merged.ranks, 2);

  const ReducedValue* steps = merged.counter("steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_DOUBLE_EQ(steps->sum, 24.0);
  EXPECT_DOUBLE_EQ(steps->min, 10.0);
  EXPECT_DOUBLE_EQ(steps->max, 14.0);
  EXPECT_DOUBLE_EQ(steps->mean, 12.0);
  EXPECT_EQ(steps->min_rank, 0);
  EXPECT_EQ(steps->max_rank, 1);
  EXPECT_EQ(steps->count, 2);

  const ReducedValue* wall = merged.gauge("wall");
  ASSERT_NE(wall, nullptr);
  EXPECT_DOUBLE_EQ(wall->mean, 4.0);
  EXPECT_EQ(wall->max_rank, 1);

  // A key only one rank carries still appears, reduced over that rank.
  const ReducedValue* solo = merged.gauge("only_rank0");
  ASSERT_NE(solo, nullptr);
  EXPECT_EQ(solo->count, 1);
  EXPECT_EQ(solo->min_rank, 0);
  EXPECT_EQ(solo->max_rank, 0);
  EXPECT_DOUBLE_EQ(solo->mean, 7.0);
}

TEST(ReduceTest, MergesHistogramsCountWeighted) {
  MetricsSnapshot r0, r1, r2;
  r0.histograms["svc.tenant.alice.queue_wait_seconds"] =
      HistogramSummary{1, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0};
  r1.histograms["svc.tenant.alice.queue_wait_seconds"] =
      HistogramSummary{3, 12.0, 1.0, 6.0, 4.0, 6.0, 6.0};
  r2.gauges["unrelated"] = 1.0;  // a rank with no histograms still merges

  const ReducedSnapshot merged = merge_snapshots(
      {serialize_snapshot(r0), serialize_snapshot(r1),
       serialize_snapshot(r2)});
  const HistogramSummary* h =
      merged.histogram("svc.tenant.alice.queue_wait_seconds");
  ASSERT_NE(h, nullptr);
  // count/sum/min/max merge exactly; the quantiles are the count-weighted
  // mean of the per-rank quantiles (1:3 weighting here).
  EXPECT_EQ(h->count, 4);
  EXPECT_DOUBLE_EQ(h->sum, 14.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 6.0);
  EXPECT_DOUBLE_EQ(h->p50, 0.25 * 2.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(h->p95, 0.25 * 2.0 + 0.75 * 6.0);
  EXPECT_DOUBLE_EQ(h->p99, 0.25 * 2.0 + 0.75 * 6.0);
  EXPECT_EQ(merged.histogram("missing"), nullptr);
}

TEST(ReduceTest, SingleRankHistogramPassesThroughExactly) {
  // The campaign-service case: one process holds all the samples, so the
  // "approximate" merge must be the identity.
  MetricsSnapshot local;
  local.histograms["lat"] = HistogramSummary{7, 3.5, 0.1, 1.0, 0.4, 0.9, 1.0};
  const ReducedSnapshot merged = merge_snapshots({serialize_snapshot(local)});
  const HistogramSummary* h = merged.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 7);
  EXPECT_DOUBLE_EQ(h->sum, 3.5);
  EXPECT_DOUBLE_EQ(h->min, 0.1);
  EXPECT_DOUBLE_EQ(h->max, 1.0);
  EXPECT_DOUBLE_EQ(h->p50, 0.4);
  EXPECT_DOUBLE_EQ(h->p95, 0.9);
  EXPECT_DOUBLE_EQ(h->p99, 1.0);
}

TEST(ReduceTest, HistogramsSurviveJsonRoundTrip) {
  MetricsSnapshot local;
  local.histograms["lat"] = HistogramSummary{5, 2.5, 0.1, 0.9, 0.5, 0.8, 0.9};
  ReducedSnapshot snap = merge_snapshots({serialize_snapshot(local)});
  snap.step = 9;
  const std::string json = snap.to_json();
  const ReducedSnapshot back = ReducedSnapshot::parse(json);
  const HistogramSummary* h = back.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5);
  EXPECT_DOUBLE_EQ(h->p95, 0.8);
  EXPECT_EQ(back.to_json(), json);

  // Rows written before histograms were reduced still parse.
  const ReducedSnapshot old = ReducedSnapshot::parse(
      "{\"step\":1,\"time\":0,\"ranks\":1,\"counters\":{},\"gauges\":{}}");
  EXPECT_TRUE(old.histograms.empty());
}

TEST(ReduceTest, TiesResolveToLowestRank) {
  MetricsSnapshot a, b, c;
  a.gauges["g"] = 5.0;
  b.gauges["g"] = 5.0;
  c.gauges["g"] = 5.0;
  const ReducedSnapshot merged = merge_snapshots(
      {serialize_snapshot(a), serialize_snapshot(b), serialize_snapshot(c)});
  const ReducedValue* g = merged.gauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->min_rank, 0);
  EXPECT_EQ(g->max_rank, 0);
}

TEST(ReduceTest, JsonRoundTripsExactly) {
  MetricsSnapshot r0;
  r0.counters["c"] = 3;
  r0.gauges["g"] = 1.25;
  ReducedSnapshot snap = merge_snapshots({serialize_snapshot(r0)});
  snap.step = 42;
  snap.time = 0.5;
  snap.health_verdict = "degraded";
  snap.health_events = {"cfl_bound", "ckpt_lag"};

  const std::string json = snap.to_json();
  const ReducedSnapshot back = ReducedSnapshot::parse(json);
  EXPECT_EQ(back.step, 42);
  EXPECT_DOUBLE_EQ(back.time, 0.5);
  EXPECT_EQ(back.health_verdict, "degraded");
  ASSERT_EQ(back.health_events.size(), 2u);
  EXPECT_EQ(back.health_events[1], "ckpt_lag");
  EXPECT_EQ(back.to_json(), json);
}

TEST(ReduceTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(ReducedSnapshot::parse("not json"), util::Error);
  EXPECT_THROW(ReducedSnapshot::parse("[1,2]"), util::Error);
}

TEST(ReduceTest, CollectiveReductionIsIdenticalOnEveryRank) {
  constexpr int kRanks = 4;
  std::mutex mu;
  std::vector<std::string> per_rank_json(kRanks);
  comm::run_ranks(kRanks, [&](comm::Communicator& comm) {
    MetricsSnapshot local;
    local.gauges["probe.value"] = static_cast<double>(comm.rank());
    local.counters["probe.calls"] = 10 + comm.rank();
    const ReducedSnapshot reduced = reduce_metrics(comm, local);
    std::lock_guard<std::mutex> lock(mu);
    per_rank_json[static_cast<std::size_t>(comm.rank())] = reduced.to_json();
  });
  for (int r = 1; r < kRanks; ++r) {
    EXPECT_EQ(per_rank_json[static_cast<std::size_t>(r)], per_rank_json[0])
        << "rank " << r << " reduced to a different snapshot";
  }
  const ReducedSnapshot reduced = ReducedSnapshot::parse(per_rank_json[0]);
  EXPECT_EQ(reduced.ranks, kRanks);
  const ReducedValue* v = reduced.gauge("probe.value");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->sum, 6.0);
  EXPECT_DOUBLE_EQ(v->mean, 1.5);
  EXPECT_EQ(v->min_rank, 0);
  EXPECT_EQ(v->max_rank, kRanks - 1);
  EXPECT_EQ(v->count, kRanks);
}

// --- SeriesRing / JSONL ---

ReducedSnapshot snapshot_for_step(std::int64_t step) {
  MetricsSnapshot local;
  local.gauges["g"] = static_cast<double>(step) * 0.5;
  ReducedSnapshot snap = merge_snapshots({serialize_snapshot(local)});
  snap.step = step;
  snap.time = static_cast<double>(step) * 0.01;
  return snap;
}

TEST(SeriesTest, RingKeepsNewestRowsAndCountsDrops) {
  SeriesRing ring(3);
  EXPECT_EQ(ring.latest(), nullptr);
  for (std::int64_t s = 1; s <= 5; ++s) ring.push(snapshot_for_step(s));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_pushed(), 5);
  EXPECT_EQ(ring.dropped(), 2);
  EXPECT_EQ(ring.at(0).step, 3);  // oldest retained
  EXPECT_EQ(ring.at(2).step, 5);
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->step, 5);
}

TEST(SeriesTest, JsonlRoundTripsExactly) {
  const std::string path = tmp("psdns_telemetry_series_rt.jsonl");
  {
    SeriesJsonlWriter writer(path);
    for (std::int64_t s = 1; s <= 3; ++s) {
      writer.append(snapshot_for_step(s));
    }
  }
  const auto rows = read_series_jsonl(path);
  ASSERT_EQ(rows.size(), 3u);
  for (std::int64_t s = 1; s <= 3; ++s) {
    EXPECT_EQ(rows[static_cast<std::size_t>(s - 1)].to_json(),
              snapshot_for_step(s).to_json());
  }
  std::filesystem::remove(path);
}

TEST(SeriesTest, ReaderNamesTheBadLine) {
  const std::string path = tmp("psdns_telemetry_series_bad.jsonl");
  {
    std::ofstream out(path);
    out << snapshot_for_step(1).to_json() << "\n" << "garbage\n";
  }
  EXPECT_THROW(read_series_jsonl(path), util::Error);
  std::filesystem::remove(path);
  EXPECT_THROW(read_series_jsonl(path), util::Error);  // missing file
}

// --- HealthMonitor ---

HealthInput healthy_input(std::int64_t step) {
  HealthInput in;
  in.step = step;
  in.dt = 0.01;
  in.dx = 0.4;
  in.energy = 0.5;
  in.dissipation = 0.1;
  in.u_max = 1.0;
  return in;
}

TEST(HealthTest, NonFiniteDiagnosticsAbort) {
  HealthMonitor monitor;
  EXPECT_EQ(monitor.evaluate(healthy_input(1)), HealthVerdict::Healthy);
  HealthInput bad = healthy_input(2);
  bad.energy = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(monitor.evaluate(bad), HealthVerdict::Abort);
  const auto events = monitor.last_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].code, "nan_energy");
  EXPECT_EQ(events[0].severity, HealthSeverity::Critical);
  EXPECT_EQ(events[0].step, 2);
  EXPECT_EQ(monitor.report().worst, HealthVerdict::Abort);
}

TEST(HealthTest, EnergyDriftSkipsFirstSampleThenFires) {
  HealthConfig cfg;
  cfg.energy_drift_tol = 0.5;
  HealthMonitor monitor(cfg);
  HealthInput first = healthy_input(1);
  first.energy = 100.0;  // no prior sample: cannot drift
  EXPECT_EQ(monitor.evaluate(first), HealthVerdict::Healthy);
  HealthInput jump = healthy_input(2);
  jump.energy = 300.0;  // 200% jump against a 50% tolerance
  EXPECT_EQ(monitor.evaluate(jump), HealthVerdict::Abort);
  ASSERT_FALSE(monitor.last_events().empty());
  EXPECT_EQ(monitor.last_events()[0].code, "energy_drift");
}

TEST(HealthTest, CflBoundAborts) {
  HealthMonitor monitor;
  HealthInput in = healthy_input(1);
  in.u_max = 100.0;  // CFL = 100 * 0.01 / 0.4 = 2.5 > 1.5
  EXPECT_EQ(monitor.evaluate(in), HealthVerdict::Abort);
  EXPECT_EQ(monitor.last_events()[0].code, "cfl_bound");
  EXPECT_DOUBLE_EQ(monitor.last_events()[0].value, 2.5);
}

TEST(HealthTest, WarnLevelInvariantsDegrade) {
  HealthConfig cfg;
  cfg.kmax_eta_min = 1.5;
  cfg.checkpoint_lag_max = 10;
  cfg.recoveries_max = 2;
  HealthMonitor monitor(cfg);

  HealthInput in = healthy_input(1);
  in.kmax = 5.0;
  in.kolmogorov_eta = 0.1;    // kmax*eta = 0.5 < 1.5
  in.steps_since_checkpoint = 50;
  in.recoveries = 3;
  EXPECT_EQ(monitor.evaluate(in), HealthVerdict::Degraded);
  const auto events = monitor.last_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].code, "kmax_eta");
  EXPECT_EQ(events[1].code, "ckpt_lag");
  EXPECT_EQ(events[2].code, "recoveries");
  for (const auto& e : events) {
    EXPECT_EQ(e.severity, HealthSeverity::Warn);
  }
}

TEST(HealthTest, DisabledThresholdsSkipChecks) {
  HealthConfig cfg;
  cfg.energy_drift_tol = 0.0;
  cfg.cfl_max = 0.0;
  HealthMonitor monitor(cfg);
  HealthInput in = healthy_input(1);
  in.u_max = 1e6;
  EXPECT_EQ(monitor.evaluate(in), HealthVerdict::Healthy);
  in.step = 2;
  in.energy = 1e9;
  EXPECT_EQ(monitor.evaluate(in), HealthVerdict::Healthy);
}

TEST(HealthTest, ModeParsesAndEnvOverrides) {
  EXPECT_EQ(parse_health_mode("off"), HealthMode::Off);
  EXPECT_EQ(parse_health_mode("warn"), HealthMode::Warn);
  EXPECT_EQ(parse_health_mode("strict"), HealthMode::Strict);
  EXPECT_THROW(parse_health_mode("loose"), util::Error);

  HealthConfig base;
  base.mode = HealthMode::Warn;
  ::setenv("PSDNS_HEALTH", "strict", 1);
  EXPECT_EQ(HealthConfig::from_env(base).mode, HealthMode::Strict);
  ::setenv("PSDNS_HEALTH", "bogus", 1);
  EXPECT_THROW(HealthConfig::from_env(base), util::Error);
  ::unsetenv("PSDNS_HEALTH");
  EXPECT_EQ(HealthConfig::from_env(base).mode, HealthMode::Warn);
}

TEST(HealthTest, ReportJsonIsMachineReadable) {
  HealthMonitor monitor;
  HealthInput bad = healthy_input(1);
  bad.u_max = std::numeric_limits<double>::infinity();
  monitor.evaluate(bad);
  const JsonValue doc = json_parse(monitor.report().to_json());
  EXPECT_EQ(doc.at("verdict").string, "abort");
  EXPECT_EQ(doc.at("evaluations").number, 1.0);
  ASSERT_FALSE(doc.at("events").array.empty());
  EXPECT_EQ(doc.at("events").array[0].at("code").string, "nan_umax");
}

// --- exposition ---

TEST(ExpositionTest, PrometheusNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(prometheus_name("comm.alltoall.bytes"),
            "psdns_comm_alltoall_bytes");
  EXPECT_EQ(prometheus_name("a-b c"), "psdns_a_b_c");
}

TEST(ExpositionTest, RendersStatLabelsAndHealthStatus) {
  ReducedSnapshot snap = snapshot_for_step(7);
  HealthReport report;
  report.verdict = HealthVerdict::Degraded;
  const std::string text = to_prometheus(snap, report);
  EXPECT_NE(text.find("psdns_up 1"), std::string::npos);
  EXPECT_NE(text.find("psdns_step 7"), std::string::npos);
  EXPECT_NE(text.find("psdns_g{stat=\"mean\"}"), std::string::npos);
  EXPECT_NE(text.find("psdns_health_status 1"), std::string::npos);
}

TEST(ExpositionTest, HistogramsRenderAsPrometheusSummaries) {
  MetricsSnapshot local;
  local.histograms["svc.tenant.alice.queue_wait_seconds"] =
      HistogramSummary{4, 2.0, 0.1, 0.9, 0.5, 0.8, 0.9};
  const ReducedSnapshot snap = merge_snapshots({serialize_snapshot(local)});
  const std::string text = to_prometheus(snap, HealthReport{});
  const std::string name = "psdns_svc_tenant_alice_queue_wait_seconds";
  EXPECT_NE(text.find("# TYPE " + name + " summary"), std::string::npos);
  EXPECT_NE(text.find(name + "{quantile=\"0.5\"} 0.5"), std::string::npos);
  EXPECT_NE(text.find(name + "{quantile=\"0.95\"} 0.8"), std::string::npos);
  EXPECT_NE(text.find(name + "{quantile=\"0.99\"} 0.9"), std::string::npos);
  EXPECT_NE(text.find(name + "_sum 2"), std::string::npos);
  EXPECT_NE(text.find(name + "_count 4"), std::string::npos);
  EXPECT_NE(text.find(name + "_min 0.1"), std::string::npos);
  EXPECT_NE(text.find(name + "_max 0.9"), std::string::npos);
}

TEST(ExpositionTest, JsonDocumentCarriesSnapshotAndHealth) {
  const ReducedSnapshot snap = snapshot_for_step(3);
  HealthReport report;
  const JsonValue doc = json_parse(to_exposition_json(snap, report));
  EXPECT_EQ(doc.at("snapshot").at("step").number, 3.0);
  EXPECT_EQ(doc.at("health").at("verdict").string, "healthy");
}

// --- metrics server ---

TEST(MetricsServerTest, ServesAllRoutesOnEphemeralPort) {
  MetricsServer server(MetricsServer::Options{});
  ASSERT_GT(server.port(), 0);

  HealthReport report;
  server.publish(to_prometheus(snapshot_for_step(1), report),
                 to_exposition_json(snapshot_for_step(1), report),
                 report.to_json());

  int status = 0;
  const std::string metrics =
      http_get("127.0.0.1", server.port(), "/metrics", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(metrics.find("psdns_up 1"), std::string::npos);

  const std::string json =
      http_get("127.0.0.1", server.port(), "/json", &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(json_parse(json).at("snapshot").at("step").number, 1.0);

  http_get("127.0.0.1", server.port(), "/health", &status);
  EXPECT_EQ(status, 200);

  // Publishing an abort verdict flips the liveness probe to 503.
  report.verdict = HealthVerdict::Abort;
  server.publish(to_prometheus(snapshot_for_step(2), report),
                 to_exposition_json(snapshot_for_step(2), report),
                 report.to_json(), /*unhealthy=*/true);
  http_get("127.0.0.1", server.port(), "/health", &status);
  EXPECT_EQ(status, 503);

  http_get("127.0.0.1", server.port(), "/nope", &status);
  EXPECT_EQ(status, 404);
  EXPECT_GE(server.requests(), 5);
}

TEST(MetricsServerTest, FromEnvHonorsVariable) {
  ::unsetenv("PSDNS_METRICS_PORT");
  EXPECT_EQ(MetricsServer::from_env(), nullptr);
  ::setenv("PSDNS_METRICS_PORT", "0", 1);
  const auto server = MetricsServer::from_env();
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);
  ::setenv("PSDNS_METRICS_PORT", "not-a-port", 1);
  EXPECT_THROW(MetricsServer::from_env(), util::Error);
  ::unsetenv("PSDNS_METRICS_PORT");
}

// --- campaign integration ---

driver::CampaignConfig drill_base_config() {
  driver::CampaignConfig cfg;
  cfg.solver.n = 16;
  cfg.solver.viscosity = 0.02;
  cfg.seed = 11;
  cfg.max_steps = 6;
  cfg.max_dt = 0.01;
  cfg.diagnostics_every = 1;
  return cfg;
}

TEST(TelemetryCampaignTest, LiveEndpointServesReducedMetricsWhileStepping) {
  const std::string series_path = tmp("psdns_telemetry_live.jsonl");
  std::filesystem::remove(series_path);

  driver::CampaignConfig cfg = drill_base_config();
  cfg.max_steps = 4;
  cfg.metrics_port = 0;  // ephemeral: parallel test jobs must not collide
  cfg.telemetry_path = series_path;
  cfg.health.mode = HealthMode::Warn;

  std::atomic<int> live_fetches{0};
  std::atomic<bool> live_saw_step{false};
  std::atomic<bool> live_health_ok{false};
  driver::CampaignResult result;
  std::mutex mu;

  comm::run_ranks(2, [&](comm::Communicator& comm) {
    // The observer runs on rank 0 inside the stepping loop - this IS the
    // "scrape while the campaign is live" scenario. The endpoint publishes
    // after the observer fires, so rows lag one step; fetch from step 2 on.
    const auto observer = [&](std::int64_t step, double, const dns::Diagnostics&) {
      if (step < 2) return;
      const int port =
          static_cast<int>(registry().gauge("telemetry.metrics_port"));
      ASSERT_GT(port, 0);
      int status = 0;
      const std::string text =
          http_get("127.0.0.1", port, "/metrics", &status);
      EXPECT_EQ(status, 200);
      EXPECT_NE(text.find("psdns_up 1"), std::string::npos);
      EXPECT_NE(text.find("psdns_rank_steps"), std::string::npos);
      const JsonValue doc = json_parse(
          http_get("127.0.0.1", port, "/json", &status));
      EXPECT_EQ(status, 200);
      if (doc.at("snapshot").at("step").number >= 1.0) {
        live_saw_step = true;
      }
      http_get("127.0.0.1", port, "/health", &status);
      if (status == 200) live_health_ok = true;
      ++live_fetches;
    };
    const auto r = driver::run_campaign_supervised(comm, cfg, {}, observer);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      result = r;
    }
  });

  EXPECT_GE(live_fetches.load(), 2);
  EXPECT_TRUE(live_saw_step.load());
  EXPECT_TRUE(live_health_ok.load());
  EXPECT_GT(result.metrics_port, 0);
  EXPECT_EQ(result.health.verdict, HealthVerdict::Healthy);

  // One reduced row per step, with genuine per-rank spread: both ranks
  // report rank.steps, and the straggler gauge covers both ranks.
  ASSERT_EQ(result.telemetry.size(), 4u);
  const ReducedSnapshot& last = result.telemetry.back();
  EXPECT_EQ(last.step, 4);
  const ReducedValue* steps = last.counter("rank.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->count, 2);
  EXPECT_DOUBLE_EQ(steps->sum, 8.0);  // 2 ranks x 4 steps
  const ReducedValue* wall = last.gauge("rank.step.wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, 2);
  EXPECT_GE(wall->max_rank, 0);

  // The JSONL series replays the run identically, row for row.
  const auto rows = read_series_jsonl(series_path);
  ASSERT_EQ(rows.size(), result.telemetry.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].to_json(), result.telemetry[i].to_json());
  }
  std::filesystem::remove(series_path);
}

// The acceptance drill: a silent bit flip in an all-to-all mid-step-3 sends
// the velocity field non-finite; a Strict health monitor must abort at that
// same step on every rank, and the checkpoint chain must contain only
// pre-fault state.
TEST(TelemetryDrillTest, BitFlipIsCaughtWithinOneStepAndCheckpointsStayClean) {
  const std::string ckpt = tmp("psdns_telemetry_drill.ckp");
  const std::string clean_ckpt = tmp("psdns_telemetry_drill_clean.ckp");
  const std::string series_path = tmp("psdns_telemetry_drill.jsonl");
  remove_all_variants(ckpt);
  remove_all_variants(clean_ckpt);
  std::filesystem::remove(series_path);

  driver::CampaignConfig cfg = drill_base_config();
  cfg.checkpoint_every = 2;
  cfg.checkpoint_path = ckpt;
  cfg.telemetry_path = series_path;
  cfg.health.mode = HealthMode::Strict;

  // Call index 13 lands inside step 3's transposes (4 all-to-alls per step
  // at n=16 on 2 ranks; steps 1-2 plus init consume 11 calls). The flipped
  // exponent bit makes the field non-finite during step 3.
  std::mutex mu;
  std::vector<std::int64_t> abort_steps;
  std::vector<std::string> abort_codes;
  {
    resilience::ScopedPlan plan("comm.alltoall@13=bit_flip");
    comm::run_ranks(2, [&](comm::Communicator& comm) {
      try {
        driver::run_campaign_supervised(comm, cfg);
        ADD_FAILURE() << "rank " << comm.rank()
                      << ": corrupted campaign completed without abort";
      } catch (const HealthAbort& abort) {
        std::lock_guard<std::mutex> lock(mu);
        abort_steps.push_back(abort.step());
        for (const auto& e : abort.events()) abort_codes.push_back(e.code);
      }
    });
  }

  // Every rank aborted, at the same step, with the NaN guard fired.
  ASSERT_EQ(abort_steps.size(), 2u);
  EXPECT_EQ(abort_steps[0], abort_steps[1]);
  const std::int64_t abort_step = abort_steps[0];
  EXPECT_EQ(abort_step, 3) << "injection at call 13 should strike step 3";
  EXPECT_TRUE(std::find(abort_codes.begin(), abort_codes.end(),
                        "nan_energy") != abort_codes.end())
      << "NaN guard did not fire";

  // The series pins down detection latency: the first row where the
  // fault.injected counter moves is also the first (and only) abort row.
  const auto rows = read_series_jsonl(series_path);
  ASSERT_FALSE(rows.empty());
  std::int64_t inject_step = -1;
  std::int64_t first_abort_step = -1;
  double last_injected = rows.front().counter("fault.injected") != nullptr
                             ? rows.front().counter("fault.injected")->sum
                             : 0.0;
  if (last_injected > 0.0) inject_step = rows.front().step;
  for (const auto& row : rows) {
    const ReducedValue* injected = row.counter("fault.injected");
    const double now = injected != nullptr ? injected->sum : 0.0;
    if (inject_step < 0 && now > last_injected) inject_step = row.step;
    last_injected = std::max(last_injected, now);
    if (first_abort_step < 0 && row.health_verdict == "abort") {
      first_abort_step = row.step;
    }
  }
  ASSERT_GE(inject_step, 0) << "fault never fired";
  EXPECT_EQ(first_abort_step, inject_step)
      << "abort verdict lagged the injection step";
  EXPECT_EQ(first_abort_step, abort_step);
  EXPECT_EQ(rows.back().step, abort_step)
      << "campaign kept stepping past the abort";

  // No corrupt checkpoint: the abort fired before the post-fault cadence
  // point, so the newest file on disk is the step-2 checkpoint - bitwise
  // identical to one written by a fault-free run of the same config.
  ASSERT_TRUE(std::filesystem::exists(ckpt));
  driver::CampaignConfig clean = cfg;
  clean.max_steps = 2;
  clean.checkpoint_path = clean_ckpt;
  clean.telemetry_path.clear();
  comm::run_ranks(2, [&](comm::Communicator& comm) {
    driver::run_campaign(comm, clean);
  });
  const std::string faulted_bytes = read_file(ckpt);
  const std::string clean_bytes = read_file(clean_ckpt);
  ASSERT_FALSE(faulted_bytes.empty());
  EXPECT_EQ(faulted_bytes, clean_bytes)
      << "checkpoint written by the faulted run diverges from clean state";

  remove_all_variants(ckpt);
  remove_all_variants(clean_ckpt);
  std::filesystem::remove(series_path);
}

}  // namespace
}  // namespace psdns::obs
